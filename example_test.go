package hmeans_test

import (
	"fmt"

	"hmeans"
	"hmeans/internal/som"
)

// ExampleHGM computes the paper's hierarchical geometric mean on a
// hand-labelled clustering.
func ExampleHGM() {
	// Two clusters: {1, 4} and {2, 8, 32}.
	scores := []float64{1, 4, 2, 8, 32}
	clusters, _ := hmeans.NewClustering([]int{0, 0, 1, 1, 1})

	hgm, _ := hmeans.HGM(scores, clusters)
	plain, _ := hmeans.PlainMean(hmeans.Geometric, scores)
	fmt.Printf("HGM: %.2f\n", hgm)
	fmt.Printf("plain GM: %.2f\n", plain)
	// Output:
	// HGM: 4.00
	// plain GM: 4.59
}

// ExampleHierarchicalMean shows the degeneracy property: singleton
// clusters reduce every hierarchical mean to its plain counterpart.
func ExampleHierarchicalMean() {
	scores := []float64{2, 4, 8}
	h, _ := hmeans.HierarchicalMean(hmeans.Geometric, scores, hmeans.Singletons(3))
	p, _ := hmeans.PlainMean(hmeans.Geometric, scores)
	fmt.Println(h == p)
	// Output:
	// true
}

// ExampleEquivalentWeights shows that the hierarchical mean is a
// weighted mean with objectively derived weights.
func ExampleEquivalentWeights() {
	clusters, _ := hmeans.NewClustering([]int{0, 1, 1})
	for _, w := range hmeans.EquivalentWeights(clusters) {
		fmt.Printf("%.2f\n", w)
	}
	// Output:
	// 0.50
	// 0.25
	// 0.25
}

// ExampleDetectClusters runs the full pipeline on a tiny
// characterization table and scores at a chosen cut.
func ExampleDetectClusters() {
	table, _ := hmeans.NewTable(
		[]string{"w1", "w2", "w3", "w4"},
		[]string{"cpu", "mem"},
		[][]float64{{9, 1}, {9.1, 1.2}, {2, 8}, {1, 9}},
	)
	// SkipSOM keeps this tiny example fully deterministic.
	p, _ := hmeans.DetectClusters(table, hmeans.PipelineConfig{
		SkipSOM: true,
		SOM:     som.Config{Seed: 1},
	})
	c, _ := p.ClusteringAtK(2)
	fmt.Println(c.Labels[0] == c.Labels[1]) // w1, w2 together
	fmt.Println(c.Labels[2] == c.Labels[3]) // w3, w4 together
	// Output:
	// true
	// true
}

// ExampleRedundancySweep demonstrates the malicious-tweak defence.
func ExampleRedundancySweep() {
	scores := []float64{9, 1, 1}
	clusters, _ := hmeans.NewClustering([]int{0, 1, 2})
	sweep, _ := hmeans.RedundancySweep(hmeans.Geometric, scores, clusters, 0, 3)
	for _, imp := range sweep {
		fmt.Printf("clones=%d plain=%.2f hierarchical=%.2f\n",
			imp.Copies, imp.Plain, imp.Hierarchical)
	}
	// Output:
	// clones=0 plain=2.08 hierarchical=2.08
	// clones=1 plain=3.00 hierarchical=2.08
	// clones=2 plain=3.74 hierarchical=2.08
	// clones=3 plain=4.33 hierarchical=2.08
}
