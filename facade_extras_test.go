package hmeans_test

import (
	"strings"
	"testing"

	"hmeans"
)

func TestFacadeBootstrapCIs(t *testing.T) {
	a := []float64{4.75, 5.32, 3.97, 6.50, 2.57, 1.09, 1.19, 0.75, 1.22, 0.71, 1.16, 5.12, 1.88}
	b := []float64{3.99, 3.65, 2.37, 6.11, 1.41, 1.07, 0.90, 0.98, 1.31, 0.90, 2.31, 2.77, 2.62}
	iv, err := hmeans.BootstrapScoreCI(a, 0.95, 400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !iv.Contains(iv.Point) || iv.Width() <= 0 {
		t.Fatalf("score CI %+v", iv)
	}
	ratio, err := hmeans.BootstrapRatioCI(a, b, 0.95, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ratio.Point < 1.0 || ratio.Point > 1.2 {
		t.Fatalf("ratio point %v", ratio.Point)
	}
	p, obs, err := hmeans.PairedPermutationTest(a, b, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p > 1 || obs <= 0 {
		t.Fatalf("permutation p=%v obs=%v", p, obs)
	}
}

func TestFacadeNestedMeanAndImportance(t *testing.T) {
	table, err := hmeans.NewTable(
		[]string{"a", "b", "c", "d"},
		[]string{"f1", "f2"},
		[][]float64{{9, 1}, {9.1, 1.1}, {2, 8}, {1, 9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hmeans.DetectClusters(table, hmeans.PipelineConfig{SkipSOM: true})
	if err != nil {
		t.Fatal(err)
	}
	scores := []float64{4, 4.2, 1.5, 1.2}
	nested, err := hmeans.NestedMean(hmeans.Geometric, scores, p.Dendrogram, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if nested <= 0 {
		t.Fatalf("nested mean %v", nested)
	}
	c, err := p.ClusteringAtK(2)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := hmeans.FeatureImportance(p.Prepared, c.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) == 0 || imp[0].EtaSquared < 0 || imp[0].EtaSquared > 1 {
		t.Fatalf("importance = %+v", imp)
	}
}

func TestFacadeWriteReport(t *testing.T) {
	table, err := hmeans.NewTable(
		[]string{"a", "b", "c", "d"},
		[]string{"f1", "f2"},
		[][]float64{{9, 1}, {9.1, 1.1}, {2, 8}, {1, 9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var cfg hmeans.PipelineConfig
	cfg.SkipSOM = true
	cfg.SOM = hmeans.SOMConfig{Seed: 4}
	p, err := hmeans.DetectClusters(table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	err = hmeans.WriteReport(&sb, hmeans.ReportInput{
		Workloads: []string{"a", "b", "c", "d"},
		Scores:    []float64{4, 4.1, 1.5, 1.2},
		Pipeline:  p,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Per-workload scores", "Cluster structure", "Suite scores"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("report missing %q:\n%s", want, sb.String())
		}
	}
}
