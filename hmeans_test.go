package hmeans_test

import (
	"math"
	"testing"

	"hmeans"
)

func TestFacadeScoring(t *testing.T) {
	scores := []float64{1, 4, 2, 8, 32}
	c, err := hmeans.NewClustering([]int{0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := hmeans.HGM(scores, c)
	if err != nil || math.Abs(got-4) > 1e-12 {
		t.Fatalf("HGM = %v, %v; want 4", got, err)
	}
	plain, err := hmeans.PlainMean(hmeans.Geometric, scores)
	if err != nil {
		t.Fatal(err)
	}
	single, err := hmeans.HierarchicalMean(hmeans.Geometric, scores, hmeans.Singletons(5))
	if err != nil || math.Abs(single-plain) > 1e-12 {
		t.Fatalf("singleton degeneracy broken: %v vs %v", single, plain)
	}
	one, err := hmeans.HGM(scores, hmeans.OneCluster(5))
	if err != nil || math.Abs(one-plain) > 1e-12 {
		t.Fatalf("one-cluster degeneracy broken: %v vs %v", one, plain)
	}
}

func TestFacadeMeanFamilies(t *testing.T) {
	scores := []float64{1, 2, 4, 8}
	c, _ := hmeans.NewClustering([]int{0, 0, 1, 1})
	hh, _ := hmeans.HHM(scores, c)
	hg, _ := hmeans.HGM(scores, c)
	ha, _ := hmeans.HAM(scores, c)
	if !(hh <= hg && hg <= ha) {
		t.Fatalf("mean inequality violated: %v %v %v", hh, hg, ha)
	}
}

func TestFacadePipeline(t *testing.T) {
	table, err := hmeans.NewTable(
		[]string{"redundant1", "redundant2", "distinct1", "distinct2"},
		[]string{"cpu", "mem", "io"},
		[][]float64{
			{10, 1, 0},
			{10.4, 1.2, 0.1},
			{2, 8, 3},
			{1, 2, 9},
		})
	if err != nil {
		t.Fatal(err)
	}
	p, err := hmeans.DetectClusters(table, hmeans.PipelineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.ClusteringAtK(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Labels[0] != c.Labels[1] {
		t.Fatalf("redundant workloads not clustered: %v", c.Labels)
	}
	score, err := p.ScoreAtK(hmeans.Geometric, []float64{4, 4.1, 2, 1}, 3)
	if err != nil || score <= 0 {
		t.Fatalf("ScoreAtK = %v, %v", score, err)
	}
}

func TestFacadeBits(t *testing.T) {
	table, err := hmeans.FromBits(
		[]string{"w1", "w2", "w3"},
		[]string{"m1", "m2", "m3", "m4"},
		[][]bool{
			{true, true, false, true},
			{true, true, false, false},
			{true, false, true, false},
		})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hmeans.DetectClusters(table, hmeans.PipelineConfig{Kind: hmeans.Bits}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeRedundancySweep(t *testing.T) {
	scores := []float64{9, 1, 1}
	c, _ := hmeans.NewClustering([]int{0, 1, 2})
	sweep, err := hmeans.RedundancySweep(hmeans.Geometric, scores, c, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 6 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	if sweep[5].Plain <= sweep[0].Plain {
		t.Fatal("plain mean did not inflate")
	}
	if math.Abs(sweep[5].Hierarchical-sweep[0].Hierarchical) > 1e-12 {
		t.Fatal("hierarchical mean drifted")
	}
}

func TestFacadeEquivalentWeights(t *testing.T) {
	c, _ := hmeans.NewClustering([]int{0, 0, 1})
	ws := hmeans.EquivalentWeights(c)
	sum := 0.0
	for _, w := range ws {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum %v", sum)
	}
}

func TestFacadeDiversityAndSensitivity(t *testing.T) {
	c, err := hmeans.NewClustering([]int{0, 0, 0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := hmeans.AnalyzeDiversity(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Clusters != 3 || d.Workloads != 5 || d.LargestClusterShare != 3.0/5 {
		t.Fatalf("diversity = %+v", d)
	}
	s, err := hmeans.ClusteringSensitivity(hmeans.Geometric, []float64{1, 1.1, 0.9, 5, 9}, c)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxAbsShift <= 0 || s.Evaluated == 0 {
		t.Fatalf("sensitivity = %+v", s)
	}
}

func TestFacadeInjectRedundancy(t *testing.T) {
	scores := []float64{2, 8}
	c, _ := hmeans.NewClustering([]int{0, 1})
	s2, c2, err := hmeans.InjectRedundancy(scores, c, 1, 2)
	if err != nil || len(s2) != 4 || c2.K != 2 {
		t.Fatalf("InjectRedundancy = %v, %v, %v", s2, c2, err)
	}
}
