package hmeans_test

import (
	"math"
	"strings"
	"testing"

	"hmeans"
	"hmeans/internal/dataio"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
)

// TestEndToEndCSVRoundTrip simulates the documented shell pipeline
// (benchsim -emit sar | hmeans -chars …) in-process: the simulated
// substrate emits CSVs, dataio reads them back, and the public facade
// scores the suite.
func TestEndToEndCSVRoundTrip(t *testing.T) {
	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	ref := simbench.Reference()

	// benchsim -emit speedups -machine A
	speedups, err := simbench.MeasuredSpeedups(ws, simbench.MachineA(), ref, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	var scoreCSV strings.Builder
	if err := dataio.WriteScores(&scoreCSV, dataio.Scores{
		Workloads: simbench.WorkloadNames(ws), Values: speedups,
	}); err != nil {
		t.Fatal(err)
	}

	// benchsim -emit sar -machine A
	sar, err := simbench.SARTable(ws, simbench.MachineA(), simbench.SARSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var charCSV strings.Builder
	if err := dataio.WriteMatrix(&charCSV, dataio.Matrix{
		Workloads: sar.Workloads, Features: sar.Features, Rows: sar.Rows,
	}); err != nil {
		t.Fatal(err)
	}

	// hmeans -scores … -chars …
	scores, err := dataio.ReadScores(strings.NewReader(scoreCSV.String()))
	if err != nil {
		t.Fatal(err)
	}
	matrix, err := dataio.ReadMatrix(strings.NewReader(charCSV.String()))
	if err != nil {
		t.Fatal(err)
	}
	table, err := hmeans.NewTable(matrix.Workloads, matrix.Features, matrix.Rows)
	if err != nil {
		t.Fatal(err)
	}
	p, err := hmeans.DetectClusters(table, hmeans.PipelineConfig{SOM: som.Config{Seed: 2007}})
	if err != nil {
		t.Fatal(err)
	}

	// Degeneracy through the full stack: HGM at k=n equals plain GM.
	plain, err := hmeans.PlainMean(hmeans.Geometric, scores.Values)
	if err != nil {
		t.Fatal(err)
	}
	atN, err := p.ScoreAtK(hmeans.Geometric, scores.Values, len(ws))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(atN-plain) > 1e-9 {
		t.Fatalf("k=n HGM %v != plain GM %v", atN, plain)
	}

	// And the headline behaviour: some moderate cut scores the suite
	// visibly above the plain GM (redundant SciMark cluster collapsed).
	improved := false
	for k := 3; k <= 7; k++ {
		h, err := p.ScoreAtK(hmeans.Geometric, scores.Values, k)
		if err != nil {
			t.Fatal(err)
		}
		if h > plain*1.05 {
			improved = true
		}
	}
	if !improved {
		t.Fatal("no cut moved the score away from the plain GM")
	}
}

// TestReferenceMapWorkflow exercises the publish-and-reuse workflow:
// a consortium trains the reference map once, publishes it, and a
// vendor places the workloads on the loaded copy, getting identical
// clusters.
func TestReferenceMapWorkflow(t *testing.T) {
	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	sar, err := simbench.SARTable(ws, simbench.MachineB(), simbench.SARSpec{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	p, err := hmeans.DetectClusters(sar, hmeans.PipelineConfig{SOM: som.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	var published strings.Builder
	if err := p.Map.Save(&published); err != nil {
		t.Fatal(err)
	}
	loaded, err := som.Load(strings.NewReader(published.String()))
	if err != nil {
		t.Fatal(err)
	}
	vectors := p.Prepared.Vectors()
	for i, v := range vectors {
		r1, c1 := p.Map.BMU(v)
		r2, c2 := loaded.BMU(v)
		if r1 != r2 || c1 != c2 {
			t.Fatalf("workload %d placed differently on the published map", i)
		}
	}
}

// TestConsistencyBetweenFacadeAndSubstrate guards the invariant that
// the plain GM computed through the facade matches the paper's value
// on the default measurement campaign.
func TestConsistencyBetweenFacadeAndSubstrate(t *testing.T) {
	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	ref := simbench.Reference()
	sa, err := simbench.MeasuredSpeedups(ws, simbench.MachineA(), ref, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := simbench.MeasuredSpeedups(ws, simbench.MachineB(), ref, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	gmA, err := hmeans.PlainMean(hmeans.Geometric, sa)
	if err != nil {
		t.Fatal(err)
	}
	gmB, err := hmeans.PlainMean(hmeans.Geometric, sb)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gmA-2.10) > 0.05 || math.Abs(gmB-1.94) > 0.05 {
		t.Fatalf("plain GMs (%v, %v) drifted from the paper's (2.10, 1.94)", gmA, gmB)
	}
}
