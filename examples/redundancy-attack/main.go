// Redundancy attack: demonstrates the paper's motivating threat —
// "workload redundancy renders the benchmark scores biased, making
// the score of a suite susceptible to malicious tweaks" — and the
// hierarchical means' defence.
//
// A vendor whose machine is unusually good at one workload lobbies
// the consortium to include more near-clones of it. Each clone drags
// the plain geometric mean toward the vendor's strength; the
// hierarchical geometric mean pins the clones inside one cluster and
// barely moves.
//
//	go run ./examples/redundancy-attack
package main

import (
	"fmt"
	"log"
	"os"

	"hmeans"
	"hmeans/internal/viz"
)

func main() {
	// A fair five-workload suite. The vendor's machine shines on
	// workload "vector" (speedup 6.0) and is mediocre elsewhere.
	names := []string{"compiler", "database", "webserver", "raytrace", "vector"}
	scores := []float64{1.8, 1.2, 1.5, 2.0, 6.0}
	clustering, err := hmeans.NewClustering([]int{0, 1, 2, 3, 4})
	if err != nil {
		log.Fatal(err)
	}
	victim := 4 // "vector" is the workload being cloned

	sweep, err := hmeans.RedundancySweep(hmeans.Geometric, scores, clustering, victim, 8)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("suite:", names)
	fmt.Printf("vendor's pet workload: %q (score %.1f vs suite median ~1.5)\n\n", names[victim], scores[victim])
	t := viz.NewTable("clones added", "plain GM", "hierarchical GM", "inflation")
	base := sweep[0]
	for _, imp := range sweep {
		if err := t.AddRowf(fmt.Sprintf("%d", imp.Copies), "%.3f",
			imp.Plain, imp.Hierarchical, imp.Plain/base.Plain); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	last := sweep[len(sweep)-1]
	fmt.Printf("\nAfter %d clones the plain GM inflated %.0f%%; the hierarchical GM moved %.2g%%.\n",
		last.Copies,
		100*(last.Plain/base.Plain-1),
		100*(last.Hierarchical/base.Hierarchical-1))
	fmt.Println("Clustering the clones with their original makes the attack free of payoff.")

	// The same defence also works for the arithmetic and harmonic
	// families, whichever the suite's charter mandates.
	for _, kind := range []hmeans.MeanKind{hmeans.Arithmetic, hmeans.Harmonic} {
		s, err := hmeans.RedundancySweep(kind, scores, clustering, victim, 8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v mean: plain %.3f -> %.3f, hierarchical stays %.3f\n",
			kind, s[0].Plain, s[len(s)-1].Plain, s[len(s)-1].Hierarchical)
	}
}
