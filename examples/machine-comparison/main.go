// Machine comparison: the paper's full case study as a program.
//
// Two machines run the hypothetical SPECjvm2007-like suite (five
// SPECjvm98 workloads, five SciMark2 kernels, three DaCapo
// programs). The plain geometric mean says machine A beats machine B
// by 8% — but the five SciMark2 kernels are redundant with each
// other, and they happen to be the workloads where A has no
// advantage, so the plain mean understates A. The pipeline detects
// the redundancy from OS-level counters and the hierarchical
// geometric mean corrects for it.
//
//	go run ./examples/machine-comparison
package main

import (
	"fmt"
	"log"
	"os"

	"hmeans"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

func main() {
	// 1. Measure: 10 runs per workload per machine, averaged, scored
	//    as speedup over the reference machine (exactly the paper's
	//    Section IV-B protocol, on the simulated substrate).
	workloads, _, err := simbench.CalibratedSuite()
	if err != nil {
		log.Fatal(err)
	}
	ref := simbench.Reference()
	speedA, err := simbench.MeasuredSpeedups(workloads, simbench.MachineA(), ref, 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	speedB, err := simbench.MeasuredSpeedups(workloads, simbench.MachineB(), ref, 10, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Characterize: collect SAR counters on machine A, average the
	//    samples into one characteristic vector per workload.
	table, err := simbench.SARTable(workloads, simbench.MachineA(), simbench.SARSpec{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Detect clusters: preprocessing → SOM → complete-linkage
	//    hierarchical clustering of the map positions.
	pipeline, err := hmeans.DetectClusters(table, hmeans.PipelineConfig{
		SOM: som.Config{Seed: 2007},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Workload distribution on the SOM (machine A, SAR counters):")
	if err := viz.SOMMap(os.Stdout, pipeline.Map, pipeline.Workloads, pipeline.Prepared.Vectors()); err != nil {
		log.Fatal(err)
	}

	// 4. Score: hierarchical geometric mean across cluster counts.
	plainA, _ := hmeans.PlainMean(hmeans.Geometric, speedA)
	plainB, _ := hmeans.PlainMean(hmeans.Geometric, speedB)
	fmt.Printf("\nplain GM:  A=%.2f  B=%.2f  ratio=%.2f\n\n", plainA, plainB, plainA/plainB)

	t := viz.NewTable("clusters", "A", "B", "ratio")
	for k := 2; k <= 8; k++ {
		hgmA, err := pipeline.ScoreAtK(hmeans.Geometric, speedA, k)
		if err != nil {
			log.Fatal(err)
		}
		hgmB, err := pipeline.ScoreAtK(hmeans.Geometric, speedB, k)
		if err != nil {
			log.Fatal(err)
		}
		if err := t.AddRowf(fmt.Sprintf("%d", k), "%.2f", hgmA, hgmB, hgmA/hgmB); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 5. Inspect a recommended cut.
	members, err := pipeline.ClusterMembers(5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclusters at k=5:")
	for label, ms := range members {
		fmt.Printf("  %d: %v\n", label, ms)
	}
}
