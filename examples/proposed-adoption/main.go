// Proposed adoption: the consortium decision the paper is really
// about, run BEFORE the merger instead of after. Two candidate
// workloads are proposed for the next suite release: another
// self-contained numeric kernel, and a genuinely new streaming-media
// server workload. The pipeline quantifies what each would do to the
// suite's diversity — and therefore whether adopting it adds
// information or just redundancy.
//
//	go run ./examples/proposed-adoption
package main

import (
	"fmt"
	"log"

	"hmeans"
	"hmeans/internal/cluster"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
)

func main() {
	base, _, err := simbench.CalibratedSuite()
	if err != nil {
		log.Fatal(err)
	}

	// Candidate 1: yet another numeric kernel built on the same
	// self-contained math library as the five SciMark2 members.
	jacobi, err := simbench.NewWorkload("SciMark2.Jacobi", simbench.SciMark2, simbench.Demand{
		WorkGOps: 66, FPFraction: 0.88, WorkingSetKB: 90, FootprintMB: 5,
		MemIntensity: 0.42, AllocIntensity: 0.01, IOIntensity: 0.005,
		Parallelism: 1, CodeComplexity: 0.55, SyscallIntensity: 0.02,
	}, []string{"java.lang", "scimark.kernel", "scimark.sor"})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate 2: a streaming media server — network-heavy,
	// multi-threaded, moderate FP — behaviour the suite does not
	// have yet.
	streamer, err := simbench.NewWorkload("Media.streamd", simbench.DaCapo, simbench.Demand{
		WorkGOps: 70, FPFraction: 0.25, WorkingSetKB: 1400, FootprintMB: 180,
		MemIntensity: 0.7, AllocIntensity: 0.35, IOIntensity: 0.45,
		NetIntensity: 0.8, Parallelism: 2, CodeComplexity: 1.3, SyscallIntensity: 0.5,
	}, []string{"java.lang", "java.util", "java.io", "java.net", "dacapo.harness"})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Evaluating two proposed additions to the 13-workload suite")
	fmt.Println("(characterization: SAR counters on machine A; clustering at the recommended k)")
	fmt.Println()
	evaluate(base, "base suite (13 workloads)")
	for _, candidate := range []simbench.Workload{jacobi, streamer} {
		extended, err := simbench.ExtendSuite(base, candidate)
		if err != nil {
			log.Fatal(err)
		}
		evaluate(extended, "+ "+candidate.Name)
	}
}

// evaluate clusters a suite at its own natural cut (best silhouette)
// and prints the diversity summary; for an extended suite it renders
// the adoption verdict by where the newcomer landed.
func evaluate(ws []simbench.Workload, label string) {
	tab, err := simbench.SARTable(ws, simbench.MachineA(), simbench.SARSpec{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	p, err := hmeans.DetectClusters(tab, hmeans.PipelineConfig{SOM: som.Config{Seed: 2007}})
	if err != nil {
		log.Fatal(err)
	}
	// Cut each suite at its own geometrically natural cluster count
	// so before/after comparisons reflect structure, not a fixed k.
	sweep, err := p.Dendrogram.QualitySweep(p.Positions, 2, 9)
	if err != nil {
		log.Fatal(err)
	}
	k, err := cluster.RecommendK(sweep)
	if err != nil {
		log.Fatal(err)
	}
	c, err := p.ClusteringAtK(k)
	if err != nil {
		log.Fatal(err)
	}
	d, err := hmeans.AnalyzeDiversity(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s natural k=%d, effective clusters %.2f, redundancy %.0f%%, largest cluster %.0f%%\n",
		label, k, d.EffectiveClusters, 100*d.Redundancy, 100*d.LargestClusterShare)
	if len(ws) <= 13 {
		fmt.Println()
		return
	}
	// Adoption verdict: a candidate that joins an existing
	// multi-member cluster only deepens redundancy; one that stands
	// alone brings new behaviour.
	newcomer := ws[len(ws)-1].Name
	members, err := p.ClusterMembers(k)
	if err != nil {
		log.Fatal(err)
	}
	for _, ms := range members {
		for _, m := range ms {
			if m != newcomer {
				continue
			}
			fmt.Printf("    %s clusters with: %v\n", newcomer, ms)
			if len(ms) > 1 {
				fmt.Println("    verdict: MOSTLY REDUNDANT — inflates an existing cluster")
			} else {
				fmt.Println("    verdict: ADDS DIVERSITY — worth adopting")
			}
		}
	}
	fmt.Println()
}
