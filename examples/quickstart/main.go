// Quickstart: score a small benchmark suite with the hierarchical
// geometric mean and see how it differs from the plain geometric
// mean when two workloads are redundant.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hmeans"
)

func main() {
	// Per-workload speedups over a reference machine. The two
	// "numeric" workloads are near-clones of each other: both are
	// builds of the same math kernel, so together they double-count
	// one behaviour.
	workloads := []string{"compiler", "database", "numericFFT", "numericLU"}
	scores := []float64{3.2, 1.6, 0.9, 1.0}

	// Plain geometric mean: the conventional single-number score.
	plain, err := hmeans.PlainMean(hmeans.Geometric, scores)
	if err != nil {
		log.Fatal(err)
	}

	// Cluster the two redundant workloads together (labels are
	// per-workload cluster ids; here we know the clustering a
	// priori — see the machine-comparison example for detecting it).
	clustering, err := hmeans.NewClustering([]int{0, 1, 2, 2})
	if err != nil {
		log.Fatal(err)
	}
	hgm, err := hmeans.HGM(scores, clustering)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workloads:", workloads)
	fmt.Println("scores:   ", scores)
	fmt.Printf("plain geometric mean:        %.4f\n", plain)
	fmt.Printf("hierarchical geometric mean: %.4f\n", hgm)
	fmt.Println()
	fmt.Println("The HGM first collapses {numericFFT, numericLU} to one")
	fmt.Println("representative value, so the redundant pair counts once.")

	// The same score expressed as a weighted mean: the hierarchical
	// mean is exactly a weighted geometric mean whose weights come
	// from the clustering instead of committee negotiation.
	weights := hmeans.EquivalentWeights(clustering)
	fmt.Printf("equivalent objective weights: %.4v\n", weights)

	// Degeneracy check: with every workload in its own cluster the
	// HGM is the plain GM again.
	same, err := hmeans.HGM(scores, hmeans.Singletons(len(scores)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HGM with singleton clusters:  %.4f (= plain GM)\n", same)
}
