// Suite evaluation: use the clustering machinery to evaluate a NEW
// benchmark suite for redundancy before adopting it — the paper's
// second use case ("analyze the inherent redundancy and cluster
// characteristics in a quantitative manner for evaluating a new
// benchmark suite").
//
// The program merges the SPECjvm98-like workloads with the SciMark2
// kernels (the merger the paper worries about), characterizes every
// workload by its Java method utilization — a machine-independent
// view — and reports, per candidate cluster count: the cluster
// sizes, the silhouette quality, and which source suites coagulate.
//
//	go run ./examples/suite-evaluation
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"hmeans"
	"hmeans/internal/cluster"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/vecmath"
	"hmeans/internal/viz"
)

func main() {
	workloads, _, err := simbench.CalibratedSuite()
	if err != nil {
		log.Fatal(err)
	}

	// Architecture-independent characterization: method-usage bits.
	table, err := simbench.HprofTable(workloads)
	if err != nil {
		log.Fatal(err)
	}
	pipeline, err := hmeans.DetectClusters(table, hmeans.PipelineConfig{
		Kind: hmeans.Bits,
		SOM:  som.Config{Seed: 2007},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("characterization: %d methods observed, %d kept after filtering\n",
		len(table.Features), len(pipeline.Prepared.Features))
	fmt.Printf("(dropped %d single-user and %d universal methods)\n\n",
		len(pipeline.Report.DroppedSingleUser), len(pipeline.Report.DroppedUniversal))

	// Quantify redundancy per cut: silhouette (cluster quality) and
	// suite coagulation.
	dm := vecmath.DistanceMatrix(vecmath.Euclidean, pipeline.Positions)
	t := viz.NewTable("k", "silhouette", "cluster sizes", "single-suite clusters")
	for k := 2; k <= 8; k++ {
		a, err := pipeline.Dendrogram.CutK(k)
		if err != nil {
			log.Fatal(err)
		}
		sil, err := cluster.Silhouette(dm, a)
		if err != nil {
			log.Fatal(err)
		}
		sizes := a.Sizes()
		pure := 0
		for _, members := range a.Members() {
			suites := map[simbench.SourceSuite]bool{}
			for _, idx := range members {
				suites[workloads[idx].Suite] = true
			}
			if len(suites) == 1 && len(members) > 1 {
				pure++
			}
		}
		if err := t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", sil),
			strings.Trim(fmt.Sprint(sizes), "[]"),
			fmt.Sprintf("%d", pure)); err != nil {
			log.Fatal(err)
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The verdict the paper reaches: the SciMark2 adoption set forms
	// an exclusive cluster — its members are mutually redundant.
	fmt.Println("\ncluster membership at k=6:")
	members, err := pipeline.ClusterMembers(6)
	if err != nil {
		log.Fatal(err)
	}
	for label, ms := range members {
		fmt.Printf("  %d: %v\n", label, ms)
	}
	fmt.Println("\nA cluster that contains exactly one source suite's adoption")
	fmt.Println("set (here: all five SciMark2 kernels) is artificial")
	fmt.Println("redundancy: the merger injected five workloads that behave")
	fmt.Println("as one. Score with hierarchical means, or drop members.")

	// Quantitative verdict: effective diversity of the merged suite.
	if c, err := pipeline.ClusteringAtK(6); err == nil {
		if d, err := hmeans.AnalyzeDiversity(c); err == nil {
			fmt.Printf("\nsuite diversity at k=6: %.1f effective clusters for %d workloads "+
				"(redundancy %.0f%%, largest cluster holds %.0f%%)\n",
				d.EffectiveClusters, d.Workloads, 100*d.Redundancy, 100*d.LargestClusterShare)
		}
	}

	// Mechanized cluster-count recommendation: silhouette quality
	// with the paper's "ratio fluctuation dampens" tie-break.
	speedA, err := simbench.MeasuredSpeedups(workloads, simbench.MachineA(), simbench.Reference(), 10, 1)
	if err != nil {
		log.Fatal(err)
	}
	speedB, err := simbench.MeasuredSpeedups(workloads, simbench.MachineB(), simbench.Reference(), 10, 2)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := pipeline.RecommendK(hmeans.Geometric, speedA, speedB, 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecommended cluster count: k=%d\n", rec.K)

	// The alternative treatment: subset instead of reweight. One
	// representative (medoid) per cluster replaces the whole suite.
	subset, err := hmeans.SelectSubset(pipeline.Positions, mustClustering(pipeline, rec.K))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("subset (one representative per cluster):")
	for label, idx := range subset.Representatives {
		fmt.Printf("  cluster %d -> %s\n", label, workloads[idx].Name)
	}
	if e, err := hmeans.SubsetError(hmeans.Geometric, speedA, subset); err == nil {
		fmt.Printf("subset GM vs full-suite HGM on machine A: %.1f%% apart\n", 100*e)
	}
}

func mustClustering(p *hmeans.Pipeline, k int) hmeans.Clustering {
	c, err := p.ClusteringAtK(k)
	if err != nil {
		log.Fatal(err)
	}
	return c
}
