package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"tableIII", "tableIV", "fig3", "fig7", "ext-stability"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list missing %s", id)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "tableIII"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Geometric Mean") {
		t.Fatalf("tableIII output wrong:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "jvm98.222.mpegaudio") {
		t.Fatal("workload rows missing")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-run", "tableIX"}, &strings.Builder{})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(err.Error(), "available") {
		t.Fatalf("error %q does not list available IDs", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &strings.Builder{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
