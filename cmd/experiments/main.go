// Command experiments regenerates the paper's tables and figures from
// the simulated substrate.
//
//	experiments                  # everything, in paper order
//	experiments -run tableIV     # one artifact
//	experiments -list            # available artifact IDs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmeans/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runID   = fs.String("run", "", "experiment ID to run (empty = all)")
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		runs    = fs.Int("runs", 10, "executions averaged per measurement")
		somSeed = fs.Uint64("somseed", 2007, "SOM training seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	suite, err := experiments.NewSuite(experiments.Config{Runs: *runs, SOMSeed: *somSeed})
	if err != nil {
		return err
	}
	if *runID == "" {
		return experiments.RunAll(suite, stdout)
	}
	e, ok := experiments.ByID(*runID)
	if !ok {
		return fmt.Errorf("unknown experiment %q (available: %s)", *runID,
			strings.Join(experiments.IDs(), ", "))
	}
	fmt.Fprintf(stdout, "=== %s — %s ===\n", e.ID, e.Title)
	return e.Run(suite, stdout)
}
