// Command experiments regenerates the paper's tables and figures from
// the simulated substrate.
//
//	experiments                  # everything, in paper order
//	experiments -run tableIV     # one artifact
//	experiments -list            # available artifact IDs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmeans/internal/cliutil"
	"hmeans/internal/experiments"
	"hmeans/internal/obs"
)

func main() {
	os.Exit(cliutil.Run("experiments", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runID   = fs.String("run", "", "experiment ID to run (empty = all)")
		list    = fs.Bool("list", false, "list experiment IDs and exit")
		runs    = fs.Int("runs", 10, "executions averaged per measurement")
		somSeed = fs.Uint64("somseed", 2007, "SOM training seed")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "experiments") {
		return nil
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Title)
		}
		return nil
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	err = runExperiments(ctx, *runID, *runs, *somSeed, stdout)
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}

func runExperiments(ctx context.Context, runID string, runs int, somSeed uint64, stdout io.Writer) error {
	suite, err := experiments.NewSuite(experiments.Config{Runs: runs, SOMSeed: somSeed})
	if err != nil {
		return err
	}
	if runID == "" {
		return experiments.RunAllCtx(ctx, suite, stdout)
	}
	e, ok := experiments.ByID(runID)
	if !ok {
		return fmt.Errorf("unknown experiment %q (available: %s)", runID,
			strings.Join(experiments.IDs(), ", "))
	}
	fmt.Fprintf(stdout, "=== %s — %s ===\n", e.ID, e.Title)
	return e.Run(suite, stdout)
}
