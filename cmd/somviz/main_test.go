package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `workload,f1,f2,f3
alpha,9,1,0
beta,9.2,1.1,0.1
gamma,2,8,3
delta,1,9,4
epsilon,5,5,12
`

func TestRunFromStdin(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"SOM", "features after preprocessing",
		"quantization error", "Dendrogram", "Cluster membership",
		"alpha", "epsilon", "k=2:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chars.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-in", path, "-rows", "4", "-cols", "4"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SOM 4x4") {
		t.Fatalf("grid flags ignored:\n%s", out.String())
	}
}

func TestRunComponentPlane(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-plane", "f1"}, strings.NewReader(sampleCSV), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Component plane of f1") {
		t.Fatalf("plane missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "scale:") {
		t.Fatal("heatmap scale missing")
	}
	if err := run([]string{"-plane", "nosuch"}, strings.NewReader(sampleCSV), &strings.Builder{}); err == nil {
		t.Fatal("unknown plane feature accepted")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-in", "/no/such/file.csv"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-kind", "bogus"}, strings.NewReader(sampleCSV), &strings.Builder{}); err == nil {
		t.Error("bad kind accepted")
	}
	if err := run(nil, strings.NewReader("garbage"), &strings.Builder{}); err == nil {
		t.Error("garbage stdin accepted")
	}
	if err := run([]string{"-zzz"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("bad flag accepted")
	}
}
