// Command somviz trains a self-organizing map on a characterization
// CSV and prints the workload map, the dendrogram of the reduced
// positions, and the cluster memberships at each cut — the textual
// equivalents of the paper's Figures 3-8.
//
//	benchsim -emit sar -machine A | somviz
//	somviz -in counters.csv -kind counters -rows 6 -cols 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hmeans"
	"hmeans/internal/cliutil"
	"hmeans/internal/dataio"
	"hmeans/internal/obs"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

func main() {
	os.Exit(cliutil.Run("somviz", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdin, os.Stdout)
	}))
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("somviz", flag.ContinueOnError)
	var (
		inPath = fs.String("in", "", "characterization CSV (default stdin)")
		kind   = fs.String("kind", "counters", "characterization kind: counters or bits")
		rows   = fs.Int("rows", 0, "SOM grid rows (0 = size to sample count)")
		cols   = fs.Int("cols", 0, "SOM grid cols (0 = size to sample count)")
		seed   = fs.Uint64("seed", 2007, "SOM training seed")
		kMin   = fs.Int("kmin", 2, "smallest cut to list")
		kMax   = fs.Int("kmax", 8, "largest cut to list")
		plane  = fs.String("plane", "", "also render the component plane of this feature (name after preprocessing)")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "somviz") {
		return nil
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	// The body runs inside the observability session so the pipeline
	// reports into it via the process-default observer.
	err = func() error {
		in := stdin
		if *inPath != "" {
			f, err := os.Open(*inPath)
			if err != nil {
				return err
			}
			defer f.Close()
			in = f
		}
		m, err := dataio.ReadMatrix(in)
		if err != nil {
			return err
		}
		table, err := hmeans.NewTable(m.Workloads, m.Features, m.Rows)
		if err != nil {
			return err
		}
		var kindVal hmeans.CharKind
		switch *kind {
		case "counters":
			kindVal = hmeans.Counters
		case "bits":
			kindVal = hmeans.Bits
		default:
			return fmt.Errorf("unknown kind %q", *kind)
		}
		p, err := hmeans.DetectClustersCtx(ctx, table, hmeans.PipelineConfig{
			Kind: kindVal,
			SOM:  som.Config{Rows: *rows, Cols: *cols, Seed: *seed},
		})
		if err != nil {
			return err
		}

		fmt.Fprintf(stdout, "SOM %dx%d, %d features after preprocessing "+
			"(dropped: %d constant, %d single-user, %d universal)\n\n",
			p.Map.Rows(), p.Map.Cols(), len(p.Prepared.Features),
			len(p.Report.DroppedConstant), len(p.Report.DroppedSingleUser), len(p.Report.DroppedUniversal))

		vectors := p.Prepared.Vectors()
		if err := viz.SOMMap(stdout, p.Map, p.Workloads, vectors); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nquantization error: %.4f   topographic error: %.4f\n",
			p.Map.QuantizationError(vectors), p.Map.TopographicError(vectors))

		if *plane != "" {
			idx := -1
			for j, f := range p.Prepared.Features {
				if f == *plane {
					idx = j
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("feature %q not present after preprocessing (have %d features)", *plane, len(p.Prepared.Features))
			}
			values, err := p.Map.ComponentPlane(idx)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "\nComponent plane of %s (where on the map this feature is high):\n", *plane)
			if err := viz.Heatmap(stdout, values); err != nil {
				return err
			}
		}

		fmt.Fprintln(stdout, "\nU-matrix (bright ridges separate clusters):")
		if err := viz.Heatmap(stdout, p.Map.UMatrix()); err != nil {
			return err
		}

		fmt.Fprintln(stdout, "\nDendrogram of SOM positions (complete linkage):")
		if err := viz.Dendrogram(stdout, p.Dendrogram, p.Workloads); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nCluster membership by cut:")
		return viz.CutTable(stdout, p.Dendrogram, p.Workloads, *kMin, *kMax)
	}()
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}
