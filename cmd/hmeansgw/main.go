// Command hmeansgw fronts a fleet of hmeansd replicas with
// content-addressed routing.
//
//	hmeansgw -addr :8090 \
//	    -replica http://127.0.0.1:8080 -replica http://127.0.0.1:8081
//
// Endpoints:
//
//	POST /v1/score   route a score request over the replica ring
//	GET  /healthz    gateway liveness (200 even while draining)
//	GET  /readyz     quorum-aggregated replica readiness
//	GET  /ring       routing state: membership, arc shares, breakers
//	GET  /version    build description
//	GET  /metrics    gateway counters (routing, leases, failovers)
//
// Requests are routed by their SHA-256 content address over a
// consistent-hash ring, so identical requests land on the same replica
// and the fleet-wide cache behaves like one process's. Concurrent
// identical requests are coalesced across replicas by a TTL leader
// lease: one dispatch computes, everyone shares its bytes. A replica
// that fails, sheds or drains is a routing event — its circuit breaker
// opens, the ring walk fails over to the next candidate, and a
// half-open probe re-admits it when it recovers. Responses are served
// byte-identically to what the replica returned, digest-verified on
// both hops.
//
// The gateway shuts down cleanly on SIGINT/SIGTERM (and when -timeout
// elapses): /readyz flips to 503, new scoring requests are refused
// with 503 + Retry-After, and in-flight routing gets -drain.timeout to
// finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hmeans/internal/cliutil"
	"hmeans/internal/gateway"
	"hmeans/internal/obs"
)

func main() {
	os.Exit(cliutil.Run("hmeansgw", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

// replicaList collects repeated -replica flags.
type replicaList []string

func (r *replicaList) String() string { return fmt.Sprint([]string(*r)) }
func (r *replicaList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hmeansgw", flag.ContinueOnError)
	var replicas replicaList
	fs.Var(&replicas, "replica", "replica base URL (repeatable, e.g. http://127.0.0.1:8080)")
	var (
		addr       = fs.String("addr", "127.0.0.1:8090", "listen address (host:port; :0 picks a free port)")
		vnodes     = fs.Int("vnodes", gateway.DefaultVNodes, "virtual nodes per replica on the routing ring")
		leaseTTL   = fs.Duration("lease.ttl", 30*time.Second, "cross-replica singleflight lease TTL; followers take over past it")
		retries    = fs.Int("retries", 1, "per-replica dispatch retries before failing over")
		retryBase  = fs.Duration("retry.base", 50*time.Millisecond, "base backoff between per-replica retries")
		seed       = fs.Uint64("seed", 1, "seed for retry jitter streams")
		brThresh   = fs.Int("breaker.threshold", 3, "consecutive failures before a replica leaves rotation")
		brCooldown = fs.Duration("breaker.cooldown", 5*time.Second, "how long an open replica stays out before a half-open probe")
		quorum     = fs.Int("quorum", 0, "ready replicas required for gateway /readyz (0 = majority)")
		probeTO    = fs.Duration("probe.timeout", time.Second, "per-replica /readyz probe timeout")
		accessLog  = fs.String("access-log", "", "structured request log destination: a file path, or - for stderr (empty disables)")
		drainWait  = fs.Duration("drain.timeout", 5*time.Second, "how long in-flight requests may finish after a termination signal")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "hmeansgw") {
		return nil
	}
	if len(replicas) == 0 {
		return cliutil.Usagef("at least one -replica is required")
	}
	if err := cliutil.ValidateMin("-vnodes", *vnodes, 1); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-retries", *retries, 0); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-breaker.threshold", *brThresh, 1); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-quorum", *quorum, 0); err != nil {
		return err
	}
	if *quorum > len(replicas) {
		return cliutil.Usagef("-quorum %d exceeds the %d configured replicas", *quorum, len(replicas))
	}
	if *leaseTTL <= 0 {
		return cliutil.Usagef("-lease.ttl must be > 0, got %v", *leaseTTL)
	}
	if *drainWait <= 0 {
		return cliutil.Usagef("-drain.timeout must be > 0, got %v", *drainWait)
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	err = serve(ctx, serveArgs{
		addr:       *addr,
		replicas:   replicas,
		vnodes:     *vnodes,
		leaseTTL:   *leaseTTL,
		retries:    *retries,
		retryBase:  *retryBase,
		seed:       *seed,
		brThresh:   *brThresh,
		brCooldown: *brCooldown,
		quorum:     *quorum,
		probeTO:    *probeTO,
		accessLog:  *accessLog,
		drainWait:  *drainWait,
		obs:        sess.Obs,
	}, stdout)
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}

type serveArgs struct {
	addr       string
	replicas   []string
	vnodes     int
	leaseTTL   time.Duration
	retries    int
	retryBase  time.Duration
	seed       uint64
	brThresh   int
	brCooldown time.Duration
	quorum     int
	probeTO    time.Duration
	accessLog  string
	drainWait  time.Duration
	obs        *obs.Observer
}

// openAccessLog builds the slog JSON access logger for the -access-log
// flag: nil for "", stderr for "-", an append-mode file otherwise.
func openAccessLog(dest string) (*slog.Logger, func() error, error) {
	switch dest {
	case "":
		return nil, func() error { return nil }, nil
	case "-":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), func() error { return nil }, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening -access-log: %w", err)
	}
	return slog.New(slog.NewJSONHandler(f, nil)), f.Close, nil
}

// serve runs the gateway until ctx fires or a termination signal
// arrives; both are planned shutdowns, so it returns nil for them.
func serve(ctx context.Context, a serveArgs, stdout io.Writer) error {
	logger, closeLog, err := openAccessLog(a.accessLog)
	if err != nil {
		return err
	}
	defer closeLog()
	gw, err := gateway.New(gateway.Config{
		Replicas:         a.replicas,
		VNodes:           a.vnodes,
		LeaseTTL:         a.leaseTTL,
		Retries:          a.retries,
		RetryBase:        a.retryBase,
		Seed:             a.seed,
		BreakerThreshold: a.brThresh,
		BreakerCooldown:  a.brCooldown,
		Quorum:           a.quorum,
		ProbeTimeout:     a.probeTO,
		Obs:              a.obs,
		AccessLog:        logger,
	})
	if err != nil {
		return err
	}
	mux := gw.Handler()
	// One address to scrape, same as the replicas: /metrics carries the
	// routing and lease counters.
	obs.Or(a.obs).Register(mux)

	ln, err := net.Listen("tcp", a.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "hmeansgw %s listening on http://%s (%d replicas)\n",
		obs.Version(), ln.Addr(), len(a.replicas))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		return err
	case <-sigc:
	case <-ctx.Done():
	}
	gw.BeginDrain()
	sctx, cancel := context.WithTimeout(context.Background(), a.drainWait)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintf(stdout, "hmeansgw shut down\n")
	return nil
}
