package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hmeans/internal/cliutil"
	"hmeans/internal/service"
)

// exec runs the gateway through the same cliutil.Run wrapper main
// uses, returning the exit code and captured stderr.
func exec(t *testing.T, out *syncBuffer, args ...string) (code int, stderr string) {
	t.Helper()
	var errb strings.Builder
	code = cliutil.Run("hmeansgw", &errb, func() error { return run(args, out) })
	return code, errb.String()
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{}, // no replicas
		{"-replica", "http://x", "-vnodes", "0"},
		{"-replica", "http://x", "-retries", "-1"},
		{"-replica", "http://x", "-breaker.threshold", "0"},
		{"-replica", "http://x", "-quorum", "2"}, // above replica count
		{"-replica", "http://x", "-lease.ttl", "0s"},
		{"-replica", "http://x", "-drain.timeout", "0s"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var out syncBuffer
			code, stderr := exec(t, &out, args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, "usage") {
				t.Fatalf("no usage hint in %q", stderr)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	var out syncBuffer
	code, stderr := exec(t, &out, "-version")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(out.String(), "hmeansgw") {
		t.Fatalf("version output %q", out.String())
	}
}

var addrLine = regexp.MustCompile(`listening on (http://[\d.:]+)`)

func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never reported its address; stdout: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// scoreBody is the hmeansd main_test fixture: two separable blobs.
func scoreBody() string {
	var rows, workloads, scores []string
	for i := 0; i < 8; i++ {
		base := 1.0
		if i >= 4 {
			base = 9.0
		}
		workloads = append(workloads, fmt.Sprintf("%q", fmt.Sprintf("wl%d", i)))
		rows = append(rows, fmt.Sprintf("[%g,%g]", base+0.1*float64(i), base-0.1*float64(i)))
		scores = append(scores, fmt.Sprintf("%g", 1.0+0.5*float64(i)))
	}
	return fmt.Sprintf(`{"table":{"workloads":[%s],"features":["f1","f2"],"rows":[%s]},"scores":{"m":[%s]},"config":{"seed":7},"k":2}`,
		strings.Join(workloads, ","), strings.Join(rows, ","), strings.Join(scores, ","))
}

// TestServeEndToEnd boots two in-process replicas and the gateway
// binary's serve loop over them, scores through the gateway, checks
// the routed response is byte-identical to the home replica's direct
// answer, inspects /ring and /readyz, and verifies the planned
// -timeout shutdown exits 0.
func TestServeEndToEnd(t *testing.T) {
	var replicas []*httptest.Server
	for i := 0; i < 2; i++ {
		srv := service.New(service.Config{CacheSize: 8})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		replicas = append(replicas, ts)
	}

	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		code, stderr := exec(t, &out,
			"-addr", "127.0.0.1:0", "-timeout", "3s",
			"-replica", replicas[0].URL, "-replica", replicas[1].URL)
		if stderr != "" {
			t.Errorf("unexpected stderr: %s", stderr)
		}
		done <- code
	}()
	base := waitForAddr(t, &out)

	body := scoreBody()
	resp, err := http.Post(base+"/v1/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("score via gateway: %v", err)
	}
	viaGW, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway score status %d: %s", resp.StatusCode, viaGW)
	}
	home := resp.Header.Get("X-Hmeans-Replica")
	if home != replicas[0].URL && home != replicas[1].URL {
		t.Fatalf("X-Hmeans-Replica = %q, not a configured replica", home)
	}
	if err := service.VerifyDigest(resp.Header.Get(service.HeaderDigest), viaGW); err != nil {
		t.Fatalf("gateway digest: %v", err)
	}

	dresp, err := http.Post(home+"/v1/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("score direct: %v", err)
	}
	direct, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.Header.Get("X-Hmeans-Cache") != "hit" {
		t.Fatalf("direct follow-up cache %q, want hit (gateway warmed this replica)", dresp.Header.Get("X-Hmeans-Cache"))
	}
	if !bytes.Equal(viaGW, direct) {
		t.Fatal("gateway bytes differ from direct replica bytes")
	}

	for _, path := range []string{"/healthz", "/readyz", "/ring", "/metrics"} {
		r, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, r.StatusCode)
		}
	}

	if code := <-done; code != 0 {
		t.Fatalf("gateway exited %d after planned -timeout shutdown", code)
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("no shutdown line in %q", out.String())
	}
}
