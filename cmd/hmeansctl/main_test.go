package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"hmeans/internal/cliutil"
	"hmeans/internal/obs"
	"hmeans/internal/service"
)

func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = cliutil.Run("hmeansctl", &errb, func() error { return run(args, &out, &errb) })
	return code, out.String(), errb.String()
}

// startDaemon serves the real service handler on an httptest server.
func startDaemon(t *testing.T) string {
	t.Helper()
	o := obs.New()
	srv := service.New(service.Config{Obs: o, CacheSize: 8})
	mux := srv.Handler()
	o.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts.URL
}

// writeInputs writes a scores CSV and a characterization CSV for two
// separable blobs of four workloads each.
func writeInputs(t *testing.T) (scoresPath, charsPath string) {
	t.Helper()
	dir := t.TempDir()
	var scores, chars strings.Builder
	scores.WriteString("workload,score\n")
	chars.WriteString("workload,f1,f2,f3\n")
	for i := 0; i < 8; i++ {
		base := 1.0
		if i >= 4 {
			base = 9.0
		}
		name := fmt.Sprintf("wl%02d", i)
		fmt.Fprintf(&scores, "%s,%g\n", name, 1.0+0.5*float64(i))
		fmt.Fprintf(&chars, "%s,%g,%g,%g\n", name,
			base+0.1*float64(i), base-0.1*float64(i), base)
	}
	scoresPath = filepath.Join(dir, "speedups.csv")
	charsPath = filepath.Join(dir, "sar.csv")
	if err := os.WriteFile(scoresPath, []byte(scores.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(charsPath, []byte(chars.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return scoresPath, charsPath
}

func TestUsageErrors(t *testing.T) {
	t.Run("missing inputs", func(t *testing.T) {
		code, _, stderr := exec(t)
		if code != 2 || !strings.Contains(stderr, "-scores and -chars") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})
	t.Run("bad kind", func(t *testing.T) {
		scoresPath, charsPath := writeInputs(t)
		code, _, stderr := exec(t, "-scores", scoresPath, "-chars", charsPath, "-kind", "vibes")
		if code != 2 || !strings.Contains(stderr, "kind") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})
	t.Run("bad mean", func(t *testing.T) {
		base := startDaemon(t)
		scoresPath, charsPath := writeInputs(t)
		code, _, stderr := exec(t, "-addr", base, "-scores", scoresPath, "-chars", charsPath, "-mean", "nope")
		if code != 2 || !strings.Contains(stderr, "unknown mean") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})
}

func TestHealth(t *testing.T) {
	base := startDaemon(t)
	code, stdout, stderr := exec(t, "-addr", base, "-health")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "ok") {
		t.Fatalf("health output %q", stdout)
	}
}

func TestRenderFixedK(t *testing.T) {
	base := startDaemon(t)
	scoresPath, charsPath := writeInputs(t)
	code, stdout, stderr := exec(t, "-addr", base,
		"-scores", scoresPath, "-chars", charsPath, "-k", "2", "-v")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "hierarchical geometric mean (k=2): ") {
		t.Fatalf("missing hierarchical mean line in %q", stdout)
	}
	if !strings.Contains(stdout, "plain geometric mean:              ") {
		t.Fatalf("missing plain mean line in %q", stdout)
	}
	if !strings.Contains(stdout, "cluster 0: ") || !strings.Contains(stdout, "cluster 1: ") {
		t.Fatalf("missing cluster member lines in %q", stdout)
	}
	if !strings.Contains(stderr, "cache: miss") {
		t.Fatalf("-v cache status missing from stderr %q", stderr)
	}
}

func TestRenderSweep(t *testing.T) {
	base := startDaemon(t)
	scoresPath, charsPath := writeInputs(t)
	code, stdout, stderr := exec(t, "-addr", base,
		"-scores", scoresPath, "-chars", charsPath, "-mean", "harmonic")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"k", "hierarchical", "plain", "2", "8"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("sweep table missing %q:\n%s", want, stdout)
		}
	}
}

// TestJSONByteIdentity sends the same request twice; the second is a
// cache hit and the raw bytes must match exactly.
func TestJSONByteIdentity(t *testing.T) {
	base := startDaemon(t)
	scoresPath, charsPath := writeInputs(t)
	args := []string{"-addr", base, "-scores", scoresPath, "-chars", charsPath, "-json", "-v"}
	code, cold, stderr1 := exec(t, args...)
	if code != 0 {
		t.Fatalf("cold call: exit %d, stderr %q", code, stderr1)
	}
	code, hit, stderr2 := exec(t, args...)
	if code != 0 {
		t.Fatalf("hit call: exit %d, stderr %q", code, stderr2)
	}
	if !strings.Contains(stderr1, "cache: miss") || !strings.Contains(stderr2, "cache: hit") {
		t.Fatalf("cache statuses: %q then %q", stderr1, stderr2)
	}
	if cold != hit {
		t.Fatal("cache hit bytes differ from cold-path bytes")
	}
}

// TestRequestIDFlag checks the correlation contract from the client
// side: -v names the request before posting, a chosen -request-id is
// sent verbatim, and an omitted one is generated in the r- shape.
func TestRequestIDFlag(t *testing.T) {
	base := startDaemon(t)
	scoresPath, charsPath := writeInputs(t)
	code, _, stderr := exec(t, "-addr", base,
		"-scores", scoresPath, "-chars", charsPath, "-k", "2",
		"-request-id", "ctl-test-7", "-v")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "request: ctl-test-7\n") {
		t.Fatalf("-v did not report the chosen request id: %q", stderr)
	}

	code, _, stderr = exec(t, "-addr", base,
		"-scores", scoresPath, "-chars", charsPath, "-k", "2", "-v")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "request: r-") {
		t.Fatalf("-v did not report a generated request id: %q", stderr)
	}
}

// TestRemoteBadRequestExitsThree checks that a daemon-side 400 maps to
// the batch CLI's invalid-input exit code.
func TestRemoteBadRequestExitsThree(t *testing.T) {
	base := startDaemon(t)
	dir := t.TempDir()
	scoresPath := filepath.Join(dir, "speedups.csv")
	charsPath := filepath.Join(dir, "sar.csv")
	// A zero score is valid CSV but the service rejects it (geometric
	// and harmonic means need strictly positive scores).
	os.WriteFile(scoresPath, []byte("workload,score\nwl00,0\nwl01,2\n"), 0o644)
	os.WriteFile(charsPath, []byte("workload,f1\nwl00,1\nwl01,2\n"), 0o644)
	code, _, stderr := exec(t, "-addr", base, "-scores", scoresPath, "-chars", charsPath)
	if code != 3 {
		t.Fatalf("exit %d, want 3; stderr %q", code, stderr)
	}
	if !strings.Contains(stderr, "invalid input") {
		t.Fatalf("stderr %q lacks invalid-input marker", stderr)
	}
}

// TestUnreachableDaemon checks a connection failure exits with the
// transport code, distinct from internal errors and bad input.
func TestUnreachableDaemon(t *testing.T) {
	scoresPath, charsPath := writeInputs(t)
	code, _, stderr := exec(t, "-addr", "http://127.0.0.1:1",
		"-scores", scoresPath, "-chars", charsPath)
	if code != cliutil.ExitTransport {
		t.Fatalf("exit %d, want %d; stderr %q", code, cliutil.ExitTransport, stderr)
	}
	if !strings.Contains(stderr, "transport") {
		t.Fatalf("stderr %q lacks the transport marker", stderr)
	}
}

// TestStatusExitMapping pins the full HTTP status → exit code table:
// scripts branch on these, so a drift here is an interface break.
// 400 keeps the batch CLI's invalid-input code 3; 429 and 503 are
// "come back later" (4); server bugs and timeouts stay 1.
func TestStatusExitMapping(t *testing.T) {
	scoresPath, charsPath := writeInputs(t)
	cases := []struct {
		status int
		body   string
		exit   int
	}{
		{http.StatusBadRequest, `{"error":"score vector bad"}`, 3},
		{http.StatusTooManyRequests, `{"error":"overloaded"}`, cliutil.ExitUnavailable},
		{http.StatusServiceUnavailable, `{"error":"draining"}`, cliutil.ExitUnavailable},
		{http.StatusInternalServerError, `{"error":"panic"}`, 1},
		{http.StatusGatewayTimeout, `{"error":"deadline"}`, 1},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%d", tc.status), func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.status == http.StatusTooManyRequests || tc.status == http.StatusServiceUnavailable {
					w.Header().Set("Retry-After", service.RetryAfter)
				}
				w.WriteHeader(tc.status)
				io.WriteString(w, tc.body)
			}))
			defer ts.Close()
			code, _, stderr := exec(t, "-addr", ts.URL, "-scores", scoresPath, "-chars", charsPath)
			if code != tc.exit {
				t.Fatalf("status %d: exit %d, want %d; stderr %q", tc.status, code, tc.exit, stderr)
			}
		})
	}
}

// TestRetriesRecoverFromShed sheds the first two attempts with 429 +
// Retry-After and answers the third: with -retries the run must
// succeed, and without them it must exit 4.
func TestRetriesRecoverFromShed(t *testing.T) {
	scoresPath, charsPath := writeInputs(t)
	o := obs.New()
	srv := service.New(service.Config{Obs: o, CacheSize: 8})
	mux := srv.Handler()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // keep the test fast: jitter on 0s is 0
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":"overloaded"}`)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()

	code, _, stderr := exec(t, "-addr", ts.URL, "-scores", scoresPath, "-chars", charsPath,
		"-retries", "3", "-retry.base", "1ms", "-k", "2")
	if code != 0 {
		t.Fatalf("exit %d with retries, stderr %q", code, stderr)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("daemon saw %d calls, want 3 (two sheds + success)", got)
	}

	calls.Store(0)
	code, _, _ = exec(t, "-addr", ts.URL, "-scores", scoresPath, "-chars", charsPath)
	if code != cliutil.ExitUnavailable {
		t.Fatalf("exit %d without retries, want %d", code, cliutil.ExitUnavailable)
	}
}

// TestIntegrityMismatchIsTransport serves a valid-looking 200 whose
// digest does not match the body: the client must refuse it as a
// transport failure instead of rendering a corrupted score.
func TestIntegrityMismatchIsTransport(t *testing.T) {
	scoresPath, charsPath := writeInputs(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(service.HeaderDigest, service.Digest([]byte("what the server meant")))
		w.Header().Set("X-Hmeans-Cache", "miss")
		io.WriteString(w, `{"workloads":[]}`)
	}))
	defer ts.Close()
	code, _, stderr := exec(t, "-addr", ts.URL, "-scores", scoresPath, "-chars", charsPath)
	if code != cliutil.ExitTransport {
		t.Fatalf("exit %d, want %d; stderr %q", code, cliutil.ExitTransport, stderr)
	}
	if !strings.Contains(stderr, "integrity") {
		t.Fatalf("stderr %q does not name the integrity failure", stderr)
	}
}

// TestHedgeRescuesSlowRequest stalls the first attempt until the
// hedge has answered; the run must succeed via the hedge.
func TestHedgeRescuesSlowRequest(t *testing.T) {
	scoresPath, charsPath := writeInputs(t)
	o := obs.New()
	srv := service.New(service.Config{Obs: o, CacheSize: 8})
	mux := srv.Handler()
	var calls atomic.Int64
	stall := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// First attempt stalls until the hedge wins (its context
			// is cancelled) or the test tears down.
			select {
			case <-r.Context().Done():
			case <-stall:
			}
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer ts.Close()
	defer close(stall)
	code, stdout, stderr := exec(t, "-addr", ts.URL, "-scores", scoresPath, "-chars", charsPath,
		"-hedge", "20ms", "-k", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "hierarchical geometric mean") {
		t.Fatalf("hedged run produced no result: %q", stdout)
	}
	if got := calls.Load(); got < 2 {
		t.Fatalf("daemon saw %d calls, want the hedge to have fired", got)
	}
}
