// Command hmeansctl is the client for the hmeansd scoring service:
// it loads the same CSV inputs the batch hmeans CLI takes, sends them
// to a running daemon, and prints the result in the batch CLI's
// output format — so the two are directly diffable, which is exactly
// what the serve-smoke CI job does.
//
//	hmeansctl -addr http://127.0.0.1:8080 -scores speedups.csv -chars sar.csv -k 6
//	hmeansctl -addr http://127.0.0.1:8080 -health
//	hmeansctl -gateway http://127.0.0.1:8090 -scores speedups.csv -chars sar.csv -k 6
//
// -gateway targets an hmeansgw front tier instead of a single daemon;
// the protocol (and the bytes) are identical, and -v additionally
// reports which replica served the response and the routing role
// (X-Hmeans-Replica, X-Hmeans-Route).
//
// -json dumps the raw response bytes instead, byte-identical across
// cache hits and cold paths for identical inputs.
//
// Every request is sent with an X-Request-ID (-request-id, generated
// when omitted); -v prints it, and the daemon logs and traces the
// same ID, so one key correlates client output with server telemetry.
//
// Resilience: -retries retries transient failures (shed 429s,
// draining 503s, network errors, integrity failures) with seeded
// jittered backoff, honoring the server's Retry-After; -hedge races a
// second request when the first is slow. Response bodies are verified
// against the daemon's X-Hmeans-Digest header, so a corrupted byte
// stream is an error, never a silently wrong score.
//
// Exit codes: 0 ok, 1 internal/timeout, 2 usage, 3 invalid input
// (HTTP 400), 4 service unavailable (HTTP 429/503 after retries),
// 5 transport failure (network error or integrity mismatch).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"hmeans/internal/cliutil"
	"hmeans/internal/dataio"
	"hmeans/internal/obs"
	"hmeans/internal/resilience"
	"hmeans/internal/service"
	"hmeans/internal/viz"
)

func main() {
	os.Exit(cliutil.Run("hmeansctl", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout, os.Stderr)
	}))
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("hmeansctl", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "http://127.0.0.1:8080", "base URL of the hmeansd service")
		gatewayURL = fs.String("gateway", "", "base URL of an hmeansgw gateway to target instead of -addr")
		scoresPath = fs.String("scores", "", "CSV of workload,score")
		charsPath  = fs.String("chars", "", "CSV characterization matrix")
		kind       = fs.String("kind", "counters", "characterization kind: counters or bits")
		meanName   = fs.String("mean", "geometric", "mean family to print: geometric, arithmetic or harmonic")
		k          = fs.Int("k", 0, "cluster count to cut at (0: sweep 2..n)")
		seed       = fs.Uint64("seed", 2007, "SOM training seed")
		health     = fs.Bool("health", false, "check the daemon's /healthz and exit")
		rawJSON    = fs.Bool("json", false, "print the raw JSON response instead of the rendered result")
		verbose    = fs.Bool("v", false, "report the request ID and cache status (X-Request-ID, X-Hmeans-Cache) on stderr")
		requestID  = fs.String("request-id", "", "X-Request-ID to send for cross-process correlation (empty: generate one)")
		retries    = fs.Int("retries", 0, "retry transient failures (429/503, network errors) up to this many times")
		retryBase  = fs.Duration("retry.base", 100*time.Millisecond, "base backoff between retries (doubles per attempt, ±25% seeded jitter)")
		retrySeed  = fs.Uint64("retry.seed", 2007, "seed for the retry jitter (deterministic schedules for scripted runs)")
		hedge      = fs.Duration("hedge", 0, "race a second identical request if the first has not answered after this long (0 disables)")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "hmeansctl") {
		return nil
	}
	if err := cliutil.ValidateMin("-retries", *retries, 0); err != nil {
		return err
	}
	if *retryBase < 0 {
		return cliutil.Usagef("-retry.base must be >= 0, got %v", *retryBase)
	}
	if *hedge < 0 {
		return cliutil.Usagef("-hedge must be >= 0, got %v", *hedge)
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	// A gateway speaks the same protocol as a replica (same /v1/score,
	// same digests, byte-identical responses), so targeting one is just
	// a different base URL — plus routing headers that -v reports.
	base := strings.TrimSuffix(*addr, "/")
	if *gatewayURL != "" {
		base = strings.TrimSuffix(*gatewayURL, "/")
	}
	if *health {
		return checkHealth(ctx, base, stdout)
	}
	if *scoresPath == "" || *charsPath == "" {
		return cliutil.Usagef("-scores and -chars are both required")
	}
	req, err := buildRequest(*scoresPath, *charsPath, *kind, *seed, *k)
	if err != nil {
		return err
	}
	// The correlation ID is decided client-side (or generated here) so
	// it is known even when the daemon never answers: the same ID then
	// names this request in the daemon's access log and trace.
	id := *requestID
	if id == "" {
		id = service.NewRequestID()
	}
	if *verbose {
		fmt.Fprintf(stderr, "request: %s\n", id)
	}
	rt := resilience.NewRetryer(resilience.Policy{
		MaxRetries: *retries,
		BaseDelay:  *retryBase,
		Jitter:     0.25,
	}, *retrySeed)
	var res postResult
	err = rt.Do(ctx, func(ctx context.Context) error {
		r, err := post(ctx, base+"/v1/score", id, req, *hedge)
		if err != nil {
			return err
		}
		res = r
		return nil
	}, retryable)
	if err != nil {
		return err
	}
	if *verbose {
		fmt.Fprintf(stderr, "cache: %s\n", res.cacheStatus)
		if res.replica != "" {
			fmt.Fprintf(stderr, "replica: %s (route %s)\n", res.replica, res.route)
		}
	}
	if *rawJSON {
		_, err := stdout.Write(res.raw)
		return err
	}
	var resp service.Response
	if err := json.Unmarshal(res.raw, &resp); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	return render(&resp, *meanName, *k, stdout)
}

func checkHealth(ctx context.Context, base string, stdout io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: %s", resp.Status)
	}
	_, err = io.Copy(stdout, resp.Body)
	return err
}

// buildRequest loads the CSVs and assembles the service request, with
// the characterization rows aligned to the score order the same way
// the batch CLI aligns them.
func buildRequest(scoresPath, charsPath, kind string, seed uint64, k int) (*service.Request, error) {
	sf, err := os.Open(scoresPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	scores, err := dataio.ReadScores(sf)
	if err != nil {
		return nil, err
	}
	cf, err := os.Open(charsPath)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	m, err := dataio.ReadMatrix(cf)
	if err != nil {
		return nil, err
	}
	rowOf := make(map[string][]float64, len(m.Workloads))
	for i, name := range m.Workloads {
		rowOf[name] = m.Rows[i]
	}
	rows := make([][]float64, len(scores.Workloads))
	for i, name := range scores.Workloads {
		row, ok := rowOf[name]
		if !ok {
			return nil, fmt.Errorf("workload %q has a score but no characterization row", name)
		}
		rows[i] = row
	}
	switch kind {
	case "counters", "bits":
	default:
		return nil, cliutil.Usagef("unknown characterization kind %q (want counters or bits)", kind)
	}
	return &service.Request{
		Table: service.TableJSON{
			Workloads: scores.Workloads,
			Features:  m.Features,
			Rows:      rows,
		},
		Scores: map[string][]float64{"scores": scores.Values},
		Config: service.ConfigJSON{Kind: kind, Seed: seed},
		K:      k,
	}, nil
}

// remoteError carries an error reported by the daemon. 400s mark
// invalid input, so hmeansctl exits with the same status 3 the batch
// CLI uses for bad data; 429 (shed) and 503 (draining) mark a service
// that will take the work later, so they exit 4 — distinct from both
// bad data and real failures.
type remoteError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *remoteError) Error() string { return fmt.Sprintf("%s (HTTP %d)", e.msg, e.status) }

// DataError implements cliutil's marker for invalid-input errors.
func (e *remoteError) DataError() bool { return e.status == http.StatusBadRequest }

// ExitCode implements cliutil.ExitCoder: 4 for "unavailable, retry
// later" statuses, the conventional 1 for everything else. (400 never
// reaches this — the DataError mapping to 3 wins first.)
func (e *remoteError) ExitCode() int {
	if e.status == http.StatusTooManyRequests || e.status == http.StatusServiceUnavailable {
		return cliutil.ExitUnavailable
	}
	return 1
}

// RetryAfter feeds the server's Retry-After hint to the retryer.
func (e *remoteError) RetryAfter() time.Duration { return e.retryAfter }

// transportError marks a network-level failure: the request may never
// have reached the daemon, or the response never cleanly arrived
// (connection errors, torn reads, integrity mismatches). Exit code 5.
type transportError struct{ err error }

func (e *transportError) Error() string { return fmt.Sprintf("transport: %v", e.err) }
func (e *transportError) Unwrap() error { return e.err }
func (e *transportError) ExitCode() int { return cliutil.ExitTransport }

// retryable says which failures a retry can plausibly fix: transport
// damage and "come back later" statuses. Invalid input and server
// bugs fail the same way every time — retrying them is noise.
func retryable(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	var re *remoteError
	if errors.As(err, &re) {
		switch re.status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable,
			http.StatusBadGateway, http.StatusGatewayTimeout:
			return true
		}
	}
	return false
}

type postResult struct {
	raw         []byte
	cacheStatus string
	// replica and route are set when the answer came through a gateway
	// (X-Hmeans-Replica / X-Hmeans-Route): which replica computed the
	// bytes, and whether this request led, followed or took over the
	// cross-replica singleflight lease.
	replica string
	route   string
}

// post sends the score request once (plus an optional hedge) and
// classifies every failure mode: network errors and integrity
// mismatches become transportError, non-200s become remoteError with
// the Retry-After hint attached, and a 200 body must match its
// X-Hmeans-Digest before it counts as an answer.
func post(ctx context.Context, url, requestID string, req *service.Request, hedge time.Duration) (postResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return postResult{}, err
	}
	return resilience.Hedged(ctx, hedge, func(ctx context.Context) (postResult, error) {
		return postOnce(ctx, url, requestID, body)
	})
}

func postOnce(ctx context.Context, url, requestID string, body []byte) (postResult, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return postResult{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(service.HeaderRequestID, requestID)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return postResult{}, ctx.Err()
		}
		return postResult{}, &transportError{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return postResult{}, ctx.Err()
		}
		return postResult{}, &transportError{err: err}
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(raw))
		var werr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &werr) == nil && werr.Error != "" {
			msg = werr.Error
		}
		re := &remoteError{status: resp.StatusCode, msg: msg}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			msg += " (retry after " + ra + "s)"
			re.msg = msg
			if sec, err := strconv.Atoi(ra); err == nil && sec > 0 {
				re.retryAfter = time.Duration(sec) * time.Second
			}
		}
		return postResult{}, re
	}
	if err := service.VerifyDigest(resp.Header.Get(service.HeaderDigest), raw); err != nil {
		return postResult{}, &transportError{err: err}
	}
	return postResult{
		raw:         raw,
		cacheStatus: resp.Header.Get("X-Hmeans-Cache"),
		replica:     resp.Header.Get("X-Hmeans-Replica"),
		route:       resp.Header.Get("X-Hmeans-Route"),
	}, nil
}

// render prints the response in the batch CLI's format: the same
// quarantine lines, the same mean lines for a fixed k (cluster
// members included), the same sweep table otherwise.
func render(resp *service.Response, meanName string, k int, stdout io.Writer) error {
	var h func(service.KMeans, service.PlainMeans) (float64, float64)
	switch meanName {
	case "geometric":
		h = func(m service.KMeans, p service.PlainMeans) (float64, float64) { return m.HGM, p.GM }
	case "arithmetic":
		h = func(m service.KMeans, p service.PlainMeans) (float64, float64) { return m.HAM, p.AM }
	case "harmonic":
		h = func(m service.KMeans, p service.PlainMeans) (float64, float64) { return m.HHM, p.HM }
	default:
		return cliutil.Usagef("unknown mean %q (want geometric, arithmetic or harmonic)", meanName)
	}
	if len(resp.Plain) != 1 {
		return fmt.Errorf("expected one score vector in response, got %d", len(resp.Plain))
	}
	pm := resp.Plain[0]
	for _, q := range resp.Quarantined {
		fmt.Fprintf(stdout, "quarantined %s: %s\n", q.Workload, q.Reason)
	}
	byK := make(map[int]service.KMeans, len(resp.Means))
	for _, m := range resp.Means {
		byK[m.K] = m
	}
	if k > 0 {
		m, ok := byK[k]
		if !ok {
			return fmt.Errorf("response has no means at k=%d", k)
		}
		hv, pv := h(m, pm)
		fmt.Fprintf(stdout, "hierarchical %s mean (k=%d): %.4f\n", meanName, k, hv)
		fmt.Fprintf(stdout, "plain %s mean:              %.4f\n", meanName, pv)
		for label, ms := range resp.Cut.Members {
			fmt.Fprintf(stdout, "cluster %d: %v\n", label, ms)
		}
		return nil
	}
	t := viz.NewTable("k", "hierarchical", "plain")
	for kk := 2; kk <= len(resp.Workloads); kk++ {
		m, ok := byK[kk]
		if !ok {
			continue
		}
		hv, pv := h(m, pm)
		if err := t.AddRowf(fmt.Sprintf("%d", kk), "%.4f", hv, pv); err != nil {
			return err
		}
	}
	return t.Render(stdout)
}
