// Command hmeansload drives a live hmeansd the way a fleet of
// clients would and reports the tail latencies that came back — the
// load side of the serving story, and the binary behind the CI
// load-SLO gate.
//
//	hmeansload -rps 50 -n 500 -dist pareto -mix hit=60,miss=30,invalid=10
//	hmeansload -addr http://127.0.0.1:8080 -mode closed -concurrency 16
//	hmeansload -scores speedups.csv -chars sar.csv -check slo.json -o load-report.json
//	hmeansload -input load-report.json -check slo.json
//
// With no -addr, hmeansload boots a self-managed daemon (the same
// service stack cmd/hmeansd serves) on an ephemeral loopback port and
// tears it down after the run, so a load run is hermetic: CI needs no
// externally provisioned service and cannot leak one. The -self.*
// flags size that daemon; their defaults match cmd/hmeansd's.
//
// The run is replayable: the arrival schedule and the payload mix are
// pure functions of -seed, so the same command line reproduces the
// same request sequence byte for byte — including the X-Request-ID
// each request is sent under (load-<seed>-<index>). The report names
// the slowest requests by those IDs, so a tail sample joins directly
// against the daemon's access log and JSONL trace
// (report -timings trace.jsonl -request load-7-000042).
// The report is versioned JSON
// (hmeans-load/1, via -o) plus a human table on stdout; -check gates
// the run against a committed SLO file (hmeans-slo/1) and exits
// non-zero on any breach — after writing the report, so the artifact
// survives a failed gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hmeans/internal/cliutil"
	"hmeans/internal/load"
	"hmeans/internal/obs"
	"hmeans/internal/service"
)

func main() {
	os.Exit(cliutil.Run("hmeansload", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hmeansload", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "", "base URL of a running hmeansd; empty boots a self-managed daemon for the run")
		mode       = fs.String("mode", "open", "loop discipline: open (fixed arrival schedule) or closed (workers that wait and honor Retry-After)")
		dist       = fs.String("dist", "constant", "arrival (open) / think-gap (closed) distribution: constant, uniform or pareto")
		rps        = fs.Float64("rps", 50, "target mean arrival rate; in closed mode 0 disables think time")
		n          = fs.Int("n", 200, "total request count")
		conc       = fs.Int("concurrency", 8, "closed-loop worker count (open loop ignores it)")
		seed       = fs.Uint64("seed", 2007, "run seed: same seed, same arrival schedule and payload sequence")
		mixFlag    = fs.String("mix", "hit=60,miss=30,invalid=10", "payload mix percentages (cache-hit replays, unique misses, invalid 400s)")
		maxRetries = fs.Int("max-retries", 3, "closed-loop retries per request (429s, transport errors) before counting it dropped")
		breakerThr = fs.Int("breaker.threshold", 0, "closed-loop shared circuit breaker: consecutive transport failures that open it (0 disables)")
		scoresPath = fs.String("scores", "", "CSV of workload,score for the base request (requires -chars)")
		charsPath  = fs.String("chars", "", "CSV characterization matrix for the base request (requires -scores)")
		kind       = fs.String("kind", "counters", "characterization kind for CSV base requests: counters or bits")
		workloads  = fs.Int("workloads", 13, "synthetic base request: workload count (used when no CSVs are given)")
		features   = fs.Int("features", 6, "synthetic base request: feature count")
		outPath    = fs.String("o", "", "write the versioned JSON report (hmeans-load/1) to this file")
		table      = fs.Bool("table", true, "print the human-readable summary table")
		checkPath  = fs.String("check", "", "SLO file (hmeans-slo/1) to gate on; any breach exits non-zero")
		inputPath  = fs.String("input", "", "re-check an existing report instead of running (requires -check)")
		selfInfl   = fs.Int("self.max-inflight", 0, "self-managed daemon: max concurrent computations (0 = CPU count)")
		selfQueue  = fs.Int("self.queue-depth", service.DefaultQueueDepth, "self-managed daemon: queued requests before shedding with 429")
		selfCache  = fs.Int("self.cache-size", 128, "self-managed daemon: content-addressed cache entries (0 disables)")
		selfRepl   = fs.Int("self.replicas", 1, "self-managed mode: boot this many replicas behind an in-process hmeansgw gateway (1 = single daemon, no gateway)")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "hmeansload") {
		return nil
	}

	if *inputPath != "" {
		// Re-check mode: no run, just re-gate a recorded report (e.g.
		// a CI artifact) against a possibly updated SLO.
		if *checkPath == "" {
			return cliutil.Usagef("-input needs -check: re-checking a report without an SLO does nothing")
		}
		rep, err := load.ReadReport(*inputPath)
		if err != nil {
			return err
		}
		return report(rep, *outPath, *table, *checkPath, stdout)
	}

	loopMode, err := load.ParseMode(*mode)
	if err != nil {
		return cliutil.Usagef("%v", err)
	}
	loopDist, err := load.ParseDist(*dist)
	if err != nil {
		return cliutil.Usagef("%v", err)
	}
	mix, err := load.ParseMix(*mixFlag)
	if err != nil {
		return cliutil.Usagef("%v", err)
	}
	if err := cliutil.ValidateMin("-n", *n, 1); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-max-retries", *maxRetries, 0); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-breaker.threshold", *breakerThr, 0); err != nil {
		return err
	}
	if loopMode == load.Open || *rps != 0 {
		if err := cliutil.ValidatePositiveFloat("-rps", *rps); err != nil {
			return err
		}
	}
	if loopMode == load.Closed {
		if err := cliutil.ValidateMin("-concurrency", *conc, 1); err != nil {
			return err
		}
	}
	if err := cliutil.ValidateMin("-self.max-inflight", *selfInfl, 0); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-self.queue-depth", *selfQueue, 0); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-self.cache-size", *selfCache, 0); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-self.replicas", *selfRepl, 1); err != nil {
		return err
	}
	if *addr != "" && *selfRepl > 1 {
		return cliutil.Usagef("-self.replicas only applies to self-managed mode (drop -addr)")
	}

	base, err := baseRequest(*scoresPath, *charsPath, *kind, *workloads, *features, *seed)
	if err != nil {
		return err
	}
	payloads, err := load.BuildPayloads(base, mix, *n, *seed)
	if err != nil {
		return err
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer sess.Close()
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()

	target := strings.TrimSuffix(*addr, "/")
	if target == "" {
		selfCfg := service.Config{
			MaxInflight: *selfInfl,
			QueueDepth:  *selfQueue,
			CacheSize:   *selfCache,
			Obs:         sess.Obs,
		}
		if *selfRepl > 1 {
			// Cluster mode: the load loop targets an in-process gateway
			// over N replicas, exercising routing, failover and the
			// cross-replica lease under the same schedule a single
			// daemon gets.
			c, err := load.StartCluster(*selfRepl, selfCfg)
			if err != nil {
				return err
			}
			defer func() {
				if cerr := c.Close(); cerr != nil {
					fmt.Fprintf(stdout, "self-managed cluster close: %v\n", cerr)
				}
			}()
			target = c.URL
			fmt.Fprintf(stdout, "self-managed hmeansgw on %s (%d replicas, max-inflight %d, queue-depth %d, cache %d)\n",
				target, *selfRepl, *selfInfl, *selfQueue, *selfCache)
		} else {
			d, err := load.StartDaemon(selfCfg)
			if err != nil {
				return err
			}
			defer func() {
				if cerr := d.Close(); cerr != nil {
					fmt.Fprintf(stdout, "self-managed daemon close: %v\n", cerr)
				}
			}()
			target = d.URL
			fmt.Fprintf(stdout, "self-managed hmeansd on %s (max-inflight %d, queue-depth %d, cache %d)\n",
				target, *selfInfl, *selfQueue, *selfCache)
		}
	}

	rep, err := load.Run(ctx, load.Config{
		BaseURL:          target,
		Mode:             loopMode,
		Dist:             loopDist,
		RPS:              *rps,
		Payloads:         payloads,
		Concurrency:      *conc,
		Seed:             *seed,
		MaxRetries:       *maxRetries,
		BreakerThreshold: *breakerThr,
		Obs:              sess.Obs,
	})
	if err != nil {
		return err
	}
	return report(rep, *outPath, *table, *checkPath, stdout)
}

// baseRequest picks the request every payload derives from: the CSV
// pair when given (the paper's real case study), the synthetic
// two-blob fixture otherwise (hermetic, no files needed).
func baseRequest(scoresPath, charsPath, kind string, workloads, features int, seed uint64) (*service.Request, error) {
	if (scoresPath == "") != (charsPath == "") {
		return nil, cliutil.Usagef("-scores and -chars must be given together")
	}
	if scoresPath != "" {
		return load.BaseRequestFromCSV(scoresPath, charsPath, kind, seed)
	}
	if err := cliutil.ValidateMin("-workloads", workloads, 4); err != nil {
		return nil, err
	}
	if err := cliutil.ValidateMin("-features", features, 1); err != nil {
		return nil, err
	}
	return load.SyntheticBaseRequest(workloads, features, seed), nil
}

// report emits the run's outputs in gate-friendly order: the JSON
// artifact first (so it exists even when the gate fails), the human
// table next, the SLO verdict last — a breach is the return value,
// which cliutil.Run maps to a non-zero exit.
func report(rep *load.Report, outPath string, table bool, checkPath string, stdout io.Writer) error {
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
	}
	if table {
		if err := rep.WriteTable(stdout); err != nil {
			return err
		}
	}
	if checkPath == "" {
		return nil
	}
	slo, err := load.ReadSLO(checkPath)
	if err != nil {
		return err
	}
	if err := rep.Check(slo); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "SLO ok: p99 %.1fms <= %.1fms, error rate %.4f <= %.4f\n",
		rep.LatencyMs.P99, slo.MaxP99Ms, rep.ErrorRate, slo.MaxErrorRate)
	return nil
}
