package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"hmeans/internal/cliutil"
	"hmeans/internal/load"
)

// exec runs the harness through the same cliutil.Run wrapper main
// uses, returning the exit code and the captured stdout/stderr.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = cliutil.Run("hmeansload", &errb, func() error { return run(args, &out) })
	return code, out.String(), errb.String()
}

// goConcurrency: see internal/load's run tests — on a 1-CPU CI box
// GOMAXPROCS=1 serializes client and daemon, and overload scenarios
// would never shed.
func goConcurrency(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(max(4, runtime.NumCPU()))
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func writeSLO(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "slo.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-mode", "laps"},
		{"-dist", "zipf"},
		{"-mix", "hit=50"},
		{"-n", "0"},
		{"-rps", "-3"},
		{"-rps", "0"}, // open mode needs a rate
		{"-mode", "closed", "-concurrency", "0"},
		{"-max-retries", "-1"},
		{"-scores", "only-one.csv"},
		{"-workloads", "2"},
		{"-features", "0"},
		{"-self.max-inflight", "-1"},
		{"-self.queue-depth", "-1"},
		{"-self.cache-size", "-1"},
		{"-input", "report.json"}, // -input without -check
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			code, _, stderr := exec(t, args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, "usage") {
				t.Fatalf("no usage hint in %q", stderr)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	code, stdout, stderr := exec(t, "-version")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(stdout, "hmeansload") {
		t.Fatalf("version output %q", stdout)
	}
}

// TestSelfManagedRunPassesSLO is the load gate end to end through the
// CLI: a self-managed daemon, a mixed open-loop run, a JSON artifact,
// a table, and a passing -check — exit 0.
func TestSelfManagedRunPassesSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("load run skipped in -short mode")
	}
	goConcurrency(t)
	slo := writeSLO(t, `{"schema":"hmeans-slo/1","max_p99_ms":30000,"max_error_rate":0.01}`)
	report := filepath.Join(t.TempDir(), "report.json")
	code, stdout, stderr := exec(t,
		"-n", "40", "-rps", "150", "-dist", "uniform", "-seed", "11",
		"-o", report, "-check", slo)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	for _, want := range []string{"self-managed hmeansd", "p50 / p95 / p99", "SLO ok"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout lacks %q:\n%s", want, stdout)
		}
	}
	rep, err := load.ReadReport(report)
	if err != nil {
		t.Fatalf("report artifact: %v", err)
	}
	if rep.Totals.Sent != 40 || rep.Totals.Errors != 0 {
		t.Fatalf("report totals %+v", rep.Totals)
	}
	// The echoed mix is the materialized draw, not the requested
	// percentages — at n=40 they differ; all three kinds must appear.
	for _, part := range []string{"hit=", "miss=", "invalid="} {
		if !strings.Contains(rep.Config.Mix, part) {
			t.Errorf("mix echo %q lacks %s", rep.Config.Mix, part)
		}
	}
}

// TestGateFailsAgainstUndersizedDaemon is the acceptance criterion:
// the exact same gate invocation, pointed at a deliberately
// undersized daemon (-self.max-inflight=1, no queue, no cache), must
// exit non-zero — and the report artifact must still be written so CI
// can upload the evidence.
func TestGateFailsAgainstUndersizedDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("load run skipped in -short mode")
	}
	goConcurrency(t)
	slo := writeSLO(t, `{"schema":"hmeans-slo/1","max_p99_ms":30000,"max_error_rate":0.01}`)
	report := filepath.Join(t.TempDir(), "report.json")
	code, stdout, stderr := exec(t,
		"-n", "60", "-rps", "200", "-mix", "hit=0,miss=100,invalid=0",
		"-workloads", "40", "-seed", "11",
		"-self.max-inflight", "1", "-self.queue-depth", "0", "-self.cache-size", "0",
		"-o", report, "-check", slo)
	if code == 0 {
		t.Fatalf("undersized daemon passed the gate\nstdout: %s", stdout)
	}
	if !strings.Contains(stderr, "SLO breach") || !strings.Contains(stderr, "error rate") {
		t.Fatalf("breach not named on stderr: %q", stderr)
	}
	rep, err := load.ReadReport(report)
	if err != nil {
		t.Fatalf("failed gate must still write the artifact: %v", err)
	}
	if rep.Totals.Shed == 0 {
		t.Fatalf("report shows no shed requests: %+v", rep.Totals)
	}
}

// TestRecheckExistingReport re-gates a recorded report without a run:
// one SLO passes it, a tightened one fails it.
func TestRecheckExistingReport(t *testing.T) {
	goConcurrency(t)
	report := filepath.Join(t.TempDir(), "report.json")
	code, stdout, stderr := exec(t, "-n", "20", "-rps", "200", "-seed", "3", "-o", report, "-table=false")
	if code != 0 {
		t.Fatalf("recording run failed: %d\n%s\n%s", code, stdout, stderr)
	}
	pass := writeSLO(t, `{"schema":"hmeans-slo/1","max_p99_ms":30000,"max_error_rate":0.01}`)
	if code, _, stderr := exec(t, "-input", report, "-check", pass); code != 0 {
		t.Fatalf("re-check of a healthy report failed: %d %s", code, stderr)
	}
	tight := writeSLO(t, `{"schema":"hmeans-slo/1","max_p99_ms":0.0001,"max_error_rate":0.01}`)
	code, _, stderr = exec(t, "-input", report, "-check", tight)
	if code == 0 {
		t.Fatal("re-check against an impossible p99 passed")
	}
	if !strings.Contains(stderr, "p99") {
		t.Fatalf("breach does not name p99: %q", stderr)
	}
}
