package main

import "testing"

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"A", "a", "B", "b", "reference", "ref"} {
		m, err := machineByName(name)
		if err != nil {
			t.Errorf("machineByName(%q): %v", name, err)
		}
		if m.ClockGHz <= 0 {
			t.Errorf("machineByName(%q) returned zero machine", name)
		}
	}
	if _, err := machineByName("C"); err == nil {
		t.Error("unknown machine accepted")
	}
}
