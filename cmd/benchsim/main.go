// Command benchsim runs the simulated benchmark suite (the paper's
// hypothetical SPECjvm2007-like suite on machines A, B and the
// reference) and emits the raw materials of the case study:
//
//	benchsim -emit speedups -machine A          # workload,score CSV
//	benchsim -emit sar      -machine B          # SAR characterization CSV
//	benchsim -emit methods                      # method-utilization bit CSV
//	benchsim -emit times    -machine reference  # per-run execution times
//
// The CSVs feed straight into the hmeans tool.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"hmeans/internal/cliutil"
	"hmeans/internal/dataio"
	"hmeans/internal/obs"
	"hmeans/internal/par"
	"hmeans/internal/rng"
	"hmeans/internal/simbench"
)

func main() {
	os.Exit(cliutil.Run("benchsim", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsim", flag.ContinueOnError)
	var (
		emit     = fs.String("emit", "speedups", "what to emit: speedups, sar, methods, times or manifest")
		machine  = fs.String("machine", "A", "machine: A, B or reference")
		runs     = fs.Int("runs", 10, "executions averaged per measurement")
		seed     = fs.Uint64("seed", 1, "measurement / sampling seed")
		suite    = fs.String("suite", "", "JSON suite manifest (default: the built-in calibrated suite)")
		parallel = fs.Int("parallel", 1, "worker count for -emit speedups (0 = all CPUs); values > 1 measure workloads concurrently on independent noise sub-streams, identical for every worker count")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "benchsim") {
		return nil
	}
	if err := cliutil.ValidateParallel(*parallel); err != nil {
		return err
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	err = emitOutput(ctx, *emit, *machine, *runs, *seed, *suite, *parallel, stdout)
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}

func emitOutput(ctx context.Context, emit, machine string, runs int, seed uint64, suite string, parallel int, stdout io.Writer) error {
	m, err := machineByName(machine)
	if err != nil {
		return err
	}
	var ws []simbench.Workload
	suiteName := "specjvm2007-sim"
	if suite != "" {
		f, err := os.Open(suite)
		if err != nil {
			return err
		}
		suiteName, ws, err = simbench.LoadSuite(f)
		f.Close()
		if err != nil {
			return err
		}
	} else if ws, _, err = simbench.CalibratedSuite(); err != nil {
		return err
	}

	workers := parallel
	if workers <= 0 {
		workers = par.Auto()
	}

	switch emit {
	case "speedups":
		// -parallel 1 keeps the historical single-stream measurement
		// campaign byte-for-byte; higher values switch to per-workload
		// sub-streams so the campaign can fan out without its output
		// depending on the worker count.
		var vals []float64
		var err error
		if workers > 1 {
			vals, err = simbench.MeasuredSpeedupsParallelCtx(ctx, ws, m, simbench.Reference(), runs, seed, workers)
		} else {
			vals, err = simbench.MeasuredSpeedupsCtx(ctx, ws, m, simbench.Reference(), runs, seed)
		}
		if err != nil {
			return err
		}
		return dataio.WriteScores(stdout, dataio.Scores{
			Workloads: simbench.WorkloadNames(ws),
			Values:    vals,
		})
	case "sar":
		tab, err := simbench.SARTable(ws, m, simbench.SARSpec{Seed: seed})
		if err != nil {
			return err
		}
		return dataio.WriteMatrix(stdout, dataio.Matrix{
			Workloads: tab.Workloads,
			Features:  tab.Features,
			Rows:      tab.Rows,
		})
	case "methods":
		tab, err := simbench.HprofTable(ws)
		if err != nil {
			return err
		}
		return dataio.WriteMatrix(stdout, dataio.Matrix{
			Workloads: tab.Workloads,
			Features:  tab.Features,
			Rows:      tab.Rows,
		})
	case "times":
		r := rng.New(seed)
		fmt.Fprintln(stdout, "workload,run,seconds")
		for i := range ws {
			for run := 1; run <= runs; run++ {
				res := simbench.Run(&ws[i], m, r)
				fmt.Fprintf(stdout, "%s,%d,%.4f\n", res.Workload, run, res.Seconds)
			}
		}
		return nil
	case "manifest":
		return simbench.SaveSuite(stdout, suiteName, ws)
	default:
		return fmt.Errorf("unknown -emit %q (want speedups, sar, methods, times or manifest)", emit)
	}
}

func machineByName(name string) (simbench.Machine, error) {
	switch name {
	case "A", "a":
		return simbench.MachineA(), nil
	case "B", "b":
		return simbench.MachineB(), nil
	case "reference", "ref":
		return simbench.Reference(), nil
	default:
		return simbench.Machine{}, fmt.Errorf("unknown machine %q (want A, B or reference)", name)
	}
}
