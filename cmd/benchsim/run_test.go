package main

import (
	"os"
	"strings"
	"testing"

	"hmeans/internal/dataio"
)

func TestRunEmitSpeedups(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-emit", "speedups", "-machine", "A"}, &out); err != nil {
		t.Fatal(err)
	}
	s, err := dataio.ReadScores(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 13 {
		t.Fatalf("emitted %d scores, want 13", len(s.Values))
	}
	for _, v := range s.Values {
		if v <= 0 || v > 10 {
			t.Fatalf("implausible speedup %v", v)
		}
	}
}

func TestRunEmitSAR(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-emit", "sar", "-machine", "B"}, &out); err != nil {
		t.Fatal(err)
	}
	m, err := dataio.ReadMatrix(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Workloads) != 13 || len(m.Features) < 150 {
		t.Fatalf("matrix shape %dx%d", len(m.Workloads), len(m.Features))
	}
}

func TestRunEmitMethods(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-emit", "methods"}, &out); err != nil {
		t.Fatal(err)
	}
	m, err := dataio.ReadMatrix(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range m.Rows {
		for _, v := range row {
			if v != 0 && v != 1 {
				t.Fatalf("non-bit value %v in methods matrix", v)
			}
		}
	}
}

func TestRunEmitTimes(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-emit", "times", "-runs", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+13*3 {
		t.Fatalf("times output has %d lines, want %d", len(lines), 1+13*3)
	}
	if lines[0] != "workload,run,seconds" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestRunManifestRoundTrip(t *testing.T) {
	// Export the built-in suite, then drive measurements from the
	// exported manifest; the results must match the built-in run.
	var manifest strings.Builder
	if err := run([]string{"-emit", "manifest"}, &manifest); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/suite.json"
	if err := writeFile(t, path, manifest.String()); err != nil {
		t.Fatal(err)
	}
	var builtin, custom strings.Builder
	if err := run([]string{"-emit", "speedups", "-seed", "9"}, &builtin); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-emit", "speedups", "-seed", "9", "-suite", path}, &custom); err != nil {
		t.Fatal(err)
	}
	if builtin.String() != custom.String() {
		t.Fatal("manifest-driven run differs from the built-in suite")
	}
}

func writeFile(t *testing.T, path, content string) error {
	t.Helper()
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-emit", "nonsense"},
		{"-machine", "Z"},
		{"-badflag"},
		{"-suite", "/no/such/manifest.json"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
