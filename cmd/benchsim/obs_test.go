package main

import (
	"errors"
	"strings"
	"testing"

	"hmeans/internal/cliutil"
)

func TestRunRejectsNegativeParallel(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-emit", "speedups", "-parallel", "-1"}, &out)
	var ue *cliutil.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UsageError", err)
	}
}

func TestRunVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "benchsim ") {
		t.Fatalf("version output %q", out.String())
	}
}
