package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"hmeans/internal/cliutil"
)

func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = cliutil.Run("benchdiff", &errb, func() error { return run(args, &out) })
	return code, out.String(), errb.String()
}

const rawBench = `goos: linux
goarch: amd64
pkg: hmeans/internal/core
BenchmarkHGM-8        	  854745	      1404 ns/op	     312 B/op	      15 allocs/op
BenchmarkHGM-8        	  901522	      1382 ns/op	     320 B/op	      14 allocs/op
BenchmarkHGM-8        	  812001	      1456 ns/op	     312 B/op	      15 allocs/op
BenchmarkCutK/k=4-8   	   50000	     25011 ns/op
BenchmarkCutK/k=4-8   	   52000	     24830.5 ns/op
BenchmarkTrainBatchSuiteScale/n=128-8 	     100	  11650042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	hmeans/internal/core	12.3s
`

func TestParseBench(t *testing.T) {
	rec, err := ParseBench(strings.NewReader(rawBench))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Schema != Schema {
		t.Fatalf("schema %q", rec.Schema)
	}
	want := map[string]struct {
		ns      float64
		bytes   int64
		allocs  int64
		samples int
	}{
		"BenchmarkHGM":                        {1382, 312, 14, 3},
		"BenchmarkCutK/k=4":                   {24830.5, memUnset, memUnset, 2},
		"BenchmarkTrainBatchSuiteScale/n=128": {11650042, 0, 0, 1},
	}
	if len(rec.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %+v", len(rec.Benchmarks), len(want), rec.Benchmarks)
	}
	for i, b := range rec.Benchmarks {
		w, ok := want[b.Name]
		if !ok {
			t.Fatalf("unexpected benchmark %q", b.Name)
		}
		if b.NsPerOp != w.ns || b.Samples != w.samples {
			t.Errorf("%s: %v ns/op over %d samples, want %v over %d",
				b.Name, b.NsPerOp, b.Samples, w.ns, w.samples)
		}
		if b.BytesPerOp != w.bytes || b.AllocsPerOp != w.allocs {
			t.Errorf("%s: %d B/op %d allocs/op, want %d / %d",
				b.Name, b.BytesPerOp, b.AllocsPerOp, w.bytes, w.allocs)
		}
		if i > 0 && rec.Benchmarks[i-1].Name > b.Name {
			t.Error("benchmarks not sorted by name")
		}
	}
}

func TestParseBenchEmpty(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("PASS\nok\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

// mkRecord builds a record from (name, ns/op, allocs/op) triples;
// pass allocs memUnset for a benchmark without -benchmem columns.
func mkRecord(triples ...any) *Record {
	rec := &Record{Schema: Schema}
	for i := 0; i < len(triples); i += 3 {
		rec.Benchmarks = append(rec.Benchmarks, Benchmark{
			Name: triples[i].(string), NsPerOp: triples[i+1].(float64),
			BytesPerOp: memUnset, AllocsPerOp: int64(triples[i+2].(int)), Samples: 1,
		})
	}
	return rec
}

func TestCompare(t *testing.T) {
	base := mkRecord("BenchmarkA", 1000.0, 5, "BenchmarkB", 2000.0, memUnset, "BenchmarkGone", 10.0, 0)
	cur := mkRecord("BenchmarkA", 1100.0, 5, "BenchmarkB", 2500.0, memUnset, "BenchmarkNew", 1.0, 0)
	rows, regressed, allocRegressed, missing, unknown := Compare(base, cur, 20)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	// A is +10% (within budget), B is +25% (regressed), Gone is
	// missing, New has no baseline entry.
	if len(regressed) != 1 || regressed[0] != "BenchmarkB" {
		t.Fatalf("regressed = %v", regressed)
	}
	if len(allocRegressed) != 0 {
		t.Fatalf("allocRegressed = %v, want none", allocRegressed)
	}
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v", missing)
	}
	if len(unknown) != 1 || unknown[0] != "BenchmarkNew" {
		t.Fatalf("unknown = %v", unknown)
	}
}

func TestCompareAllocsExact(t *testing.T) {
	// A single extra allocation per op fails even when timing improved
	// and the ns/op budget would have allowed a regression.
	base := mkRecord("BenchmarkA", 1000.0, 0, "BenchmarkB", 1000.0, 7)
	cur := mkRecord("BenchmarkA", 900.0, 1, "BenchmarkB", 800.0, 7)
	_, regressed, allocRegressed, _, _ := Compare(base, cur, 20)
	if len(regressed) != 0 {
		t.Fatalf("regressed = %v, want none", regressed)
	}
	if len(allocRegressed) != 1 || allocRegressed[0] != "BenchmarkA" {
		t.Fatalf("allocRegressed = %v, want [BenchmarkA]", allocRegressed)
	}
	// Decreases are fine, and a side missing -benchmem data never gates.
	halfBlind := mkRecord("BenchmarkA", 1000.0, memUnset, "BenchmarkB", 1000.0, 3)
	_, _, allocRegressed, _, _ = Compare(base, halfBlind, 20)
	if len(allocRegressed) != 0 {
		t.Fatalf("allocRegressed = %v, want none", allocRegressed)
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	raw := filepath.Join(dir, "bench-raw.txt")
	if err := os.WriteFile(raw, []byte(rawBench), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, "BENCH_PR.json")
	code, stdout, stderr := exec(t, "-parse", raw, "-o", cur)
	if code != 0 {
		t.Fatalf("parse: exit %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "parsed 3 benchmarks") {
		t.Fatalf("parse output %q", stdout)
	}

	t.Run("identical records pass", func(t *testing.T) {
		code, stdout, stderr := exec(t, "-baseline", cur, "-current", cur)
		if code != 0 {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
		if !strings.Contains(stdout, "ok: 3 benchmarks within 20% of baseline") {
			t.Fatalf("output %q", stdout)
		}
	})

	t.Run("regression fails", func(t *testing.T) {
		// Baseline claims HGM used to take 1 ns/op: it is a massive
		// regression in the current record.
		baseline := filepath.Join(dir, "BENCH_BASELINE.json")
		writeRecord(t, baseline, mkRecord("BenchmarkHGM", 1.0, 14,
			"BenchmarkCutK/k=4", 25000.0, memUnset,
			"BenchmarkTrainBatchSuiteScale/n=128", 11650042.0, 0))
		code, _, stderr := exec(t, "-baseline", baseline, "-current", cur)
		if code != 1 || !strings.Contains(stderr, "regressed") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})

	t.Run("alloc regression fails", func(t *testing.T) {
		// Timing budget is generous, but the parsed HGM record shows 14
		// allocs/op against a baseline of 13 — the exact gate trips.
		baseline := filepath.Join(dir, "BENCH_ALLOC.json")
		writeRecord(t, baseline, mkRecord("BenchmarkHGM", 1400.0, 13,
			"BenchmarkCutK/k=4", 25000.0, memUnset,
			"BenchmarkTrainBatchSuiteScale/n=128", 11650042.0, 0))
		code, _, stderr := exec(t, "-baseline", baseline, "-current", cur, "-max-regress", "500")
		if code != 1 || !strings.Contains(stderr, "allocs/op") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})

	t.Run("missing baseline benchmark fails", func(t *testing.T) {
		baseline := filepath.Join(dir, "BENCH_MISSING.json")
		writeRecord(t, baseline, mkRecord("BenchmarkHGM", 1400.0, 14, "BenchmarkVanished", 1.0, 0))
		code, _, stderr := exec(t, "-baseline", baseline, "-current", cur)
		if code != 1 || !strings.Contains(stderr, "missing") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})

	t.Run("unknown current benchmark fails", func(t *testing.T) {
		// The parsed record has three benchmarks; a baseline knowing
		// only HGM must reject the other two as unbaselined.
		baseline := filepath.Join(dir, "BENCH_UNKNOWN.json")
		writeRecord(t, baseline, mkRecord("BenchmarkHGM", 1400.0, 14))
		code, _, stderr := exec(t, "-baseline", baseline, "-current", cur, "-max-regress", "500")
		if code != 1 || !strings.Contains(stderr, "no baseline entry") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})

	t.Run("bad schema rejected", func(t *testing.T) {
		bad := filepath.Join(dir, "bad.json")
		if err := os.WriteFile(bad, []byte(`{"schema":"hmeans-bench/1","benchmarks":[]}`), 0o644); err != nil {
			t.Fatal(err)
		}
		code, _, stderr := exec(t, "-baseline", bad, "-current", cur)
		if code != 1 || !strings.Contains(stderr, "schema") {
			t.Fatalf("exit %d, stderr %q", code, stderr)
		}
	})
}

func TestUsage(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-parse", "-", "-baseline", "x"},
		{"-baseline", "x", "-current", "y", "-max-regress", "0"},
	} {
		code, _, _ := exec(t, args...)
		if code != 2 {
			t.Fatalf("args %v: exit %d, want 2", args, code)
		}
	}
}

func writeRecord(t *testing.T, path string, rec *Record) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"schema":"` + rec.Schema + `","benchmarks":[`)
	for i, b := range rec.Benchmarks {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"name":"` + b.Name + `","ns_per_op":` + trimFloat(b.NsPerOp) +
			`,"bytes_per_op":` + strconv.FormatInt(b.BytesPerOp, 10) +
			`,"allocs_per_op":` + strconv.FormatInt(b.AllocsPerOp, 10) + `,"samples":1}`)
	}
	sb.WriteString("]}")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
