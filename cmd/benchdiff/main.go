// Command benchdiff turns `go test -bench` output into a comparable
// JSON record and gates benchmark regressions in CI.
//
// Parse mode — read raw bench output, keep the best sample per
// benchmark (min across -count repetitions, the standard way to
// reject scheduler noise), write JSON:
//
//	go test -bench '...' -benchmem -count 5 ./... | benchdiff -parse - -o BENCH_PR.json
//
// When the input was produced with -benchmem, each record also
// carries bytes_per_op and allocs_per_op.
//
// Compare mode — diff a current record against the committed
// baseline and fail (exit 1) when any shared benchmark regressed by
// more than -max-regress percent in ns/op, when allocs/op increased
// at all (alloc counts are deterministic, so the tolerance is zero),
// or when a baseline benchmark disappeared:
//
//	benchdiff -baseline BENCH_BASELINE.json -current BENCH_PR.json -max-regress 20
//
// To refresh the baseline after an intentional performance change,
// regenerate it with parse mode and commit the new file (see the
// README's "Benchmark regression gate" section).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"

	"hmeans/internal/cliutil"
	"hmeans/internal/viz"
)

// Record is the JSON schema benchdiff reads and writes.
type Record struct {
	// Schema names the format for forward compatibility.
	Schema string `json:"schema"`
	// Benchmarks is sorted by name; one entry per benchmark, the
	// minimum of each metric across samples.
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Schema is the current record format identifier. hmeans-bench/2
// added bytes_per_op and allocs_per_op; version-1 records must be
// regenerated (make bench-baseline) rather than silently upgraded,
// because the alloc gate needs real measurements to compare against.
const Schema = "hmeans-bench/2"

// memUnset marks a benchmark whose input lacked -benchmem columns.
const memUnset = -1

// Benchmark is one benchmark's best observed figures.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix
	// stripped, sub-benchmark path included.
	Name string `json:"name"`
	// NsPerOp is the minimum ns/op across samples.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is the minimum B/op across samples, or -1 when the
	// bench output carried no -benchmem columns.
	BytesPerOp int64 `json:"bytes_per_op"`
	// AllocsPerOp is the minimum allocs/op across samples, or -1 when
	// the bench output carried no -benchmem columns.
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Samples counts how many result lines contributed.
	Samples int `json:"samples"`
}

func main() {
	os.Exit(cliutil.Run("benchdiff", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		parse      = fs.String("parse", "", "parse raw `go test -bench` output from this file (- for stdin) into a JSON record")
		out        = fs.String("o", "", "output path for -parse (default stdout)")
		baseline   = fs.String("baseline", "", "baseline JSON record to compare against")
		current    = fs.String("current", "", "current JSON record to compare")
		maxRegress = fs.Float64("max-regress", 20, "fail when ns/op regresses by more than this percentage (allocs/op always gates at zero tolerance)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *parse != "" && (*baseline != "" || *current != ""):
		return cliutil.Usagef("-parse and -baseline/-current are mutually exclusive")
	case *parse != "":
		return runParse(*parse, *out, stdout)
	case *baseline != "" && *current != "":
		if *maxRegress <= 0 {
			return cliutil.Usagef("-max-regress must be > 0, got %v", *maxRegress)
		}
		return runCompare(*baseline, *current, *maxRegress, stdout)
	default:
		return cliutil.Usagef("need either -parse FILE or both -baseline and -current")
	}
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkHGM-8   	  854745	      1404 ns/op	     312 B/op	      15 allocs/op
//
// Capture 1 is the name without the trailing -GOMAXPROCS, capture 2
// the ns/op figure, captures 3 and 4 the optional -benchmem columns.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// ParseBench reads raw benchmark output and reduces it to a Record:
// the minimum of each metric per benchmark name across repeated
// samples, sorted by name so the encoding is deterministic.
func ParseBench(r io.Reader) (*Record, error) {
	best := make(map[string]*Benchmark)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op %q for %s", m[2], m[1])
		}
		bytesOp, allocsOp := int64(memUnset), int64(memUnset)
		if m[3] != "" {
			if bytesOp, err = strconv.ParseInt(m[3], 10, 64); err != nil {
				return nil, fmt.Errorf("bad B/op %q for %s", m[3], m[1])
			}
			if allocsOp, err = strconv.ParseInt(m[4], 10, 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op %q for %s", m[4], m[1])
			}
		}
		b, ok := best[m[1]]
		if !ok {
			best[m[1]] = &Benchmark{Name: m[1], NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocsOp, Samples: 1}
			continue
		}
		b.Samples++
		if ns < b.NsPerOp {
			b.NsPerOp = ns
		}
		b.BytesPerOp = minMem(b.BytesPerOp, bytesOp)
		b.AllocsPerOp = minMem(b.AllocsPerOp, allocsOp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(best) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	rec := &Record{Schema: Schema}
	for _, b := range best {
		rec.Benchmarks = append(rec.Benchmarks, *b)
	}
	sort.Slice(rec.Benchmarks, func(i, j int) bool { return rec.Benchmarks[i].Name < rec.Benchmarks[j].Name })
	return rec, nil
}

// minMem folds one -benchmem sample into the running minimum, where
// memUnset means "not reported" rather than a measured zero.
func minMem(a, b int64) int64 {
	switch {
	case a == memUnset:
		return b
	case b == memUnset:
		return a
	case b < a:
		return b
	default:
		return a
	}
}

func runParse(in, out string, stdout io.Writer) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rec, err := ParseBench(r)
	if err != nil {
		return err
	}
	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "parsed %d benchmarks\n", len(rec.Benchmarks))
	return nil
}

func loadRecord(path string) (*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rec Record
	if err := json.NewDecoder(f).Decode(&rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q (regenerate with `make bench-baseline`)", path, rec.Schema, Schema)
	}
	return &rec, nil
}

// Compare diffs current against baseline. It returns the rendered
// rows plus the names of regressed, missing and unknown benchmarks.
// The ns/op gate allows maxRegress percent of noise; the allocs/op
// gate is exact — allocation counts are deterministic, so any
// increase over the baseline is a real regression. A current
// benchmark absent from the baseline (unknown) also fails: a new
// benchmark only starts gating once the baseline records it, so
// landing one without refreshing BENCH_BASELINE.json would silently
// exempt it from the gate.
func Compare(baseline, current *Record, maxRegress float64) (rows [][4]string, regressed, allocRegressed, missing, unknown []string) {
	seen := make(map[string]bool, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		seen[b.Name] = true
	}
	for _, c := range current.Benchmarks {
		if !seen[c.Name] {
			unknown = append(unknown, c.Name)
		}
	}
	cur := make(map[string]Benchmark, len(current.Benchmarks))
	for _, b := range current.Benchmarks {
		cur[b.Name] = b
	}
	for _, base := range baseline.Benchmarks {
		c, ok := cur[base.Name]
		if !ok {
			missing = append(missing, base.Name)
			continue
		}
		deltaPct := (c.NsPerOp/base.NsPerOp - 1) * 100
		allocs := "n/a"
		if base.AllocsPerOp != memUnset && c.AllocsPerOp != memUnset {
			allocs = fmt.Sprintf("%d → %d", base.AllocsPerOp, c.AllocsPerOp)
			if c.AllocsPerOp > base.AllocsPerOp {
				allocRegressed = append(allocRegressed, base.Name)
			}
		}
		rows = append(rows, [4]string{base.Name,
			fmt.Sprintf("%.0f → %.0f ns/op", base.NsPerOp, c.NsPerOp),
			fmt.Sprintf("%+.1f%%", deltaPct),
			allocs})
		if deltaPct > maxRegress {
			regressed = append(regressed, base.Name)
		}
	}
	return rows, regressed, allocRegressed, missing, unknown
}

func runCompare(basePath, curPath string, maxRegress float64, stdout io.Writer) error {
	base, err := loadRecord(basePath)
	if err != nil {
		return err
	}
	cur, err := loadRecord(curPath)
	if err != nil {
		return err
	}
	rows, regressed, allocRegressed, missing, unknown := Compare(base, cur, maxRegress)
	t := viz.NewTable("benchmark", "ns/op", "delta", "allocs/op")
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3])
	}
	if err := t.Render(stdout); err != nil {
		return err
	}
	if len(missing) > 0 {
		return fmt.Errorf("%d baseline benchmark(s) missing from the current run (%v) — refresh BENCH_BASELINE.json if they were intentionally removed",
			len(missing), missing)
	}
	if len(unknown) > 0 {
		return fmt.Errorf("%d current benchmark(s) have no baseline entry (%v) — refresh BENCH_BASELINE.json so new benchmarks gate from day one",
			len(unknown), unknown)
	}
	if len(allocRegressed) > 0 {
		return fmt.Errorf("%d benchmark(s) increased allocs/op over the baseline (any increase fails — alloc counts are deterministic): %v",
			len(allocRegressed), allocRegressed)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% in ns/op: %v",
			len(regressed), maxRegress, regressed)
	}
	fmt.Fprintf(stdout, "ok: %d benchmarks within %.0f%% of baseline, no allocs/op increases\n", len(rows), maxRegress)
	return nil
}
