// Command hmeansd serves the hierarchical-means pipeline as a
// long-running HTTP scoring service.
//
//	hmeansd -addr :8080 -max-inflight 4 -queue-depth 64 -cache-size 128
//
// Endpoints:
//
//	POST /v1/score   characterization table + score vectors → full
//	                 pipeline result (SOM, dendrogram, recommended
//	                 cut, hierarchical means per k)
//	GET  /healthz    liveness (200 even while draining)
//	GET  /readyz     readiness (503 once shutdown begins)
//	GET  /version    build description
//	GET  /metrics    metrics registry snapshot (cache hit/miss/
//	                 coalesce counters, queue rejections, latency)
//	GET  /trace      live span stream (JSONL) when -obs.http-style
//	                 tracing is wanted on the service port
//	GET  /debug/...  expvar + net/http/pprof
//
// Identical requests are answered from a content-addressed cache (or
// coalesced onto one in-flight computation); the X-Hmeans-Cache
// response header says which path served each response. When the
// worker pool and its queue are both full the daemon sheds load with
// 429 + Retry-After instead of queueing without bound.
//
// Request telemetry: every request gets an X-Request-ID (the client's
// when valid, generated otherwise) that is echoed in the response,
// stamped on the request's trace span, and written to the structured
// access log enabled with -access-log (one slog JSON line per request
// including shed 429s and timed-out 504s). /metrics answers JSON by
// default and the Prometheus text exposition under Accept: text/plain
// or ?format=prometheus; -runtime-sample feeds goroutine/heap/GC-pause
// metrics into it periodically.
//
// Crash safety: -snapshot names a durable cache file (format
// hmeansd-snap/1). The daemon restores it on boot — warm-restart hits
// are byte-identical to the pre-restart responses, because the
// snapshot stores the served bytes themselves — writes it atomically
// on every graceful shutdown, and optionally on a -snapshot.interval
// ticker so even a crash loses at most one interval of cache warmth.
// Corrupt records are skipped and logged, never served.
//
// The daemon shuts down cleanly on SIGINT/SIGTERM (and when -timeout
// elapses): /readyz flips to 503, new scoring requests are refused
// with 503 + Retry-After, in-flight and queued requests get up to
// -drain.timeout to finish, then the snapshot is written and any
// -obs.trace file flushed on the way out.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hmeans/internal/cliutil"
	"hmeans/internal/cluster"
	"hmeans/internal/obs"
	"hmeans/internal/service"
)

func main() {
	os.Exit(cliutil.Run("hmeansd", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hmeansd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)")
		maxInflight = fs.Int("max-inflight", 0, "max concurrent pipeline computations (0 = CPU count)")
		queueDepth  = fs.Int("queue-depth", service.DefaultQueueDepth, "max requests queued for a computation slot before shedding with 429")
		cacheSize   = fs.Int("cache-size", 128, "content-addressed result cache entries (0 disables)")
		reqTimeout  = fs.Duration("request-timeout", 0, "per-request compute deadline (e.g. 30s); 0 = none")
		parallel    = fs.Int("parallel", 1, "worker count per pipeline run (0 = all CPUs); results are identical for every value")
		linkageAlgo = fs.String("linkage-algo", "auto", "agglomeration algorithm per pipeline run: auto, scan or nnchain (a deployment choice like -parallel; the clusters are the same either way)")
		accessLog   = fs.String("access-log", "", "structured request log destination: a file path, or - for stderr (empty disables)")
		sampleEvery = fs.Duration("runtime-sample", 5*time.Second, "runtime metrics sampling interval (goroutines, heap, GC pauses); 0 disables")
		snapshot    = fs.String("snapshot", "", "durable cache snapshot file: restored on boot, written on graceful shutdown (empty disables)")
		snapEvery   = fs.Duration("snapshot.interval", 0, "also write the snapshot periodically (0 = only on shutdown); requires -snapshot")
		drainWait   = fs.Duration("drain.timeout", 5*time.Second, "how long in-flight requests may finish after a termination signal")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "hmeansd") {
		return nil
	}
	if err := cliutil.ValidateParallel(*parallel); err != nil {
		return err
	}
	algo, err := cluster.ParseAlgorithm(*linkageAlgo)
	if err != nil {
		return cliutil.Usagef("-linkage-algo: %v", err)
	}
	if err := cliutil.ValidateMin("-max-inflight", *maxInflight, 0); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-queue-depth", *queueDepth, 0); err != nil {
		return err
	}
	if err := cliutil.ValidateMin("-cache-size", *cacheSize, 0); err != nil {
		return err
	}
	if *reqTimeout < 0 {
		return cliutil.Usagef("-request-timeout must be >= 0, got %v", *reqTimeout)
	}
	if *sampleEvery < 0 {
		return cliutil.Usagef("-runtime-sample must be >= 0, got %v", *sampleEvery)
	}
	if *snapEvery < 0 {
		return cliutil.Usagef("-snapshot.interval must be >= 0, got %v", *snapEvery)
	}
	if *snapEvery > 0 && *snapshot == "" {
		return cliutil.Usagef("-snapshot.interval requires -snapshot")
	}
	if *drainWait <= 0 {
		return cliutil.Usagef("-drain.timeout must be > 0, got %v", *drainWait)
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	err = serve(ctx, serveArgs{
		addr:        *addr,
		maxInflight: *maxInflight,
		queueDepth:  *queueDepth,
		cacheSize:   *cacheSize,
		reqTimeout:  *reqTimeout,
		parallel:    *parallel,
		linkageAlgo: algo,
		accessLog:   *accessLog,
		sampleEvery: *sampleEvery,
		snapshot:    *snapshot,
		snapEvery:   *snapEvery,
		drainWait:   *drainWait,
		obs:         sess.Obs,
	}, stdout)
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}

type serveArgs struct {
	addr        string
	maxInflight int
	queueDepth  int
	cacheSize   int
	reqTimeout  time.Duration
	parallel    int
	linkageAlgo cluster.Algorithm
	accessLog   string
	sampleEvery time.Duration
	snapshot    string
	snapEvery   time.Duration
	drainWait   time.Duration
	obs         *obs.Observer
}

// openAccessLog builds the slog JSON access logger for the -access-log
// flag: nil for "", stderr for "-", an append-mode file otherwise.
// The returned closer is a no-op unless a file was opened.
func openAccessLog(dest string) (*slog.Logger, func() error, error) {
	switch dest {
	case "":
		return nil, func() error { return nil }, nil
	case "-":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), func() error { return nil }, nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("opening -access-log: %w", err)
	}
	return slog.New(slog.NewJSONHandler(f, nil)), f.Close, nil
}

// serve runs the daemon until ctx fires or a termination signal
// arrives; both are planned shutdowns, so it returns nil for them.
func serve(ctx context.Context, a serveArgs, stdout io.Writer) error {
	logger, closeLog, err := openAccessLog(a.accessLog)
	if err != nil {
		return err
	}
	defer closeLog()
	srv := service.New(service.Config{
		MaxInflight:      a.maxInflight,
		QueueDepth:       a.queueDepth,
		CacheSize:        a.cacheSize,
		Timeout:          a.reqTimeout,
		Parallelism:      a.parallel,
		LinkageAlgorithm: a.linkageAlgo,
		Obs:              a.obs,
		AccessLog:        logger,
	})
	if a.snapshot != "" {
		st, err := srv.LoadSnapshot(a.snapshot, snapshotLogger(logger))
		if err != nil {
			if !errors.Is(err, service.ErrSnapshotFormat) {
				return err
			}
			// Not a snapshot at all: start cold rather than refuse to
			// boot — the file will be replaced on the next shutdown.
			fmt.Fprintf(stdout, "hmeansd ignoring %s: %v\n", a.snapshot, err)
		}
		if st.Restored > 0 || st.Skipped > 0 || st.Truncated {
			fmt.Fprintf(stdout, "hmeansd restored %d cached results from %s (skipped %d, truncated %v)\n",
				st.Restored, a.snapshot, st.Skipped, st.Truncated)
		}
	}
	mux := srv.Handler()
	// The observability endpoints share the service port: one address
	// to scrape, and /metrics carries the service counters.
	o := obs.Or(a.obs)
	o.Register(mux)
	// Runtime health (goroutines, heap, GC pauses) flows into the same
	// registry /metrics serves; the sampler is inert when obs is off.
	sampler := o.Metrics().StartRuntimeSampler(a.sampleEvery)
	defer sampler.Stop()

	ln, err := net.Listen("tcp", a.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(stdout, "hmeansd %s listening on http://%s\n", obs.Version(), ln.Addr())

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	// Periodic snapshots bound the cache warmth a crash can lose to
	// one interval; each write is atomic, so a crash mid-write leaves
	// the previous snapshot intact.
	tickDone := make(chan struct{})
	tickStopped := make(chan struct{})
	if a.snapshot != "" && a.snapEvery > 0 {
		ticker := time.NewTicker(a.snapEvery)
		go func() {
			defer close(tickStopped)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					if _, err := srv.SaveSnapshot(a.snapshot); err != nil {
						fmt.Fprintf(os.Stderr, "hmeansd: periodic snapshot: %v\n", err)
					}
				case <-tickDone:
					return
				}
			}
		}()
	} else {
		close(tickStopped)
	}

	select {
	case err := <-errc:
		close(tickDone)
		return err
	case <-sigc:
	case <-ctx.Done():
	}
	// Planned shutdown: stop advertising readiness and refuse new
	// scoring work immediately, give everything already admitted the
	// -drain.timeout budget to finish, then persist the cache. The
	// -timeout deadline is an operator request here, not a failure, so
	// it maps to exit 0.
	srv.BeginDrain()
	drainWait := a.drainWait
	if drainWait <= 0 {
		drainWait = 5 * time.Second
	}
	sctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		close(tickDone)
		return err
	}
	// The periodic writer must be fully stopped before the final save:
	// a tick racing the shutdown write could rename an older snapshot
	// over the complete one.
	close(tickDone)
	<-tickStopped
	if a.snapshot != "" {
		n, err := srv.SaveSnapshot(a.snapshot)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hmeansd wrote snapshot (%d records) to %s\n", n, a.snapshot)
	}
	fmt.Fprintf(stdout, "hmeansd shut down (%d cached results)\n", srv.CacheLen())
	return nil
}

// snapshotLogger picks where snapshot restore warnings (skipped
// records, truncation) go: the access log when one is configured,
// stderr otherwise — corruption must be visible even on the dark
// path.
func snapshotLogger(accessLog *slog.Logger) *slog.Logger {
	if accessLog != nil {
		return accessLog
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, nil))
}
