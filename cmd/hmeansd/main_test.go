package main

import (
	"bytes"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hmeans/internal/cliutil"
)

// exec runs the daemon through the same cliutil.Run wrapper main
// uses, returning the exit code and captured stdout/stderr.
func exec(t *testing.T, out *syncBuffer, args ...string) (code int, stderr string) {
	t.Helper()
	var errb strings.Builder
	code = cliutil.Run("hmeansd", &errb, func() error { return run(args, out) })
	return code, errb.String()
}

// syncBuffer lets the test read the daemon's stdout while the serve
// goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-max-inflight", "-1"},
		{"-queue-depth", "-1"},
		{"-cache-size", "-1"},
		{"-parallel", "-2"},
		{"-request-timeout", "-1s"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var out syncBuffer
			code, stderr := exec(t, &out, args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, "usage") {
				t.Fatalf("no usage hint in %q", stderr)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	var out syncBuffer
	code, stderr := exec(t, &out, "-version")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(out.String(), "hmeansd") {
		t.Fatalf("version output %q", out.String())
	}
}

var addrLine = regexp.MustCompile(`listening on (http://[\d.:]+)`)

// TestServeEndToEnd boots the daemon on an ephemeral port with a
// -timeout shutdown, scores a request over real HTTP, and checks the
// planned shutdown exits 0.
func TestServeEndToEnd(t *testing.T) {
	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		code, stderr := exec(t, &out,
			"-addr", "127.0.0.1:0", "-timeout", "3s", "-cache-size", "4")
		if stderr != "" {
			t.Errorf("unexpected stderr: %s", stderr)
		}
		done <- code
	}()

	base := waitForAddr(t, &out)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := scoreBody()
	r1 := postJSON(t, base+"/v1/score", body)
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Hmeans-Cache") != "miss" {
		t.Fatalf("first score: status %d cache %q", r1.StatusCode, r1.Header.Get("X-Hmeans-Cache"))
	}
	r2 := postJSON(t, base+"/v1/score", body)
	if r2.Header.Get("X-Hmeans-Cache") != "hit" {
		t.Fatalf("second score cache %q, want hit", r2.Header.Get("X-Hmeans-Cache"))
	}

	// The obs endpoints share the service port.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}

	if code := <-done; code != 0 {
		t.Fatalf("daemon exited %d after planned -timeout shutdown", code)
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("no shutdown line in %q", out.String())
	}
}

func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stdout: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}

// scoreBody is a minimal valid request: two separable blobs of four
// workloads each.
func scoreBody() string {
	var rows, workloads, scores []string
	for i := 0; i < 8; i++ {
		base := 1.0
		if i >= 4 {
			base = 9.0
		}
		workloads = append(workloads, fmt.Sprintf("%q", fmt.Sprintf("wl%d", i)))
		rows = append(rows, fmt.Sprintf("[%g,%g]", base+0.1*float64(i), base-0.1*float64(i)))
		scores = append(scores, fmt.Sprintf("%g", 1.0+0.5*float64(i)))
	}
	return fmt.Sprintf(`{"table":{"workloads":[%s],"features":["f1","f2"],"rows":[%s]},"scores":{"m":[%s]},"config":{"seed":7},"k":2}`,
		strings.Join(workloads, ","), strings.Join(rows, ","), strings.Join(scores, ","))
}
