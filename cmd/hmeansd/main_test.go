package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"hmeans/internal/cliutil"
	"hmeans/internal/obs"
	"hmeans/internal/service"
)

// exec runs the daemon through the same cliutil.Run wrapper main
// uses, returning the exit code and captured stdout/stderr.
func exec(t *testing.T, out *syncBuffer, args ...string) (code int, stderr string) {
	t.Helper()
	var errb strings.Builder
	code = cliutil.Run("hmeansd", &errb, func() error { return run(args, out) })
	return code, errb.String()
}

// syncBuffer lets the test read the daemon's stdout while the serve
// goroutine is still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-max-inflight", "-1"},
		{"-queue-depth", "-1"},
		{"-cache-size", "-1"},
		{"-parallel", "-2"},
		{"-request-timeout", "-1s"},
		{"-snapshot.interval", "-1s"},
		{"-snapshot.interval", "1s"}, // requires -snapshot
		{"-drain.timeout", "0s"},
		{"-linkage-algo", "fast"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			var out syncBuffer
			code, stderr := exec(t, &out, args...)
			if code != 2 {
				t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
			}
			if !strings.Contains(stderr, "usage") {
				t.Fatalf("no usage hint in %q", stderr)
			}
		})
	}
}

func TestVersionFlag(t *testing.T) {
	var out syncBuffer
	code, stderr := exec(t, &out, "-version")
	if code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr)
	}
	if !strings.Contains(out.String(), "hmeansd") {
		t.Fatalf("version output %q", out.String())
	}
}

var addrLine = regexp.MustCompile(`listening on (http://[\d.:]+)`)

// TestServeEndToEnd boots the daemon on an ephemeral port with a
// -timeout shutdown, scores a request over real HTTP, and checks the
// planned shutdown exits 0.
func TestServeEndToEnd(t *testing.T) {
	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		code, stderr := exec(t, &out,
			"-addr", "127.0.0.1:0", "-timeout", "3s", "-cache-size", "4")
		if stderr != "" {
			t.Errorf("unexpected stderr: %s", stderr)
		}
		done <- code
	}()

	base := waitForAddr(t, &out)
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := scoreBody()
	r1 := postJSON(t, base+"/v1/score", body)
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Hmeans-Cache") != "miss" {
		t.Fatalf("first score: status %d cache %q", r1.StatusCode, r1.Header.Get("X-Hmeans-Cache"))
	}
	r2 := postJSON(t, base+"/v1/score", body)
	if r2.Header.Get("X-Hmeans-Cache") != "hit" {
		t.Fatalf("second score cache %q, want hit", r2.Header.Get("X-Hmeans-Cache"))
	}

	// The obs endpoints share the service port.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", mresp.StatusCode)
	}

	if code := <-done; code != 0 {
		t.Fatalf("daemon exited %d after planned -timeout shutdown", code)
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("no shutdown line in %q", out.String())
	}
}

// TestServeRequestTelemetry boots the daemon with -access-log and a
// fast -runtime-sample, scores under a chosen X-Request-ID, and
// checks the whole telemetry story: the ID comes back in the
// response, the access log names it, and /metrics answers both JSON
// and valid Prometheus text with runtime gauges present.
func TestServeRequestTelemetry(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "access.log")
	tracePath := filepath.Join(dir, "trace.jsonl")
	var out syncBuffer
	done := make(chan int, 1)
	go func() {
		code, stderr := exec(t, &out,
			"-addr", "127.0.0.1:0", "-timeout", "3s", "-cache-size", "4",
			"-access-log", logPath, "-runtime-sample", "10ms",
			"-obs.trace", tracePath)
		if stderr != "" {
			t.Errorf("unexpected stderr: %s", stderr)
		}
		done <- code
	}()

	base := waitForAddr(t, &out)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/score", strings.NewReader(scoreBody()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.HeaderRequestID, "e2e-telemetry-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("score: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(service.HeaderRequestID); got != "e2e-telemetry-1" {
		t.Fatalf("echoed request id %q", got)
	}

	// Default scrape stays JSON; Accept: text/plain switches to the
	// Prometheus exposition, which must pass the format oracle.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	jsonBody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(jsonBody), `"service.requests"`) {
		t.Fatalf("JSON metrics missing service.requests:\n%s", jsonBody)
	}
	preq, err := http.NewRequest(http.MethodGet, base+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatalf("prom metrics: %v", err)
	}
	promBody, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if ct := presp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("prom content type %q", ct)
	}
	if _, err := obs.ValidatePrometheus(bytes.NewReader(promBody)); err != nil {
		t.Fatalf("prom exposition invalid: %v\n%s", err, promBody)
	}
	for _, want := range []string{"service_requests", "runtime_goroutines"} {
		if !strings.Contains(string(promBody), want) {
			t.Fatalf("prom metrics missing %s:\n%s", want, promBody)
		}
	}

	if code := <-done; code != 0 {
		t.Fatalf("daemon exited %d", code)
	}
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("reading access log: %v", err)
	}
	line := ""
	for _, l := range strings.Split(string(logBytes), "\n") {
		if strings.Contains(l, "e2e-telemetry-1") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("access log has no line for the request:\n%s", logBytes)
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log line not JSON: %v\n%s", err, line)
	}
	if entry["status"] != float64(200) || entry["cache"] != "miss" || entry["path"] != "/v1/score" {
		t.Fatalf("access log entry %v", entry)
	}

	// The same ID correlates into the JSONL trace: the request span
	// carries it as an attribute.
	traceBytes, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	if !strings.Contains(string(traceBytes), "e2e-telemetry-1") {
		t.Fatalf("trace has no span for the request id:\n%s", traceBytes)
	}
}

// postJSONRead is postJSON plus the response body, for byte-identity
// assertions.
func postJSONRead(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", url, err)
	}
	return resp, b
}

// TestWarmRestartByteIdentical runs the full crash-safety story
// in-process: boot with -snapshot, populate the cache over HTTP, shut
// down (which persists the cache), boot a second daemon from the same
// snapshot, and check the warm hit is byte-for-byte the pre-restart
// response — digest header included.
func TestWarmRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "cache.snap")
	body := scoreBody()

	// First life: cold boot, miss then hit, planned shutdown writes
	// the snapshot.
	var out1 syncBuffer
	done1 := make(chan int, 1)
	go func() {
		code, stderr := exec(t, &out1,
			"-addr", "127.0.0.1:0", "-timeout", "3s", "-cache-size", "8",
			"-snapshot", snap, "-snapshot.interval", "200ms", "-drain.timeout", "2s")
		if stderr != "" {
			t.Errorf("unexpected stderr: %s", stderr)
		}
		done1 <- code
	}()
	base := waitForAddr(t, &out1)
	r1, b1 := postJSONRead(t, base+"/v1/score", body)
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Hmeans-Cache") != "miss" {
		t.Fatalf("first score: status %d cache %q", r1.StatusCode, r1.Header.Get("X-Hmeans-Cache"))
	}
	digest := r1.Header.Get(service.HeaderDigest)
	if err := service.VerifyDigest(digest, b1); err != nil {
		t.Fatalf("first response digest: %v", err)
	}
	if resp := mustGet(t, base+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz while serving: %d", resp.StatusCode)
	}
	if code := <-done1; code != 0 {
		t.Fatalf("first daemon exited %d", code)
	}
	if !strings.Contains(out1.String(), "wrote snapshot (1 records)") {
		t.Fatalf("no snapshot line in first life's stdout: %q", out1.String())
	}

	// Second life: warm boot from the snapshot. The very first request
	// must be a cache hit with the exact pre-restart bytes.
	var out2 syncBuffer
	done2 := make(chan int, 1)
	go func() {
		code, stderr := exec(t, &out2,
			"-addr", "127.0.0.1:0", "-timeout", "3s", "-cache-size", "8",
			"-snapshot", snap)
		if stderr != "" {
			t.Errorf("unexpected stderr: %s", stderr)
		}
		done2 <- code
	}()
	base = waitForAddr(t, &out2)
	if !strings.Contains(out2.String(), "restored 1 cached results") {
		t.Fatalf("no restore line in second life's stdout: %q", out2.String())
	}
	r2, b2 := postJSONRead(t, base+"/v1/score", body)
	if r2.Header.Get("X-Hmeans-Cache") != "hit" {
		t.Fatalf("warm-restart cache %q, want hit", r2.Header.Get("X-Hmeans-Cache"))
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("warm-restart response is not byte-identical to the pre-restart response")
	}
	if got := r2.Header.Get(service.HeaderDigest); got != digest {
		t.Fatalf("warm-restart digest %q, want %q", got, digest)
	}
	if code := <-done2; code != 0 {
		t.Fatalf("second daemon exited %d", code)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}

func waitForAddr(t *testing.T, out *syncBuffer) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrLine.FindStringSubmatch(out.String()); m != nil {
			return m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never reported its address; stdout: %q", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}

// scoreBody is a minimal valid request: two separable blobs of four
// workloads each.
func scoreBody() string {
	var rows, workloads, scores []string
	for i := 0; i < 8; i++ {
		base := 1.0
		if i >= 4 {
			base = 9.0
		}
		workloads = append(workloads, fmt.Sprintf("%q", fmt.Sprintf("wl%d", i)))
		rows = append(rows, fmt.Sprintf("[%g,%g]", base+0.1*float64(i), base-0.1*float64(i)))
		scores = append(scores, fmt.Sprintf("%g", 1.0+0.5*float64(i)))
	}
	return fmt.Sprintf(`{"table":{"workloads":[%s],"features":["f1","f2"],"rows":[%s]},"scores":{"m":[%s]},"config":{"seed":7},"k":2}`,
		strings.Join(workloads, ","), strings.Join(rows, ","), strings.Join(scores, ","))
}
