package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmeans/internal/cliutil"
	"hmeans/internal/obs"
)

func TestRunRejectsNegativeParallel(t *testing.T) {
	scores := writeTemp(t, "scores.csv", "workload,score\na,4\nb,1\n")
	var out strings.Builder
	err := run([]string{"-scores", scores, "-parallel", "-3"}, &out)
	var ue *cliutil.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UsageError", err)
	}
	if !strings.Contains(err.Error(), "-parallel") {
		t.Fatalf("usage error does not name the flag: %v", err)
	}
}

func TestRunMissingScoresIsUsageError(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-chars", "x.csv"}, &out)
	var ue *cliutil.UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UsageError", err)
	}
}

func TestRunVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "hmeans ") {
		t.Fatalf("version output %q", out.String())
	}
}

// TestRunWritesValidTrace drives the full-pipeline mode with
// -obs.trace and checks the file validates and contains the stage
// spans.
func TestRunWritesValidTrace(t *testing.T) {
	scores := writeTemp(t, "scores.csv", "workload,score\na,4\nb,3.9\nc,1\nd,0.5\n")
	chars := writeTemp(t, "chars.csv",
		"workload,f1,f2\na,9,1\nb,9.1,1.1\nc,2,8\nd,1,9\n")
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	var out strings.Builder
	if err := run([]string{"-scores", scores, "-chars", chars, "-k", "2", "-obs.trace", trace}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	stats, err := obs.ValidateTrace(f)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if stats.Spans == 0 {
		t.Fatal("trace has no spans")
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	tr, err := obs.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range tr.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"pipeline", "characterize", "reduce", "cluster", "cut", "means"} {
		if !names[want] {
			t.Fatalf("trace missing %q span; has %v", want, names)
		}
	}
	// The session must not leak a default observer into later tests.
	if obs.Default() != nil {
		t.Fatal("default observer leaked")
	}
}
