package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmeans"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithClusters(t *testing.T) {
	scores := writeTemp(t, "scores.csv", "workload,score\na,4\nb,1\nc,1\n")
	clusters := writeTemp(t, "clusters.csv", "workload,cluster\na,0\nb,1\nc,1\n")
	var out strings.Builder
	if err := run([]string{"-scores", scores, "-clusters", clusters}, &out); err != nil {
		t.Fatal(err)
	}
	// HGM of clusters {4} and {1,1}: sqrt(4*1) = 2; plain GM = 4^(1/3).
	if !strings.Contains(out.String(), "2.0000") {
		t.Fatalf("unexpected output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1.5874") {
		t.Fatalf("plain GM missing:\n%s", out.String())
	}
}

func TestRunWithCharsSweep(t *testing.T) {
	scores := writeTemp(t, "scores.csv", "workload,score\na,4\nb,3.9\nc,1\nd,0.5\n")
	chars := writeTemp(t, "chars.csv",
		"workload,f1,f2\na,9,1\nb,9.1,1.1\nc,2,8\nd,1,9\n")
	var out strings.Builder
	if err := run([]string{"-scores", scores, "-chars", chars}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"k", "hierarchical", "plain", "2", "4"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("sweep output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunWithCharsAtK(t *testing.T) {
	scores := writeTemp(t, "scores.csv", "workload,score\na,4\nb,3.9\nc,1\nd,0.5\n")
	chars := writeTemp(t, "chars.csv",
		"workload,f1,f2\na,9,1\nb,9.1,1.1\nc,2,8\nd,1,9\n")
	var out strings.Builder
	if err := run([]string{"-scores", scores, "-chars", chars, "-k", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cluster 0:") || !strings.Contains(out.String(), "cluster 1:") {
		t.Fatalf("cluster membership missing:\n%s", out.String())
	}
}

func TestRunArgErrors(t *testing.T) {
	scores := writeTemp(t, "scores.csv", "workload,score\na,4\n")
	clusters := writeTemp(t, "clusters.csv", "workload,cluster\na,0\n")
	cases := [][]string{
		{},                  // no -scores
		{"-scores", scores}, // neither -clusters nor -chars
		{"-scores", scores, "-clusters", clusters, "-chars", clusters}, // both
		{"-scores", scores, "-clusters", clusters, "-mean", "median"},  // bad mean
	}
	for _, args := range cases {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseMean(t *testing.T) {
	cases := map[string]hmeans.MeanKind{
		"geometric":  hmeans.Geometric,
		"arithmetic": hmeans.Arithmetic,
		"harmonic":   hmeans.Harmonic,
	}
	for name, want := range cases {
		got, err := parseMean(name)
		if err != nil || got != want {
			t.Errorf("parseMean(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseMean("median"); err == nil {
		t.Error("bogus mean accepted")
	}
}

func TestReadScoresFile(t *testing.T) {
	path := writeTemp(t, "scores.csv", "workload,score\na,2\nb,8\n")
	s, err := readScores(path)
	if err != nil || len(s.Values) != 2 || s.Values[1] != 8 {
		t.Fatalf("readScores = %+v, %v", s, err)
	}
	if _, err := readScores(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadClusteringAlignsByName(t *testing.T) {
	scoresPath := writeTemp(t, "scores.csv", "workload,score\nx,2\ny,8\nz,4\n")
	scores, err := readScores(scoresPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster file in a different order than the score file.
	clPath := writeTemp(t, "clusters.csv", "workload,cluster\nz,1\nx,0\ny,0\n")
	c, err := readClustering(clPath, scores)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1}
	for i, w := range want {
		if c.Labels[i] != w {
			t.Fatalf("labels = %v, want %v", c.Labels, want)
		}
	}
}

func TestReadClusteringMissingWorkload(t *testing.T) {
	scoresPath := writeTemp(t, "scores.csv", "workload,score\nx,2\ny,8\n")
	scores, _ := readScores(scoresPath)
	clPath := writeTemp(t, "clusters.csv", "workload,cluster\nx,0\n")
	if _, err := readClustering(clPath, scores); err == nil {
		t.Error("missing cluster assignment accepted")
	}
}

func TestReadTableAlignsByName(t *testing.T) {
	scoresPath := writeTemp(t, "scores.csv", "workload,score\nx,2\ny,8\n")
	scores, _ := readScores(scoresPath)
	charsPath := writeTemp(t, "chars.csv", "workload,f1,f2\ny,3,4\nx,1,2\n")
	table, kind, err := readTable(charsPath, "counters", scores)
	if err != nil {
		t.Fatal(err)
	}
	if kind != hmeans.Counters {
		t.Errorf("kind = %v", kind)
	}
	if table.Rows[0][0] != 1 || table.Rows[1][0] != 3 {
		t.Fatalf("rows not aligned to score order: %v", table.Rows)
	}
	if _, _, err := readTable(charsPath, "nonsense", scores); err == nil {
		t.Error("bogus kind accepted")
	}
	missing := writeTemp(t, "short.csv", "workload,f1\nx,1\n")
	if _, _, err := readTable(missing, "counters", scores); err == nil {
		t.Error("missing characterization row accepted")
	}
}

func TestReadTableBitsKind(t *testing.T) {
	scoresPath := writeTemp(t, "scores.csv", "workload,score\nx,2\n")
	scores, _ := readScores(scoresPath)
	charsPath := writeTemp(t, "chars.csv", "workload,m1\nx,1\n")
	_, kind, err := readTable(charsPath, "bits", scores)
	if err != nil || kind != hmeans.Bits {
		t.Fatalf("bits kind = %v, %v", kind, err)
	}
}
