package main

import (
	"strings"
	"testing"

	"hmeans/internal/cliutil"
)

// exec runs the CLI through the same cliutil.Run wrapper main uses,
// returning the process exit code plus captured stdout/stderr.
func exec(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = cliutil.Run("hmeans", &errb, func() error { return run(args, &out) })
	return code, out.String(), errb.String()
}

// TestExitCodes pins the exit-code taxonomy: 0 success, 1 internal or
// timeout, 2 usage mistake, 3 invalid input data.
func TestExitCodes(t *testing.T) {
	scores := writeTemp(t, "scores.csv", "workload,score\na,4\nb,3.9\nc,1\nd,0.5\n")
	nanScores := writeTemp(t, "nan-scores.csv", "workload,score\na,4\nb,NaN\nc,1\nd,0.5\n")
	chars := writeTemp(t, "chars.csv",
		"workload,f1,f2\na,9,1\nb,9.1,1.1\nc,2,8\nd,1,9\n")
	nanChars := writeTemp(t, "nan-chars.csv",
		"workload,f1,f2\na,9,1\nb,NaN,1.1\nc,2,8\nd,1,9\n")

	t.Run("success is 0", func(t *testing.T) {
		code, _, stderr := exec(t, "-scores", scores, "-chars", chars)
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
	})

	t.Run("usage mistake is 2", func(t *testing.T) {
		code, _, stderr := exec(t, "-chars", chars)
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
		}
		if !strings.Contains(stderr, "-h' for usage") {
			t.Fatalf("no usage hint in %q", stderr)
		}
	})

	t.Run("unknown linkage algorithm is 2", func(t *testing.T) {
		code, _, stderr := exec(t, "-scores", scores, "-chars", chars, "-linkage-algo", "fast")
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
		}
		if !strings.Contains(stderr, "fast") || !strings.Contains(stderr, "nnchain") {
			t.Fatalf("stderr %q should name the bad value and the valid choices", stderr)
		}
	})

	t.Run("unknown BMU mode is 2", func(t *testing.T) {
		code, _, stderr := exec(t, "-scores", scores, "-chars", chars, "-som.bmu", "guess")
		if code != 2 {
			t.Fatalf("exit %d, want 2; stderr: %s", code, stderr)
		}
		if !strings.Contains(stderr, "guess") || !strings.Contains(stderr, "pruned") {
			t.Fatalf("stderr %q should name the bad value and the valid choices", stderr)
		}
	})

	// The k=2 cut of this table is {a,b} vs {c,d} under every
	// algorithm — tied zero-height merges may reorder, but the
	// two-cluster partition (and so the printed means) cannot change.
	t.Run("forced nnchain succeeds", func(t *testing.T) {
		ref, refOut, stderr := exec(t, "-scores", scores, "-chars", chars, "-k", "2")
		if ref != 0 {
			t.Fatalf("exit %d, stderr: %s", ref, stderr)
		}
		code, out, stderr := exec(t, "-scores", scores, "-chars", chars, "-k", "2",
			"-linkage-algo", "nnchain", "-som.bmu", "pruned")
		if code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, stderr)
		}
		if out != refOut {
			t.Fatalf("nnchain+pruned output differs from default:\n%s\nvs\n%s", out, refOut)
		}
	})

	t.Run("non-finite score is 3", func(t *testing.T) {
		code, _, stderr := exec(t, "-scores", nanScores, "-chars", chars)
		if code != 3 {
			t.Fatalf("exit %d, want 3; stderr: %s", code, stderr)
		}
		if !strings.Contains(stderr, "invalid input") {
			t.Fatalf("no invalid-input prefix in %q", stderr)
		}
	})

	t.Run("non-finite characterization is 3", func(t *testing.T) {
		code, _, stderr := exec(t, "-scores", scores, "-chars", nanChars)
		if code != 3 {
			t.Fatalf("exit %d, want 3; stderr: %s", code, stderr)
		}
	})

	t.Run("quarantine downgrades to 0", func(t *testing.T) {
		code, stdout, stderr := exec(t, "-scores", scores, "-chars", nanChars, "-quarantine")
		if code != 0 {
			t.Fatalf("exit %d, want 0; stderr: %s", code, stderr)
		}
		if !strings.Contains(stdout, "quarantined b:") {
			t.Fatalf("no quarantine report in stdout:\n%s", stdout)
		}
	})

	t.Run("degenerate cut is 3", func(t *testing.T) {
		code, _, stderr := exec(t, "-scores", scores, "-chars", chars, "-k", "10")
		if code != 3 {
			t.Fatalf("exit %d, want 3; stderr: %s", code, stderr)
		}
	})

	t.Run("expired timeout is 1", func(t *testing.T) {
		code, _, stderr := exec(t, "-scores", scores, "-chars", chars, "-timeout", "1ns")
		if code != 1 {
			t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
		}
		if !strings.Contains(stderr, "timed out") {
			t.Fatalf("no timeout message in %q", stderr)
		}
	})
}
