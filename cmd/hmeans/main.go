// Command hmeans computes benchmark-suite scores with the
// hierarchical means.
//
// Two modes:
//
// With a precomputed clustering:
//
//	hmeans -scores scores.csv -clusters clusters.csv [-mean geometric]
//
// With a characterization matrix (the full pipeline — preprocessing,
// SOM, hierarchical clustering — detects the clusters):
//
//	hmeans -scores scores.csv -chars counters.csv [-kind counters|bits] [-k 6]
//
// Omitting -k with -chars prints the hierarchical mean for every
// cluster count from 2 to n alongside the plain mean.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"hmeans"
	"hmeans/internal/cliutil"
	"hmeans/internal/cluster"
	"hmeans/internal/dataio"
	"hmeans/internal/obs"
	"hmeans/internal/par"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

func main() {
	os.Exit(cliutil.Run("hmeans", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hmeans", flag.ContinueOnError)
	var (
		scoresPath   = fs.String("scores", "", "CSV of workload,score (required)")
		clustersPath = fs.String("clusters", "", "CSV of workload,cluster-label")
		charsPath    = fs.String("chars", "", "CSV characterization matrix (header row names features)")
		kind         = fs.String("kind", "counters", "characterization kind: counters or bits")
		meanName     = fs.String("mean", "geometric", "mean family: geometric, arithmetic or harmonic")
		k            = fs.Int("k", 0, "cluster count to cut at (0 with -chars: sweep 2..n)")
		seed         = fs.Uint64("seed", 2007, "SOM training seed")
		parallel     = fs.Int("parallel", 1, "worker count for SOM training and clustering (0 = all CPUs); results are identical for every value")
		quarantine   = fs.Bool("quarantine", false, "drop workloads with non-finite characterization values and score the survivors instead of failing")
		linkageAlgo  = fs.String("linkage-algo", "auto", "agglomeration algorithm: auto, scan or nnchain (auto picks nnchain above the package threshold; the clusters are the same either way)")
		somBMU       = fs.String("som.bmu", "auto", "SOM best-matching-unit search: auto, brute, pruned or coarse (coarse is approximate and opt-in; the rest are exact and interchangeable)")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "hmeans") {
		return nil
	}
	if err := cliutil.ValidateParallel(*parallel); err != nil {
		return err
	}
	algo, err := cluster.ParseAlgorithm(*linkageAlgo)
	if err != nil {
		return cliutil.Usagef("-linkage-algo: %v", err)
	}
	bmu, err := som.ParseBMUSearch(*somBMU)
	if err != nil {
		return cliutil.Usagef("-som.bmu: %v", err)
	}

	if *scoresPath == "" {
		return cliutil.Usagef("-scores is required")
	}
	if (*clustersPath == "") == (*charsPath == "") {
		return cliutil.Usagef("exactly one of -clusters or -chars is required")
	}
	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	err = score(ctx, scoreArgs{
		scoresPath:   *scoresPath,
		clustersPath: *clustersPath,
		charsPath:    *charsPath,
		kind:         *kind,
		meanName:     *meanName,
		k:            *k,
		seed:         *seed,
		parallel:     *parallel,
		quarantine:   *quarantine,
		algo:         algo,
		bmu:          bmu,
	}, stdout)
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}

// scoreArgs carries the parsed flag values into the scoring body,
// which runs inside the observability session.
type scoreArgs struct {
	scoresPath, clustersPath, charsPath string
	kind, meanName                      string
	k                                   int
	seed                                uint64
	parallel                            int
	quarantine                          bool
	algo                                cluster.Algorithm
	bmu                                 som.BMUSearch
}

func score(ctx context.Context, a scoreArgs, stdout io.Writer) error {
	mean, err := parseMean(a.meanName)
	if err != nil {
		return err
	}
	scores, err := readScores(a.scoresPath)
	if err != nil {
		return err
	}
	// Quarantine mode tolerates (and drops) scores of quarantined
	// workloads, so strict score validation only applies without it.
	if !a.quarantine {
		if err := hmeans.ValidateScores(scores.Values); err != nil {
			return fmt.Errorf("%s: %w", a.scoresPath, err)
		}
	}
	if a.clustersPath != "" {
		plain, err := hmeans.PlainMean(mean, scores.Values)
		if err != nil {
			return err
		}
		c, err := readClustering(a.clustersPath, scores)
		if err != nil {
			return err
		}
		h, err := hmeans.HierarchicalMean(mean, scores.Values, c)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hierarchical %s mean (%d clusters): %.4f\n", mean, c.K, h)
		fmt.Fprintf(stdout, "plain %s mean:                     %.4f\n", mean, plain)
		return nil
	}

	table, kindVal, err := readTable(a.charsPath, a.kind, scores)
	if err != nil {
		return err
	}
	workers := a.parallel
	if workers <= 0 {
		workers = par.Auto()
	}
	p, err := hmeans.DetectClustersCtx(ctx, table, hmeans.PipelineConfig{
		Kind:             kindVal,
		SOM:              som.Config{Seed: a.seed, BMU: a.bmu},
		Parallelism:      workers,
		Quarantine:       a.quarantine,
		LinkageAlgorithm: a.algo,
	})
	if err != nil {
		return err
	}
	for _, q := range p.Quarantined {
		fmt.Fprintf(stdout, "quarantined %s: %s\n", q.Workload, q.Reason)
	}
	// Align once: with quarantine active this drops the scores of the
	// quarantined workloads so both means cover the same survivors.
	aligned, err := p.AlignScores(scores.Values)
	if err != nil {
		return err
	}
	plain, err := hmeans.PlainMean(mean, aligned)
	if err != nil {
		return err
	}
	if a.k > 0 {
		h, err := p.ScoreAtK(mean, aligned, a.k)
		if err != nil {
			return err
		}
		members, err := p.ClusterMembers(a.k)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "hierarchical %s mean (k=%d): %.4f\n", mean, a.k, h)
		fmt.Fprintf(stdout, "plain %s mean:              %.4f\n", mean, plain)
		for label, ms := range members {
			fmt.Fprintf(stdout, "cluster %d: %v\n", label, ms)
		}
		return nil
	}
	t := viz.NewTable("k", "hierarchical", "plain")
	for kk := 2; kk <= len(aligned); kk++ {
		h, err := p.ScoreAtK(mean, aligned, kk)
		if err != nil {
			return err
		}
		if err := t.AddRowf(fmt.Sprintf("%d", kk), "%.4f", h, plain); err != nil {
			return err
		}
	}
	return t.Render(stdout)
}

func parseMean(name string) (hmeans.MeanKind, error) {
	switch name {
	case "geometric":
		return hmeans.Geometric, nil
	case "arithmetic":
		return hmeans.Arithmetic, nil
	case "harmonic":
		return hmeans.Harmonic, nil
	default:
		return 0, fmt.Errorf("unknown mean %q (want geometric, arithmetic or harmonic)", name)
	}
}

func readScores(path string) (dataio.Scores, error) {
	f, err := os.Open(path)
	if err != nil {
		return dataio.Scores{}, err
	}
	defer f.Close()
	return dataio.ReadScores(f)
}

// readClustering loads cluster labels and aligns them to the score
// order by workload name.
func readClustering(path string, scores dataio.Scores) (hmeans.Clustering, error) {
	f, err := os.Open(path)
	if err != nil {
		return hmeans.Clustering{}, err
	}
	defer f.Close()
	cl, err := dataio.ReadClusters(f)
	if err != nil {
		return hmeans.Clustering{}, err
	}
	byName := make(map[string]int, len(cl.Workloads))
	for i, name := range cl.Workloads {
		byName[name] = cl.Labels[i]
	}
	labels := make([]int, len(scores.Workloads))
	for i, name := range scores.Workloads {
		l, ok := byName[name]
		if !ok {
			return hmeans.Clustering{}, fmt.Errorf("workload %q has a score but no cluster", name)
		}
		labels[i] = l
	}
	return hmeans.NewClustering(labels)
}

// readTable loads a characterization matrix and aligns its rows to
// the score order.
func readTable(path, kind string, scores dataio.Scores) (*hmeans.Table, hmeans.CharKind, error) {
	var kindVal hmeans.CharKind
	switch kind {
	case "counters":
		kindVal = hmeans.Counters
	case "bits":
		kindVal = hmeans.Bits
	default:
		return nil, 0, fmt.Errorf("unknown characterization kind %q (want counters or bits)", kind)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	m, err := dataio.ReadMatrix(f)
	if err != nil {
		return nil, 0, err
	}
	rowOf := make(map[string][]float64, len(m.Workloads))
	for i, name := range m.Workloads {
		rowOf[name] = m.Rows[i]
	}
	rows := make([][]float64, len(scores.Workloads))
	for i, name := range scores.Workloads {
		row, ok := rowOf[name]
		if !ok {
			return nil, 0, fmt.Errorf("workload %q has a score but no characterization row", name)
		}
		rows[i] = row
	}
	t, err := hmeans.NewTable(scores.Workloads, m.Features, rows)
	return t, kindVal, err
}
