// Command report generates a complete scoring report for the
// simulated suite on one machine: per-workload scores with bootstrap
// confidence intervals, the detected cluster structure with a
// recommended cut, and the hierarchical-mean sweep.
//
//	report -machine A
//	report -machine B -chars methods -mean harmonic
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hmeans"
	"hmeans/internal/report"
	"hmeans/internal/rng"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		machine  = fs.String("machine", "A", "machine to score: A or B")
		charKind = fs.String("chars", "sar", "characterization: sar, methods or microindep")
		meanName = fs.String("mean", "geometric", "mean family")
		runs     = fs.Int("runs", 10, "runs per measurement")
		seed     = fs.Uint64("seed", 1, "measurement seed")
		somSeed  = fs.Uint64("somseed", 2007, "SOM training seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m simbench.Machine
	switch *machine {
	case "A", "a":
		m = simbench.MachineA()
	case "B", "b":
		m = simbench.MachineB()
	default:
		return fmt.Errorf("unknown machine %q (want A or B)", *machine)
	}
	var kind hmeans.MeanKind
	switch *meanName {
	case "geometric":
		kind = hmeans.Geometric
	case "arithmetic":
		kind = hmeans.Arithmetic
	case "harmonic":
		kind = hmeans.Harmonic
	default:
		return fmt.Errorf("unknown mean %q", *meanName)
	}

	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		return err
	}
	ref := simbench.Reference()

	// Measure: scores plus the raw run times behind them.
	r := rng.New(*seed)
	scores := make([]float64, len(ws))
	runTimes := make([][]float64, len(ws))
	for i := range ws {
		meas, err := simbench.MeasureTimeStats(&ws[i], m, *runs, 0.95, r)
		if err != nil {
			return err
		}
		refTime, err := simbench.MeasureTime(&ws[i], ref, *runs, r)
		if err != nil {
			return err
		}
		scores[i] = refTime / meas.Mean
		runTimes[i] = meas.Times
	}

	// Characterize and detect clusters.
	var (
		table    *hmeans.Table
		kindChar hmeans.CharKind
	)
	switch *charKind {
	case "sar":
		table, err = simbench.SARTable(ws, m, simbench.SARSpec{Seed: *seed})
	case "methods":
		table, err = simbench.HprofTable(ws)
		kindChar = hmeans.Bits
	case "microindep":
		table, err = simbench.MicroIndepTable(ws)
	default:
		return fmt.Errorf("unknown characterization %q (want sar, methods or microindep)", *charKind)
	}
	if err != nil {
		return err
	}
	p, err := hmeans.DetectClusters(table, hmeans.PipelineConfig{
		Kind: kindChar,
		SOM:  som.Config{Seed: *somSeed},
	})
	if err != nil {
		return err
	}

	return report.Write(stdout, report.Input{
		Title:     fmt.Sprintf("Scoring report: machine %s vs reference (%s characterization)", m.Name, *charKind),
		Workloads: simbench.WorkloadNames(ws),
		Scores:    scores,
		RunTimes:  runTimes,
		Pipeline:  p,
		Kind:      kind,
		KMin:      2,
		KMax:      8,
		Seed:      *seed,
	})
}
