// Command report generates a complete scoring report for the
// simulated suite on one machine: per-workload scores with bootstrap
// confidence intervals, the detected cluster structure with a
// recommended cut, and the hierarchical-mean sweep.
//
//	report -machine A
//	report -machine B -chars methods -mean harmonic
//
// It also post-processes JSONL traces written with -obs.trace:
//
//	report -timings trace.jsonl         # per-stage timing table
//	report -validate-trace trace.jsonl  # schema check, non-zero on failure
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hmeans"
	"hmeans/internal/cliutil"
	"hmeans/internal/obs"
	"hmeans/internal/report"
	"hmeans/internal/rng"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

func main() {
	os.Exit(cliutil.Run("report", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		machine  = fs.String("machine", "A", "machine to score: A or B")
		charKind = fs.String("chars", "sar", "characterization: sar, methods or microindep")
		meanName = fs.String("mean", "geometric", "mean family")
		runs     = fs.Int("runs", 10, "runs per measurement")
		seed     = fs.Uint64("seed", 1, "measurement seed")
		somSeed  = fs.Uint64("somseed", 2007, "SOM training seed")
		timings  = fs.String("timings", "", "render the per-stage timing table of this JSONL trace and exit")
		validate = fs.String("validate-trace", "", "validate this JSONL trace against the trace schema and exit")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "report") {
		return nil
	}
	if *validate != "" {
		return validateTrace(*validate, stdout)
	}
	if *timings != "" {
		return renderTimings(*timings, stdout)
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	err = writeReport(ctx, *machine, *charKind, *meanName, *runs, *seed, *somSeed, stdout)
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeReport(ctx context.Context, machine, charKind, meanName string, runs int, seed, somSeed uint64, stdout io.Writer) error {
	var m simbench.Machine
	switch machine {
	case "A", "a":
		m = simbench.MachineA()
	case "B", "b":
		m = simbench.MachineB()
	default:
		return fmt.Errorf("unknown machine %q (want A or B)", machine)
	}
	var kind hmeans.MeanKind
	switch meanName {
	case "geometric":
		kind = hmeans.Geometric
	case "arithmetic":
		kind = hmeans.Arithmetic
	case "harmonic":
		kind = hmeans.Harmonic
	default:
		return fmt.Errorf("unknown mean %q", meanName)
	}

	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		return err
	}
	ref := simbench.Reference()

	// Measure: scores plus the raw run times behind them.
	r := rng.New(seed)
	scores := make([]float64, len(ws))
	runTimes := make([][]float64, len(ws))
	for i := range ws {
		meas, err := simbench.MeasureTimeStats(&ws[i], m, runs, 0.95, r)
		if err != nil {
			return err
		}
		refTime, err := simbench.MeasureTime(&ws[i], ref, runs, r)
		if err != nil {
			return err
		}
		scores[i] = refTime / meas.Mean
		runTimes[i] = meas.Times
	}

	// Characterize and detect clusters.
	var (
		table    *hmeans.Table
		kindChar hmeans.CharKind
	)
	switch charKind {
	case "sar":
		table, err = simbench.SARTable(ws, m, simbench.SARSpec{Seed: seed})
	case "methods":
		table, err = simbench.HprofTable(ws)
		kindChar = hmeans.Bits
	case "microindep":
		table, err = simbench.MicroIndepTable(ws)
	default:
		return fmt.Errorf("unknown characterization %q (want sar, methods or microindep)", charKind)
	}
	if err != nil {
		return err
	}
	p, err := hmeans.DetectClustersCtx(ctx, table, hmeans.PipelineConfig{
		Kind: kindChar,
		SOM:  som.Config{Seed: somSeed},
	})
	if err != nil {
		return err
	}

	return report.Write(stdout, report.Input{
		Title:     fmt.Sprintf("Scoring report: machine %s vs reference (%s characterization)", m.Name, charKind),
		Workloads: simbench.WorkloadNames(ws),
		Scores:    scores,
		RunTimes:  runTimes,
		Pipeline:  p,
		Kind:      kind,
		KMin:      2,
		KMax:      8,
		Seed:      seed,
	})
}

// validateTrace checks a JSONL trace file against the trace schema
// and prints a one-line summary; any violation surfaces as an error
// (and therefore a non-zero exit).
func validateTrace(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	stats, err := obs.ValidateTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(stdout, "trace OK: %d spans, %d events (%s, build %s)\n",
		stats.Spans, stats.Events, stats.Header.Format, stats.Header.Version)
	return nil
}

// renderTimings reads a trace and renders the per-stage rollup: how
// often each stage ran, where wall-clock and CPU time went, and how
// much of the pipeline's wall-clock the stage spans explain.
func renderTimings(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(tr.Spans) == 0 {
		return fmt.Errorf("%s: trace has no spans", path)
	}
	t := viz.NewTable("stage", "count", "wall", "cpu", "min", "max")
	for _, st := range obs.Summarize(tr.Spans) {
		if err := t.AddRow(st.Name, fmt.Sprintf("%d", st.Count),
			fmtDur(st.Wall), fmtDur(st.CPU), fmtDur(st.Min), fmtDur(st.Max)); err != nil {
			return err
		}
	}
	if err := t.Render(stdout); err != nil {
		return err
	}
	if cov, ok := tr.Coverage("pipeline"); ok {
		fmt.Fprintf(stdout, "\nstage spans cover %.1f%% of pipeline wall-clock\n", 100*cov)
	}
	return nil
}

// fmtDur renders a duration rounded for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
