// Command report generates a complete scoring report for the
// simulated suite on one machine: per-workload scores with bootstrap
// confidence intervals, the detected cluster structure with a
// recommended cut, and the hierarchical-mean sweep.
//
//	report -machine A
//	report -machine B -chars methods -mean harmonic
//
// It also post-processes JSONL traces written with -obs.trace and
// Prometheus text scraped from a daemon's /metrics:
//
//	report -timings trace.jsonl         # per-stage timing table
//	report -timings trace.jsonl -request r-4f…   # one request's spans only
//	report -validate-trace trace.jsonl  # schema check, non-zero on failure
//	report -validate-metrics m.prom     # exposition check, non-zero on failure
//
// -request takes the X-Request-ID a client sent (hmeansctl -v prints
// it; hmeansload reports its slowest ones) and narrows -timings to
// that request's span subtree — the server-side breakdown of exactly
// the request the client measured.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hmeans"
	"hmeans/internal/cliutil"
	"hmeans/internal/obs"
	"hmeans/internal/report"
	"hmeans/internal/rng"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

func main() {
	os.Exit(cliutil.Run("report", os.Stderr, func() error {
		return run(os.Args[1:], os.Stdout)
	}))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	var (
		machine  = fs.String("machine", "A", "machine to score: A or B")
		charKind = fs.String("chars", "sar", "characterization: sar, methods or microindep")
		meanName = fs.String("mean", "geometric", "mean family")
		runs     = fs.Int("runs", 10, "runs per measurement")
		seed     = fs.Uint64("seed", 1, "measurement seed")
		somSeed  = fs.Uint64("somseed", 2007, "SOM training seed")
		timings  = fs.String("timings", "", "render the per-stage timing table of this JSONL trace and exit")
		request  = fs.String("request", "", "with -timings: restrict the table to the request span carrying this X-Request-ID")
		validate = fs.String("validate-trace", "", "validate this JSONL trace against the trace schema and exit")
		valProm  = fs.String("validate-metrics", "", "validate this Prometheus text exposition file and exit")
	)
	timeout := cliutil.RegisterTimeout(fs)
	obsFlags := obs.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if obsFlags.PrintVersion(stdout, "report") {
		return nil
	}
	if *validate != "" {
		return validateTrace(*validate, stdout)
	}
	if *valProm != "" {
		return validateMetrics(*valProm, stdout)
	}
	if *timings != "" {
		return renderTimings(*timings, *request, stdout)
	}
	if *request != "" {
		return cliutil.Usagef("-request only applies together with -timings")
	}

	sess, err := obsFlags.Start()
	if err != nil {
		return err
	}
	ctx, cancel := cliutil.WithTimeout(*timeout)
	defer cancel()
	err = writeReport(ctx, *machine, *charKind, *meanName, *runs, *seed, *somSeed, stdout)
	if cerr := sess.Close(); err == nil {
		err = cerr
	}
	return err
}

func writeReport(ctx context.Context, machine, charKind, meanName string, runs int, seed, somSeed uint64, stdout io.Writer) error {
	var m simbench.Machine
	switch machine {
	case "A", "a":
		m = simbench.MachineA()
	case "B", "b":
		m = simbench.MachineB()
	default:
		return fmt.Errorf("unknown machine %q (want A or B)", machine)
	}
	var kind hmeans.MeanKind
	switch meanName {
	case "geometric":
		kind = hmeans.Geometric
	case "arithmetic":
		kind = hmeans.Arithmetic
	case "harmonic":
		kind = hmeans.Harmonic
	default:
		return fmt.Errorf("unknown mean %q", meanName)
	}

	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		return err
	}
	ref := simbench.Reference()

	// Measure: scores plus the raw run times behind them.
	r := rng.New(seed)
	scores := make([]float64, len(ws))
	runTimes := make([][]float64, len(ws))
	for i := range ws {
		meas, err := simbench.MeasureTimeStats(&ws[i], m, runs, 0.95, r)
		if err != nil {
			return err
		}
		refTime, err := simbench.MeasureTime(&ws[i], ref, runs, r)
		if err != nil {
			return err
		}
		scores[i] = refTime / meas.Mean
		runTimes[i] = meas.Times
	}

	// Characterize and detect clusters.
	var (
		table    *hmeans.Table
		kindChar hmeans.CharKind
	)
	switch charKind {
	case "sar":
		table, err = simbench.SARTable(ws, m, simbench.SARSpec{Seed: seed})
	case "methods":
		table, err = simbench.HprofTable(ws)
		kindChar = hmeans.Bits
	case "microindep":
		table, err = simbench.MicroIndepTable(ws)
	default:
		return fmt.Errorf("unknown characterization %q (want sar, methods or microindep)", charKind)
	}
	if err != nil {
		return err
	}
	p, err := hmeans.DetectClustersCtx(ctx, table, hmeans.PipelineConfig{
		Kind: kindChar,
		SOM:  som.Config{Seed: somSeed},
	})
	if err != nil {
		return err
	}

	return report.Write(stdout, report.Input{
		Title:     fmt.Sprintf("Scoring report: machine %s vs reference (%s characterization)", m.Name, charKind),
		Workloads: simbench.WorkloadNames(ws),
		Scores:    scores,
		RunTimes:  runTimes,
		Pipeline:  p,
		Kind:      kind,
		KMin:      2,
		KMax:      8,
		Seed:      seed,
	})
}

// validateTrace checks a JSONL trace file against the trace schema
// and prints a one-line summary; any violation surfaces as an error
// (and therefore a non-zero exit).
func validateTrace(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	stats, err := obs.ValidateTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(stdout, "trace OK: %d spans, %d events (%s, build %s)\n",
		stats.Spans, stats.Events, stats.Header.Format, stats.Header.Version)
	return nil
}

// validateMetrics checks a Prometheus text exposition file (a scrape
// of a daemon's /metrics) against the format's invariants and prints
// a one-line summary; any violation surfaces as an error (and
// therefore a non-zero exit).
func validateMetrics(path string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	stats, err := obs.ValidatePrometheus(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(stdout, "metrics OK: %d counters, %d gauges, %d histograms, %d samples\n",
		stats.Counters, stats.Gauges, stats.Histograms, stats.Samples)
	return nil
}

// renderTimings reads a trace and renders the per-stage rollup: how
// often each stage ran, where wall-clock and CPU time went, and how
// much of the pipeline's wall-clock the stage spans explain. A
// non-empty requestID narrows the rollup to the span subtree of the
// service request that carried that X-Request-ID.
func renderTimings(path, requestID string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := obs.ReadTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	spans := tr.Spans
	if requestID != "" {
		spans, err = requestSubtree(tr.Spans, requestID)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Fprintf(stdout, "request %s: %d spans\n", requestID, len(spans))
	}
	if len(spans) == 0 {
		return fmt.Errorf("%s: trace has no spans", path)
	}
	t := viz.NewTable("stage", "count", "wall", "cpu", "min", "max")
	for _, st := range obs.Summarize(spans) {
		if err := t.AddRow(st.Name, fmt.Sprintf("%d", st.Count),
			fmtDur(st.Wall), fmtDur(st.CPU), fmtDur(st.Min), fmtDur(st.Max)); err != nil {
			return err
		}
	}
	if err := t.Render(stdout); err != nil {
		return err
	}
	// For a single request the interesting root is its request span;
	// for a whole trace it is the pipeline.
	root := "pipeline"
	if requestID != "" {
		root = "request"
	}
	if cov, ok := (&obs.Trace{Spans: spans}).Coverage(root); ok {
		fmt.Fprintf(stdout, "\nstage spans cover %.1f%% of %s wall-clock\n", 100*cov, root)
	}
	return nil
}

// requestSubtree selects the request span stamped with the given
// X-Request-ID plus every descendant, following Parent links — the
// server-side breakdown of one client-visible request.
func requestSubtree(spans []obs.SpanData, requestID string) ([]obs.SpanData, error) {
	keep := make(map[uint64]bool)
	for _, s := range spans {
		if s.Name != "request" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key == "request_id" && fmt.Sprint(a.Val) == requestID {
				keep[s.ID] = true
			}
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("no request span with request_id %q", requestID)
	}
	// Spans are written child-before-parent, so walk until no new
	// descendants join instead of assuming an order.
	for grew := true; grew; {
		grew = false
		for _, s := range spans {
			if keep[s.Parent] && !keep[s.ID] {
				keep[s.ID] = true
				grew = true
			}
		}
	}
	out := make([]obs.SpanData, 0, len(keep))
	for _, s := range spans {
		if keep[s.ID] {
			out = append(out, s)
		}
	}
	return out, nil
}

// fmtDur renders a duration rounded for table display.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
