package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmeans/internal/obs"
)

// writeTrace builds a small but realistic trace file: a pipeline root
// whose two stage children cover all of its duration.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	o := obs.New(sink)
	root := o.StartSpan("pipeline")
	sp := root.Child("reduce")
	sp.End()
	sp = root.Child("cluster")
	sp.Event("cluster.merge", obs.KV("step", 0))
	sp.End()
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateTraceMode(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-validate-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace OK: 3 spans, 1 events") {
		t.Fatalf("validate output %q", out.String())
	}
}

func TestValidateTraceModeRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate-trace", path}, &out); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

func TestTimingsMode(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-timings", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stage", "pipeline", "reduce", "cluster", "stage spans cover"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("timings output missing %q:\n%s", want, out.String())
		}
	}
}

func TestReportVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "report ") {
		t.Fatalf("version output %q", out.String())
	}
}
