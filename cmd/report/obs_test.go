package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hmeans/internal/obs"
)

// writeTrace builds a small but realistic trace file: a pipeline root
// whose two stage children cover all of its duration.
func writeTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	o := obs.New(sink)
	root := o.StartSpan("pipeline")
	sp := root.Child("reduce")
	sp.End()
	sp = root.Child("cluster")
	sp.Event("cluster.merge", obs.KV("step", 0))
	sp.End()
	root.End()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateTraceMode(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-validate-trace", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trace OK: 3 spans, 1 events") {
		t.Fatalf("validate output %q", out.String())
	}
}

func TestValidateTraceModeRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate-trace", path}, &out); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

func TestTimingsMode(t *testing.T) {
	path := writeTrace(t)
	var out strings.Builder
	if err := run([]string{"-timings", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stage", "pipeline", "reduce", "cluster", "stage spans cover"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("timings output missing %q:\n%s", want, out.String())
		}
	}
}

// writeServiceTrace mimics the daemon's span shape: request roots
// stamped with request_id, each wrapping a compute child.
func writeServiceTrace(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "service.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewJSONLSink(f)
	o := obs.New(sink)
	for _, id := range []string{"ctl-1", "ctl-2"} {
		root := o.StartSpan("request", obs.KV("path", "/v1/score"), obs.KV("request_id", id))
		sp := root.Child("compute")
		sp.Child("som.train").End()
		sp.End()
		root.End()
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTimingsRequestFilter(t *testing.T) {
	path := writeServiceTrace(t)
	var out strings.Builder
	if err := run([]string{"-timings", path, "-request", "ctl-2"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"request ctl-2: 3 spans", "compute", "som.train", "of request wall-clock"} {
		if !strings.Contains(got, want) {
			t.Fatalf("filtered timings missing %q:\n%s", want, got)
		}
	}
	// Exactly one request's subtree: one count per stage, not two.
	if strings.Contains(got, "| 2 ") {
		t.Fatalf("filtered timings count a second request's spans:\n%s", got)
	}
}

func TestTimingsRequestFilterUnknownID(t *testing.T) {
	path := writeServiceTrace(t)
	var out strings.Builder
	err := run([]string{"-timings", path, "-request", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), `request_id "nope"`) {
		t.Fatalf("unknown request id: err = %v", err)
	}
}

func TestRequestFlagRequiresTimings(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-request", "ctl-1"}, &out); err == nil {
		t.Fatal("-request without -timings accepted")
	}
}

func TestValidateMetricsMode(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("service.requests").Add(3)
	r.Gauge("runtime.goroutines").Set(7)
	r.Histogram("service.latency_ms", obs.LogBounds(0.1, 1000, 4)...).Observe(2.5)
	var buf strings.Builder
	if err := obs.WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate-metrics", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "metrics OK: 1 counters, 1 gauges, 1 histograms") {
		t.Fatalf("validate-metrics output %q", out.String())
	}
}

func TestValidateMetricsModeRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.prom")
	if err := os.WriteFile(path, []byte("service_requests 1\nservice_requests 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-validate-metrics", path}, &out); err == nil {
		t.Fatal("malformed exposition accepted")
	}
}

func TestReportVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "report ") {
		t.Fatalf("version output %q", out.String())
	}
}
