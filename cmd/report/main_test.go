package main

import (
	"strings"
	"testing"
)

func TestRunReportMachineA(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-machine", "A"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"Scoring report: machine A",
		"Per-workload scores",
		"SciMark2.FFT",
		"Cluster structure",
		"Suite scores (geometric mean family)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunReportMethodsHarmonic(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-machine", "B", "-chars", "methods", "-mean", "harmonic"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "harmonic mean family") {
		t.Fatal("mean family flag ignored")
	}
	if !strings.Contains(out.String(), "methods characterization") {
		t.Fatal("characterization flag ignored")
	}
}

func TestRunReportMicroindep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-chars", "microindep", "-runs", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "microindep characterization") {
		t.Fatal("microindep characterization missing")
	}
}

func TestRunReportErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-machine", "Z"},
		{"-chars", "nope"},
		{"-mean", "median"},
		{"-bogusflag"},
	} {
		if err := run(args, &strings.Builder{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
