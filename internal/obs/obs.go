// Package obs is the pipeline's observability layer: hierarchical
// wall-clock/CPU spans with pluggable sinks, a lock-cheap metrics
// registry (counters, gauges, fixed-bucket histograms), and live
// introspection endpoints (pprof, expvar, streaming traces).
//
// The package is built around one invariant: a nil *Observer — and a
// nil *Span, *Counter, *Gauge or *Histogram — is a valid, inert
// receiver for every method. Instrumented code therefore never
// branches on "is observability on"; it calls straight through, and
// the disabled path costs a nil check. Hot kernels that would pay
// even for that (per-sample accumulation, per-shard timestamps) gate
// on Observer.Active instead.
//
// obs depends only on the standard library, so every other package in
// the module may import it without cycles.
package obs

import (
	"sync/atomic"
	"time"
)

// Observer is the root handle instrumented code records against. The
// zero value is unusable; construct with New. A nil *Observer is the
// canonical "observability off" value: all methods no-op.
type Observer struct {
	sink   Sink
	live   *LiveSink
	reg    *Registry
	detail atomic.Bool
	seq    atomic.Uint64
}

// New builds an Observer writing spans and events to the given sinks.
// With no sinks the Observer is a pure no-op recorder: spans are
// created and timed, then discarded — this is the configuration the
// overhead benchmarks compare against the uninstrumented path. With
// several sinks every record fans out to each in order.
func New(sinks ...Sink) *Observer {
	o := &Observer{reg: NewRegistry()}
	switch len(sinks) {
	case 0:
		o.sink = NopSink{}
	case 1:
		o.sink = sinks[0]
	default:
		o.sink = MultiSink(sinks)
	}
	// Remember the first live sink so the HTTP /trace endpoint can
	// find its subscription hub.
	for _, s := range flatten(o.sink) {
		if l, ok := s.(*LiveSink); ok {
			o.live = l
			break
		}
	}
	return o
}

// flatten expands MultiSink nesting one level deep (the only nesting
// New produces).
func flatten(s Sink) []Sink {
	if m, ok := s.(MultiSink); ok {
		return m
	}
	return []Sink{s}
}

// Active reports whether recording is on. It is the gate hot loops
// use before doing per-item bookkeeping (timestamps, distance
// accumulation) whose cost exists even when the result would be
// thrown away.
func (o *Observer) Active() bool { return o != nil }

// Metrics returns the observer's registry, or nil on a nil observer
// (registry handles are nil-safe too, so the chain stays inert).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// SetDetail toggles high-volume instrumentation — per-merge linkage
// events and other O(n)-per-stage records that are too costly to
// leave on by default.
func (o *Observer) SetDetail(on bool) {
	if o != nil {
		o.detail.Store(on)
	}
}

// Detail reports whether high-volume instrumentation is enabled.
func (o *Observer) Detail() bool { return o != nil && o.detail.Load() }

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key string
	Val any
}

// KV builds an Attr.
func KV(key string, val any) Attr { return Attr{Key: key, Val: val} }

// Span is one timed region of the pipeline. Spans nest (Child) and
// may be carried across goroutines, but each span's methods must be
// called from one goroutine at a time; sinks are safe for concurrent
// spans.
type Span struct {
	o      *Observer
	id     uint64
	parent uint64
	name   string
	start  time.Time
	cpu    time.Duration
	attrs  []Attr
}

// StartSpan opens a root span. On a nil observer it returns nil,
// which every Span method accepts.
func (o *Observer) StartSpan(name string, attrs ...Attr) *Span {
	return o.startSpan(name, 0, attrs)
}

func (o *Observer) startSpan(name string, parent uint64, attrs []Attr) *Span {
	if o == nil {
		return nil
	}
	return &Span{
		o:      o,
		id:     o.seq.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
		cpu:    processCPUTime(),
		attrs:  attrs,
	}
}

// Child opens a nested span.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.o.startSpan(name, s.id, attrs)
}

// SetAttr appends an annotation to the span.
func (s *Span) SetAttr(key string, val any) {
	if s != nil {
		s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	}
}

// Event records a point-in-time event inside the span (an epoch, a
// merge, one measured workload).
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.o.emitEvent(s.id, name, attrs)
}

// Event records a point-in-time event outside any span.
func (o *Observer) Event(name string, attrs ...Attr) {
	if o == nil {
		return
	}
	o.emitEvent(0, name, attrs)
}

func (o *Observer) emitEvent(span uint64, name string, attrs []Attr) {
	o.sink.WriteEvent(EventData{Span: span, Name: name, Time: time.Now(), Attrs: attrs})
}

// End closes the span and hands it to the sink. CPU is the
// process-wide CPU time consumed while the span was open — on
// parallel stages CPU/wall approximates the effective parallelism.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.o.sink.WriteSpan(SpanData{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    time.Since(s.start),
		CPU:    processCPUTime() - s.cpu,
		Attrs:  s.attrs,
	})
}

// defaultObs is the process-wide observer used by packages whose
// call paths carry no configuration struct (internal/par's worker
// pools, internal/simbench's measurement campaigns) and as the
// fallback for configs whose Obs field is nil.
var defaultObs atomic.Pointer[Observer]

// SetDefault installs o as the process-default observer and returns
// the previous value (so callers can restore it). Passing nil turns
// default instrumentation off.
func SetDefault(o *Observer) *Observer {
	if o == nil {
		return defaultObs.Swap(nil)
	}
	return defaultObs.Swap(o)
}

// Default returns the process-default observer, which is nil until
// SetDefault installs one.
func Default() *Observer { return defaultObs.Load() }

// Or returns o when non-nil and the process default otherwise; it is
// the one-liner config consumers use to resolve an optional Obs
// field.
func Or(o *Observer) *Observer {
	if o != nil {
		return o
	}
	return Default()
}
