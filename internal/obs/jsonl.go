package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// TraceFormat identifies the JSONL trace schema emitted by JSONLSink
// and checked by ValidateTrace. Bump the suffix on incompatible
// changes.
const TraceFormat = "hmeans-trace/1"

// traceLine is the wire form of every JSONL trace record. Type is
// "header", "span" or "event"; the remaining fields are per-type.
type traceLine struct {
	Type string `json:"type"`

	// header
	Format  string `json:"format,omitempty"`
	Version string `json:"version,omitempty"`
	Go      string `json:"go,omitempty"`
	Created string `json:"created,omitempty"`

	// span / event
	ID     uint64         `json:"id,omitempty"`
	Parent uint64         `json:"parent,omitempty"`
	Span   uint64         `json:"span,omitempty"`
	Name   string         `json:"name,omitempty"`
	Start  string         `json:"start,omitempty"`
	Time   string         `json:"time,omitempty"`
	DurNS  int64          `json:"dur_ns,omitempty"`
	CPUNS  int64          `json:"cpu_ns,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Val
	}
	return m
}

// JSONLSink writes spans and events as JSON lines. The first line is
// a header record carrying the trace format, the binary's build
// version and the creation time, so a trace file is self-describing.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink wraps w and immediately writes the header record.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriter(w)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	s.write(traceLine{
		Type:    "header",
		Format:  TraceFormat,
		Version: Version(),
		Go:      runtime.Version(),
		Created: time.Now().Format(time.RFC3339Nano),
	})
	return s
}

func (s *JSONLSink) write(l traceLine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(l)
}

// WriteSpan encodes one finished span.
func (s *JSONLSink) WriteSpan(sp SpanData) {
	s.write(traceLine{
		Type:   "span",
		ID:     sp.ID,
		Parent: sp.Parent,
		Name:   sp.Name,
		Start:  sp.Start.Format(time.RFC3339Nano),
		DurNS:  sp.Dur.Nanoseconds(),
		CPUNS:  sp.CPU.Nanoseconds(),
		Attrs:  attrMap(sp.Attrs),
	})
}

// WriteEvent encodes one event.
func (s *JSONLSink) WriteEvent(e EventData) {
	s.write(traceLine{
		Type:  "event",
		Span:  e.Span,
		Name:  e.Name,
		Time:  e.Time.Format(time.RFC3339Nano),
		Attrs: attrMap(e.Attrs),
	})
}

// Close flushes buffered records and returns the first write error
// encountered, if any.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.w.Flush(); s.err == nil {
		s.err = err
	}
	return s.err
}

// TraceHeader is the parsed first record of a trace file.
type TraceHeader struct {
	Format  string
	Version string
	Go      string
	Created string
}

// Trace is a fully parsed trace file.
type Trace struct {
	Header TraceHeader
	Spans  []SpanData
	Events []EventData
}

// ReadTrace parses a JSONL trace written by JSONLSink. It performs
// the same structural checks as ValidateTrace.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	err := scanTrace(r, func(l traceLine) error {
		switch l.Type {
		case "header":
			t.Header = TraceHeader{Format: l.Format, Version: l.Version, Go: l.Go, Created: l.Created}
		case "span":
			start, _ := time.Parse(time.RFC3339Nano, l.Start)
			t.Spans = append(t.Spans, SpanData{
				ID: l.ID, Parent: l.Parent, Name: l.Name,
				Start: start,
				Dur:   time.Duration(l.DurNS),
				CPU:   time.Duration(l.CPUNS),
				Attrs: attrsFromMap(l.Attrs),
			})
		case "event":
			at, _ := time.Parse(time.RFC3339Nano, l.Time)
			t.Events = append(t.Events, EventData{Span: l.Span, Name: l.Name, Time: at, Attrs: attrsFromMap(l.Attrs)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func attrsFromMap(m map[string]any) []Attr {
	if len(m) == 0 {
		return nil
	}
	out := make([]Attr, 0, len(m))
	for k, v := range m {
		out = append(out, Attr{Key: k, Val: v})
	}
	return out
}

// TraceStats summarizes a validated trace.
type TraceStats struct {
	Header TraceHeader
	Spans  int
	Events int
}

// ValidateTrace checks a JSONL trace against the TraceFormat schema:
// a version-stamped header on the first line; every record a valid
// JSON object of a known type; span IDs non-zero and unique; names
// non-empty; durations non-negative; timestamps parseable; and every
// parent/span reference resolving to a span present in the file
// (children close before their parents, so references may point
// forward). It returns summary statistics for reporting.
func ValidateTrace(r io.Reader) (TraceStats, error) {
	var stats TraceStats
	seen := make(map[uint64]int)    // span id → line number
	parents := make(map[uint64]int) // referenced span id → first referencing line
	line := 0
	err := scanTrace(r, func(l traceLine) error {
		line++
		switch l.Type {
		case "header":
			if line != 1 {
				return fmt.Errorf("line %d: header record not on first line", line)
			}
			if l.Format != TraceFormat {
				return fmt.Errorf("line 1: format %q, want %q", l.Format, TraceFormat)
			}
			if l.Version == "" {
				return fmt.Errorf("line 1: header missing build version")
			}
			stats.Header = TraceHeader{Format: l.Format, Version: l.Version, Go: l.Go, Created: l.Created}
		case "span":
			if line == 1 {
				return fmt.Errorf("line 1: first record must be the header")
			}
			if l.ID == 0 {
				return fmt.Errorf("line %d: span with id 0", line)
			}
			if prev, dup := seen[l.ID]; dup {
				return fmt.Errorf("line %d: span id %d already used on line %d", line, l.ID, prev)
			}
			seen[l.ID] = line
			if l.Name == "" {
				return fmt.Errorf("line %d: span %d has no name", line, l.ID)
			}
			if l.DurNS < 0 || l.CPUNS < 0 {
				return fmt.Errorf("line %d: span %d has negative duration", line, l.ID)
			}
			if _, err := time.Parse(time.RFC3339Nano, l.Start); err != nil {
				return fmt.Errorf("line %d: span %d start time: %v", line, l.ID, err)
			}
			if l.Parent != 0 {
				if _, ok := parents[l.Parent]; !ok {
					parents[l.Parent] = line
				}
			}
			stats.Spans++
		case "event":
			if line == 1 {
				return fmt.Errorf("line 1: first record must be the header")
			}
			if l.Name == "" {
				return fmt.Errorf("line %d: event has no name", line)
			}
			if _, err := time.Parse(time.RFC3339Nano, l.Time); err != nil {
				return fmt.Errorf("line %d: event %q time: %v", line, l.Name, err)
			}
			if l.Span != 0 {
				if _, ok := parents[l.Span]; !ok {
					parents[l.Span] = line
				}
			}
			stats.Events++
		default:
			return fmt.Errorf("line %d: unknown record type %q", line, l.Type)
		}
		return nil
	})
	if err != nil {
		return stats, err
	}
	if line == 0 {
		return stats, fmt.Errorf("empty trace: missing header")
	}
	if stats.Header.Format == "" {
		return stats, fmt.Errorf("trace has no header record")
	}
	for id, refLine := range parents {
		if _, ok := seen[id]; !ok {
			return stats, fmt.Errorf("line %d: reference to span %d, which never completes", refLine, id)
		}
	}
	return stats, nil
}

// scanTrace feeds each non-empty JSONL line to fn.
func scanTrace(r io.Reader, fn func(traceLine) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		n++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l traceLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		if err := fn(l); err != nil {
			return err
		}
	}
	return sc.Err()
}
