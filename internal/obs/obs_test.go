package obs

import (
	"bytes"
	"expvar"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety drives every public entry point through nil
// receivers: the disabled path must be inert, not a panic.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Active() {
		t.Fatal("nil observer active")
	}
	sp := o.StartSpan("x", KV("k", 1))
	sp.SetAttr("a", 2)
	sp.Event("e")
	child := sp.Child("y")
	child.End()
	sp.End()
	o.Event("free")
	o.SetDetail(true)
	if o.Detail() {
		t.Fatal("nil observer has detail")
	}
	reg := o.Metrics()
	if reg != nil {
		t.Fatal("nil observer returned a registry")
	}
	reg.Counter("c").Add(1)
	reg.Gauge("g").Set(1)
	reg.Histogram("h", 1, 2).Observe(1)
	reg.CaptureMemStats()
	reg.PublishExpvar("nil-reg")
	if got := reg.Snapshot(); len(got) != 0 {
		t.Fatalf("nil registry snapshot = %v", got)
	}
}

func TestSpanNestingAndAggregator(t *testing.T) {
	agg := NewAggregator()
	o := New(agg)
	root := o.StartSpan("pipeline", KV("n", 13))
	for i := 0; i < 3; i++ {
		c := root.Child("stage")
		c.Event("tick", KV("i", i))
		time.Sleep(time.Millisecond)
		c.End()
	}
	root.End()

	sum := agg.Summary()
	if len(sum) != 2 {
		t.Fatalf("got %d stages, want 2: %+v", len(sum), sum)
	}
	if sum[0].Name != "stage" || sum[0].Count != 3 {
		t.Fatalf("stage summary wrong: %+v", sum[0])
	}
	if sum[1].Name != "pipeline" || sum[1].Count != 1 {
		t.Fatalf("pipeline summary wrong: %+v", sum[1])
	}
	if sum[0].Wall <= 0 || sum[0].Min <= 0 || sum[0].Max < sum[0].Min {
		t.Fatalf("implausible durations: %+v", sum[0])
	}
	if sum[1].Wall < sum[0].Wall {
		t.Fatalf("root wall %v < child wall %v", sum[1].Wall, sum[0].Wall)
	}
	if got := agg.EventCounts()["tick"]; got != 3 {
		t.Fatalf("tick events = %d, want 3", got)
	}
}

func TestCollectorCoverage(t *testing.T) {
	c := NewCollector()
	o := New(c)
	root := o.StartSpan("pipeline")
	start := time.Now()
	for time.Since(start) < 5*time.Millisecond {
		s := root.Child("work")
		time.Sleep(time.Millisecond)
		s.End()
	}
	root.End()
	tr := c.Trace()
	cov, ok := tr.Coverage("pipeline")
	if !ok {
		t.Fatal("no pipeline span found")
	}
	if cov < 0.5 || cov > 1.01 {
		t.Fatalf("coverage = %v, want ~1", cov)
	}
	if _, ok := tr.Coverage("nope"); ok {
		t.Fatal("coverage found a nonexistent root")
	}
}

func TestSummarize(t *testing.T) {
	spans := []SpanData{
		{ID: 1, Name: "a", Dur: 2 * time.Millisecond},
		{ID: 2, Name: "a", Dur: 4 * time.Millisecond},
		{ID: 3, Name: "b", Dur: time.Millisecond},
	}
	sum := Summarize(spans)
	if len(sum) != 2 || sum[0].Name != "a" || sum[0].Count != 2 ||
		sum[0].Wall != 6*time.Millisecond || sum[0].Min != 2*time.Millisecond ||
		sum[0].Max != 4*time.Millisecond {
		t.Fatalf("bad summary: %+v", sum)
	}
}

func TestDefaultObserver(t *testing.T) {
	if Default() != nil {
		t.Fatal("default observer should start nil")
	}
	o := New()
	prev := SetDefault(o)
	if prev != nil {
		t.Fatal("previous default not nil")
	}
	if Default() != o || Or(nil) != o {
		t.Fatal("default not installed")
	}
	o2 := New()
	if Or(o2) != o2 {
		t.Fatal("Or should prefer the explicit observer")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("default observer not cleared")
	}
}

func TestMetricsRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs")
	c.Add(2)
	r.Counter("runs").Add(3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("qe")
	g.Set(1.5)
	g.Set(0.25)
	if g.Value() != 0.25 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("imbalance", 1.1, 1.5, 2)
	for _, v := range []float64{1.0, 1.2, 1.2, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d", h.Count())
	}
	if h.Sum() != 8.4 {
		t.Fatalf("hist sum = %v", h.Sum())
	}
	if h.Mean() != 2.1 {
		t.Fatalf("hist mean = %v", h.Mean())
	}
	snap := r.Snapshot()
	if snap["runs"].(int64) != 5 {
		t.Fatalf("snapshot counter = %v", snap["runs"])
	}
	hs := snap["imbalance"].(HistogramSnapshot)
	want := []uint64{1, 2, 0, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, hs.Counts[i], w, hs)
		}
	}
}

// TestHistogramConcurrent exercises the CAS sum under contention (and
// gives the race detector something to chew on).
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("c", 10, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("count=%d sum=%v, want 8000", h.Count(), h.Sum())
	}
}

func TestCaptureMemStats(t *testing.T) {
	r := NewRegistry()
	r.CaptureMemStats()
	snap := r.Snapshot()
	for _, name := range []string{
		"mem.heap_alloc_bytes", "mem.total_alloc_bytes", "mem.sys_bytes",
		"mem.mallocs", "mem.num_gc", "mem.pause_total_ms",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("CaptureMemStats did not set %s (snapshot: %v)", name, snap)
		}
	}
	if r.Gauge("mem.total_alloc_bytes").Value() <= 0 {
		t.Fatal("memstats gauges not captured")
	}
	// A second capture must move the monotone figures forward, never
	// back: the gauges track the live runtime, not a stale copy.
	before := r.Gauge("mem.total_alloc_bytes").Value()
	_ = make([]byte, 1<<16)
	r.CaptureMemStats()
	if after := r.Gauge("mem.total_alloc_bytes").Value(); after < before {
		t.Fatalf("total_alloc_bytes went backwards: %v -> %v", before, after)
	}
	(*Registry)(nil).CaptureMemStats() // nil-safe
}

func TestPublishExpvarRebinds(t *testing.T) {
	r1 := NewRegistry()
	r1.Counter("x").Add(1)
	r1.PublishExpvar("obs-test")
	r2 := NewRegistry()
	r2.Counter("x").Add(7)
	r2.PublishExpvar("obs-test") // must not panic, must rebind
	if got := currentExpvarTarget("obs-test").Counter("x").Value(); got != 7 {
		t.Fatalf("expvar bound to stale registry (x=%d)", got)
	}
	// The published expvar.Func must follow the rebind too: /debug/vars
	// renders the *current* registry, not the one live at first publish.
	v := expvar.Get("obs-test")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	if s := v.String(); !strings.Contains(s, `"x":7`) {
		t.Fatalf("expvar renders stale registry: %s", s)
	}
	// Mutations after the swap are visible without re-publishing.
	r2.Counter("x").Add(1)
	if s := v.String(); !strings.Contains(s, `"x":8`) {
		t.Fatalf("expvar not live after rebind: %s", s)
	}
}

func TestJSONLRoundTripAndValidate(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	o := New(sink)
	root := o.StartSpan("pipeline", KV("workloads", 13))
	child := root.Child("cluster")
	child.Event("merge", KV("distance", 1.25))
	child.End()
	root.End()
	o.Event("free-standing")
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	stats, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if stats.Spans != 2 || stats.Events != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Header.Format != TraceFormat || stats.Header.Version == "" {
		t.Fatalf("header = %+v", stats.Header)
	}

	tr, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Spans) != 2 || len(tr.Events) != 2 {
		t.Fatalf("trace = %d spans / %d events", len(tr.Spans), len(tr.Events))
	}
	// Children close first, so the cluster span precedes the root.
	if tr.Spans[0].Name != "cluster" || tr.Spans[1].Name != "pipeline" {
		t.Fatalf("span order: %q, %q", tr.Spans[0].Name, tr.Spans[1].Name)
	}
	if tr.Spans[0].Parent != tr.Spans[1].ID {
		t.Fatal("child does not reference root")
	}
}

func TestValidateTraceRejections(t *testing.T) {
	header := `{"type":"header","format":"hmeans-trace/1","version":"v","go":"go1.22","created":"2026-01-01T00:00:00Z"}`
	span := `{"type":"span","id":1,"name":"s","start":"2026-01-01T00:00:00Z","dur_ns":5}`
	cases := map[string]string{
		"empty":            "",
		"no header":        span,
		"bad format":       `{"type":"header","format":"other/9","version":"v"}` + "\n" + span,
		"no version":       `{"type":"header","format":"hmeans-trace/1"}` + "\n" + span,
		"unknown type":     header + "\n" + `{"type":"wat"}`,
		"span id 0":        header + "\n" + `{"type":"span","name":"s","start":"2026-01-01T00:00:00Z"}`,
		"dup id":           header + "\n" + span + "\n" + span,
		"unnamed span":     header + "\n" + `{"type":"span","id":2,"start":"2026-01-01T00:00:00Z"}`,
		"negative dur":     header + "\n" + `{"type":"span","id":2,"name":"s","start":"2026-01-01T00:00:00Z","dur_ns":-1}`,
		"bad time":         header + "\n" + `{"type":"span","id":2,"name":"s","start":"yesterday"}`,
		"dangling parent":  header + "\n" + `{"type":"span","id":2,"parent":99,"name":"s","start":"2026-01-01T00:00:00Z"}`,
		"dangling event":   header + "\n" + `{"type":"event","span":42,"name":"e","time":"2026-01-01T00:00:00Z"}`,
		"unnamed event":    header + "\n" + `{"type":"event","time":"2026-01-01T00:00:00Z"}`,
		"not json":         header + "\n" + "garbage",
		"header not first": span + "\n" + header,
	}
	for name, in := range cases {
		if _, err := ValidateTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not", name)
		}
	}
	ok := header + "\n" + span + "\n" + `{"type":"event","span":1,"name":"e","time":"2026-01-01T00:00:00Z"}`
	if _, err := ValidateTrace(strings.NewReader(ok)); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" || !strings.Contains(v, "go1") {
		t.Fatalf("implausible version %q", v)
	}
}

func TestProcessCPUTimeMonotonic(t *testing.T) {
	a := processCPUTime()
	x := 0.0
	for i := 0; i < 1e6; i++ {
		x += float64(i)
	}
	_ = x
	if b := processCPUTime(); b < a {
		t.Fatalf("cpu time went backwards: %v -> %v", a, b)
	}
}
