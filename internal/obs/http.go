package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// LiveSink is a broadcast hub for the /trace endpoint: finished spans
// and events are serialized to JSONL and fanned out to every
// subscribed client. Slow subscribers drop records instead of
// blocking the pipeline.
type LiveSink struct {
	mu   sync.Mutex
	subs map[chan []byte]bool
}

// NewLiveSink builds a hub with no subscribers.
func NewLiveSink() *LiveSink { return &LiveSink{subs: make(map[chan []byte]bool)} }

// Subscribe registers a new client and returns its record channel
// plus a cancel function that closes and removes it.
func (l *LiveSink) Subscribe() (<-chan []byte, func()) {
	ch := make(chan []byte, 256)
	l.mu.Lock()
	l.subs[ch] = true
	l.mu.Unlock()
	cancel := func() {
		l.mu.Lock()
		if l.subs[ch] {
			delete(l.subs, ch)
			close(ch)
		}
		l.mu.Unlock()
	}
	return ch, cancel
}

func (l *LiveSink) broadcast(line traceLine) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.subs) == 0 {
		return
	}
	raw, err := json.Marshal(line)
	if err != nil {
		return
	}
	raw = append(raw, '\n')
	for ch := range l.subs {
		select {
		case ch <- raw:
		default: // subscriber is not keeping up; drop
		}
	}
}

// WriteSpan broadcasts the span to all subscribers.
func (l *LiveSink) WriteSpan(s SpanData) {
	l.broadcast(traceLine{
		Type:   "span",
		ID:     s.ID,
		Parent: s.Parent,
		Name:   s.Name,
		Start:  s.Start.Format(time.RFC3339Nano),
		DurNS:  s.Dur.Nanoseconds(),
		CPUNS:  s.CPU.Nanoseconds(),
		Attrs:  attrMap(s.Attrs),
	})
}

// WriteEvent broadcasts the event to all subscribers.
func (l *LiveSink) WriteEvent(e EventData) {
	l.broadcast(traceLine{
		Type:  "event",
		Span:  e.Span,
		Name:  e.Name,
		Time:  e.Time.Format(time.RFC3339Nano),
		Attrs: attrMap(e.Attrs),
	})
}

// Handler returns the live-introspection mux:
//
//	/              endpoint index
//	/metrics       registry snapshot: JSON by default, Prometheus
//	               text exposition via Accept or ?format=prometheus
//	               (memstats refreshed either way)
//	/trace         live spans/events streamed as JSONL
//	/debug/vars    expvar (includes the registry when published)
//	/debug/pprof/  the full net/http/pprof suite
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintf(w, "hmeans observability — build %s\n\n", Version())
		fmt.Fprintln(w, "/metrics      metrics registry snapshot (JSON; ?format=prometheus for text exposition)")
		fmt.Fprintln(w, "/trace        live span/event stream (JSONL; terminate with ^C)")
		fmt.Fprintln(w, "/debug/vars   expvar")
		fmt.Fprintln(w, "/debug/pprof  CPU/heap/goroutine profiles")
	})
	o.Register(mux)
	return mux
}

// Register mounts the introspection endpoints (/metrics, /trace,
// /debug/vars, /debug/pprof/*) on an existing mux, so a server that
// already has application routes — the hmeansd scoring daemon — can
// expose its observability on the same port without surrendering "/".
func (o *Observer) Register(mux *http.ServeMux) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg := o.Metrics()
		reg.CaptureMemStats()
		if wantsPrometheus(r) {
			w.Header().Set("Content-Type", PrometheusContentType)
			WritePrometheus(w, reg)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeSnapshotJSON(w, reg)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		live := (*LiveSink)(nil)
		if o != nil {
			live = o.live
		}
		if live == nil {
			http.Error(w, "no live sink attached (start with -obs.http)", http.StatusNotFound)
			return
		}
		fl, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		ch, cancel := live.Subscribe()
		defer cancel()
		for {
			select {
			case <-r.Context().Done():
				return
			case raw, ok := <-ch:
				if !ok {
					return
				}
				if _, err := w.Write(raw); err != nil {
					return
				}
				fl.Flush()
			}
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	registerPprof(mux)
}

// wantsPrometheus decides the /metrics representation. The JSON
// snapshot is the historical default (plain GETs, the serve-smoke
// grep and the hmeans tooling all expect it), so text exposition is
// opt-in: `?format=prometheus` forces it, `?format=json` forces JSON,
// and otherwise an Accept header naming text/plain or OpenMetrics —
// what a Prometheus scraper actually sends — selects it. A browser's
// or curl's */* stays JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}

// writeSnapshotJSON renders the registry's JSON representation.
// encoding/json sorts map keys, so for a quiescent registry the
// output is byte-deterministic — scrapes archived as CI artifacts
// diff clean.
func writeSnapshotJSON(w io.Writer, reg *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reg.Snapshot())
}

func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Serve starts the introspection server on addr in a background
// goroutine and returns the bound listener (useful with ":0") and a
// shutdown function. The server lives until shut down or process
// exit.
func Serve(addr string, o *Observer) (net.Listener, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{Handler: o.Handler()}
	go srv.Serve(ln)
	return ln, srv.Close, nil
}
