package obs

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func testRegistry() *Registry {
	r := NewRegistry()
	r.Counter("service.requests").Add(42)
	r.Gauge("mem.heap_alloc_bytes").Set(12345)
	h := r.Histogram("service.latency_ms", 1, 5, 25)
	h.Observe(0.5)  // le="1"
	h.Observe(3)    // le="5"
	h.Observe(4)    // le="5"
	h.Observe(1000) // overflow -> +Inf only
	return r
}

func TestWritePrometheusRendersAllKinds(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testRegistry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP service_requests hmeans metric service.requests",
		"# TYPE service_requests counter",
		"service_requests 42",
		"# TYPE mem_heap_alloc_bytes gauge",
		"mem_heap_alloc_bytes 12345",
		"# TYPE service_latency_ms histogram",
		`service_latency_ms_bucket{le="1"} 1`,
		`service_latency_ms_bucket{le="5"} 3`,
		`service_latency_ms_bucket{le="25"} 3`,
		`service_latency_ms_bucket{le="+Inf"} 4`,
		"service_latency_ms_sum 1007.5",
		"service_latency_ms_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := testRegistry()
	var a, b bytes.Buffer
	if err := WritePrometheus(&a, r); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("quiescent registry not byte-deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	// Families must come out sorted, so scrapes diff clean.
	var fams []string
	for _, line := range strings.Split(a.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	if len(fams) < 3 {
		t.Fatalf("families = %v", fams)
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] >= fams[i] {
			t.Fatalf("families not sorted: %v", fams)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"service.cache.hit": "service_cache_hit",
		"latency-ms":        "latency_ms",
		"0weird":            "_0weird",
		"already_fine:ok":   "already_fine:ok",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPrometheusOracleAcceptsOwnOutput is the round-trip half of the
// exposition oracle: whatever WritePrometheus emits must satisfy the
// hand-rolled validator.
func TestPrometheusOracleAcceptsOwnOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, testRegistry()); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidatePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own output does not validate: %v", err)
	}
	if stats.Counters != 1 || stats.Gauges != 1 || stats.Histograms != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Samples == 0 {
		t.Fatal("no samples counted")
	}
}

func TestPrometheusOracleRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "orphan 1\n",
		"missing HELP": "# TYPE x counter\n" +
			"x 1\n",
		"duplicate TYPE": "# HELP x hmeans\n# TYPE x counter\n# TYPE x counter\n",
		"unknown type":   "# HELP x hmeans\n# TYPE x widget\n",
		"bad value": "# HELP x hmeans\n# TYPE x counter\n" +
			"x pancake\n",
		"buckets not ascending": "# HELP h hmeans\n# TYPE h histogram\n" +
			"h_bucket{le=\"5\"} 1\nh_bucket{le=\"1\"} 2\n" +
			"h_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n",
		"cumulative counts decrease": "# HELP h hmeans\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n" +
			"h_bucket{le=\"+Inf\"} 5\nh_sum 3\nh_count 5\n",
		"no +Inf terminal bucket": "# HELP h hmeans\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"count disagrees with +Inf": "# HELP h hmeans\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n" +
			"h_sum 1\nh_count 3\n",
		"missing _sum": "# HELP h hmeans\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"bucket without le": "# HELP h hmeans\n# TYPE h histogram\n" +
			"h_bucket{code=\"200\"} 1\n",
	}
	for name, doc := range cases {
		if _, err := ValidatePrometheus(strings.NewReader(doc)); err == nil {
			t.Fatalf("%s: validator accepted %q", name, doc)
		}
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	o := New(nil)
	o.Metrics().Counter("service.requests").Add(3)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path, accept string) (string, string) {
		req, err := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// Default (no Accept, like http.Get) stays the historical JSON.
	body, ct := get("/metrics", "")
	if ct != "application/json" || !strings.Contains(body, `"service.requests"`) {
		t.Fatalf("default scrape: ct=%q body=%q", ct, body)
	}
	// A Prometheus scraper's Accept header selects text exposition.
	body, ct = get("/metrics", "text/plain;version=0.0.4")
	if ct != PrometheusContentType || !strings.Contains(body, "service_requests 3") {
		t.Fatalf("accept scrape: ct=%q body=%q", ct, body)
	}
	if _, err := ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("endpoint exposition does not validate: %v", err)
	}
	// Query param wins in both directions.
	if body, ct = get("/metrics?format=prometheus", ""); ct != PrometheusContentType {
		t.Fatalf("?format=prometheus: ct=%q body=%q", ct, body)
	}
	if body, ct = get("/metrics?format=json", "text/plain"); ct != "application/json" {
		t.Fatalf("?format=json: ct=%q body=%q", ct, body)
	}
	// Browsers and curl send */* — that must stay JSON.
	if _, ct = get("/metrics", "*/*"); ct != "application/json" {
		t.Fatalf("*/* scrape: ct=%q", ct)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := testRegistry()
	render := func() []byte {
		var buf bytes.Buffer
		if err := writeSnapshotJSON(&buf, r); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if a, b := render(), render(); !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	s := r.StartRuntimeSampler(time.Hour) // one synchronous sample, no ticks
	defer s.Stop()

	if r.Gauge("runtime.goroutines").Value() <= 0 {
		t.Fatal("goroutine gauge not sampled")
	}
	if r.Gauge("mem.total_alloc_bytes").Value() <= 0 {
		t.Fatal("memstats gauges not sampled")
	}

	// Force GC cycles and resample: the pause ring must feed the
	// histogram and the cursor must advance to NumGC.
	runtime.GC()
	runtime.GC()
	s.sample()
	h := r.Histogram("runtime.gc_pause_ms")
	if h.Count() == 0 {
		t.Fatal("gc pause histogram empty after runtime.GC")
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if s.lastGC == 0 || s.lastGC > ms.NumGC {
		t.Fatalf("lastGC cursor = %d, NumGC = %d", s.lastGC, ms.NumGC)
	}

	s.Stop()
	s.Stop()                      // idempotent
	(*RuntimeSampler)(nil).Stop() // nil-safe
	if r.StartRuntimeSampler(0) != nil {
		t.Fatal("non-positive interval must return a nil sampler")
	}
	if (*Registry)(nil).StartRuntimeSampler(time.Second) != nil {
		t.Fatal("nil registry must return a nil sampler")
	}
}

func TestRuntimeSamplerTicks(t *testing.T) {
	r := NewRegistry()
	s := r.StartRuntimeSampler(time.Millisecond)
	defer s.Stop()
	h := r.Histogram("runtime.gc_pause_ms")
	deadline := time.Now().Add(5 * time.Second)
	for h.Count() == 0 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(2 * time.Millisecond)
	}
	if h.Count() == 0 {
		t.Fatal("background ticks never observed a GC pause")
	}
}
