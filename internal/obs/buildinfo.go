package obs

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

var versionOnce = sync.OnceValue(computeVersion)

// Version returns a one-line build description: module version (or
// "devel"), the VCS revision when the binary was built from a
// checkout, and the Go toolchain/platform. It is printed by every
// binary's -version flag and stamped into every trace file header.
func Version() string { return versionOnce() }

func computeVersion() string {
	version := "devel"
	revision, modified := "", ""
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				if len(s.Value) >= 12 {
					revision = s.Value[:12]
				} else {
					revision = s.Value
				}
			case "vcs.modified":
				if s.Value == "true" {
					modified = "+dirty"
				}
			}
		}
	}
	out := version
	if revision != "" {
		out += " (" + revision + modified + ")"
	}
	return fmt.Sprintf("%s %s %s/%s", out, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
