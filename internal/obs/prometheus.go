package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// format version 0.0.4 served by /metrics when negotiated.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a dotted registry name (service.cache.hit) onto the
// Prometheus metric-name alphabet [a-zA-Z0-9_:]: every disallowed
// byte becomes '_', and a leading digit is prefixed with '_'. The
// mapping is deterministic so scrapes stay diffable.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a sample value the way Prometheus expects:
// shortest round-trip decimal, with infinities spelled +Inf/-Inf.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled _bucket series plus
// _sum and _count. Families are emitted in sorted order and names are
// sanitized with promName, so two scrapes of a quiescent registry are
// byte-identical. A nil registry writes nothing.
//
// The registry's log-bucketed histograms translate directly: bucket i
// counts values <= bounds[i] (see Histogram.Observe), so the running
// prefix sum over the buckets is exactly the cumulative count the
// le="bounds[i]" convention requires; the overflow bucket folds into
// le="+Inf". The _count sample is computed from the same prefix sum —
// not the histogram's separate total — so `+Inf bucket == _count`
// holds even while other goroutines are observing mid-scrape.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}

	type hist struct {
		bounds []float64
		counts []uint64
		sum    float64
	}
	counters := make(map[string]int64)
	gauges := make(map[string]float64)
	hists := make(map[string]hist)
	help := make(map[string]string)

	r.mu.Lock()
	for name, c := range r.counters {
		n := promName(name)
		counters[n] = c.Value()
		help[n] = name
	}
	for name, g := range r.gauges {
		n := promName(name)
		gauges[n] = g.Value()
		help[n] = name
	}
	for name, h := range r.hists {
		n := promName(name)
		hs := hist{
			bounds: h.bounds,
			counts: make([]uint64, len(h.counts)),
			sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.counts[i] = h.counts[i].Load()
		}
		hists[n] = hs
		help[n] = name
	}
	r.mu.Unlock()

	names := make([]string, 0, len(counters)+len(gauges)+len(hists))
	for n := range counters {
		names = append(names, n)
	}
	for n := range gauges {
		names = append(names, n)
	}
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, n := range names {
		fmt.Fprintf(bw, "# HELP %s hmeans metric %s\n", n, help[n])
		if v, ok := counters[n]; ok {
			fmt.Fprintf(bw, "# TYPE %s counter\n", n)
			fmt.Fprintf(bw, "%s %s\n", n, promFloat(float64(v)))
			continue
		}
		if v, ok := gauges[n]; ok {
			fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
			fmt.Fprintf(bw, "%s %s\n", n, promFloat(v))
			continue
		}
		h := hists[n]
		fmt.Fprintf(bw, "# TYPE %s histogram\n", n)
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i]
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, promFloat(b), cum)
		}
		cum += h.counts[len(h.counts)-1]
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(h.sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, cum)
	}
	return bw.Flush()
}

// PromStats summarizes a validated exposition document.
type PromStats struct {
	Counters   int // families typed counter
	Gauges     int // families typed gauge
	Histograms int // families typed histogram
	Samples    int // total sample lines
}

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promFamily tracks validator state for one metric family.
type promFamily struct {
	typ     string
	help    bool
	lastLE  float64
	lastCum uint64
	buckets int
	infSeen bool
	infCum  uint64
	sumSeen bool
	count   uint64
	cntSeen bool
}

// ValidatePrometheus is a hand-rolled oracle for the text exposition
// format, used by tests and `report -validate-metrics` so CI does not
// need a real Prometheus server to prove /metrics is scrapable. It
// checks structure rather than values:
//
//   - every sample line belongs to a family announced by a # TYPE
//     line earlier in the document, and that family also carries HELP
//   - TYPE appears at most once per family and names match the
//     Prometheus metric-name grammar
//   - histogram buckets have strictly ascending le labels, cumulative
//     counts that never decrease, a terminal le="+Inf" bucket, and
//     _sum/_count samples with _count equal to the +Inf bucket
//
// It returns counts of what it saw so callers can also assert the
// document is non-trivial.
func ValidatePrometheus(r io.Reader) (PromStats, error) {
	var stats PromStats
	fams := make(map[string]*promFamily)
	family := func(name string) *promFamily {
		f := fams[name]
		if f == nil {
			f = &promFamily{lastLE: math.Inf(-1)}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fail := func(format string, args ...any) (PromStats, error) {
			return stats, fmt.Errorf("line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				return fail("malformed HELP: %q", line)
			}
			family(name).help = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || !promNameRe.MatchString(name) {
				return fail("malformed TYPE: %q", line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fail("unknown type %q for %s", typ, name)
			}
			f := family(name)
			if f.typ != "" {
				return fail("duplicate TYPE for %s", name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal and ignored
		}

		// Sample line: name[{labels}] value
		nameEnd := strings.IndexAny(line, "{ ")
		if nameEnd < 0 {
			return fail("malformed sample: %q", line)
		}
		name := line[:nameEnd]
		if !promNameRe.MatchString(name) {
			return fail("invalid metric name %q", name)
		}
		var labels, valueStr string
		if line[nameEnd] == '{' {
			close := strings.Index(line, "}")
			if close < 0 {
				return fail("unterminated labels: %q", line)
			}
			labels = line[nameEnd+1 : close]
			valueStr = strings.TrimSpace(line[close+1:])
		} else {
			valueStr = strings.TrimSpace(line[nameEnd+1:])
		}
		// A timestamp after the value is legal; we do not emit one.
		if i := strings.IndexByte(valueStr, ' '); i >= 0 {
			valueStr = valueStr[:i]
		}
		value, err := parsePromValue(valueStr)
		if err != nil {
			return fail("bad value %q for %s: %v", valueStr, name, err)
		}
		stats.Samples++

		// Resolve the family: histogram samples use suffixed names.
		fam, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, s)
			if base != name {
				if f, ok := fams[base]; ok && f.typ == "histogram" {
					fam, suffix = base, s
				}
				break
			}
		}
		f, ok := fams[fam]
		if !ok || f.typ == "" {
			return fail("sample %s has no preceding # TYPE", name)
		}
		if !f.help {
			return fail("family %s has no # HELP", fam)
		}

		switch suffix {
		case "_bucket":
			le, lok := promLabel(labels, "le")
			if !lok {
				return fail("%s_bucket without le label", fam)
			}
			bound, err := parsePromValue(le)
			if err != nil {
				return fail("bad le %q on %s: %v", le, fam, err)
			}
			if !(bound > f.lastLE) {
				return fail("%s buckets not ascending: le=%q after %v", fam, le, f.lastLE)
			}
			cum := uint64(value)
			if value < 0 || float64(cum) != value {
				return fail("%s bucket count %v not a whole number", fam, value)
			}
			if cum < f.lastCum {
				return fail("%s cumulative counts decrease at le=%q (%d < %d)", fam, le, cum, f.lastCum)
			}
			f.lastLE, f.lastCum = bound, cum
			f.buckets++
			if math.IsInf(bound, 1) {
				f.infSeen, f.infCum = true, cum
			}
		case "_sum":
			f.sumSeen = true
		case "_count":
			f.cntSeen = true
			f.count = uint64(value)
		default:
			if f.typ == "histogram" {
				return fail("bare sample %s inside histogram family", name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return stats, err
	}

	for name, f := range fams {
		if f.typ == "" {
			return stats, fmt.Errorf("family %s has HELP but no TYPE", name)
		}
		switch f.typ {
		case "counter":
			stats.Counters++
		case "gauge":
			stats.Gauges++
		case "histogram":
			stats.Histograms++
			if f.buckets == 0 {
				return stats, fmt.Errorf("histogram %s has no buckets", name)
			}
			if !f.infSeen {
				return stats, fmt.Errorf("histogram %s is missing its le=\"+Inf\" terminal bucket", name)
			}
			if !f.sumSeen {
				return stats, fmt.Errorf("histogram %s is missing _sum", name)
			}
			if !f.cntSeen {
				return stats, fmt.Errorf("histogram %s is missing _count", name)
			}
			if f.count != f.infCum {
				return stats, fmt.Errorf("histogram %s: _count=%d != +Inf bucket %d", name, f.count, f.infCum)
			}
		}
	}
	return stats, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// promLabel pulls one label value out of a label body like
// `le="0.25",code="200"`. Our emitted labels never contain escaped
// quotes, and the validator only needs le.
func promLabel(body, key string) (string, bool) {
	for _, part := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || strings.TrimSpace(k) != key {
			continue
		}
		v = strings.TrimSpace(v)
		if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
			return v[1 : len(v)-1], true
		}
	}
	return "", false
}
