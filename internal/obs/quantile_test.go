package obs

import (
	"math"
	"sort"
	"testing"

	"hmeans/internal/rng"
)

// TestQuantileAgainstSortedOracle pins the histogram's percentile
// math against the exact answer computed from a sorted slice: for
// log-spaced buckets with growth g, the interpolated estimate must
// land within one bucket of the oracle, i.e. within a factor of g.
func TestQuantileAgainstSortedOracle(t *testing.T) {
	const growth = 1.15
	bounds := LogBounds(0.05, 120_000, growth)
	for _, seed := range []uint64{1, 2, 3} {
		r := NewRegistry()
		h := r.Histogram("lat", bounds...)
		src := rng.New(seed)
		// A mix of a log-uniform body and a heavy tail, the shape the
		// recorder sees in practice.
		vals := make([]float64, 5000)
		for i := range vals {
			v := math.Exp(src.Float64()*8 - 2) // ~0.14ms .. 400ms
			if src.Float64() < 0.02 {
				v *= 40 // tail spikes
			}
			vals[i] = v
			h.Observe(v)
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for _, q := range []float64{0.50, 0.90, 0.95, 0.99, 0.999} {
			rank := int(math.Ceil(q * float64(len(sorted))))
			oracle := sorted[rank-1]
			got := h.Quantile(q)
			if got < oracle/growth || got > oracle*growth {
				t.Errorf("seed %d q=%v: Quantile = %v, oracle %v (allowed ×/÷ %v)",
					seed, q, got, oracle, growth)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Errorf("nil histogram Quantile = %v, want 0", got)
	}
	r := NewRegistry()
	h := r.Histogram("empty", 1, 10)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	h.Observe(5)
	got := h.Quantile(0.5)
	if got <= 1 || got > 10 {
		t.Errorf("single observation in (1,10] bucket: Quantile = %v", got)
	}
	// Overflow observations report the last bound, a lower bound on
	// the truth, never a fabricated larger number.
	h2 := r.Histogram("overflow", 1, 10)
	h2.Observe(1e9)
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("overflow Quantile = %v, want last bound 10", got)
	}
}

func TestLogBounds(t *testing.T) {
	b := LogBounds(1, 1000, 2)
	if len(b) == 0 || b[0] != 1 {
		t.Fatalf("LogBounds start = %v", b)
	}
	if last := b[len(b)-1]; last < 1000 {
		t.Errorf("LogBounds stops at %v before hi", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != b[i-1]*2 {
			t.Errorf("bound %d: %v is not 2× %v", i, b[i], b[i-1])
		}
	}
	if LogBounds(0, 10, 2) != nil || LogBounds(1, 1, 2) != nil || LogBounds(1, 10, 1) != nil {
		t.Error("degenerate LogBounds inputs must return nil")
	}
}

// TestHistogramObserveAllocationFree pins the recorder contract the
// load harness depends on: recording a latency in steady state must
// not allocate.
func TestHistogramObserveAllocationFree(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("alloc", LogBounds(0.05, 120_000, 1.15)...)
	h.Observe(1) // warm up
	if allocs := testing.AllocsPerRun(100, func() { h.Observe(3.7) }); allocs != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", allocs)
	}
}
