package obs

import (
	"sync"
	"time"
)

// StageSummary is the per-span-name rollup the timings table renders:
// how often a stage ran and where its wall-clock and CPU time went.
type StageSummary struct {
	Name  string
	Count int
	Wall  time.Duration
	CPU   time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Aggregator is an in-memory sink that rolls finished spans up into
// per-stage summaries without retaining the spans themselves, so it
// is safe to leave attached for the life of a long process. Events
// are counted by name.
type Aggregator struct {
	mu     sync.Mutex
	stages map[string]*StageSummary
	order  []string
	events map[string]int
}

// NewAggregator builds an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{stages: make(map[string]*StageSummary), events: make(map[string]int)}
}

// WriteSpan folds one span into its stage summary.
func (a *Aggregator) WriteSpan(s SpanData) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stages[s.Name]
	if st == nil {
		st = &StageSummary{Name: s.Name, Min: s.Dur, Max: s.Dur}
		a.stages[s.Name] = st
		a.order = append(a.order, s.Name)
	}
	st.Count++
	st.Wall += s.Dur
	st.CPU += s.CPU
	if s.Dur < st.Min {
		st.Min = s.Dur
	}
	if s.Dur > st.Max {
		st.Max = s.Dur
	}
}

// WriteEvent counts the event under its name.
func (a *Aggregator) WriteEvent(e EventData) {
	a.mu.Lock()
	a.events[e.Name]++
	a.mu.Unlock()
}

// Summary returns the per-stage rollups in first-seen order.
func (a *Aggregator) Summary() []StageSummary {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]StageSummary, 0, len(a.order))
	for _, name := range a.order {
		out = append(out, *a.stages[name])
	}
	return out
}

// EventCounts returns a copy of the per-name event counts.
func (a *Aggregator) EventCounts() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.events))
	for k, v := range a.events {
		out[k] = v
	}
	return out
}

// Collector is a sink that retains every span and event, for tests
// and for post-hoc analysis of short runs. Use Aggregator for
// anything long-lived.
type Collector struct {
	mu     sync.Mutex
	spans  []SpanData
	events []EventData
}

// NewCollector builds an empty collector.
func NewCollector() *Collector { return &Collector{} }

// WriteSpan retains the span.
func (c *Collector) WriteSpan(s SpanData) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

// WriteEvent retains the event.
func (c *Collector) WriteEvent(e EventData) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Trace snapshots the collected records as a Trace.
func (c *Collector) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return &Trace{
		Spans:  append([]SpanData(nil), c.spans...),
		Events: append([]EventData(nil), c.events...),
	}
}

// Summarize rolls a span list up into per-stage summaries, first-seen
// order — the offline twin of the Aggregator sink.
func Summarize(spans []SpanData) []StageSummary {
	a := NewAggregator()
	for _, s := range spans {
		a.WriteSpan(s)
	}
	return a.Summary()
}

// Coverage measures how much of the root spans' wall-clock their
// direct children account for: Σ dur(children of any root-named
// span) / Σ dur(root-named spans). The boolean is false when the
// trace has no span named root. Values near 1 mean the stage spans
// explain essentially all of the pipeline's time.
func (t *Trace) Coverage(root string) (float64, bool) {
	rootIDs := make(map[uint64]bool)
	var rootSum time.Duration
	for _, s := range t.Spans {
		if s.Name == root {
			rootIDs[s.ID] = true
			rootSum += s.Dur
		}
	}
	if len(rootIDs) == 0 || rootSum == 0 {
		return 0, false
	}
	var childSum time.Duration
	for _, s := range t.Spans {
		if rootIDs[s.Parent] {
			childSum += s.Dur
		}
	}
	return float64(childSum) / float64(rootSum), true
}
