package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Register mounts the observability endpoints onto a mux that already
// serves application routes — the way hmeansd shares one port between
// /v1/score and /metrics.
func TestRegisterSharesMux(t *testing.T) {
	o := New()
	o.Metrics().Counter("service.requests").Add(2)
	mux := http.NewServeMux()
	mux.HandleFunc("/app", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "app here")
	})
	o.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/app"); code != 200 || body != "app here" {
		t.Fatalf("application route broken after Register: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "service.requests") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}
