package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
)

// Flags is the standard observability flag block shared by the cmd/
// binaries. Register it with RegisterFlags, then Start a Session
// after flag parsing.
type Flags struct {
	// HTTP is the -obs.http listen address for the live
	// introspection server (pprof, expvar, /metrics, /trace).
	HTTP string
	// Trace is the -obs.trace JSONL trace output path.
	Trace string
	// CPUProfile and MemProfile are pprof output paths.
	CPUProfile string
	MemProfile string
	// Detail turns on high-volume instrumentation (per-merge linkage
	// events); see Observer.SetDetail.
	Detail bool
	// Version is the -version flag: print build info and exit.
	Version bool
}

// RegisterFlags registers the -obs.* block and -version on fs.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.HTTP, "obs.http", "", "serve live introspection (pprof, expvar, /metrics, /trace) on this address, e.g. :6060")
	fs.StringVar(&f.Trace, "obs.trace", "", "write a JSONL span/event trace to this file")
	fs.StringVar(&f.CPUProfile, "obs.cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&f.MemProfile, "obs.memprofile", "", "write a heap profile to this file on exit")
	fs.BoolVar(&f.Detail, "obs.detail", false, "record high-volume events too (per-merge linkage events)")
	fs.BoolVar(&f.Version, "version", false, "print version/build info and exit")
	return f
}

// PrintVersion handles the -version flag: when set it prints the
// build description and reports true (the caller should then return
// without running).
func (f *Flags) PrintVersion(w io.Writer, name string) bool {
	if !f.Version {
		return false
	}
	fmt.Fprintf(w, "%s %s\n", name, Version())
	return true
}

// Enabled reports whether any observability output was requested.
func (f *Flags) Enabled() bool {
	return f.HTTP != "" || f.Trace != "" || f.CPUProfile != "" || f.MemProfile != "" || f.Detail
}

// Session is a running observability configuration: the Observer to
// thread into pipeline configs, plus the file handles and server it
// owns. Always Close it (idempotent) — Close stops the CPU profile,
// writes the heap profile and flushes the trace.
type Session struct {
	// Obs is nil when no observability flag was set, so an untouched
	// command line keeps the zero-overhead path.
	Obs *Observer
	// Agg aggregates per-stage summaries for the life of the session.
	Agg *Aggregator
	// HTTPAddr is the bound address of the introspection server,
	// empty when -obs.http was not set.
	HTTPAddr string

	trace       *JSONLSink
	traceFile   *os.File
	cpuFile     *os.File
	memPath     string
	httpClose   func() error
	prevDefault *Observer
	restoreDef  bool
	closed      bool
}

// Start builds the Session described by the flags: sinks, profiles
// and the HTTP server. It installs the observer as the process
// default (see SetDefault) so configuration-less call paths
// (internal/par, internal/simbench) report into it too.
func (f *Flags) Start() (*Session, error) {
	s := &Session{}
	if !f.Enabled() {
		return s, nil
	}
	var sinks []Sink
	s.Agg = NewAggregator()
	sinks = append(sinks, s.Agg)
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		s.traceFile = file
		s.trace = NewJSONLSink(file)
		sinks = append(sinks, s.trace)
	}
	var live *LiveSink
	if f.HTTP != "" {
		live = NewLiveSink()
		sinks = append(sinks, live)
	}
	s.Obs = New(sinks...)
	s.Obs.SetDetail(f.Detail)
	s.Obs.Metrics().PublishExpvar("hmeans")
	if f.HTTP != "" {
		ln, closeFn, err := Serve(f.HTTP, s.Obs)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("obs: http: %w", err)
		}
		s.HTTPAddr = ln.Addr().String()
		s.httpClose = closeFn
	}
	if f.CPUProfile != "" {
		file, err := os.Create(f.CPUProfile)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			s.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		s.cpuFile = file
	}
	s.memPath = f.MemProfile
	s.prevDefault = SetDefault(s.Obs)
	s.restoreDef = true
	return s, nil
}

// Close tears the session down: stops the CPU profile, writes the
// heap profile, flushes and closes the trace, shuts the HTTP server
// down and restores the previous default observer. Safe to call on a
// disabled session and idempotent.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.restoreDef {
		SetDefault(s.prevDefault)
	}
	if s.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(s.cpuFile.Close())
	}
	if s.memPath != "" {
		file, err := os.Create(s.memPath)
		if err != nil {
			keep(err)
		} else {
			runtime.GC()
			keep(pprof.WriteHeapProfile(file))
			keep(file.Close())
		}
	}
	if s.trace != nil {
		keep(s.trace.Close())
		keep(s.traceFile.Close())
	}
	if s.httpClose != nil {
		keep(s.httpClose())
	}
	return first
}
