package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLiveSinkBroadcast(t *testing.T) {
	l := NewLiveSink()
	ch, cancel := l.Subscribe()
	defer cancel()
	o := New(l)
	sp := o.StartSpan("stage")
	sp.End()
	select {
	case raw := <-ch:
		var line traceLine
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatal(err)
		}
		if line.Type != "span" || line.Name != "stage" {
			t.Fatalf("broadcast line = %+v", line)
		}
	case <-time.After(time.Second):
		t.Fatal("no broadcast received")
	}
	cancel()
	cancel() // idempotent
	sp2 := o.StartSpan("after-cancel")
	sp2.End() // must not panic or block
}

func TestHandlerEndpoints(t *testing.T) {
	live := NewLiveSink()
	o := New(live)
	o.Metrics().Counter("pipeline.runs").Add(3)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/"); code != 200 || !strings.Contains(body, "/debug/pprof") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 ||
		!strings.Contains(body, "pipeline.runs") || !strings.Contains(body, "mem.total_alloc_bytes") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}
}

func TestTraceEndpointStreams(t *testing.T) {
	live := NewLiveSink()
	o := New(live)
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/trace", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/trace: %d", resp.StatusCode)
	}

	// The subscription is registered asynchronously with the request;
	// keep emitting until a line arrives.
	lines := make(chan string, 1)
	go func() {
		r := bufio.NewReader(resp.Body)
		line, err := r.ReadString('\n')
		if err == nil {
			lines <- line
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		sp := o.StartSpan("tick")
		sp.End()
		select {
		case line := <-lines:
			if !strings.Contains(line, `"tick"`) {
				t.Fatalf("streamed line %q", line)
			}
			return
		case <-deadline:
			t.Fatal("no streamed span within 5s")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestTraceEndpointWithoutLiveSink(t *testing.T) {
	o := New() // no live sink
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/trace without live sink: %d", resp.StatusCode)
	}
}

func TestFlagsDisabledSession(t *testing.T) {
	f := &Flags{}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs != nil || s.HTTPAddr != "" {
		t.Fatalf("disabled session not empty: %+v", s)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFlagsFullSession(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{
		HTTP:       "127.0.0.1:0",
		Trace:      filepath.Join(dir, "trace.jsonl"),
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Detail:     true,
	}
	s, err := f.Start()
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs == nil || !s.Obs.Detail() {
		t.Fatal("session observer missing or detail off")
	}
	if Default() != s.Obs {
		t.Fatal("session did not install the default observer")
	}
	sp := s.Obs.StartSpan("stage")
	sp.End()

	resp, err := http.Get("http://" + s.HTTPAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics over session server: %d", resp.StatusCode)
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if Default() != nil {
		t.Fatal("default observer not restored")
	}

	raw, err := os.ReadFile(f.Trace)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateTrace(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("session trace invalid: %v", err)
	}
	if stats.Spans != 1 {
		t.Fatalf("session trace spans = %d", stats.Spans)
	}
	for _, p := range []string{f.CPUProfile, f.MemProfile} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}

	// Aggregator kept the stage rollup.
	sum := s.Agg.Summary()
	if len(sum) != 1 || sum[0].Name != "stage" {
		t.Fatalf("session aggregator: %+v", sum)
	}
}

func TestFlagsBadPaths(t *testing.T) {
	f := &Flags{Trace: filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")}
	if _, err := f.Start(); err == nil {
		t.Fatal("unwritable trace path accepted")
	}
	if Default() != nil {
		t.Fatal("failed Start leaked a default observer")
	}
}

func TestRegisterFlagsParses(t *testing.T) {
	fs := flagSet()
	f := RegisterFlags(fs)
	err := fs.Parse([]string{"-obs.trace", "x.jsonl", "-obs.detail", "-version"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Trace != "x.jsonl" || !f.Detail || !f.Version {
		t.Fatalf("parsed flags: %+v", f)
	}
	var sb strings.Builder
	if !f.PrintVersion(&sb, "tool") {
		t.Fatal("PrintVersion should fire")
	}
	if !strings.HasPrefix(sb.String(), "tool ") {
		t.Fatalf("version line %q", sb.String())
	}
}

func flagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}
