package obs

import (
	"expvar"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics namespace: counters, gauges and
// fixed-bucket histograms, created on first use and safe for
// concurrent access. A nil *Registry hands out nil instruments whose
// methods all no-op, so instrumented code never branches.
//
// Instrument lookup takes the registry mutex; hot loops should
// resolve their instruments once up front and hold the pointers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; +Inf is implicit) on first use.
// Later calls reuse the existing instrument and ignore bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets; bucket i counts
// values <= bounds[i], with one overflow bucket above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the observation mean, 0 before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) of the observed
// values from the bucket counts, interpolating linearly inside the
// bucket that contains the target rank. The estimate is therefore
// never off by more than one bucket width — with LogBounds buckets,
// a bounded relative error. Values that landed in the overflow
// bucket are reported as the last bound (a lower bound on the truth).
// Returns 0 before any observation.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := float64(h.count.Load())
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * total
	if rank < 1 {
		rank = 1
	}
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 || cum+c < rank {
			cum += c
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (rank-cum)/c*(h.bounds[i]-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

// LogBounds builds geometrically spaced histogram bucket bounds from
// lo up to at least hi, each growth times the previous. Log spacing
// gives latency histograms a constant *relative* resolution: the
// quantile error is bounded by the growth factor at every magnitude,
// which a linear grid cannot do across µs-to-minutes ranges.
func LogBounds(lo, hi, growth float64) []float64 {
	if !(lo > 0) || !(hi > lo) || !(growth > 1) {
		return nil
	}
	var bounds []float64
	for b := lo; ; b *= growth {
		bounds = append(bounds, b)
		if b >= hi {
			return bounds
		}
	}
}

// HistogramSnapshot is an exportable view of a histogram.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot returns a point-in-time copy of every instrument, shaped
// for JSON (the /metrics endpoint and the expvar export). Instruments
// are read in sorted-name order and encoding/json sorts map keys, so
// rendering a snapshot of a quiescent registry is byte-deterministic:
// two scrapes diff clean in CI artifacts.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range sortedKeys(r.counters) {
		out[name] = r.counters[name].Value()
	}
	for _, name := range sortedKeys(r.gauges) {
		out[name] = r.gauges[name].Value()
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		snap := HistogramSnapshot{
			Bounds: h.bounds,
			Counts: make([]uint64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			snap.Counts[i] = h.counts[i].Load()
		}
		out[name] = snap
	}
	return out
}

// sortedKeys returns the map's keys in ascending order, giving every
// snapshot and exposition a deterministic instrument order.
func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CaptureMemStats copies the headline runtime.ReadMemStats figures
// into gauges (mem.heap_alloc_bytes, mem.total_alloc_bytes,
// mem.sys_bytes, mem.mallocs, mem.num_gc, mem.pause_total_ms).
// ReadMemStats stops the world briefly, so call this at stage
// boundaries, not in loops.
func (r *Registry) CaptureMemStats() {
	if r == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.setMemStats(&ms)
}

// setMemStats publishes one already-read MemStats, shared by
// CaptureMemStats and the RuntimeSampler so both take exactly one
// stop-the-world read per capture.
func (r *Registry) setMemStats(ms *runtime.MemStats) {
	r.Gauge("mem.heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	r.Gauge("mem.total_alloc_bytes").Set(float64(ms.TotalAlloc))
	r.Gauge("mem.sys_bytes").Set(float64(ms.Sys))
	r.Gauge("mem.mallocs").Set(float64(ms.Mallocs))
	r.Gauge("mem.num_gc").Set(float64(ms.NumGC))
	r.Gauge("mem.pause_total_ms").Set(float64(ms.PauseTotalNs) / 1e6)
}

// expvar.Publish panics on duplicate names; remember what this
// process already exported.
var (
	expvarMu        sync.Mutex
	expvarPublished = make(map[string]bool)
)

// PublishExpvar exports the registry's live snapshot under the given
// expvar name (shown by /debug/vars). Publishing the same name twice
// rebinds it to this registry instead of panicking.
func (r *Registry) PublishExpvar(name string) {
	if r == nil {
		return
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if !expvarPublished[name] {
		expvarPublished[name] = true
		expvar.Publish(name, expvar.Func(func() any { return currentExpvarTarget(name).Snapshot() }))
	}
	expvarTargets.Store(name, r)
}

// expvarTargets maps expvar names to the registry currently bound to
// them, letting tests (and successive Sessions) re-point an exported
// name without tripping expvar's duplicate-publish panic.
var expvarTargets sync.Map

func currentExpvarTarget(name string) *Registry {
	if v, ok := expvarTargets.Load(name); ok {
		return v.(*Registry)
	}
	return nil
}
