package obs

import "time"

// SpanData is a finished span as delivered to sinks.
type SpanData struct {
	// ID is unique within one Observer; Parent is the enclosing
	// span's ID, 0 for roots.
	ID, Parent uint64
	Name       string
	Start      time.Time
	// Dur is the span's wall-clock duration.
	Dur time.Duration
	// CPU is the process-wide CPU time (user+system, all threads)
	// consumed while the span was open; zero on platforms without
	// rusage support.
	CPU   time.Duration
	Attrs []Attr
}

// EventData is a point-in-time record (an epoch, a merge, one
// measured workload) as delivered to sinks.
type EventData struct {
	// Span is the enclosing span's ID, 0 when the event is
	// free-standing.
	Span  uint64
	Name  string
	Time  time.Time
	Attrs []Attr
}

// Sink consumes finished spans and events. Implementations must be
// safe for concurrent use: spans end on whatever goroutine ran the
// instrumented stage.
type Sink interface {
	WriteSpan(SpanData)
	WriteEvent(EventData)
}

// NopSink discards everything. It is the sink New installs when
// given none, and the configuration the overhead benchmarks measure:
// instrumentation runs end to end but every record is dropped here.
type NopSink struct{}

// WriteSpan discards the span.
func (NopSink) WriteSpan(SpanData) {}

// WriteEvent discards the event.
func (NopSink) WriteEvent(EventData) {}

// MultiSink fans every record out to each member in order.
type MultiSink []Sink

// WriteSpan forwards the span to every member.
func (m MultiSink) WriteSpan(s SpanData) {
	for _, sk := range m {
		sk.WriteSpan(s)
	}
}

// WriteEvent forwards the event to every member.
func (m MultiSink) WriteEvent(e EventData) {
	for _, sk := range m {
		sk.WriteEvent(e)
	}
}
