package obs

import (
	"runtime"
	"sync"
	"time"
)

// RuntimeSampler periodically folds runtime health into a registry:
// the CaptureMemStats gauges, a runtime.goroutines gauge, and a
// runtime.gc_pause_ms histogram fed from the MemStats pause ring so
// GC stalls show up as a tail, not just a total. A nil sampler is
// inert, so callers can unconditionally defer Stop.
type RuntimeSampler struct {
	reg      *Registry
	pause    *Histogram
	interval time.Duration
	lastGC   uint32

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartRuntimeSampler launches a background goroutine sampling the
// runtime into r every interval until Stop is called. It returns nil
// (a no-op sampler) for a nil registry or a non-positive interval.
// One synchronous sample is taken before returning so /metrics is
// never empty between boot and the first tick.
func (r *Registry) StartRuntimeSampler(interval time.Duration) *RuntimeSampler {
	if r == nil || interval <= 0 {
		return nil
	}
	s := &RuntimeSampler{
		reg:      r,
		pause:    r.Histogram("runtime.gc_pause_ms", LogBounds(0.01, 10_000, 2)...),
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.sample()
	go s.run()
	return s
}

func (s *RuntimeSampler) run() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sample()
		}
	}
}

// sample takes one ReadMemStats and publishes it. It reuses the same
// gauges as CaptureMemStats so scrapers see a single source of truth.
func (s *RuntimeSampler) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.setMemStats(&ms)
	s.reg.Gauge("runtime.goroutines").Set(float64(runtime.NumGoroutine()))

	// PauseNs is a 256-entry ring: the pause of GC cycle j (1-based)
	// lives at PauseNs[(j+255)%256]. Observe every cycle since the
	// previous sample; if more than 256 elapsed, the oldest were
	// overwritten and only the surviving window is recorded.
	n := ms.NumGC
	from := s.lastGC
	if n > 256 && from < n-256 {
		from = n - 256
	}
	for j := from + 1; j <= n; j++ {
		s.pause.Observe(float64(ms.PauseNs[(j+255)%256]) / 1e6)
	}
	s.lastGC = n
}

// Stop halts the sampler and waits for its goroutine to exit. Safe to
// call multiple times and on a nil sampler.
func (s *RuntimeSampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() {
		close(s.stop)
		<-s.done
	})
}
