//go:build !unix

package obs

import "time"

// processCPUTime is unavailable off unix; spans report zero CPU.
func processCPUTime() time.Duration { return 0 }
