package dataio

import (
	"strings"
	"testing"
)

func TestReadScoresWithHeader(t *testing.T) {
	in := "workload,score\nalpha,4.75\nbeta,1.09\n"
	s, err := ReadScores(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Workloads) != 2 || s.Workloads[0] != "alpha" || s.Values[1] != 1.09 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestReadScoresWithoutHeader(t *testing.T) {
	s, err := ReadScores(strings.NewReader("alpha,4.75\nbeta,2\n"))
	if err != nil || len(s.Values) != 2 {
		t.Fatalf("parsed %+v, %v", s, err)
	}
}

func TestReadScoresErrors(t *testing.T) {
	if _, err := ReadScores(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadScores(strings.NewReader("workload,score\nalpha,notanumber\n")); err == nil {
		t.Error("bad value accepted")
	}
	if _, err := ReadScores(strings.NewReader("lonefield\n")); err == nil {
		t.Error("single-field row accepted")
	}
}

func TestScoresRoundTrip(t *testing.T) {
	orig := Scores{Workloads: []string{"a", "b"}, Values: []float64{1.5, 2.25}}
	var sb strings.Builder
	if err := WriteScores(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScores(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Values {
		if back.Workloads[i] != orig.Workloads[i] || back.Values[i] != orig.Values[i] {
			t.Fatalf("round trip: %+v vs %+v", back, orig)
		}
	}
}

func TestReadClusters(t *testing.T) {
	in := "workload,cluster\nalpha,0\nbeta,0\ngamma,1\n"
	c, err := ReadClusters(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Labels) != 3 || c.Labels[2] != 1 {
		t.Fatalf("parsed %+v", c)
	}
	if _, err := ReadClusters(strings.NewReader("a,xyz\n")); err == nil {
		t.Error("bad label accepted")
	}
	if _, err := ReadClusters(strings.NewReader("workload,cluster\n")); err == nil {
		t.Error("header-only input accepted")
	}
}

func TestReadMatrix(t *testing.T) {
	in := "workload,cpu,mem\nalpha,1,2\nbeta,3,4\n"
	m, err := ReadMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Features) != 2 || m.Features[1] != "mem" {
		t.Fatalf("features %v", m.Features)
	}
	if m.Rows[1][0] != 3 || m.Workloads[0] != "alpha" {
		t.Fatalf("parsed %+v", m)
	}
}

func TestReadMatrixErrors(t *testing.T) {
	if _, err := ReadMatrix(strings.NewReader("workload,cpu\n")); err == nil {
		t.Error("header-only matrix accepted")
	}
	if _, err := ReadMatrix(strings.NewReader("workload,cpu\nalpha,1,2\n")); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := ReadMatrix(strings.NewReader("workload,cpu\nalpha,NaNope\n")); err == nil {
		t.Error("bad cell accepted")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	orig := Matrix{
		Workloads: []string{"a", "b"},
		Features:  []string{"f1", "f2"},
		Rows:      [][]float64{{0.5, -1}, {2, 3.75}},
	}
	var sb strings.Builder
	if err := WriteMatrix(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrix(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Rows {
		for j := range orig.Rows[i] {
			if back.Rows[i][j] != orig.Rows[i][j] {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestBlankLinesSkipped(t *testing.T) {
	in := "workload,score\n\nalpha,1\n\nbeta,2\n"
	s, err := ReadScores(strings.NewReader(in))
	if err != nil || len(s.Values) != 2 {
		t.Fatalf("parsed %+v, %v", s, err)
	}
}
