// Package dataio reads and writes the CSV formats the command-line
// tools exchange: score vectors, cluster assignments and
// characterization matrices.
package dataio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Scores is a named score vector (workload → score).
type Scores struct {
	Workloads []string
	Values    []float64
}

// ReadScores parses a two-column CSV "workload,score" with an
// optional header row (detected when the second field of the first
// row is not numeric).
func ReadScores(r io.Reader) (Scores, error) {
	var out Scores
	records, err := readAll(r, 2)
	if err != nil {
		return out, err
	}
	for i, rec := range records {
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			if i == 0 {
				continue // header
			}
			return out, fmt.Errorf("dataio: row %d: bad score %q", i+1, rec[1])
		}
		out.Workloads = append(out.Workloads, strings.TrimSpace(rec[0]))
		out.Values = append(out.Values, v)
	}
	if len(out.Values) == 0 {
		return out, errors.New("dataio: no scores found")
	}
	return out, nil
}

// WriteScores writes "workload,score" rows with a header.
func WriteScores(w io.Writer, s Scores) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "score"}); err != nil {
		return err
	}
	for i, name := range s.Workloads {
		if err := cw.Write([]string{name, strconv.FormatFloat(s.Values[i], 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Clusters maps workload names to cluster labels.
type Clusters struct {
	Workloads []string
	Labels    []int
}

// ReadClusters parses a two-column CSV "workload,cluster" with an
// optional header.
func ReadClusters(r io.Reader) (Clusters, error) {
	var out Clusters
	records, err := readAll(r, 2)
	if err != nil {
		return out, err
	}
	for i, rec := range records {
		v, err := strconv.Atoi(strings.TrimSpace(rec[1]))
		if err != nil {
			if i == 0 {
				continue // header
			}
			return out, fmt.Errorf("dataio: row %d: bad cluster label %q", i+1, rec[1])
		}
		out.Workloads = append(out.Workloads, strings.TrimSpace(rec[0]))
		out.Labels = append(out.Labels, v)
	}
	if len(out.Labels) == 0 {
		return out, errors.New("dataio: no cluster assignments found")
	}
	return out, nil
}

// Matrix is a named characterization matrix: first CSV column is the
// workload name, the header row names the features.
type Matrix struct {
	Workloads []string
	Features  []string
	Rows      [][]float64
}

// ReadMatrix parses a characterization CSV. The first row must be a
// header ("workload,feat1,feat2,..."); every subsequent row is a
// workload.
func ReadMatrix(r io.Reader) (Matrix, error) {
	var out Matrix
	records, err := readAll(r, 2)
	if err != nil {
		return out, err
	}
	if len(records) < 2 {
		return out, errors.New("dataio: matrix needs a header and at least one workload row")
	}
	out.Features = make([]string, len(records[0])-1)
	for j, f := range records[0][1:] {
		out.Features[j] = strings.TrimSpace(f)
	}
	for i, rec := range records[1:] {
		if len(rec) != len(records[0]) {
			return out, fmt.Errorf("dataio: row %d has %d fields, header has %d", i+2, len(rec), len(records[0]))
		}
		row := make([]float64, len(rec)-1)
		for j, cell := range rec[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return out, fmt.Errorf("dataio: row %d, column %s: bad value %q", i+2, out.Features[j], cell)
			}
			row[j] = v
		}
		out.Workloads = append(out.Workloads, strings.TrimSpace(rec[0]))
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// WriteMatrix writes a characterization matrix with a header row.
func WriteMatrix(w io.Writer, m Matrix) error {
	cw := csv.NewWriter(w)
	header := append([]string{"workload"}, m.Features...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, name := range m.Workloads {
		rec := make([]string, 0, len(m.Rows[i])+1)
		rec = append(rec, name)
		for _, v := range m.Rows[i] {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func readAll(r io.Reader, minFields int) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	var out [][]string
	for _, rec := range records {
		if len(rec) == 0 || (len(rec) == 1 && strings.TrimSpace(rec[0]) == "") {
			continue
		}
		if len(rec) < minFields {
			return nil, fmt.Errorf("dataio: row %q has fewer than %d fields", strings.Join(rec, ","), minFields)
		}
		out = append(out, rec)
	}
	return out, nil
}
