package dataio

import (
	"strings"
	"testing"
)

// FuzzReadScores asserts the parser never panics and that successful
// parses are internally consistent.
func FuzzReadScores(f *testing.F) {
	f.Add("workload,score\na,1.5\nb,2\n")
	f.Add("a,1\n")
	f.Add("")
	f.Add("x,y,z\n1,2,3\n")
	f.Add("a,NaN\n")
	f.Add(",,\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadScores(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(s.Workloads) != len(s.Values) {
			t.Fatalf("inconsistent parse: %d names, %d values", len(s.Workloads), len(s.Values))
		}
		if len(s.Values) == 0 {
			t.Fatal("successful parse with no scores")
		}
		// Round trip: write and reparse must preserve the data.
		var sb strings.Builder
		if err := WriteScores(&sb, s); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadScores(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(back.Values) != len(s.Values) {
			t.Fatalf("round trip changed length: %d -> %d", len(s.Values), len(back.Values))
		}
	})
}

// FuzzReadMatrix asserts the matrix parser never panics and keeps
// rows rectangular.
func FuzzReadMatrix(f *testing.F) {
	f.Add("workload,f1,f2\na,1,2\nb,3,4\n")
	f.Add("workload\n")
	f.Add("w,f\nx,bad\n")
	f.Add("w,f\nx,1\ny,2,3\n")
	f.Fuzz(func(t *testing.T, input string) {
		m, err := ReadMatrix(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(m.Workloads) != len(m.Rows) {
			t.Fatal("names/rows mismatch")
		}
		for _, row := range m.Rows {
			if len(row) != len(m.Features) {
				t.Fatal("ragged parse accepted")
			}
		}
	})
}

// FuzzReadClusters asserts the cluster parser never panics.
func FuzzReadClusters(f *testing.F) {
	f.Add("workload,cluster\na,0\nb,1\n")
	f.Add("a,-3\n")
	f.Add("a,9999999999999999999999\n")
	f.Fuzz(func(t *testing.T, input string) {
		c, err := ReadClusters(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(c.Workloads) != len(c.Labels) {
			t.Fatal("names/labels mismatch")
		}
	})
}
