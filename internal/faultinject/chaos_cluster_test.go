// Cluster-level chaos: a seeded TCP chaos proxy sits between the
// gateway and ONE of its replicas, while the other replica stays
// clean. Every injected fault — dropped connections, truncated and
// corrupted responses — must resolve through the gateway as a
// retry-to-another-replica or a typed error: never a wrong score,
// never a stranded singleflight follower. Runs with the rest of the
// ChaosService suite under `make chaos-service`
// (go test -race -run ChaosService ./internal/faultinject/).
package faultinject_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hmeans/internal/faultinject"
	"hmeans/internal/gateway"
	"hmeans/internal/service"
)

// startChaosCluster boots a clean replica, a chaotic replica (fronted
// by a seeded proxy), and a gateway over both. The gateway's dispatch
// client has keep-alives off (truncate/corrupt need one connection per
// request) and a hard timeout so no fault can hang a dispatch.
func startChaosCluster(t *testing.T, seed uint64, plan faultinject.ChaosPlan) (*gateway.Gateway, string, *faultinject.ChaosProxy, string) {
	t.Helper()
	clean := httptest.NewServer(service.New(service.Config{MaxInflight: 4, QueueDepth: 64, CacheSize: 64}).Handler())
	t.Cleanup(clean.Close)
	chaotic := httptest.NewServer(service.New(service.Config{MaxInflight: 4, QueueDepth: 64, CacheSize: 64}).Handler())
	t.Cleanup(chaotic.Close)

	proxy, err := faultinject.NewChaosProxy(chaotic.Listener.Addr().String(), seed, plan)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var buf bytes.Buffer
		if err := proxy.WriteSchedule(&buf); err == nil {
			t.Logf("injected fault schedule:\n%s", buf.String())
		}
	})

	gw, err := gateway.New(gateway.Config{
		Replicas:  []string{clean.URL, proxy.URL()},
		Retries:   2,
		RetryBase: time.Millisecond,
		Seed:      seed,
		// High threshold: keep the chaotic replica in rotation so the
		// walk keeps exercising the fault path instead of settling on
		// the clean replica after three failures.
		BreakerThreshold: 1000,
		Client: &http.Client{
			Timeout:   2 * time.Second,
			Transport: &http.Transport{DisableKeepAlives: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts.URL, proxy, clean.URL
}

// TestChaosServiceClusterEveryFaultResolves drives payloads through
// the gateway while one replica's wire drops, truncates and corrupts:
// with per-replica retries plus ring failover every request must
// resolve to the byte-identical digest-verified answer — the fault mix
// reroutes work, it never loses or falsifies it.
func TestChaosServiceClusterEveryFaultResolves(t *testing.T) {
	_, gwURL, proxy, cleanURL := startChaosCluster(t, 17, faultinject.ChaosPlan{
		DropPct: 25, TruncatePct: 20, CorruptPct: 20, // no stalls: keep the suite fast
	})

	for i := 0; i < 10; i++ {
		body := marshalRequest(t, chaosRequest(uint64(100+i)))
		// Content addressing means any replica's direct answer is THE
		// answer; the clean one is always reachable for the oracle.
		want := postDirect(t, cleanURL, body)

		resp, err := http.Post(gwURL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("request %d: gateway transport error: %v\nschedule: %+v", i, err, proxy.Schedule())
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			t.Fatalf("request %d: reading gateway response: %v", i, rerr)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: gateway status %d (%s) — retries + failover must absorb this mix\nschedule: %+v",
				i, resp.StatusCode, raw, proxy.Schedule())
		}
		if err := service.VerifyDigest(resp.Header.Get(service.HeaderDigest), raw); err != nil {
			t.Fatalf("request %d: gateway response failed its digest: %v", i, err)
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("request %d: gateway served different bytes than the direct answer", i)
		}
	}
	if len(proxy.Schedule()) == 0 {
		t.Fatal("the chaotic replica never saw a connection — the chaos was a no-op")
	}
}

// TestChaosServiceClusterNoStrandedFollowers fires a concurrent burst
// of one identical payload through the gateway under the same fault
// mix: the singleflight leader's dispatch may be damaged and retried
// or failed over, but every follower must still complete with the same
// byte-identical answer — a fault on the leader's wire must never
// strand the requests coalesced behind it.
func TestChaosServiceClusterNoStrandedFollowers(t *testing.T) {
	_, gwURL, proxy, cleanURL := startChaosCluster(t, 23, faultinject.ChaosPlan{
		DropPct: 30, TruncatePct: 20, CorruptPct: 20,
	})
	body := marshalRequest(t, chaosRequest(4))
	want := postDirect(t, cleanURL, body)

	const burst = 8
	var wg sync.WaitGroup
	results := make([][]byte, burst)
	codes := make([]int, burst)
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(gwURL+"/v1/score", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			results[i], codes[i] = raw, resp.StatusCode
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("burst never completed — a follower is stranded\nschedule: %+v", proxy.Schedule())
	}

	for i := 0; i < burst; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: transport error %v", i, errs[i])
		}
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)\nschedule: %+v", i, codes[i], results[i], proxy.Schedule())
		}
		if !bytes.Equal(results[i], want) {
			t.Fatalf("request %d: bytes differ from the direct answer", i)
		}
	}
}
