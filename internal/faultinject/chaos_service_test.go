// Network-level chaos suite: a seeded TCP chaos proxy sits between an
// HTTP client and a live scoring service, and every injected fault —
// dropped connections, stalls past the client timeout, truncated and
// corrupted responses — must surface as a typed client error, a
// successful retry, or a breaker-open. Never a hang, a crash, a
// silently wrong score, or a poisoned cache/snapshot. CI runs these
// under -race via `go test -race -run ChaosService ./internal/faultinject/`
// (make chaos-service); on failure the proxy's fault schedule is the
// replay artifact (see WriteSchedule).
package faultinject_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"hmeans/internal/faultinject"
	"hmeans/internal/resilience"
	"hmeans/internal/service"
)

// chaosRequest mirrors the service package's test payload: two clear
// workload blobs so clustering is stable, strictly positive scores.
func chaosRequest(seed uint64) *service.Request {
	const n, f = 8, 4
	req := &service.Request{
		Config: service.ConfigJSON{Seed: seed},
		Scores: map[string][]float64{"A": make([]float64, n), "B": make([]float64, n)},
	}
	for i := 0; i < n; i++ {
		req.Table.Workloads = append(req.Table.Workloads, fmt.Sprintf("wl%02d", i))
		row := make([]float64, f)
		for j := 0; j < f; j++ {
			base := 1.0
			if i >= n/2 {
				base = 9.0
			}
			row[j] = base + 0.1*float64(i) + 0.01*float64(j*i)
		}
		req.Table.Rows = append(req.Table.Rows, row)
		req.Scores["A"][i] = 1.0 + 0.25*float64(i)
		req.Scores["B"][i] = 2.0 + 0.5*float64(i)
	}
	for j := 0; j < f; j++ {
		req.Table.Features = append(req.Table.Features, fmt.Sprintf("feat%d", j))
	}
	return req
}

// startScoringService boots a real service on a real TCP listener and
// returns the server, its base URL, and the upstream host:port a
// chaos proxy fronts.
func startScoringService(t *testing.T) (*service.Server, string, string) {
	t.Helper()
	srv := service.New(service.Config{MaxInflight: 4, QueueDepth: 64, CacheSize: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts.URL, ts.Listener.Addr().String()
}

func marshalRequest(t *testing.T, req *service.Request) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postDirect fetches the canonical answer without any proxy in the
// way, digest-verified.
func postDirect(t *testing.T, baseURL string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct POST status %d: %s", resp.StatusCode, raw)
	}
	if err := service.VerifyDigest(resp.Header.Get(service.HeaderDigest), raw); err != nil {
		t.Fatalf("direct response failed its own digest: %v", err)
	}
	return raw
}

// dumpScheduleOnFailure attaches the proxy's seeded fault schedule to
// a failing test's log — that log is the artifact CI uploads, so a
// red chaos run names the exact injected sequence and replays.
func dumpScheduleOnFailure(t *testing.T, proxy *faultinject.ChaosProxy) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var buf bytes.Buffer
		if err := proxy.WriteSchedule(&buf); err == nil {
			t.Logf("injected fault schedule:\n%s", buf.String())
		}
	})
}

// chaosClient is how clients must face the proxy: keep-alives off so
// every request is one proxied connection (and the upstream closes
// after answering, which truncate/corrupt rely on), and a hard
// timeout so a stalled connection can never hang the caller.
func chaosClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

// TestChaosServiceFaultsSurfaceTyped drives one request per proxied
// connection through the full fault mix and checks the outcome of
// every connection against the proxy's own schedule: clean relays are
// byte-identical digest-verified successes, corruptions are caught by
// the digest (never returned as answers), and drops/stalls/truncations
// all resolve to transport errors within the client timeout.
func TestChaosServiceFaultsSurfaceTyped(t *testing.T) {
	srv, baseURL, upstream := startScoringService(t)
	body := marshalRequest(t, chaosRequest(1))
	want := postDirect(t, baseURL, body)

	proxy, err := faultinject.NewChaosProxy(upstream, 7, faultinject.ChaosPlan{
		DropPct: 25, SlowPct: 10, TruncatePct: 20, CorruptPct: 20,
		SlowDelay: 2 * time.Second, // beyond the client timeout below
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	dumpScheduleOnFailure(t, proxy)

	client := chaosClient(time.Second)
	const attempts = 20
	var ok, transport, integrity int
	for i := 0; i < attempts; i++ {
		resp, err := client.Post(proxy.URL()+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			transport++
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			transport++
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("attempt %d: unexpected status %d: %s", i, resp.StatusCode, raw)
		}
		if service.VerifyDigest(resp.Header.Get(service.HeaderDigest), raw) != nil {
			integrity++
			continue
		}
		if !bytes.Equal(raw, want) {
			t.Fatalf("attempt %d: digest-verified success differs from the direct answer", i)
		}
		ok++
	}

	// Tie the outcomes to the proxy's own schedule, kind by kind.
	sched := proxy.Schedule()
	if len(sched) != attempts {
		t.Fatalf("proxy saw %d connections, client made %d", len(sched), attempts)
	}
	kinds := map[faultinject.FaultKind]int{}
	for _, f := range sched {
		kinds[f.Kind]++
	}
	for _, k := range []faultinject.FaultKind{faultinject.FaultNone, faultinject.FaultDrop, faultinject.FaultCorrupt} {
		if kinds[k] == 0 {
			t.Fatalf("seed exercised no %q connections — rechoose the seed/mix: %v", k, kinds)
		}
	}
	if ok != kinds[faultinject.FaultNone] {
		t.Errorf("clean successes = %d, want %d (one per untouched relay)", ok, kinds[faultinject.FaultNone])
	}
	if integrity != kinds[faultinject.FaultCorrupt] {
		t.Errorf("integrity catches = %d, want %d (one per corrupted response)", integrity, kinds[faultinject.FaultCorrupt])
	}
	if wantTransport := kinds[faultinject.FaultDrop] + kinds[faultinject.FaultSlow] + kinds[faultinject.FaultTruncate]; transport != wantTransport {
		t.Errorf("transport errors = %d, want %d (drops + stalls + truncations)", transport, wantTransport)
	}

	// The schedule is the replay artifact: it must serialize.
	var buf bytes.Buffer
	if err := proxy.WriteSchedule(&buf); err != nil {
		t.Fatalf("schedule artifact: %v", err)
	}
	var back []faultinject.ConnFault
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil || len(back) != attempts {
		t.Fatalf("schedule artifact round-trip: err=%v n=%d", err, len(back))
	}

	// Nothing the network did may poison the server side: the same
	// request asked directly is still byte-identical, and a snapshot
	// written after the chaos restores into a server that still
	// serves the exact same bytes.
	if after := postDirect(t, baseURL, body); !bytes.Equal(after, want) {
		t.Fatal("server-side answer changed after network chaos")
	}
	snap := filepath.Join(t.TempDir(), "chaos.snap")
	if n, err := srv.SaveSnapshot(snap); err != nil || n < 1 {
		t.Fatalf("snapshot after chaos: n=%d err=%v", n, err)
	}
	srv2 := service.New(service.Config{MaxInflight: 4, QueueDepth: 64, CacheSize: 64})
	if st, err := srv2.LoadSnapshot(snap, nil); err != nil || st.Restored < 1 || st.Skipped != 0 {
		t.Fatalf("restore after chaos: stats=%+v err=%v", st, err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if warm := postDirect(t, ts2.URL, body); !bytes.Equal(warm, want) {
		t.Fatal("warm-restored answer differs — the snapshot was poisoned")
	}
}

// TestChaosServiceRetryRecoversEveryRequest puts the client-side
// retryer in front of a 50%-faulty proxy: with a seeded bounded retry
// budget every request must still resolve to the byte-identical
// digest-verified answer — the fault mix is survivable, not fatal.
func TestChaosServiceRetryRecoversEveryRequest(t *testing.T) {
	_, baseURL, upstream := startScoringService(t)
	body := marshalRequest(t, chaosRequest(2))
	want := postDirect(t, baseURL, body)

	proxy, err := faultinject.NewChaosProxy(upstream, 11, faultinject.ChaosPlan{
		DropPct: 20, TruncatePct: 15, CorruptPct: 15, // no stalls: keep the test fast
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	dumpScheduleOnFailure(t, proxy)

	client := chaosClient(time.Second)
	rt := resilience.NewRetryer(resilience.Policy{MaxRetries: 6, BaseDelay: time.Millisecond, Jitter: 0.25}, 3)
	var retried int
	for i := 0; i < 12; i++ {
		attempts := 0
		err := rt.Do(context.Background(), func(ctx context.Context) error {
			attempts++
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, proxy.URL()+"/v1/score", bytes.NewReader(body))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			if err := service.VerifyDigest(resp.Header.Get(service.HeaderDigest), raw); err != nil {
				return err
			}
			if !bytes.Equal(raw, want) {
				t.Fatalf("request %d: verified answer differs from the direct one", i)
			}
			return nil
		}, nil)
		if err != nil {
			t.Fatalf("request %d unrecovered after retries: %v\nschedule: %+v", i, err, proxy.Schedule())
		}
		retried += attempts - 1
	}
	if retried == 0 {
		t.Fatal("fault mix never forced a retry — the chaos was a no-op")
	}
}

// TestChaosServiceBreakerStopsHammering points a breaker-guarded
// client at a 100%-drop proxy: after threshold consecutive transport
// failures the breaker opens and the remaining attempts never reach
// the network — ErrBreakerOpen is the typed answer, and the proxy's
// connection count proves the hammering stopped.
func TestChaosServiceBreakerStopsHammering(t *testing.T) {
	_, _, upstream := startScoringService(t)
	body := marshalRequest(t, chaosRequest(3))

	proxy, err := faultinject.NewChaosProxy(upstream, 5, faultinject.ChaosPlan{DropPct: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	dumpScheduleOnFailure(t, proxy)

	client := chaosClient(time.Second)
	br := resilience.NewBreaker(3, time.Minute)
	var blocked int
	const attempts = 10
	for i := 0; i < attempts; i++ {
		if err := br.Allow(); err != nil {
			if err != resilience.ErrBreakerOpen {
				t.Fatalf("attempt %d: blocked with %v, want ErrBreakerOpen", i, err)
			}
			blocked++
			continue
		}
		resp, err := client.Post(proxy.URL()+"/v1/score", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
			t.Fatalf("attempt %d: a dropped connection produced a response", i)
		}
		br.Record(true)
	}
	if blocked != attempts-3 {
		t.Errorf("breaker blocked %d attempts, want %d (everything past the threshold)", blocked, attempts-3)
	}
	if got := br.State(); got != "open" {
		t.Errorf("breaker state %q after a dead run, want open", got)
	}
	if br.Opens() != 1 {
		t.Errorf("breaker opened %d times, want 1", br.Opens())
	}
	if conns := len(proxy.Schedule()); conns != 3 {
		t.Errorf("proxy saw %d connections, want 3 — the breaker must stop the hammering", conns)
	}
}
