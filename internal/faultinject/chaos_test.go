// Chaos suite: every fault the injector can produce must surface as
// a clean typed error or a quarantine event — never a crash, a hang,
// or a silently wrong mean. CI runs these under -race via
// `go test -race -run Chaos ./...` (make chaos).
package faultinject_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hmeans/internal/chars"
	"hmeans/internal/cluster"
	"hmeans/internal/core"
	"hmeans/internal/faultinject"
	"hmeans/internal/obs"
	"hmeans/internal/par"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/vecmath"
)

// caseStudy builds the paper's 13-workload SAR characterization — the
// same table the integration tests cluster.
func caseStudy(t *testing.T) *chars.Table {
	t.Helper()
	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	sar, err := simbench.SARTable(ws, simbench.MachineA(), simbench.SARSpec{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sar
}

func caseStudyConfig() core.PipelineConfig {
	return core.PipelineConfig{SOM: som.Config{Seed: 11}}
}

// TestChaosPoisonedTableQuarantine: non-finite cells either fail with
// a typed data error (strict mode) or quarantine their workloads and
// score the survivors (degradation mode) — across many fault seeds.
func TestChaosPoisonedTableQuarantine(t *testing.T) {
	clean := caseStudy(t)
	for seed := uint64(0); seed < 8; seed++ {
		inj := faultinject.New(seed)
		poisoned, cells := inj.PoisonTable(clean, 3)
		if len(cells) != 3 {
			t.Fatalf("seed %d: poisoned %d cells, want 3", seed, len(cells))
		}

		// Strict mode: typed error, no crash.
		if _, err := core.DetectClusters(poisoned, caseStudyConfig()); !errors.Is(err, core.ErrNonFinite) {
			t.Fatalf("seed %d: strict mode error %v, want ErrNonFinite", seed, err)
		}

		// Degradation mode: survivors clustered, drops traced.
		poisonedRows := map[int]bool{}
		for _, c := range cells {
			poisonedRows[c.Row] = true
		}
		col := obs.NewCollector()
		cfg := caseStudyConfig()
		cfg.Quarantine = true
		cfg.Obs = obs.New(col)
		p, err := core.DetectClusters(poisoned, cfg)
		if err != nil {
			t.Fatalf("seed %d: quarantine mode failed: %v", seed, err)
		}
		if len(p.Quarantined) != len(poisonedRows) {
			t.Fatalf("seed %d: quarantined %d workloads, want %d", seed, len(p.Quarantined), len(poisonedRows))
		}
		events := 0
		for _, e := range col.Trace().Events {
			if e.Name == "pipeline.quarantine" {
				events++
			}
		}
		if events != len(poisonedRows) {
			t.Fatalf("seed %d: %d quarantine events in trace, want %d", seed, events, len(poisonedRows))
		}
		// Full-length scores (quarantined entries poisoned too) must
		// still produce a finite hierarchical mean over the survivors.
		scores := make([]float64, len(clean.Rows))
		for i := range scores {
			scores[i] = 1 + float64(i)
		}
		for row := range poisonedRows {
			scores[row] = math.NaN()
		}
		k := 4
		if max := len(p.Workloads); k > max {
			k = max
		}
		mean, err := p.ScoreAtK(core.Geometric, scores, k)
		if err != nil {
			t.Fatalf("seed %d: scoring survivors: %v", seed, err)
		}
		if math.IsNaN(mean) || math.IsInf(mean, 0) {
			t.Fatalf("seed %d: mean over survivors is %v", seed, mean)
		}
	}
}

// TestChaosWorkerPanicContained: a panicking shard becomes a
// *par.PanicError naming the shard — an error from the Ctx variants,
// a recoverable panic from the plain ones. The process never dies.
func TestChaosWorkerPanicContained(t *testing.T) {
	body := faultinject.PanicOnShard(13, "injected shard failure", func(start, end int) {})
	err := par.ForCtx(context.Background(), 4, 100, body)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("ForCtx error %v (%T), want *par.PanicError", err, err)
	}
	if pe.Start > 13 || pe.End <= 13 {
		t.Fatalf("panic reported on [%d,%d), want a range containing 13", pe.Start, pe.End)
	}

	recovered := func() (r any) {
		defer func() { r = recover() }()
		par.For(4, 100, body)
		return nil
	}()
	if _, ok := recovered.(*par.PanicError); !ok {
		t.Fatalf("For recovered %T, want *par.PanicError", recovered)
	}
}

// TestChaosSlowShardDeadline: a straggler shard cannot stall the
// dispatch loop past its deadline — the call returns promptly with
// context.DeadlineExceeded instead of hanging.
func TestChaosSlowShardDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	slow := faultinject.SlowShard(0, 100*time.Millisecond, func(start, end int) {})
	start := time.Now()
	_, err := par.FixedShardsCtx(ctx, 2, 64, 1, func(shard, s, e int) { slow(s, e) })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	// In-flight shards finish (no abandonment) but nothing new is
	// dispatched: well under a second, never a hang.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dispatch kept running %v past the deadline", elapsed)
	}
}

// TestChaosCorruptedSOM: truncated and bit-flipped SOM artifacts must
// load with an error or load as a fully usable map — never panic.
func TestChaosCorruptedSOM(t *testing.T) {
	samples := []vecmath.Vector{{0, 0, 1}, {1, 0, 0}, {0, 1, 0}, {1, 1, 1}}
	m, err := som.Train(som.Config{Rows: 3, Cols: 3, Seed: 7, BatchEpochs: 5}, samples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for seed := uint64(0); seed < 64; seed++ {
		inj := faultinject.New(seed)
		for _, corrupt := range [][]byte{inj.Truncate(valid), inj.FlipBytes(valid, 1+int(seed%7))} {
			loaded, err := som.Load(bytes.NewReader(corrupt))
			if err != nil {
				continue // clean rejection
			}
			probe := vecmath.NewVector(loaded.Dim())
			r, c := loaded.BMU(probe)
			if r < 0 || r >= loaded.Rows() || c < 0 || c >= loaded.Cols() {
				t.Fatalf("seed %d: accepted map places BMU (%d,%d) outside %dx%d",
					seed, r, c, loaded.Rows(), loaded.Cols())
			}
		}
	}
}

// TestChaosCorruptedDendrogram is the same guarantee for dendrogram
// artifacts: error or structurally sound, never a crash.
func TestChaosCorruptedDendrogram(t *testing.T) {
	pts := []vecmath.Vector{{0, 0}, {0, 1}, {4, 4}, {4, 5}, {9, 0}}
	d, err := cluster.NewDendrogram(pts, vecmath.Euclidean, cluster.Complete)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for seed := uint64(0); seed < 64; seed++ {
		inj := faultinject.New(seed)
		for _, corrupt := range [][]byte{inj.Truncate(valid), inj.FlipBytes(valid, 1+int(seed%7))} {
			loaded, err := cluster.LoadDendrogram(bytes.NewReader(corrupt))
			if err != nil {
				continue // clean rejection
			}
			for k := 1; k <= loaded.Len(); k++ {
				if _, err := loaded.CutK(k); err != nil {
					t.Fatalf("seed %d: accepted dendrogram fails CutK(%d): %v", seed, k, err)
				}
			}
		}
	}
}

// TestChaosFlakyCampaign: transient measurement failures are retried
// to the exact fault-free result; persistent failures exhaust the
// budget into a typed error.
func TestChaosFlakyCampaign(t *testing.T) {
	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	clean, err := simbench.MeasuredSpeedups(ws, simbench.MachineA(), simbench.Reference(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := simbench.MeasuredSpeedupsRetry(ws, simbench.MachineA(), simbench.Reference(), 10, 7,
		simbench.RetryPolicy{MaxAttempts: 3, Runner: faultinject.FlakyRunner(2)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if clean[i] != recovered[i] {
			t.Fatalf("workload %d: recovered campaign diverged: %v vs %v", i, clean[i], recovered[i])
		}
	}

	_, err = simbench.MeasuredSpeedupsRetry(ws, simbench.MachineA(), simbench.Reference(), 10, 7,
		simbench.RetryPolicy{MaxAttempts: 2, Runner: faultinject.FlakyRunner(1 << 30)})
	if !errors.Is(err, simbench.ErrMeasurementFailed) {
		t.Fatalf("exhausted campaign: error %v, want ErrMeasurementFailed", err)
	}
}

// TestChaosCancelledPipeline: cancellation at any stage boundary is a
// clean context error, not a partial result or a hang.
func TestChaosCancelledPipeline(t *testing.T) {
	tab := caseStudy(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.DetectClustersCtx(ctx, tab, caseStudyConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	start := time.Now()
	if _, err := core.DetectClustersCtx(dctx, tab, caseStudyConfig()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Fatal("pipeline ignored its deadline")
	}
}

// TestChaosCaseStudyBitIdentical: the robustness layer is free when
// unused — a background context and quarantine mode on clean input
// reproduce the plain pipeline's dendrogram and means exactly on the
// 13-workload case study.
func TestChaosCaseStudyBitIdentical(t *testing.T) {
	tab := caseStudy(t)
	plain, err := core.DetectClusters(tab, caseStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := core.DetectClustersCtx(context.Background(), tab, caseStudyConfig())
	if err != nil {
		t.Fatal(err)
	}
	qcfg := caseStudyConfig()
	qcfg.Quarantine = true
	quarantined, err := core.DetectClusters(tab, qcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(quarantined.Quarantined) != 0 {
		t.Fatalf("clean case study quarantined %+v", quarantined.Quarantined)
	}

	ws, _, err := simbench.CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	scores, err := simbench.MeasuredSpeedups(ws, simbench.MachineA(), simbench.Reference(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []*core.Pipeline{withCtx, quarantined} {
		a, b := plain.Dendrogram.Merges(), other.Dendrogram.Merges()
		if len(a) != len(b) {
			t.Fatalf("merge counts differ: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("merge %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
		for k := 2; k <= 6; k++ {
			x, err := plain.ScoreAtK(core.Geometric, scores, k)
			if err != nil {
				t.Fatal(err)
			}
			y, err := other.ScoreAtK(core.Geometric, scores, k)
			if err != nil {
				t.Fatal(err)
			}
			if x != y {
				t.Fatalf("k=%d: hierarchical mean diverged: %v vs %v", k, x, y)
			}
		}
	}
}
