// Package faultinject provides deterministic, seeded fault injection
// for the robustness test suite: poisoned characterization values,
// corrupted serialized artifacts, panicking or slow parallel shards,
// and flaky measurement runners. Every fault is a pure function of
// the injector's seed, so a failing chaos test replays exactly.
//
// The package deliberately lives under internal/ and is imported
// only from tests: production code paths never depend on it.
package faultinject

import (
	"math"
	"time"

	"hmeans/internal/chars"
	"hmeans/internal/rng"
	"hmeans/internal/simbench"
)

// Injector draws every fault location and value from one seeded
// stream.
type Injector struct {
	r *rng.Source
}

// New returns an injector whose faults depend only on seed.
func New(seed uint64) *Injector {
	return &Injector{r: rng.New(seed)}
}

// PoisonedCell records one cell an injector overwrote.
type PoisonedCell struct {
	// Row and Col locate the cell in the table.
	Row, Col int
	// Value is the non-finite value written there.
	Value float64
}

// nonFinite cycles through the three ways a float can go bad.
var nonFinite = []float64{math.NaN(), math.Inf(1), math.Inf(-1)}

// PoisonTable clones t and overwrites up to `cells` distinct cells
// with non-finite values (NaN, +Inf, -Inf in rotation). It returns
// the poisoned clone and the cells hit, sorted by draw order; the
// input table is left untouched.
func (in *Injector) PoisonTable(t *chars.Table, cells int) (*chars.Table, []PoisonedCell) {
	out := t.Clone()
	total := len(out.Rows) * len(out.Features)
	if cells > total {
		cells = total
	}
	seen := make(map[int]bool, cells)
	hits := make([]PoisonedCell, 0, cells)
	for len(hits) < cells {
		flat := in.r.Intn(total)
		if seen[flat] {
			continue
		}
		seen[flat] = true
		row, col := flat/len(out.Features), flat%len(out.Features)
		v := nonFinite[len(hits)%len(nonFinite)]
		out.Rows[row][col] = v
		hits = append(hits, PoisonedCell{Row: row, Col: col, Value: v})
	}
	return out, hits
}

// Truncate returns a copy of b cut at a seeded point strictly inside
// (0, len(b)) — a partially written artifact.
func (in *Injector) Truncate(b []byte) []byte {
	if len(b) < 2 {
		return nil
	}
	cut := 1 + in.r.Intn(len(b)-1)
	return append([]byte(nil), b[:cut]...)
}

// FlipBytes returns a copy of b with n seeded single-byte
// corruptions (each byte XORed with a non-zero mask).
func (in *Injector) FlipBytes(b []byte, n int) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	for i := 0; i < n; i++ {
		pos := in.r.Intn(len(out))
		mask := byte(1 + in.r.Intn(255))
		out[pos] ^= mask
	}
	return out
}

// PanicOnShard wraps a par.For body so the chunk containing `index`
// panics with msg before doing any work. Other chunks run normally.
func PanicOnShard(index int, msg string, body func(start, end int)) func(start, end int) {
	return func(start, end int) {
		if start <= index && index < end {
			panic(msg)
		}
		body(start, end)
	}
}

// SlowShard wraps a par.For body so the chunk containing `index`
// sleeps for d before running — a straggler that outlives deadlines.
func SlowShard(index int, d time.Duration, body func(start, end int)) func(start, end int) {
	return func(start, end int) {
		if start <= index && index < end {
			time.Sleep(d)
		}
		body(start, end)
	}
}

// FlakyRunner returns a simbench runner that reports NaN for its
// first `failures` calls and then delegates to the real simulator.
// Failing calls never consume rng draws, so a campaign that recovers
// through retries matches a fault-free campaign bit for bit.
func FlakyRunner(failures int) simbench.Runner {
	calls := 0
	return func(w *simbench.Workload, m simbench.Machine, r *rng.Source) float64 {
		calls++
		if calls <= failures {
			return math.NaN()
		}
		return simbench.Run(w, m, r).Seconds
	}
}
