package faultinject

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hmeans/internal/rng"
)

// FaultKind names one network-level fault the chaos proxy can inflict
// on a proxied connection.
type FaultKind string

// The connection fault kinds.
const (
	// FaultNone relays the connection untouched.
	FaultNone FaultKind = "none"
	// FaultDrop closes the client connection without ever dialing the
	// upstream — a reset before any byte of the answer.
	FaultDrop FaultKind = "drop"
	// FaultSlow relays the request, then stalls SlowDelay before
	// relaying the response — a straggler that trips client timeouts
	// and hedges.
	FaultSlow FaultKind = "slow"
	// FaultTruncate relays the request, buffers the full response, and
	// forwards only the first half before closing — a torn answer.
	FaultTruncate FaultKind = "truncate"
	// FaultCorrupt relays the request, buffers the full response, and
	// flips the response's last byte — same length, wrong bytes, so
	// only an integrity check can catch it.
	FaultCorrupt FaultKind = "corrupt"
)

// ChaosPlan sets the per-connection fault mix in percent; whatever the
// four percentages leave of 100 is relayed untouched.
type ChaosPlan struct {
	DropPct, SlowPct, TruncatePct, CorruptPct int
	// SlowDelay is the stall a FaultSlow connection suffers before its
	// response is relayed.
	SlowDelay time.Duration
}

func (p ChaosPlan) total() int { return p.DropPct + p.SlowPct + p.TruncatePct + p.CorruptPct }

// ConnFault records the fault one proxied connection was dealt, in
// accept order. The slice of them is the run's fault schedule: a pure
// function of the proxy seed and the connection sequence, exportable
// as JSON so a failing chaos run names exactly what it injected.
type ConnFault struct {
	Conn int       `json:"conn"`
	Kind FaultKind `json:"kind"`
}

// ChaosProxy is a seeded TCP proxy in front of one upstream address.
// Each accepted connection draws a fault from the proxy's rng stream
// (in accept order) and suffers it; everything else is a transparent
// byte relay. Tests put it between an HTTP client and a live hmeansd
// to prove network-level faults surface as typed client errors.
//
// FaultTruncate and FaultCorrupt buffer the whole upstream response
// before mangling it, which requires the upstream to close the
// connection after answering — point clients at the proxy with
// keep-alives disabled so every request carries Connection: close.
type ChaosProxy struct {
	upstream string
	plan     ChaosPlan
	lis      net.Listener

	mu    sync.Mutex
	r     *rng.Source
	sched []ConnFault

	wg sync.WaitGroup
}

// NewChaosProxy starts a chaos proxy on an ephemeral loopback port in
// front of upstream (a host:port). Close releases it.
func NewChaosProxy(upstream string, seed uint64, plan ChaosPlan) (*ChaosProxy, error) {
	if t := plan.total(); t < 0 || t > 100 {
		return nil, fmt.Errorf("faultinject: fault percentages sum to %d, want 0..100", t)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("faultinject: chaos proxy: %w", err)
	}
	p := &ChaosProxy{upstream: upstream, plan: plan, lis: lis, r: rng.New(seed)}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *ChaosProxy) Addr() string { return p.lis.Addr().String() }

// URL returns the proxy's address as an http base URL.
func (p *ChaosProxy) URL() string { return "http://" + p.Addr() }

// Close stops accepting and waits for in-flight connection handlers.
func (p *ChaosProxy) Close() error {
	err := p.lis.Close()
	p.wg.Wait()
	return err
}

// Schedule returns a copy of the faults dealt so far, in accept order.
func (p *ChaosProxy) Schedule() []ConnFault {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]ConnFault(nil), p.sched...)
}

// WriteSchedule writes the fault schedule as indented JSON — the
// artifact CI attaches when a chaos run fails, so the exact injected
// fault sequence travels with the failure.
func (p *ChaosProxy) WriteSchedule(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.Schedule())
}

// accept deals each connection its fault (rng draws happen here, under
// the lock, so the schedule is deterministic in accept order) and
// hands it to a handler goroutine.
func (p *ChaosProxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		f := ConnFault{Conn: len(p.sched), Kind: p.draw()}
		p.sched = append(p.sched, f)
		p.mu.Unlock()
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.handle(c, f.Kind)
		}()
	}
}

// draw picks a fault kind from the seeded stream (mu held).
func (p *ChaosProxy) draw() FaultKind {
	n := p.r.Intn(100)
	for _, b := range []struct {
		pct  int
		kind FaultKind
	}{
		{p.plan.DropPct, FaultDrop},
		{p.plan.SlowPct, FaultSlow},
		{p.plan.TruncatePct, FaultTruncate},
		{p.plan.CorruptPct, FaultCorrupt},
	} {
		if n < b.pct {
			return b.kind
		}
		n -= b.pct
	}
	return FaultNone
}

// handle relays one client connection through its fault.
func (p *ChaosProxy) handle(client net.Conn, kind FaultKind) {
	defer client.Close()
	if kind == FaultDrop {
		return // never dialed: the client sees EOF/reset immediately
	}
	up, err := net.Dial("tcp", p.upstream)
	if err != nil {
		return
	}
	defer up.Close()

	// Request path: client → upstream, in the background. The deferred
	// closes unblock it whatever the response path does.
	go func() {
		_, _ = io.Copy(up, client)
		if tc, ok := up.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
	}()

	switch kind {
	case FaultSlow:
		time.Sleep(p.plan.SlowDelay)
		_, _ = io.Copy(client, up)
	case FaultTruncate, FaultCorrupt:
		// Buffer the whole response (the upstream closes after one
		// answer — see the type comment), then mangle it.
		raw, err := io.ReadAll(up)
		if err != nil || len(raw) == 0 {
			return
		}
		if kind == FaultTruncate {
			raw = raw[:len(raw)/2]
		} else {
			raw[len(raw)-1] ^= 0x01 // last byte is response body
		}
		_, _ = client.Write(raw)
	default: // FaultNone
		_, _ = io.Copy(client, up)
	}
}
