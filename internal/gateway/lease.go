package gateway

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Lease roles reported per request (the X-Hmeans-Route header, the
// gateway access log, and the lease metrics).
const (
	// RoleLeader marks the request that held the lease and dispatched
	// the computation.
	RoleLeader = "leader"
	// RoleFollower marks a request that blocked on another request's
	// lease and shares its result.
	RoleFollower = "follower"
	// RoleTakeover marks a follower that outlived a lease's TTL,
	// usurped it and dispatched the computation itself.
	RoleTakeover = "takeover"
)

// leaseResult is what a lease delivers to everyone waiting on it.
type leaseResult struct {
	raw     []byte
	status  string // the replica's cache status (miss/hit/coalesced)
	replica string // which replica served it
	err     error
}

// lease is one in-flight computation claim on a content hash. The
// leader that created it dispatches the request; followers block on
// done. expires bounds how long followers will wait: a leader that
// dies mid-compute (its replica hung, its client vanished and nobody
// cancelled cleanly) must not strand its followers forever, so past
// expires a follower may usurp the lease and dispatch on its own.
type lease struct {
	done    chan struct{}
	expires time.Time
	res     leaseResult
}

// leaseTable implements cross-replica singleflight: at most one
// dispatch per content hash is in flight through the gateway at a
// time, however many clients ask and whichever replicas would serve
// them. The replica-side singleflight (PR 4) already coalesces
// duplicates that reach ONE replica; the lease table closes the
// cross-replica window — during failover, ring changes, or direct
// mixed traffic, two replicas could otherwise burn two SOM trainings
// on the same key. Leases are time-bounded, not held until completion:
// a TTL is the only way a follower can distinguish "leader is slow"
// from "leader is gone" without coordination.
type leaseTable struct {
	mu  sync.Mutex
	m   map[[32]byte]*lease
	ttl time.Duration
	now func() time.Time // injectable for tests

	// waiting counts followers currently parked on a lease — the only
	// way a test can know a follower is parked BEFORE it returns.
	waiting atomic.Int32
}

func newLeaseTable(ttl time.Duration) *leaseTable {
	return &leaseTable{m: make(map[[32]byte]*lease), ttl: ttl, now: time.Now}
}

// len reports the number of live leases (for tests and /ring).
func (t *leaseTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// do runs fn for key under a leader lease, coalescing concurrent
// callers. The first caller becomes the leader and dispatches;
// followers block on the leader's result. A follower whose wait
// crosses the lease's expiry usurps it: the stale lease is dropped and
// the follower re-enters the loop, becoming the new leader (role
// "takeover") unless someone else already did. The returned role says
// which path this caller took.
//
// A usurped leader is not cancelled — if its dispatch eventually
// returns, its own followers (those that joined before the takeover)
// get its result. Both results decode from the same content-addressed
// computation, so they are byte-identical by the PR 4 guarantee; the
// takeover costs at most one duplicate dispatch, which the replica's
// cache or singleflight absorbs.
func (t *leaseTable) do(ctx context.Context, key [32]byte, fn func(ctx context.Context) leaseResult) (leaseResult, string) {
	role := RoleLeader
	for {
		t.mu.Lock()
		if l, ok := t.m[key]; ok {
			expires := l.expires
			t.mu.Unlock()
			if role == RoleLeader {
				role = RoleFollower
			}
			wait := expires.Sub(t.now())
			if wait <= 0 {
				// Already expired before we even waited: usurp now.
				t.usurp(key, l)
				role = RoleTakeover
				continue
			}
			timer := time.NewTimer(wait)
			t.waiting.Add(1)
			select {
			case <-l.done:
				t.waiting.Add(-1)
				timer.Stop()
				return l.res, role
			case <-ctx.Done():
				t.waiting.Add(-1)
				timer.Stop()
				return leaseResult{err: ctx.Err()}, role
			case <-timer.C:
				t.waiting.Add(-1)
				t.usurp(key, l)
				role = RoleTakeover
				continue
			}
		}
		l := &lease{done: make(chan struct{}), expires: t.now().Add(t.ttl)}
		t.m[key] = l
		t.mu.Unlock()

		l.res = fn(ctx)

		t.mu.Lock()
		if t.m[key] == l {
			delete(t.m, key)
		}
		t.mu.Unlock()
		close(l.done)
		return l.res, role
	}
}

// usurp removes l from the table if it is still the registered lease
// for key (a concurrent follower may have usurped it first, or a new
// lease may already have replaced it — both fine: the caller loops and
// either becomes leader or joins the newer lease).
func (t *leaseTable) usurp(key [32]byte, l *lease) {
	t.mu.Lock()
	if t.m[key] == l {
		delete(t.m, key)
	}
	t.mu.Unlock()
}
