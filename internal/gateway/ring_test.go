package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"
)

// testKey derives a deterministic content address from an index.
func testKey(i int) [32]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return sha256.Sum256(b[:])
}

func TestRingRejectsBadMembership(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty membership accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate address accepted")
	}
}

// TestRingBalance is the balance property test: with the default
// virtual-node count, keys spread over 3 replicas within a tolerance
// of fair share, and the arc shares /ring reports agree with an
// empirical key count.
func TestRingBalance(t *testing.T) {
	replicas := []string{"http://r0", "http://r1", "http://r2"}
	r, err := NewRing(replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 30_000
	counts := make(map[string]int, len(replicas))
	for i := 0; i < keys; i++ {
		counts[r.Home(testKey(i))]++
	}
	fair := float64(keys) / float64(len(replicas))
	for _, addr := range replicas {
		got := float64(counts[addr])
		if got < 0.75*fair || got > 1.25*fair {
			t.Errorf("replica %s owns %d of %d keys (%.1f%%), outside ±25%% of fair share",
				addr, counts[addr], keys, 100*got/keys)
		}
	}
	arcs := r.Arcs()
	var total float64
	for _, addr := range replicas {
		total += arcs[addr]
		// Arc share should predict the empirical key share closely — the
		// keys are SHA-256 outputs, as uniform as the ring points.
		if diff := math.Abs(arcs[addr] - float64(counts[addr])/keys); diff > 0.02 {
			t.Errorf("replica %s: arc share %.4f vs empirical %.4f (diff %.4f)",
				addr, arcs[addr], float64(counts[addr])/keys, diff)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("arc shares sum to %v, want 1", total)
	}
}

// TestRingRemovalRemapsOnlyItsArc pins the property consistent hashing
// exists for: removing a replica moves only the keys it owned —
// every other key keeps its home, so every other cache stays warm.
func TestRingRemovalRemapsOnlyItsArc(t *testing.T) {
	all := []string{"http://r0", "http://r1", "http://r2"}
	before, err := NewRing(all, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewRing(all[:2], 0) // r2 removed
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10_000
	moved := 0
	for i := 0; i < keys; i++ {
		k := testKey(i)
		oldHome := before.Home(k)
		newHome := after.Home(k)
		if oldHome == "http://r2" {
			moved++
			// The evicted arc must land exactly where the failover walk
			// would have sent it: the next distinct replica on the ring.
			if want := before.Candidates(k)[1]; newHome != want {
				t.Fatalf("key %d: remapped to %s, failover order says %s", i, newHome, want)
			}
			continue
		}
		if newHome != oldHome {
			t.Fatalf("key %d moved from %s to %s though %s was not removed", i, oldHome, newHome, oldHome)
		}
	}
	if moved == 0 {
		t.Fatal("no keys owned by the removed replica — test is vacuous")
	}
}

func TestRingCandidatesCoverAllReplicasOnce(t *testing.T) {
	replicas := []string{"http://r0", "http://r1", "http://r2", "http://r3"}
	r, err := NewRing(replicas, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c := r.Candidates(testKey(i))
		if len(c) != len(replicas) {
			t.Fatalf("key %d: %d candidates, want %d", i, len(c), len(replicas))
		}
		if c[0] != r.Home(testKey(i)) {
			t.Fatalf("key %d: first candidate %s is not the home %s", i, c[0], r.Home(testKey(i)))
		}
		seen := make(map[string]bool)
		for _, addr := range c {
			if seen[addr] {
				t.Fatalf("key %d: candidate %s repeated", i, addr)
			}
			seen[addr] = true
		}
	}
}

// TestRingDeterministic pins that two rings over the same membership
// agree point for point — two gateway processes must route every key
// identically or cache affinity is fiction.
func TestRingDeterministic(t *testing.T) {
	replicas := []string{"http://r0", "http://r1", "http://r2"}
	a, _ := NewRing(replicas, 0)
	b, _ := NewRing(replicas, 0)
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		if a.Home(k) != b.Home(k) {
			t.Fatalf("key %d: ring A homes %s, ring B homes %s", i, a.Home(k), b.Home(k))
		}
	}
}
