package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVNodes is the per-replica virtual-node count. 64 points per
// replica keeps the largest/smallest arc ratio tight (the balance
// property test pins ±25% of fair share over 3 replicas) while the
// whole ring for a handful of replicas stays a few hundred entries —
// lookup is one binary search.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over replica base URLs. Each replica
// owns VNodes points on a uint64 circle (the SHA-256 of "addr#i"
// truncated to 64 bits); a request's home is the owner of the first
// point at or after its content address. Consistent hashing — not
// key mod N — because the whole reason to route by content address is
// cache affinity: when a replica joins or leaves, only the arcs it
// owned change hands, so the other replicas' caches stay warm. With
// modulo routing every membership change reshuffles almost every key
// and the fleet recomputes its whole working set.
//
// A Ring is immutable after construction; membership changes build a
// new Ring (the remap property — removing a replica moves only its own
// arc — is pinned by TestRingRemovalRemapsOnlyItsArc).
type Ring struct {
	vnodes   int
	replicas []string
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica int // index into replicas
}

// NewRing builds a ring over the given replica addresses. vnodes <= 0
// takes DefaultVNodes. Addresses must be non-empty and distinct —
// duplicates would silently double a replica's arc.
func NewRing(replicas []string, vnodes int) (*Ring, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("gateway: ring needs at least one replica")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(replicas))
	for _, a := range replicas {
		if a == "" {
			return nil, fmt.Errorf("gateway: empty replica address")
		}
		if seen[a] {
			return nil, fmt.Errorf("gateway: duplicate replica address %q", a)
		}
		seen[a] = true
	}
	r := &Ring{
		vnodes:   vnodes,
		replicas: append([]string(nil), replicas...),
		points:   make([]ringPoint, 0, len(replicas)*vnodes),
	}
	for ri, addr := range r.replicas {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(addr, i), replica: ri})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between distinct (addr, i) pairs is
		// vanishingly unlikely; break the tie deterministically anyway
		// so two gateways over the same replica list agree on homes.
		return r.points[i].replica < r.points[j].replica
	})
	return r, nil
}

// pointHash places virtual node i of addr on the circle: the first 8
// bytes of SHA-256("addr#i"). SHA-256 rather than a fast hash because
// the keys being located are themselves SHA-256 content addresses —
// the two distributions should be equally uniform — and ring
// construction is cold path.
func pointHash(addr string, i int) uint64 {
	sum := sha256.Sum256([]byte(addr + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyPoint maps a content address onto the circle: its first 8 bytes,
// big endian, matching pointHash's truncation.
func keyPoint(key [32]byte) uint64 {
	return binary.BigEndian.Uint64(key[:8])
}

// Replicas returns the ring's membership in construction order.
func (r *Ring) Replicas() []string { return append([]string(nil), r.replicas...) }

// Home returns the replica that owns key: the first ring point at or
// after the key's position, wrapping at the top of the circle.
func (r *Ring) Home(key [32]byte) string {
	return r.replicas[r.points[r.firstPoint(keyPoint(key))].replica]
}

// Candidates returns every replica exactly once, ordered by the ring
// walk from key: the home first, then each successor as the walk first
// reaches one of its points. This is the failover order — when the
// home is breaker-open or down, the key's new home is the next
// distinct replica on the ring, which is also exactly where the key
// would live if the home were removed from the ring. Failover and
// membership change therefore agree about reassignment, and a
// recovered home resumes owning its old arc (and its still-warm
// cache).
func (r *Ring) Candidates(key [32]byte) []string {
	out := make([]string, 0, len(r.replicas))
	seen := make([]bool, len(r.replicas))
	start := r.firstPoint(keyPoint(key))
	for i := 0; i < len(r.points) && len(out) < len(r.replicas); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, r.replicas[p.replica])
		}
	}
	return out
}

// firstPoint locates the index of the first point with hash >= h,
// wrapping to 0 past the last point.
func (r *Ring) firstPoint(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Arcs reports the share of the hash circle each replica owns —
// surfaced on the gateway's /ring endpoint so balance is observable,
// and asserted by the balance property test.
func (r *Ring) Arcs() map[string]float64 {
	shares := make(map[string]float64, len(r.replicas))
	n := len(r.points)
	for i, p := range r.points {
		var span uint64
		if i+1 < n {
			span = r.points[i+1].hash - p.hash
		} else {
			// Last point owns the wrap: up to the top of the circle
			// plus down to the first point.
			span = (^uint64(0) - p.hash) + r.points[0].hash + 1
		}
		// A key strictly after points[i] resolves to the NEXT point
		// (firstPoint finds the first hash >= key), so each span is
		// credited to its successor's replica.
		next := r.points[(i+1)%n]
		shares[r.replicas[next.replica]] += float64(span) / float64(1<<63) / 2
	}
	return shares
}
