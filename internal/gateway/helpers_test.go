package gateway

import (
	"bytes"
	"log/slog"
	"sync"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the replica's access log
// writes from its handler goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newJSONLogger(w *syncBuffer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}
