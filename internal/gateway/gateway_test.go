package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hmeans/internal/obs"
	"hmeans/internal/service"
)

// gwTestRequest mirrors the service package's test fixture: two clear
// workload blobs, strictly positive scores. seed varies the payload
// (and therefore the content address).
func gwTestRequest(seed uint64) *service.Request {
	const n, f = 8, 4
	req := &service.Request{
		Config: service.ConfigJSON{Seed: seed},
		Scores: map[string][]float64{"A": make([]float64, n)},
	}
	for i := 0; i < n; i++ {
		req.Table.Workloads = append(req.Table.Workloads, fmt.Sprintf("wl%02d", i))
		row := make([]float64, f)
		for j := 0; j < f; j++ {
			base := 1.0
			if i >= n/2 {
				base = 9.0
			}
			row[j] = base + 0.1*float64(i) + 0.01*float64(j*i)
		}
		req.Table.Rows = append(req.Table.Rows, row)
		req.Scores["A"][i] = 1.0 + 0.25*float64(i)
	}
	for j := 0; j < f; j++ {
		req.Table.Features = append(req.Table.Features, fmt.Sprintf("feat%d", j))
	}
	return req
}

// replicaFixture is one in-process hmeansd behind a real HTTP
// listener.
type replicaFixture struct {
	srv *service.Server
	ts  *httptest.Server
}

func startReplica(t *testing.T, cfg service.Config) *replicaFixture {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	srv := service.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &replicaFixture{srv: srv, ts: ts}
}

// startCluster boots n replicas and a gateway over them, returning the
// gateway fixture, its HTTP server and the replicas in ring order.
func startCluster(t *testing.T, n int, cfg Config) (*Gateway, *httptest.Server, []*replicaFixture) {
	t.Helper()
	replicas := make([]*replicaFixture, n)
	addrs := make([]string, n)
	for i := range replicas {
		replicas[i] = startReplica(t, service.Config{CacheSize: 8})
		addrs[i] = replicas[i].ts.URL
	}
	cfg.Replicas = addrs
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts, replicas
}

func postScore(t *testing.T, url string, req *service.Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/score: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// replicaFor maps a replica base URL back to its fixture.
func replicaFor(t *testing.T, replicas []*replicaFixture, addr string) *replicaFixture {
	t.Helper()
	for _, r := range replicas {
		if r.ts.URL == addr {
			return r
		}
	}
	t.Fatalf("no replica fixture for %s", addr)
	return nil
}

// TestGatewayByteIdentity is the core contract: the bytes a client
// gets through the gateway are exactly the bytes the home replica
// serves directly, digest-verified on both hops, and a repeat through
// the gateway is a cache hit on the same replica.
func TestGatewayByteIdentity(t *testing.T) {
	gw, ts, replicas := startCluster(t, 2, Config{})
	req := gwTestRequest(1)

	r1, viaGW := postScore(t, ts.URL, req)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("gateway: status %d, body %s", r1.StatusCode, viaGW)
	}
	if err := service.VerifyDigest(r1.Header.Get(service.HeaderDigest), viaGW); err != nil {
		t.Fatalf("gateway digest: %v", err)
	}
	home := gw.Ring().Home(req.CacheKey())
	if got := r1.Header.Get(HeaderReplica); got != home {
		t.Fatalf("served by %s, ring home is %s", got, home)
	}
	if got := r1.Header.Get(HeaderRoute); got != RoleLeader {
		t.Fatalf("route = %q, want %q", got, RoleLeader)
	}
	if r1.Header.Get(service.HeaderRequestID) == "" {
		t.Fatal("gateway response missing X-Request-ID")
	}

	// Same request straight at the home replica: byte-identical, and a
	// cache hit — the gateway's first pass warmed exactly this cache.
	r2, direct := postScore(t, replicaFor(t, replicas, home).ts.URL, req)
	if r2.Header.Get("X-Hmeans-Cache") != service.CacheHit {
		t.Fatalf("direct hit status = %q, want %q", r2.Header.Get("X-Hmeans-Cache"), service.CacheHit)
	}
	if !bytes.Equal(viaGW, direct) {
		t.Fatal("gateway bytes differ from direct replica bytes")
	}

	// And a repeat through the gateway is a hit routed to the same home.
	r3, again := postScore(t, ts.URL, req)
	if r3.Header.Get("X-Hmeans-Cache") != service.CacheHit {
		t.Fatalf("gateway repeat cache = %q, want %q", r3.Header.Get("X-Hmeans-Cache"), service.CacheHit)
	}
	if r3.Header.Get(HeaderReplica) != home {
		t.Fatalf("repeat served by %s, want sticky home %s", r3.Header.Get(HeaderReplica), home)
	}
	if !bytes.Equal(viaGW, again) {
		t.Fatal("gateway repeat bytes differ")
	}
}

// TestGatewayFailover kills the home replica: the ring walk must serve
// the request from the survivor and the dead replica's breaker must
// open after enough failures.
func TestGatewayFailover(t *testing.T) {
	o := obs.New()
	gw, ts, replicas := startCluster(t, 2, Config{Obs: o, BreakerThreshold: 2})
	req := gwTestRequest(2)
	home := gw.Ring().Home(req.CacheKey())
	replicaFor(t, replicas, home).ts.Close()

	for i := 0; i < 2; i++ {
		resp, raw := postScore(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, raw)
		}
		if got := resp.Header.Get(HeaderReplica); got == home {
			t.Fatalf("request %d served by the dead home %s", i, got)
		}
	}
	if o.Metrics().Counter("gateway.route.failover").Value() == 0 {
		t.Fatal("failover counter never moved")
	}
	if got := gw.Breakers().Get(home).State(); got != "open" {
		t.Fatalf("dead home breaker state = %q, want open", got)
	}
	// With the breaker open the walk skips the corpse outright.
	resp, _ := postScore(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-open request failed: %d", resp.StatusCode)
	}
	if o.Metrics().Counter("gateway.route.breaker_skip").Value() == 0 {
		t.Fatal("breaker_skip counter never moved")
	}
}

// TestGatewayDrainingReplicaLeavesRotation pins the drain semantics: a
// replica that answers 503-draining is tripped out of rotation
// immediately (no threshold), and traffic flows through the survivor.
func TestGatewayDrainingReplicaLeavesRotation(t *testing.T) {
	gw, ts, replicas := startCluster(t, 2, Config{BreakerThreshold: 5})
	req := gwTestRequest(3)
	home := gw.Ring().Home(req.CacheKey())
	replicaFor(t, replicas, home).srv.BeginDrain()

	resp, raw := postScore(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(HeaderReplica); got == home {
		t.Fatalf("served by the draining home %s", got)
	}
	// One declared drain is enough — no five-failure threshold.
	if got := gw.Breakers().Get(home).State(); got != "open" {
		t.Fatalf("draining replica breaker = %q, want open after one refusal", got)
	}
}

// TestGatewayRelaysBadRequest pins that invalid input answers 400 with
// the same shape a replica gives, and consumes no routing state.
func TestGatewayRelaysBadRequest(t *testing.T) {
	o := obs.New()
	_, ts, _ := startCluster(t, 2, Config{Obs: o})
	req := &service.Request{} // decodes fine, fails Validate
	resp, raw := postScore(t, ts.URL, req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, raw)
	}
	var werr struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &werr); err != nil || werr.Error == "" {
		t.Fatalf("400 body is not the service error shape: %s", raw)
	}
	if o.Metrics().Counter("gateway.lease.leader").Value() != 0 {
		t.Fatal("invalid request consumed a lease")
	}
}

func TestGatewayMethodNotAllowed(t *testing.T) {
	_, ts, _ := startCluster(t, 1, Config{})
	resp, err := http.Get(ts.URL + "/v1/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", resp.StatusCode)
	}
}

// TestGatewayAllReplicasDown pins the exhausted-walk contract: a typed
// 503 with Retry-After, never a bare 500.
func TestGatewayAllReplicasDown(t *testing.T) {
	_, ts, replicas := startCluster(t, 2, Config{})
	for _, r := range replicas {
		r.ts.Close()
	}
	resp, raw := postScore(t, ts.URL, gwTestRequest(4))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") != service.RetryAfter {
		t.Fatalf("Retry-After = %q, want %q", resp.Header.Get("Retry-After"), service.RetryAfter)
	}
}

// TestGatewayDrain pins the gateway's own drain: scoring refused with
// 503 + Retry-After, /healthz still 200.
func TestGatewayDrain(t *testing.T) {
	gw, ts, _ := startCluster(t, 1, Config{})
	gw.BeginDrain()
	resp, _ := postScore(t, ts.URL, gwTestRequest(5))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("score during drain: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != service.RetryAfter {
		t.Fatal("drain refusal missing Retry-After")
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200", hr.StatusCode)
	}
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", rr.StatusCode)
	}
}

// TestGatewayReadyzQuorum pins the aggregation: with both replicas up
// the gateway is ready; drain one and a 2-of-2 quorum fails while a
// 1-of-2 quorum holds.
func TestGatewayReadyzQuorum(t *testing.T) {
	readyz := func(t *testing.T, url string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(url + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	_, ts, replicas := startCluster(t, 2, Config{Quorum: 2})
	code, body := readyz(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("all up, quorum 2: readyz %d (%v)", code, body)
	}
	replicas[0].srv.BeginDrain()
	code, body = readyz(t, ts.URL)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("one draining, quorum 2: readyz %d, want 503 (%v)", code, body)
	}
	if up, _ := body["up"].(float64); up != 1 {
		t.Fatalf("up = %v, want 1", body["up"])
	}

	gw1, ts1, replicas1 := startCluster(t, 2, Config{Quorum: 1})
	replicas1[0].srv.BeginDrain()
	if code, body := readyz(t, ts1.URL); code != http.StatusOK {
		t.Fatalf("one draining, quorum 1: readyz %d, want 200 (%v)", code, body)
	}
	_ = gw1
}

// TestGatewayRequestIDPropagation proves the 2-hop correlation story:
// the client's X-Request-ID is echoed by the gateway AND forwarded to
// the replica, which stamps it on its own access log.
func TestGatewayRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	replica := func() *replicaFixture {
		srv := service.New(service.Config{AccessLog: newJSONLogger(&logBuf)})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return &replicaFixture{srv: srv, ts: ts}
	}()
	gw, err := New(Config{Replicas: []string{replica.ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	const id = "cluster-test.42"
	body, _ := json.Marshal(gwTestRequest(6))
	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(body))
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(service.HeaderRequestID, id)
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(service.HeaderRequestID); got != id {
		t.Fatalf("gateway echoed %q, want %q", got, id)
	}
	if !strings.Contains(logBuf.String(), fmt.Sprintf("%q:%q", "request_id", id)) {
		t.Fatalf("replica access log does not carry the client's ID:\n%s", logBuf.String())
	}
}

// countingBackend is a Dial-seam backend that counts dispatches and
// can hold them open.
type countingBackend struct {
	addr  string
	calls atomic.Int32
	gate  chan struct{} // dispatches block on it when non-nil
}

func (b *countingBackend) Score(ctx context.Context, req *service.Request) ([]byte, string, error) {
	b.calls.Add(1)
	if b.gate != nil {
		select {
		case <-b.gate:
		case <-ctx.Done():
			return nil, "", ctx.Err()
		}
	}
	return []byte(`{"from":"` + b.addr + `"}`), "miss", nil
}

// TestGatewayCrossReplicaSingleflight is the lease proof at the HTTP
// layer: a burst of identical requests produces exactly one backend
// dispatch; everyone else follows the lease and gets the same bytes.
func TestGatewayCrossReplicaSingleflight(t *testing.T) {
	o := obs.New()
	backends := map[string]*countingBackend{}
	var mu sync.Mutex
	gate := make(chan struct{})
	gw, err := New(Config{
		Replicas: []string{"http://b0", "http://b1"},
		Obs:      o,
		Dial: func(addr string) service.Backend {
			mu.Lock()
			defer mu.Unlock()
			b := &countingBackend{addr: addr, gate: gate}
			backends[addr] = b
			return b
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	const burst = 6
	body, _ := json.Marshal(gwTestRequest(7))
	var wg sync.WaitGroup
	results := make([][]byte, burst)
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			results[i], codes[i] = buf.Bytes(), resp.StatusCode
		}(i)
	}
	// Wait until the leader is inside the backend and the rest are
	// parked as followers, then release everyone at once.
	waitFor(t, func() bool { return gw.leases.waiting.Load() == burst-1 })
	close(gate)
	wg.Wait()

	var total int32
	mu.Lock()
	for _, b := range backends {
		total += b.calls.Load()
	}
	mu.Unlock()
	if total != 1 {
		t.Fatalf("%d backend dispatches for %d identical requests, want 1", total, burst)
	}
	for i := 0; i < burst; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(results[i], results[0]) {
			t.Fatalf("request %d got different bytes", i)
		}
	}
	if o.Metrics().Counter("gateway.lease.leader").Value() != 1 {
		t.Fatalf("leader counter = %d, want 1", o.Metrics().Counter("gateway.lease.leader").Value())
	}
}

// TestGatewayLeaseTakeoverByteIdentical drives the leader-death drill
// through the full HTTP stack: the leader's backend hangs past the
// lease TTL, a follower takes over, dispatches for itself, and gets
// byte-identical bytes (content addressing makes both dispatches
// agree). No follower is stranded.
func TestGatewayLeaseTakeoverByteIdentical(t *testing.T) {
	o := obs.New()
	stuck := make(chan struct{})
	var dialCount atomic.Int32
	gw, err := New(Config{
		Replicas: []string{"http://b0", "http://b1"},
		LeaseTTL: 50 * time.Millisecond,
		Obs:      o,
		Dial: func(addr string) service.Backend {
			return backendFunc(func(ctx context.Context, req *service.Request) ([]byte, string, error) {
				if dialCount.Add(1) == 1 {
					// First dispatch: the doomed leader. Hang far past
					// the TTL, then answer anyway.
					select {
					case <-stuck:
					case <-ctx.Done():
						return nil, "", ctx.Err()
					}
				}
				return []byte(`{"score":1}`), "miss", nil
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(gwTestRequest(8))
	type res struct {
		raw  []byte
		code int
	}
	leaderDone := make(chan res, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			leaderDone <- res{}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		leaderDone <- res{raw: buf.Bytes(), code: resp.StatusCode}
	}()
	waitFor(t, func() bool { return dialCount.Load() == 1 })

	// The follower arrives while the leader hangs; past the TTL it
	// takes over and answers without the leader.
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var followerBuf bytes.Buffer
	followerBuf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("takeover request: status %d, body %s", resp.StatusCode, followerBuf.Bytes())
	}
	if got := resp.Header.Get(HeaderRoute); got != RoleTakeover {
		t.Fatalf("route = %q, want %q", got, RoleTakeover)
	}

	// Unstick the leader: its own request must still complete with the
	// same bytes — nobody is stranded, nothing diverges.
	close(stuck)
	select {
	case lr := <-leaderDone:
		if lr.code != http.StatusOK {
			t.Fatalf("stuck leader finished with status %d", lr.code)
		}
		if !bytes.Equal(lr.raw, followerBuf.Bytes()) {
			t.Fatalf("leader bytes %s != takeover bytes %s", lr.raw, followerBuf.Bytes())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stuck leader never completed")
	}
	if o.Metrics().Counter("gateway.lease.takeover").Value() != 1 {
		t.Fatal("takeover counter never moved")
	}
}

// backendFunc adapts a function to service.Backend.
type backendFunc func(ctx context.Context, req *service.Request) ([]byte, string, error)

func (f backendFunc) Score(ctx context.Context, req *service.Request) ([]byte, string, error) {
	return f(ctx, req)
}

// TestGatewayRingEndpoint pins the /ring debug surface: every replica
// listed with an arc share and a breaker state.
func TestGatewayRingEndpoint(t *testing.T) {
	gw, ts, _ := startCluster(t, 3, Config{})
	resp, err := http.Get(ts.URL + "/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Replicas []struct {
			Replica string  `json:"replica"`
			Share   float64 `json:"share"`
			Breaker string  `json:"breaker"`
		} `json:"replicas"`
		VNodes int `json:"vnodes"`
		Quorum int `json:"quorum"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Replicas) != 3 {
		t.Fatalf("%d replicas in /ring, want 3", len(body.Replicas))
	}
	if body.VNodes != DefaultVNodes {
		t.Fatalf("vnodes = %d, want %d", body.VNodes, DefaultVNodes)
	}
	if body.Quorum != 2 {
		t.Fatalf("quorum = %d, want majority 2", body.Quorum)
	}
	var total float64
	for _, r := range body.Replicas {
		if r.Breaker != "closed" {
			t.Fatalf("replica %s breaker = %q, want closed", r.Replica, r.Breaker)
		}
		total += r.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("arc shares sum to %v, want 1", total)
	}
	_ = gw
}

// TestGatewayConfigValidation pins constructor errors.
func TestGatewayConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no replicas accepted")
	}
	if _, err := New(Config{Replicas: []string{"a"}, Quorum: 2}); err == nil {
		t.Fatal("quorum above replica count accepted")
	}
}
