package gateway

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLeaseCoalesces proves the singleflight property: N concurrent
// callers on one key produce exactly one dispatch, one leader and N-1
// followers, all sharing the same bytes.
func TestLeaseCoalesces(t *testing.T) {
	lt := newLeaseTable(time.Minute)
	key := testKey(1)
	var dispatches atomic.Int32
	release := make(chan struct{})
	fn := func(ctx context.Context) leaseResult {
		dispatches.Add(1)
		<-release
		return leaseResult{raw: []byte("payload"), status: "miss", replica: "r0"}
	}

	const callers = 8
	var wg sync.WaitGroup
	roles := make([]string, callers)
	results := make([]leaseResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], roles[i] = lt.do(context.Background(), key, fn)
		}(i)
	}
	// Wait until the leader is inside fn and everyone else is parked on
	// the lease before releasing.
	waitFor(t, func() bool {
		return dispatches.Load() == 1 && lt.waiting.Load() == callers-1
	})
	close(release)
	wg.Wait()

	if got := dispatches.Load(); got != 1 {
		t.Fatalf("%d dispatches, want 1", got)
	}
	leaders, followers := 0, 0
	for i := range roles {
		switch roles[i] {
		case RoleLeader:
			leaders++
		case RoleFollower:
			followers++
		default:
			t.Fatalf("caller %d got role %q", i, roles[i])
		}
		if !bytes.Equal(results[i].raw, []byte("payload")) {
			t.Fatalf("caller %d got bytes %q", i, results[i].raw)
		}
	}
	if leaders != 1 || followers != callers-1 {
		t.Fatalf("%d leaders / %d followers, want 1 / %d", leaders, followers, callers-1)
	}
	if lt.len() != 0 {
		t.Fatalf("%d leases left after completion, want 0", lt.len())
	}
}

// TestLeaseDistinctKeysDoNotCoalesce pins that the table is per-key.
func TestLeaseDistinctKeysDoNotCoalesce(t *testing.T) {
	lt := newLeaseTable(time.Minute)
	var dispatches atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lt.do(context.Background(), testKey(i), func(ctx context.Context) leaseResult {
				dispatches.Add(1)
				return leaseResult{raw: []byte("x")}
			})
		}(i)
	}
	wg.Wait()
	if got := dispatches.Load(); got != 4 {
		t.Fatalf("%d dispatches for 4 distinct keys, want 4", got)
	}
}

// TestLeaseExpiryTakeover is the leader-death drill: a leader that
// never finishes strands its lease; a follower must take over at the
// TTL, dispatch on its own, and get a byte-identical result (the
// dispatch is content-addressed — same key, same bytes). The usurped
// leader's own late result still serves anyone who joined it.
func TestLeaseExpiryTakeover(t *testing.T) {
	lt := newLeaseTable(50 * time.Millisecond)
	key := testKey(2)
	leaderStarted := make(chan struct{})
	leaderStuck := make(chan struct{})

	var wg sync.WaitGroup
	var leaderRes, followerRes leaseResult
	var leaderRole, followerRole string
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderRes, leaderRole = lt.do(context.Background(), key, func(ctx context.Context) leaseResult {
			close(leaderStarted)
			<-leaderStuck // hangs far past the TTL
			return leaseResult{raw: []byte("score-bytes"), replica: "r0"}
		})
	}()
	<-leaderStarted

	wg.Add(1)
	go func() {
		defer wg.Done()
		followerRes, followerRole = lt.do(context.Background(), key, func(ctx context.Context) leaseResult {
			// The takeover dispatch: content addressing guarantees the
			// same bytes as the stuck leader would eventually produce.
			return leaseResult{raw: []byte("score-bytes"), replica: "r1"}
		})
		// Only now unstick the original leader: the takeover completed
		// without it.
		close(leaderStuck)
	}()
	wg.Wait()

	if followerRole != RoleTakeover {
		t.Fatalf("follower role = %q, want %q", followerRole, RoleTakeover)
	}
	if leaderRole != RoleLeader {
		t.Fatalf("leader role = %q, want %q", leaderRole, RoleLeader)
	}
	if !bytes.Equal(followerRes.raw, leaderRes.raw) {
		t.Fatalf("takeover bytes %q != leader bytes %q", followerRes.raw, leaderRes.raw)
	}
	if followerRes.replica != "r1" {
		t.Fatalf("takeover served by %q, want its own dispatch r1", followerRes.replica)
	}
	if lt.len() != 0 {
		t.Fatalf("%d leases left, want 0", lt.len())
	}
}

// TestLeaseFollowerHonorsContext pins that a follower whose own
// context fires stops waiting with ctx.Err() instead of blocking on a
// leader it no longer wants.
func TestLeaseFollowerHonorsContext(t *testing.T) {
	lt := newLeaseTable(time.Minute)
	key := testKey(3)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go lt.do(context.Background(), key, func(ctx context.Context) leaseResult {
		close(started)
		<-release
		return leaseResult{}
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var res leaseResult
	var role string
	go func() {
		defer close(done)
		res, role = lt.do(ctx, key, func(ctx context.Context) leaseResult {
			t.Error("cancelled follower dispatched")
			return leaseResult{}
		})
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled follower never returned")
	}
	if res.err != context.Canceled {
		t.Fatalf("follower err = %v, want context.Canceled", res.err)
	}
	if role != RoleFollower {
		t.Fatalf("role = %q, want %q", role, RoleFollower)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}
