// Package gateway is the front tier of a horizontal hmeansd
// deployment: one process that owns no compute of its own, routes
// POST /v1/score by the request's SHA-256 content address over a
// consistent-hash ring of replicas (cache affinity: each key has one
// home replica, so the fleet-wide cache hit rate approaches a single
// process's), coalesces identical in-flight requests across replicas
// with a TTL leader lease on the content hash, and treats replica
// failure as a routing event — breaker-open or draining replicas are
// skipped on the ring walk, /readyz aggregates replica readiness into
// a quorum answer, and a recovered replica re-enters rotation through
// a half-open probe.
//
// The byte-identity contract survives the extra hop: the gateway
// serves exactly the bytes the replica returned (digest-verified on
// the way in, re-stamped on the way out), so gateway-served responses
// are byte-identical to direct-replica responses — the cluster-smoke
// CI job proves it against the batch CLI as well.
package gateway

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hmeans/internal/obs"
	"hmeans/internal/resilience"
	"hmeans/internal/service"
)

// Routing headers the gateway adds on top of the service's own.
const (
	// HeaderReplica names the replica that served the response.
	HeaderReplica = "X-Hmeans-Replica"
	// HeaderRoute reports the lease role this request took: leader,
	// follower or takeover.
	HeaderRoute = "X-Hmeans-Route"
)

// ErrNoReplica reports that every replica was unavailable for a
// dispatch: breaker-open, draining, shedding or unreachable. Mapped to
// 503 + Retry-After — the cluster equivalent of a single daemon's
// draining answer, and explicitly NOT a 5xx-internal: the gateway is
// fine, the fleet is (transiently) out of capacity.
var ErrNoReplica = errors.New("gateway: no replica available")

// Config configures a Gateway.
type Config struct {
	// Replicas are the replica base URLs the ring routes over.
	Replicas []string
	// VNodes is the per-replica virtual-node count; <= 0 takes
	// DefaultVNodes.
	VNodes int
	// LeaseTTL bounds how long followers wait on a leader before
	// taking over its lease; <= 0 defaults to 30s. It should exceed
	// the slowest expected compute, or takeovers will duplicate work
	// (harmlessly, but measurably).
	LeaseTTL time.Duration
	// Retries bounds per-replica dispatch retries (service.Remote's
	// policy); < 0 means 0. Failover to the next ring candidate is
	// separate and always on.
	Retries int
	// RetryBase is the backoff before a per-replica retry; <= 0
	// defaults to 50ms. Jitter is ±25%, seeded by Seed.
	RetryBase time.Duration
	// Seed derives every jittered delay, PR 8 discipline.
	Seed uint64
	// BreakerThreshold consecutive dispatch failures take a replica
	// out of rotation; <= 0 defaults to 3. A draining replica is
	// tripped out immediately regardless.
	BreakerThreshold int
	// BreakerCooldown is how long an open replica stays out before a
	// half-open probe; <= 0 defaults to 5s.
	BreakerCooldown time.Duration
	// Quorum is how many replicas must report ready for the gateway's
	// /readyz to answer 200; <= 0 means a majority (n/2+1).
	Quorum int
	// ProbeTimeout bounds each replica /readyz probe; <= 0 defaults
	// to 1s.
	ProbeTimeout time.Duration
	// MaxBodyBytes bounds the request body; <= 0 defaults to 64 MiB.
	MaxBodyBytes int64
	// Client is the HTTP client for dispatches and probes; nil builds
	// one with keep-alives sized for the replica count.
	Client *http.Client
	// Dial builds the backend for a replica address. Nil uses
	// service.NewRemote — the production path. Tests inject in-process
	// backends here.
	Dial func(addr string) service.Backend
	// Obs receives request spans and the gateway counters. Nil falls
	// back to the process-default observer.
	Obs *obs.Observer
	// AccessLog receives one structured line per request (request_id,
	// status, replica, route, cache). Nil disables access logging.
	AccessLog *slog.Logger
}

// Gateway routes scoring requests over a replica ring. Build one with
// New, expose it with Handler.
type Gateway struct {
	cfg      Config
	obs      *obs.Observer
	ring     *Ring
	leases   *leaseTable
	breakers *resilience.BreakerSet
	client   *http.Client

	mu       sync.Mutex
	backends map[string]service.Backend

	draining atomic.Bool
}

// New builds a Gateway from cfg (see Config for defaulting).
func New(cfg Config) (*Gateway, error) {
	ring, err := NewRing(cfg.Replicas, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.Quorum <= 0 {
		cfg.Quorum = len(cfg.Replicas)/2 + 1
	}
	if cfg.Quorum > len(cfg.Replicas) {
		return nil, fmt.Errorf("gateway: quorum %d exceeds %d replicas", cfg.Quorum, len(cfg.Replicas))
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        4 * len(cfg.Replicas),
			MaxIdleConnsPerHost: 4,
		}}
	}
	g := &Gateway{
		cfg:      cfg,
		obs:      obs.Or(cfg.Obs),
		ring:     ring,
		leases:   newLeaseTable(cfg.LeaseTTL),
		breakers: resilience.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown),
		client:   client,
		backends: make(map[string]service.Backend, len(cfg.Replicas)),
	}
	return g, nil
}

// Ring exposes the routing ring (for /ring and tests).
func (g *Gateway) Ring() *Ring { return g.ring }

// Breakers exposes the per-replica breaker set (for /ring and tests).
func (g *Gateway) Breakers() *resilience.BreakerSet { return g.breakers }

// backend returns (building on first use) the Backend for addr.
func (g *Gateway) backend(addr string) service.Backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.backends[addr]
	if !ok {
		if g.cfg.Dial != nil {
			b = g.cfg.Dial(addr)
		} else {
			b = service.NewRemote(service.RemoteConfig{
				BaseURL: addr,
				Client:  g.client,
				Retry: resilience.Policy{
					MaxRetries: g.cfg.Retries,
					BaseDelay:  g.cfg.RetryBase,
					Jitter:     0.25,
				},
				Seed: g.cfg.Seed,
			})
		}
		g.backends[addr] = b
	}
	return b
}

// BeginDrain flips the gateway into draining mode: /readyz answers 503
// and new scoring requests are refused, while requests already being
// routed finish. One-way, like the replica drain.
func (g *Gateway) BeginDrain() {
	if g.draining.CompareAndSwap(false, true) {
		g.count("gateway.drain.begin")
	}
}

// Draining reports whether BeginDrain has been called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// dispatch walks the ring candidates for key and executes the request
// on the first available replica. Retryable failures (transport
// damage, sheds, drains, integrity mismatches) move the walk to the
// next candidate — replica failure is a routing event; non-retryable
// failures (invalid input, deterministic server errors) are returned
// as-is, because every replica would answer identically. A draining
// replica trips its breaker outright (it told us it will refuse work
// until restart); other failures count toward the threshold.
func (g *Gateway) dispatch(ctx context.Context, key [32]byte, req *service.Request) leaseResult {
	var lastErr error
	for _, addr := range g.ring.Candidates(key) {
		br := g.breakers.Get(addr)
		if br.Allow() != nil {
			g.count("gateway.route.breaker_skip")
			continue
		}
		raw, status, err := g.backend(addr).Score(ctx, req)
		if err == nil {
			br.Record(false)
			return leaseResult{raw: raw, status: status, replica: addr}
		}
		if !service.RetryableUpstream(err) {
			// The replica answered authoritatively (or our own context
			// fired): not a replica-health event, and failing over
			// would just repeat the same answer.
			br.Record(ctx.Err() != nil)
			return leaseResult{replica: addr, err: err}
		}
		if isDraining(err) {
			g.count("gateway.replica.draining")
			br.Trip()
		} else {
			br.Record(true)
		}
		g.count("gateway.route.failover")
		lastErr = err
	}
	if ctx.Err() != nil {
		return leaseResult{err: ctx.Err()}
	}
	if lastErr == nil {
		lastErr = ErrNoReplica
	} else {
		lastErr = fmt.Errorf("%w (last: %v)", ErrNoReplica, lastErr)
	}
	g.count("gateway.unavailable")
	return leaseResult{err: lastErr}
}

// isDraining recognizes a replica's drain refusal: hmeansd maps
// ErrDraining to 503 with the "draining" message.
func isDraining(err error) bool {
	var ue *service.UpstreamError
	return errors.As(err, &ue) && ue.Status == http.StatusServiceUnavailable
}

// Handler returns the gateway mux:
//
//	POST /v1/score   route a score request over the replica ring
//	GET  /healthz    gateway liveness (200 even while draining)
//	GET  /readyz     quorum-aggregated replica readiness
//	GET  /ring       routing state: replicas, arcs, breaker states
//	GET  /version    build description
//
// Observability endpoints are mounted separately via
// obs.Observer.Register, mirroring the replica daemon.
func (g *Gateway) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", g.handleScore)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", g.handleReadyz)
	mux.HandleFunc("/ring", g.handleRing)
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hmeansgw %s\n", obs.Version())
	})
	return mux
}

func (g *Gateway) handleScore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := service.EnsureRequestID(r)
	w.Header().Set(service.HeaderRequestID, reqID)
	sp := g.obs.StartSpan("gateway.request", obs.KV("path", r.URL.Path), obs.KV("request_id", reqID))
	defer sp.End()
	g.count("gateway.requests")
	defer func() {
		if v := recover(); v != nil {
			err := &service.PanicError{Value: v, Stack: debug.Stack()}
			g.count("gateway.panic")
			g.writeError(w, sp, http.StatusInternalServerError, err)
			g.logAccess(r, reqID, http.StatusInternalServerError, "", "", "", start, err)
		}
	}()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		err := fmt.Errorf("use POST")
		g.writeError(w, sp, http.StatusMethodNotAllowed, err)
		g.logAccess(r, reqID, http.StatusMethodNotAllowed, "", "", "", start, err)
		return
	}
	if g.Draining() {
		g.count("gateway.draining")
		g.writeError(w, sp, http.StatusServiceUnavailable, errDrainingGateway)
		g.logAccess(r, reqID, http.StatusServiceUnavailable, "", "", "", start, errDrainingGateway)
		return
	}
	var req service.Request
	body := http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		g.count("gateway.invalid")
		err = fmt.Errorf("decoding request: %w", err)
		g.writeError(w, sp, http.StatusBadRequest, err)
		g.logAccess(r, reqID, http.StatusBadRequest, "", "", "", start, err)
		return
	}
	// Validate here, before touching ring or lease: a malformed request
	// must not consume routing state, and the gateway's 400 carries the
	// same message a replica's would (same Validate).
	if err := req.Validate(); err != nil {
		g.count("gateway.invalid")
		g.writeError(w, sp, http.StatusBadRequest, err)
		g.logAccess(r, reqID, http.StatusBadRequest, "", "", "", start, err)
		return
	}
	key := req.CacheKey()
	sp.SetAttr("key", hex.EncodeToString(key[:8]))

	ctx := service.WithRequestID(r.Context(), reqID)
	res, role := g.leases.do(ctx, key, func(ctx context.Context) leaseResult {
		return g.dispatch(ctx, key, &req)
	})
	g.count("gateway.lease." + role)
	sp.SetAttr("route", role)
	sp.SetAttr("replica", res.replica)
	if res.err != nil {
		code := g.httpStatus(res.err)
		g.writeError(w, sp, code, res.err)
		g.logAccess(r, reqID, code, res.replica, role, res.status, start, res.err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Hmeans-Cache", res.status)
	w.Header().Set("X-Hmeans-Key", hex.EncodeToString(key[:8]))
	w.Header().Set(HeaderReplica, res.replica)
	w.Header().Set(HeaderRoute, role)
	// Same digest the replica attached: the bytes are untouched, and
	// re-deriving it here re-proves that before every write.
	w.Header().Set(service.HeaderDigest, service.Digest(res.raw))
	w.Write(res.raw)
	sp.SetAttr("status", http.StatusOK)
	if g.obs.Active() {
		g.obs.Metrics().Histogram("gateway.latency_ms", 1, 5, 10, 50, 100, 500, 1000, 5000).
			Observe(float64(time.Since(start).Milliseconds()))
	}
	g.logAccess(r, reqID, http.StatusOK, res.replica, role, res.status, start, nil)
}

// errDrainingGateway mirrors service.ErrDraining for the gateway's own
// shutdown.
var errDrainingGateway = errors.New("gateway: draining, not accepting new requests")

// httpStatus maps dispatch failures onto the service's status
// vocabulary: upstream answers relay their own status, total
// unavailability is 503 (typed, Retry-After), context expiry is 504.
func (g *Gateway) httpStatus(err error) int {
	var ue *service.UpstreamError
	if errors.As(err, &ue) {
		return ue.Status
	}
	var br *service.BadRequestError
	if errors.As(err, &br) {
		return http.StatusBadRequest
	}
	var de interface {
		error
		DataError() bool
	}
	if errors.As(err, &de) && de.DataError() {
		return http.StatusBadRequest
	}
	switch {
	case errors.Is(err, ErrNoReplica), errors.Is(err, errDrainingGateway):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	var te *service.TransportError
	if errors.As(err, &te) {
		// Every replica transport-failed and the walk exhausted: the
		// fleet is unreachable, not broken — same contract as
		// ErrNoReplica.
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (g *Gateway) writeError(w http.ResponseWriter, sp *obs.Span, status int, err error) {
	sp.SetAttr("status", status)
	sp.SetAttr("error", err.Error())
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", service.RetryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// replicaReady is one replica's readiness probe outcome.
type replicaReady struct {
	Addr    string `json:"addr"`
	Ready   bool   `json:"ready"`
	Breaker string `json:"breaker"`
	Error   string `json:"error,omitempty"`
}

// readiness probes every replica's /readyz concurrently.
func (g *Gateway) readiness(ctx context.Context) []replicaReady {
	replicas := g.ring.Replicas()
	out := make([]replicaReady, len(replicas))
	var wg sync.WaitGroup
	for i, addr := range replicas {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i] = replicaReady{Addr: addr, Breaker: g.breakers.Get(addr).State()}
			pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, addr+"/readyz", nil)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				out[i].Error = err.Error()
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				out[i].Ready = true
			} else {
				out[i].Error = resp.Status
			}
		}(i, addr)
	}
	wg.Wait()
	return out
}

// handleReadyz aggregates replica readiness into one quorum answer: a
// load balancer in front of several gateways needs a single bit, and
// that bit must reflect whether the fleet behind this gateway can
// actually take traffic — a gateway with no ready replicas is not
// ready, however healthy its own process is.
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readyzBody struct {
		Ready    bool           `json:"ready"`
		Draining bool           `json:"draining,omitempty"`
		Quorum   int            `json:"quorum"`
		Up       int            `json:"up"`
		Replicas []replicaReady `json:"replicas"`
	}
	body := readyzBody{Quorum: g.cfg.Quorum}
	if g.Draining() {
		body.Draining = true
	} else {
		body.Replicas = g.readiness(r.Context())
		for _, rr := range body.Replicas {
			if rr.Ready {
				body.Up++
			}
		}
		body.Ready = body.Up >= g.cfg.Quorum
	}
	w.Header().Set("Content-Type", "application/json")
	if !body.Ready {
		w.Header().Set("Retry-After", service.RetryAfter)
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// handleRing dumps the routing state: membership, arc shares, breaker
// states, live leases. This is the artifact cluster-smoke uploads —
// when a smoke run fails, the ring state says where keys were being
// routed at the time.
func (g *Gateway) handleRing(w http.ResponseWriter, r *http.Request) {
	arcs := g.ring.Arcs()
	type arcJSON struct {
		Replica string  `json:"replica"`
		Share   float64 `json:"share"`
		Breaker string  `json:"breaker"`
	}
	out := struct {
		Replicas []arcJSON `json:"replicas"`
		VNodes   int       `json:"vnodes"`
		Quorum   int       `json:"quorum"`
		Leases   int       `json:"leases"`
		Draining bool      `json:"draining"`
	}{
		VNodes:   g.ring.vnodes,
		Quorum:   g.cfg.Quorum,
		Leases:   g.leases.len(),
		Draining: g.Draining(),
	}
	replicas := g.ring.Replicas()
	sort.Strings(replicas)
	for _, addr := range replicas {
		out.Replicas = append(out.Replicas, arcJSON{
			Replica: addr,
			Share:   arcs[addr],
			Breaker: g.breakers.Get(addr).State(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// logAccess emits one structured line per gateway request, mirroring
// the replica access log's field vocabulary plus the routing fields
// (replica, route). No-op when Config.AccessLog is nil.
func (g *Gateway) logAccess(r *http.Request, reqID string, code int, replica, route, cacheStatus string, start time.Time, err error) {
	l := g.cfg.AccessLog
	if l == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs,
		slog.String("request_id", reqID),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", code),
		slog.Float64("total_ms", float64(time.Since(start).Nanoseconds())/1e6),
	)
	if replica != "" {
		attrs = append(attrs, slog.String("replica", replica))
	}
	if route != "" {
		attrs = append(attrs, slog.String("route", route))
	}
	if cacheStatus != "" {
		attrs = append(attrs, slog.String("cache", cacheStatus))
	}
	if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
		attrs = append(attrs, slog.String("retry_after", service.RetryAfter))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	level := slog.LevelInfo
	if code >= 400 {
		level = slog.LevelWarn
	}
	l.LogAttrs(context.Background(), level, "request", attrs...)
}

func (g *Gateway) count(name string) {
	if g.obs.Active() {
		g.obs.Metrics().Counter(name).Add(1)
	}
}
