// Package core implements the paper's contribution: the hierarchical
// means — benchmark-suite scores that incorporate workload-cluster
// information to cancel workload redundancy.
//
// Given per-workload scores X and a partition of the n workloads into
// k clusters with sizes n_i, the hierarchical means first reduce each
// cluster to a single representative value with an inner mean, then
// combine the k representatives with an outer mean of the same
// family:
//
//	HGM = ( Π_i ( Π_j X_ij )^{1/n_i} )^{1/k}
//	HAM = ( Σ_i ( Σ_j X_ij )/n_i ) / k
//	HHM = k / Σ_i ( (Σ_j 1/X_ij)/n_i )
//
// All three degenerate gracefully to their plain counterparts when
// every cluster is a singleton (k = n), and to the plain mean of one
// cluster when k = 1.
package core

import (
	"errors"
	"fmt"

	"hmeans/internal/stat"
)

// MeanKind selects the mean family used for both the inner
// (per-cluster) and outer (across-cluster) reduction.
type MeanKind int

const (
	// Geometric selects the hierarchical geometric mean (HGM), the
	// paper's case-study metric and the SPEC convention for speedup
	// ratios.
	Geometric MeanKind = iota
	// Arithmetic selects the hierarchical arithmetic mean (HAM).
	Arithmetic
	// Harmonic selects the hierarchical harmonic mean (HHM).
	Harmonic
)

// String returns the mean family's name.
func (k MeanKind) String() string {
	switch k {
	case Geometric:
		return "geometric"
	case Arithmetic:
		return "arithmetic"
	case Harmonic:
		return "harmonic"
	default:
		return "unknown"
	}
}

func (k MeanKind) plain(xs []float64) (float64, error) {
	switch k {
	case Geometric:
		return stat.GeometricMean(xs)
	case Arithmetic:
		return stat.ArithmeticMean(xs)
	case Harmonic:
		return stat.HarmonicMean(xs)
	default:
		return 0, fmt.Errorf("core: unknown mean kind %d", int(k))
	}
}

// Clustering assigns each workload (by index) to a cluster label in
// [0, K).
type Clustering struct {
	// Labels[i] is the cluster of workload i.
	Labels []int
	// K is the number of clusters.
	K int
}

// NewClustering validates labels and returns a Clustering. Labels
// must be dense in [0, K) — every cluster non-empty.
func NewClustering(labels []int) (Clustering, error) {
	if len(labels) == 0 {
		return Clustering{}, errors.New("core: empty clustering")
	}
	maxLabel := -1
	for i, l := range labels {
		if l < 0 {
			return Clustering{}, fmt.Errorf("core: negative cluster label %d at workload %d", l, i)
		}
		if l > maxLabel {
			maxLabel = l
		}
	}
	seen := make([]bool, maxLabel+1)
	for _, l := range labels {
		seen[l] = true
	}
	for l, ok := range seen {
		if !ok {
			return Clustering{}, fmt.Errorf("core: cluster label %d is unused (labels must be dense)", l)
		}
	}
	return Clustering{Labels: append([]int(nil), labels...), K: maxLabel + 1}, nil
}

// Singletons returns the degenerate clustering with every workload in
// its own cluster (under which every hierarchical mean equals its
// plain counterpart).
func Singletons(n int) Clustering {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i
	}
	return Clustering{Labels: labels, K: n}
}

// OneCluster returns the clustering with all n workloads together.
func OneCluster(n int) Clustering {
	return Clustering{Labels: make([]int, n), K: 1}
}

// Sizes returns the number of workloads per cluster.
func (c Clustering) Sizes() []int {
	out := make([]int, c.K)
	for _, l := range c.Labels {
		if l >= 0 && l < c.K {
			out[l]++
		}
	}
	return out
}

// HierarchicalMean computes the hierarchical mean of the given family
// over the scores partitioned by c: the inner mean reduces each
// cluster to one representative, the outer mean combines the
// representatives. It builds a one-shot Scorer; callers evaluating
// several score vectors or mean families against the same clustering
// should hold a Scorer and call Mean directly, which allocates
// nothing per call.
func HierarchicalMean(kind MeanKind, scores []float64, c Clustering) (float64, error) {
	if len(scores) != len(c.Labels) {
		return 0, fmt.Errorf("core: %d scores for %d workloads", len(scores), len(c.Labels))
	}
	s, err := NewScorer(c)
	if err != nil {
		return 0, err
	}
	return s.Mean(kind, scores)
}

// PlainMean computes the flat (non-hierarchical) mean of the given
// family over the scores — the conventional suite score.
func PlainMean(kind MeanKind, scores []float64) (float64, error) {
	return kind.plain(scores)
}

// HGM is shorthand for HierarchicalMean(Geometric, …).
func HGM(scores []float64, c Clustering) (float64, error) {
	return HierarchicalMean(Geometric, scores, c)
}

// HAM is shorthand for HierarchicalMean(Arithmetic, …).
func HAM(scores []float64, c Clustering) (float64, error) {
	return HierarchicalMean(Arithmetic, scores, c)
}

// HHM is shorthand for HierarchicalMean(Harmonic, …).
func HHM(scores []float64, c Clustering) (float64, error) {
	return HierarchicalMean(Harmonic, scores, c)
}

// EquivalentWeights returns the per-workload weights w_i = 1/(K·n_c(i))
// under which the *weighted* mean of the same family equals the
// hierarchical mean (they sum to 1). This makes the relationship to
// the paper's weighted-mean workaround explicit: the hierarchical
// means are a weighted mean whose weights are derived objectively
// from the clustering instead of negotiated by a consortium.
//
// The identity is exact for the geometric mean. For the arithmetic
// and harmonic families it is likewise exact because each inner mean
// is a linear (resp. inverse-linear) aggregate.
func EquivalentWeights(c Clustering) []float64 {
	sizes := c.Sizes()
	out := make([]float64, len(c.Labels))
	for i, l := range c.Labels {
		out[i] = 1 / (float64(c.K) * float64(sizes[l]))
	}
	return out
}
