package core

import (
	"errors"
	"fmt"
)

// RedundancyImpact quantifies the paper's motivating attack: a suite
// score is "susceptible to malicious tweaks" because duplicating (or
// near-duplicating) a favourable workload inflates a plain mean,
// while a cluster-aware score keeps the clones inside one cluster and
// is unmoved.
type RedundancyImpact struct {
	// Copies is the number of injected clones (0 = original suite).
	Copies int
	// Plain is the plain mean of the inflated suite.
	Plain float64
	// Hierarchical is the hierarchical mean of the inflated suite
	// with the clones assigned to the victim's cluster.
	Hierarchical float64
}

// InjectRedundancy appends `copies` exact clones of workload
// `victim` to the scores and extends the clustering so the clones
// join the victim's cluster. It returns the inflated scores and
// clustering.
func InjectRedundancy(scores []float64, c Clustering, victim, copies int) ([]float64, Clustering, error) {
	if len(scores) != len(c.Labels) {
		return nil, Clustering{}, fmt.Errorf("core: %d scores for %d workloads", len(scores), len(c.Labels))
	}
	if victim < 0 || victim >= len(scores) {
		return nil, Clustering{}, fmt.Errorf("core: victim index %d out of range", victim)
	}
	if copies < 0 {
		return nil, Clustering{}, errors.New("core: negative copy count")
	}
	outScores := append(append([]float64(nil), scores...), make([]float64, copies)...)
	outLabels := append(append([]int(nil), c.Labels...), make([]int, copies)...)
	for i := 0; i < copies; i++ {
		outScores[len(scores)+i] = scores[victim]
		outLabels[len(c.Labels)+i] = c.Labels[victim]
	}
	return outScores, Clustering{Labels: outLabels, K: c.K}, nil
}

// RedundancySweep measures how the plain and hierarchical means of
// the given family drift as 0..maxCopies clones of the victim
// workload are injected. When the victim is alone in its cluster the
// hierarchical mean is exactly constant under this attack (the inner
// mean of {x, x, …} is x regardless of count); when the cluster has
// other members the drift is bounded by the inner mean's pull toward
// x, still far smaller than the plain mean's. The sweep demonstrates
// both numerically.
func RedundancySweep(kind MeanKind, scores []float64, c Clustering, victim, maxCopies int) ([]RedundancyImpact, error) {
	out := make([]RedundancyImpact, 0, maxCopies+1)
	for copies := 0; copies <= maxCopies; copies++ {
		s, cl, err := InjectRedundancy(scores, c, victim, copies)
		if err != nil {
			return nil, err
		}
		plain, err := PlainMean(kind, s)
		if err != nil {
			return nil, err
		}
		hier, err := HierarchicalMean(kind, s, cl)
		if err != nil {
			return nil, err
		}
		out = append(out, RedundancyImpact{Copies: copies, Plain: plain, Hierarchical: hier})
	}
	return out, nil
}

// Ratio returns a/b, the paper's machine-comparison statistic
// (e.g. score(A)/score(B)). It errors on non-positive b.
func Ratio(a, b float64) (float64, error) {
	if b <= 0 {
		return 0, fmt.Errorf("core: ratio denominator %v must be positive", b)
	}
	return a / b, nil
}
