package core

import (
	"math"
	"reflect"
	"testing"

	"hmeans/internal/som"
)

// TestDetectClustersParallelDeterminism runs the whole pipeline —
// preprocessing, batch-SOM, placement, linkage — at worker counts
// {1, 2, 8} and requires bit-identical positions and merge sequences.
// This is the end-to-end version of the per-kernel determinism tests
// in som and cluster.
func TestDetectClustersParallelDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := PipelineConfig{
			SOM: som.Config{Steps: 6000, Seed: seed, Algorithm: som.Batch},
		}
		cfg.Parallelism = 1
		base, err := DetectClusters(syntheticSuite(t), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			cfg.Parallelism = workers
			cfg.SOM.Parallelism = 0 // let the pipeline thread it through
			p, err := DetectClusters(syntheticSuite(t), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range p.Positions {
				for j := range p.Positions[i] {
					if math.Float64bits(p.Positions[i][j]) != math.Float64bits(base.Positions[i][j]) {
						t.Fatalf("seed %d workers %d: position %d = %v, serial %v",
							seed, workers, i, p.Positions[i], base.Positions[i])
					}
				}
			}
			if !reflect.DeepEqual(base.Dendrogram.Merges(), p.Dendrogram.Merges()) {
				t.Fatalf("seed %d workers %d: dendrogram differs from serial run", seed, workers)
			}
		}
	}
}
