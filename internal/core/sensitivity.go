package core

import (
	"errors"
	"math"
)

// Sensitivity reports how much a suite score can move when the
// clustering itself is slightly wrong — the practical worry with any
// cluster-derived metric: a workload near a cluster boundary might
// plausibly belong next door.
type Sensitivity struct {
	// Base is the hierarchical mean under the given clustering.
	Base float64
	// MaxAbsShift is the largest |score − Base| over all single-
	// workload reassignments that keep the clustering valid.
	MaxAbsShift float64
	// WorstWorkload and WorstTarget identify the reassignment that
	// produces MaxAbsShift (workload index moved to target label).
	WorstWorkload, WorstTarget int
	// Evaluated counts the reassignments tried.
	Evaluated int
}

// ClusteringSensitivity evaluates every single-workload reassignment
// (move workload i from its cluster to any other existing cluster,
// provided its source cluster does not become empty) and reports the
// worst score shift. A small MaxAbsShift means the hierarchical mean
// is robust to plausible clustering mistakes at this cut.
func ClusteringSensitivity(kind MeanKind, scores []float64, c Clustering) (Sensitivity, error) {
	base, err := HierarchicalMean(kind, scores, c)
	if err != nil {
		return Sensitivity{}, err
	}
	if c.K < 2 {
		return Sensitivity{}, errors.New("core: sensitivity needs at least 2 clusters")
	}
	sizes := c.Sizes()
	res := Sensitivity{Base: base, WorstWorkload: -1, WorstTarget: -1}
	labels := append([]int(nil), c.Labels...)
	for i, orig := range c.Labels {
		if sizes[orig] == 1 {
			continue // moving it would empty the cluster
		}
		for target := 0; target < c.K; target++ {
			if target == orig {
				continue
			}
			labels[i] = target
			moved := Clustering{Labels: labels, K: c.K}
			v, err := HierarchicalMean(kind, scores, moved)
			if err != nil {
				labels[i] = orig
				return Sensitivity{}, err
			}
			res.Evaluated++
			if shift := math.Abs(v - base); shift > res.MaxAbsShift {
				res.MaxAbsShift = shift
				res.WorstWorkload = i
				res.WorstTarget = target
			}
		}
		labels[i] = orig
	}
	return res, nil
}
