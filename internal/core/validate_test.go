package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"hmeans/internal/chars"
	"hmeans/internal/obs"
)

// poisonedSuite is syntheticSuite with two rows rendered non-finite.
func poisonedSuite(t *testing.T) *chars.Table {
	t.Helper()
	tab := syntheticSuite(t).Clone()
	tab.Rows[1][2] = math.NaN()
	tab.Rows[4][0] = math.Inf(1)
	return tab
}

func TestValidateTable(t *testing.T) {
	if err := ValidateTable(syntheticSuite(t)); err != nil {
		t.Fatalf("clean table: %v", err)
	}
	err := ValidateTable(poisonedSuite(t))
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("error %v, want ErrNonFinite", err)
	}
	var de *DataError
	if !errors.As(err, &de) {
		t.Fatalf("error %T does not expose *DataError", err)
	}
	if de.Workload != "k1" || de.Feature != "f2" || de.Index != 1 {
		t.Fatalf("located %q/%q row %d, want k1/f2 row 1", de.Workload, de.Feature, de.Index)
	}
	if !de.DataError() {
		t.Fatal("DataError marker is false")
	}
}

func TestValidateScores(t *testing.T) {
	if err := ValidateScores([]float64{1, 2.5, 3}); err != nil {
		t.Fatalf("clean scores: %v", err)
	}
	err := ValidateScores([]float64{1, math.Inf(-1), 3})
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("error %v, want ErrNonFinite", err)
	}
	var de *DataError
	if !errors.As(err, &de) || de.Index != 1 {
		t.Fatalf("error %v does not locate score 1", err)
	}
}

// TestDetectClustersRejectsNonFinite: without quarantine, poisoned
// input is a typed data error, not a crash or a silent NaN result.
func TestDetectClustersRejectsNonFinite(t *testing.T) {
	_, err := DetectClusters(poisonedSuite(t), pipelineConfig())
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("error %v, want ErrNonFinite", err)
	}
}

// TestQuarantineDropsPoisonedRows: with quarantine, the pipeline
// clusters the finite survivors, records who was dropped, and scores
// full-length vectors by discarding quarantined entries.
func TestQuarantineDropsPoisonedRows(t *testing.T) {
	col := obs.NewCollector()
	cfg := pipelineConfig()
	cfg.Quarantine = true
	cfg.Obs = obs.New(col)
	p, err := DetectClusters(poisonedSuite(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Quarantined) != 2 {
		t.Fatalf("quarantined %d workloads, want 2: %+v", len(p.Quarantined), p.Quarantined)
	}
	if p.Quarantined[0].Workload != "k1" || p.Quarantined[1].Workload != "g1" {
		t.Fatalf("quarantined %+v, want k1 and g1", p.Quarantined)
	}
	if len(p.Workloads) != 4 {
		t.Fatalf("%d survivors, want 4", len(p.Workloads))
	}
	// The trace records one quarantine event per dropped workload.
	events := 0
	for _, e := range col.Trace().Events {
		if e.Name == "pipeline.quarantine" {
			events++
		}
	}
	if events != 2 {
		t.Fatalf("%d pipeline.quarantine events in trace, want 2", events)
	}

	// A full-length score vector (including quarantined rows) aligns
	// down to the survivors; the quarantined entries may even be NaN.
	full := []float64{1, math.NaN(), 3, 4, math.Inf(1), 6}
	aligned, err := p.AlignScores(full)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 3, 4, 6}
	if len(aligned) != len(want) {
		t.Fatalf("aligned %v, want %v", aligned, want)
	}
	for i := range want {
		if aligned[i] != want[i] {
			t.Fatalf("aligned %v, want %v", aligned, want)
		}
	}
	s, err := p.ScoreAtK(Geometric, full, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("hierarchical mean over survivors is %v", s)
	}
	// A vector that matches neither shape is a clear error.
	if _, err := p.AlignScores([]float64{1, 2}); err == nil {
		t.Fatal("AlignScores accepted a 2-element vector")
	}
}

// TestQuarantineEverything: when every row is poisoned the pipeline
// fails with a data error instead of clustering nothing.
func TestQuarantineEverything(t *testing.T) {
	tab := syntheticSuite(t).Clone()
	for i := range tab.Rows {
		tab.Rows[i][0] = math.NaN()
	}
	cfg := pipelineConfig()
	cfg.Quarantine = true
	_, err := DetectClusters(tab, cfg)
	if !errors.Is(err, ErrNonFinite) {
		t.Fatalf("error %v, want ErrNonFinite", err)
	}
	var de *DataError
	if !errors.As(err, &de) {
		t.Fatalf("error %T does not expose *DataError", err)
	}
}

// TestQuarantineCleanInputUnchanged: quarantine mode on clean input
// is bit-identical to the plain pipeline.
func TestQuarantineCleanInputUnchanged(t *testing.T) {
	plain, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipelineConfig()
	cfg.Quarantine = true
	q, err := DetectClusters(syntheticSuite(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Quarantined) != 0 {
		t.Fatalf("quarantined %+v on clean input", q.Quarantined)
	}
	scores := []float64{1, 2, 3, 4, 5, 6}
	for k := 1; k <= 6; k++ {
		a, err := plain.ScoreAtK(Geometric, scores, k)
		if err != nil {
			t.Fatal(err)
		}
		b, err := q.ScoreAtK(Geometric, scores, k)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("k=%d: quarantine mode changed the mean: %v vs %v", k, a, b)
		}
	}
}

func TestZeroVarianceTyped(t *testing.T) {
	tab, err := chars.NewTable(
		[]string{"a", "b", "c"},
		[]string{"f0", "f1"},
		[][]float64{{3, 9}, {3, 9}, {3, 9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DetectClusters(tab, pipelineConfig())
	if !errors.Is(err, ErrZeroVariance) {
		t.Fatalf("error %v, want ErrZeroVariance", err)
	}
	var de *DataError
	if !errors.As(err, &de) {
		t.Fatalf("error %T does not expose *DataError", err)
	}
}

// TestDetectClustersCtxBitIdentical proves the ctx-aware entry point
// reproduces DetectClusters exactly when the context never fires.
func TestDetectClustersCtxBitIdentical(t *testing.T) {
	plain, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := DetectClustersCtx(context.Background(), syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Map.Equal(withCtx.Map) {
		t.Fatal("SOM diverged under a background context")
	}
	a, b := plain.Dendrogram.Merges(), withCtx.Dendrogram.Merges()
	if len(a) != len(b) {
		t.Fatalf("merge counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("merge %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestDetectClustersCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DetectClustersCtx(ctx, syntheticSuite(t), pipelineConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
}
