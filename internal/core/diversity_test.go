package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAnalyzeDiversitySingletons(t *testing.T) {
	d, err := AnalyzeDiversity(Singletons(8))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.EffectiveClusters, 8, 1e-9) {
		t.Errorf("effective clusters = %v, want 8", d.EffectiveClusters)
	}
	if math.Abs(d.Redundancy) > 1e-9 {
		t.Errorf("redundancy of singletons = %v, want 0", d.Redundancy)
	}
	if d.LargestClusterShare != 1.0/8 {
		t.Errorf("largest share = %v", d.LargestClusterShare)
	}
}

func TestAnalyzeDiversityOneCluster(t *testing.T) {
	d, err := AnalyzeDiversity(OneCluster(8))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d.EffectiveClusters, 1, 1e-9) {
		t.Errorf("effective clusters = %v, want 1", d.EffectiveClusters)
	}
	if !almostEqual(d.Redundancy, 1-1.0/8, 1e-9) {
		t.Errorf("redundancy = %v, want 7/8", d.Redundancy)
	}
	if d.LargestClusterShare != 1 {
		t.Errorf("largest share = %v, want 1", d.LargestClusterShare)
	}
}

func TestAnalyzeDiversityPaperCase(t *testing.T) {
	// 13 workloads, SciMark's 5 in one cluster, the rest singletons:
	// 9 clusters, unbalanced.
	labels := []int{0, 1, 2, 3, 4, 5, 5, 5, 5, 5, 6, 7, 8}
	c, err := NewClustering(labels)
	if err != nil {
		t.Fatal(err)
	}
	d, err := AnalyzeDiversity(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Clusters != 9 || d.Workloads != 13 {
		t.Fatalf("shape %+v", d)
	}
	// Effective diversity must sit strictly between 1 and 9 and the
	// largest share must expose the adoption set.
	if d.EffectiveClusters <= 1 || d.EffectiveClusters >= 9 {
		t.Errorf("effective clusters = %v", d.EffectiveClusters)
	}
	if !almostEqual(d.LargestClusterShare, 5.0/13, 1e-9) {
		t.Errorf("largest share = %v, want 5/13", d.LargestClusterShare)
	}
	if d.Redundancy <= 0 {
		t.Errorf("redundancy = %v, want positive", d.Redundancy)
	}
}

func TestAnalyzeDiversityErrors(t *testing.T) {
	if _, err := AnalyzeDiversity(Clustering{}); err == nil {
		t.Error("empty clustering accepted")
	}
	if _, err := AnalyzeDiversity(Clustering{Labels: []int{0, 0}, K: 2}); err == nil {
		t.Error("empty cluster accepted")
	}
}

// Property: 1 <= EffectiveClusters <= K <= n, and redundancy in
// [0, 1).
func TestDiversityBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 40 {
			raw = raw[:40]
		}
		labels := make([]int, len(raw))
		for i, v := range raw {
			labels[i] = int(v) % (len(raw)/2 + 1)
		}
		c, err := NewClustering(canonLabels(labels))
		if err != nil {
			return false
		}
		d, err := AnalyzeDiversity(c)
		if err != nil {
			return false
		}
		return d.EffectiveClusters >= 1-1e-9 &&
			d.EffectiveClusters <= float64(d.Clusters)+1e-9 &&
			d.Clusters <= d.Workloads &&
			d.Redundancy >= -1e-9 && d.Redundancy < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// canonLabels densifies arbitrary labels for NewClustering.
func canonLabels(labels []int) []int {
	remap := map[int]int{}
	out := make([]int, len(labels))
	next := 0
	for i, l := range labels {
		n, ok := remap[l]
		if !ok {
			n = next
			remap[l] = n
			next++
		}
		out[i] = n
	}
	return out
}

func TestDiversitySweep(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := p.DiversitySweep(1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 6 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	// Effective diversity is non-decreasing as cuts refine.
	for i := 1; i < len(sweep); i++ {
		if sweep[i].EffectiveClusters < sweep[i-1].EffectiveClusters-1e-9 {
			t.Fatalf("effective diversity fell from %v to %v",
				sweep[i-1].EffectiveClusters, sweep[i].EffectiveClusters)
		}
	}
	if _, err := p.DiversitySweep(9, 12); err == nil {
		t.Error("out-of-range sweep accepted")
	}
}
