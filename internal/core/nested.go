package core

import (
	"errors"
	"fmt"
	"sort"

	"hmeans/internal/cluster"
)

// NestedMean generalizes the hierarchical means to more than two
// levels: cut the same dendrogram at several cluster counts
// k₁ < k₂ < … and average bottom-up — workloads within a kₘ-cluster
// first, those representatives within their kₘ₋₁-cluster next, and so
// on, finishing with one outer mean across the k₁ groups. With a
// single level this is exactly HierarchicalMean; with levels = [k, n]
// it degenerates the same way. The cuts nest by construction (they
// come from one merge tree), which is what makes the recursion well
// defined.
//
// The paper stops at two levels; deeper nesting answers the follow-up
// question its bioinformatics/data-mining example raises — when the
// adoption sets themselves group into families, each family should
// count once at the top.
func NestedMean(kind MeanKind, scores []float64, d *cluster.Dendrogram, levels []int) (float64, error) {
	if d == nil {
		return 0, errors.New("core: nil dendrogram")
	}
	if len(scores) != d.Len() {
		return 0, fmt.Errorf("core: %d scores for %d workloads", len(scores), d.Len())
	}
	if len(levels) == 0 {
		return 0, errors.New("core: no levels")
	}
	ks := append([]int(nil), levels...)
	sort.Ints(ks)
	for i, k := range ks {
		if k < 1 || k > d.Len() {
			return 0, fmt.Errorf("core: level %d out of range [1, %d]", k, d.Len())
		}
		if i > 0 && k == ks[i-1] {
			return 0, fmt.Errorf("core: duplicate level %d", k)
		}
	}

	// Start with the finest level: reduce workloads to one
	// representative per finest cluster.
	finest, err := d.CutK(ks[len(ks)-1])
	if err != nil {
		return 0, err
	}
	reps := make([]float64, finest.K)
	for label, members := range finest.Members() {
		vals := make([]float64, len(members))
		for i, m := range members {
			vals[i] = scores[m]
		}
		rep, err := kind.plain(vals)
		if err != nil {
			return 0, fmt.Errorf("core: level k=%d cluster %d: %w", finest.K, label, err)
		}
		reps[label] = rep
	}
	// repOf[i] tracks which current representative workload i belongs
	// to, so coarser cuts can group representatives via any member.
	repOf := append([]int(nil), finest.Labels...)

	// Walk levels coarse-ward. For each coarser cut, group the
	// current representatives by the coarser label of (any of) their
	// members; nesting guarantees consistency.
	for li := len(ks) - 2; li >= 0; li-- {
		coarse, err := d.CutK(ks[li])
		if err != nil {
			return 0, err
		}
		groups := make(map[int][]float64)
		seen := make(map[int]int) // current rep -> coarse label
		for i, r := range repOf {
			cl := coarse.Labels[i]
			if prev, ok := seen[r]; ok {
				if prev != cl {
					return 0, errors.New("core: cuts are not nested")
				}
				continue
			}
			seen[r] = cl
			groups[cl] = append(groups[cl], reps[r])
		}
		newReps := make([]float64, coarse.K)
		for cl := 0; cl < coarse.K; cl++ {
			rep, err := kind.plain(groups[cl])
			if err != nil {
				return 0, fmt.Errorf("core: level k=%d cluster %d: %w", coarse.K, cl, err)
			}
			newReps[cl] = rep
		}
		reps = newReps
		repOf = append([]int(nil), coarse.Labels...)
	}
	return kind.plain(reps)
}
