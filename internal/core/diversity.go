package core

import (
	"errors"
	"math"
)

// Diversity quantifies how much unique behaviour a suite actually
// contains given its clustering — the paper's "analyze the inherent
// redundancy and cluster characteristics in a quantitative manner"
// use case reduced to summary numbers.
type Diversity struct {
	// Workloads is the suite size n.
	Workloads int
	// Clusters is the cluster count k.
	Clusters int
	// EffectiveClusters is exp(H) where H is the Shannon entropy of
	// the cluster-size distribution: the "true diversity" (Hill
	// number of order 1). It equals k when clusters are balanced and
	// approaches 1 as one cluster swallows the suite.
	EffectiveClusters float64
	// Redundancy is 1 − EffectiveClusters/n: 0 for a suite of
	// singletons (no redundancy), approaching 1 − 1/n when every
	// workload is behaviourally the same.
	Redundancy float64
	// LargestClusterShare is the fraction of the suite inside the
	// biggest cluster — the single number that exposes an adoption
	// set coagulating (SciMark2's 5/13 = 0.385 in the paper's case
	// study).
	LargestClusterShare float64
}

// AnalyzeDiversity computes the diversity summary of a clustering.
func AnalyzeDiversity(c Clustering) (Diversity, error) {
	n := len(c.Labels)
	if n == 0 {
		return Diversity{}, errors.New("core: empty clustering")
	}
	sizes := c.Sizes()
	entropy := 0.0
	largest := 0
	for _, s := range sizes {
		if s == 0 {
			return Diversity{}, errors.New("core: empty cluster")
		}
		p := float64(s) / float64(n)
		entropy -= p * math.Log(p)
		if s > largest {
			largest = s
		}
	}
	eff := math.Exp(entropy)
	return Diversity{
		Workloads:           n,
		Clusters:            c.K,
		EffectiveClusters:   eff,
		Redundancy:          1 - eff/float64(n),
		LargestClusterShare: float64(largest) / float64(n),
	}, nil
}

// DiversitySweep analyzes every cut of the pipeline's dendrogram in
// [kMin, kMax], tracing how the suite's effective diversity grows as
// the clustering is refined.
func (p *Pipeline) DiversitySweep(kMin, kMax int) ([]Diversity, error) {
	var out []Diversity
	for k := kMin; k <= kMax && k <= p.Dendrogram.Len(); k++ {
		if k < 1 {
			continue
		}
		c, err := p.ClusteringAtK(k)
		if err != nil {
			return nil, err
		}
		d, err := AnalyzeDiversity(c)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		return nil, errors.New("core: empty diversity sweep")
	}
	return out, nil
}
