package core

import (
	"errors"
	"fmt"
	"math"

	"hmeans/internal/chars"
)

// ErrNonFinite marks input containing NaN or ±Inf — a measurement
// that cannot participate in standardization or distance computation.
var ErrNonFinite = errors.New("non-finite value")

// ErrZeroVariance marks a characterization whose preprocessing
// discarded every feature: nothing varies, so nothing can be
// clustered.
var ErrZeroVariance = errors.New("no feature with usable variance")

// DataError locates a validation failure in the input data. It
// unwraps to one of the sentinels above and implements the
// DataError() marker that internal/cliutil maps to the data-error
// exit code.
type DataError struct {
	// Workload and Feature name the offending cell; either may be
	// empty when the error is not cell-specific.
	Workload string
	Feature  string
	// Index is the row (or score) index, -1 when not applicable.
	Index int
	// Value is the offending value for non-finite errors.
	Value float64
	// Err is the sentinel this error wraps.
	Err error
}

func (e *DataError) Error() string {
	switch {
	case e.Workload != "" && e.Feature != "":
		return fmt.Sprintf("core: workload %q: %v (%v) in feature %q", e.Workload, e.Err, e.Value, e.Feature)
	case e.Workload != "":
		return fmt.Sprintf("core: workload %q: %v", e.Workload, e.Err)
	case e.Index >= 0:
		return fmt.Sprintf("core: score %d: %v (%v)", e.Index, e.Err, e.Value)
	default:
		return fmt.Sprintf("core: %v", e.Err)
	}
}

func (e *DataError) Unwrap() error { return e.Err }

// DataError marks the error as caused by invalid input data rather
// than a usage or internal failure.
func (e *DataError) DataError() bool { return true }

// ValidateTable scans a characterization table in row-major order and
// returns a *DataError naming the first non-finite cell, or nil when
// every value is finite.
func ValidateTable(t *chars.Table) error {
	if t == nil {
		return nil
	}
	for i, row := range t.Rows {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return &DataError{
					Workload: t.Workloads[i],
					Feature:  t.Features[j],
					Index:    i,
					Value:    v,
					Err:      ErrNonFinite,
				}
			}
		}
	}
	return nil
}

// ValidateScores returns a *DataError for the first non-finite or
// non-positive score. Scores are times or rates: a zero or negative
// value breaks every ratio and geometric mean downstream.
func ValidateScores(scores []float64) error {
	for i, v := range scores {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return &DataError{Index: i, Value: v, Err: ErrNonFinite}
		}
	}
	return nil
}

// Quarantine records one workload the pipeline dropped in
// graceful-degradation mode.
type Quarantine struct {
	// Workload names the dropped row.
	Workload string
	// Index is the row's position in the original table.
	Index int
	// Reason says why it was dropped.
	Reason string
}

// quarantineSplit partitions a table into rows whose every value is
// finite and quarantine records for the rest. kept maps each
// surviving row back to its original index; it is nil when nothing
// was dropped (the clean table is then the input itself).
func quarantineSplit(t *chars.Table) (clean *chars.Table, dropped []Quarantine, kept []int) {
	bad := make([]string, len(t.Rows))
	for i, row := range t.Rows {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				bad[i] = fmt.Sprintf("%v in feature %q", v, t.Features[j])
				break
			}
		}
	}
	for i, reason := range bad {
		if reason != "" {
			dropped = append(dropped, Quarantine{Workload: t.Workloads[i], Index: i, Reason: reason})
		}
	}
	if len(dropped) == 0 {
		return t, nil, nil
	}
	kept = make([]int, 0, len(t.Rows)-len(dropped))
	workloads := make([]string, 0, cap(kept))
	rows := make([][]float64, 0, cap(kept))
	for i := range t.Rows {
		if bad[i] == "" {
			kept = append(kept, i)
			workloads = append(workloads, t.Workloads[i])
			rows = append(rows, t.Rows[i])
		}
	}
	return &chars.Table{Workloads: workloads, Features: t.Features, Rows: rows}, dropped, kept
}
