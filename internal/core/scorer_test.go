package core

import (
	"testing"
)

// caseStudy13 reproduces the benchmark suite of the paper's case
// study: 13 workloads clustered into 5 groups.
func caseStudy13() ([]float64, Clustering) {
	scores := make([]float64, 13)
	labels := make([]int, 13)
	for i := range scores {
		scores[i] = 0.5 + float64(i)*0.37
		labels[i] = i % 5
	}
	c, err := NewClustering(labels)
	if err != nil {
		panic(err)
	}
	return scores, c
}

// TestScorerMeanAllocationFree pins all three hierarchical means on
// the 13-workload case study at zero heap allocations per evaluation
// once a Scorer holds the clustering's gather plan.
func TestScorerMeanAllocationFree(t *testing.T) {
	scores, c := caseStudy13()
	s, err := NewScorer(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
		kind := kind
		if avg := testing.AllocsPerRun(200, func() {
			if _, err := s.Mean(kind, scores); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("Scorer.Mean(%v): %v allocs/op, want 0", kind, avg)
		}
	}
}

// TestScorerMatchesHierarchicalMean proves Scorer.Mean is
// value-identical to HierarchicalMean for every family across several
// clusterings, including the degenerate ones.
func TestScorerMatchesHierarchicalMean(t *testing.T) {
	scores, c13 := caseStudy13()
	cases := []Clustering{c13, Singletons(13), OneCluster(13)}
	for ci, c := range cases {
		s, err := NewScorer(c)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
			want, err := HierarchicalMean(kind, scores, c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.Mean(kind, scores)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("case %d %v: Scorer.Mean %v != HierarchicalMean %v", ci, kind, got, want)
			}
		}
	}
}

// TestScorerReset proves a reused Scorer re-plans correctly (the
// service pools one scorer across a whole k-sweep) and that
// validation errors match the historical messages.
func TestScorerReset(t *testing.T) {
	scores, c13 := caseStudy13()
	s, err := NewScorer(Singletons(13))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Clustering{c13, OneCluster(13), Singletons(13)} {
		if err := s.Reset(c); err != nil {
			t.Fatal(err)
		}
		want, err := HierarchicalMean(Geometric, scores, c)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Mean(Geometric, scores)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("after Reset(K=%d): %v != %v", c.K, got, want)
		}
	}

	if _, err := NewScorer(Clustering{Labels: []int{0, 7}, K: 2}); err == nil ||
		err.Error() != "core: label 7 out of range [0,2)" {
		t.Errorf("out-of-range label error = %v", err)
	}
	if _, err := NewScorer(Clustering{Labels: []int{0, 0}, K: 2}); err == nil ||
		err.Error() != "core: cluster 1 is empty" {
		t.Errorf("empty cluster error = %v", err)
	}
	if err := s.Reset(c13); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Mean(Geometric, scores[:5]); err == nil ||
		err.Error() != "core: 5 scores for 13 workloads" {
		t.Errorf("length mismatch error = %v", err)
	}
}
