package core

import (
	"math"
	"testing"
)

func TestClusteringSensitivityBasic(t *testing.T) {
	scores := []float64{4, 4.2, 1, 1.1, 8}
	c, err := NewClustering([]int{0, 0, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ClusteringSensitivity(Geometric, scores, c)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := HGM(scores, c)
	if res.Base != base {
		t.Fatalf("base = %v, want %v", res.Base, base)
	}
	// Workload 4 is a singleton: it cannot move. The four others can
	// each go to 2 targets: 8 evaluations.
	if res.Evaluated != 8 {
		t.Fatalf("evaluated %d reassignments, want 8", res.Evaluated)
	}
	if res.MaxAbsShift <= 0 {
		t.Fatal("no shift detected for a clearly movable clustering")
	}
	if res.WorstWorkload < 0 || res.WorstWorkload > 3 {
		t.Fatalf("worst workload = %d", res.WorstWorkload)
	}
	// Verify the reported worst shift is reproducible.
	labels := append([]int(nil), c.Labels...)
	labels[res.WorstWorkload] = res.WorstTarget
	moved := Clustering{Labels: labels, K: c.K}
	v, err := HierarchicalMean(Geometric, scores, moved)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Abs(v-base)-res.MaxAbsShift) > 1e-12 {
		t.Fatalf("reported shift %v, recomputed %v", res.MaxAbsShift, math.Abs(v-base))
	}
}

func TestClusteringSensitivityNeedsTwoClusters(t *testing.T) {
	if _, err := ClusteringSensitivity(Geometric, []float64{1, 2}, OneCluster(2)); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestClusteringSensitivityTightClustersRobust(t *testing.T) {
	// When cluster members have near-identical scores, moving one
	// barely changes the inner means: the score is robust.
	tight := []float64{2, 2.001, 2.002, 5, 5.001, 5.002}
	c, _ := NewClustering([]int{0, 0, 0, 1, 1, 1})
	res, err := ClusteringSensitivity(Geometric, tight, c)
	if err != nil {
		t.Fatal(err)
	}
	// A wrong assignment pulls a 2 into the 5-cluster (or vice
	// versa), which does move the mean — but proportionally to the
	// cluster gap, bounded well below the gap itself.
	if res.MaxAbsShift > 1 {
		t.Fatalf("shift %v too large", res.MaxAbsShift)
	}
	loose := []float64{1, 4, 2, 3, 9, 5}
	c2, _ := NewClustering([]int{0, 0, 0, 1, 1, 1})
	res2, err := ClusteringSensitivity(Geometric, loose, c2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.MaxAbsShift <= res.MaxAbsShift {
		t.Fatalf("loose clustering (%v) should be more sensitive than tight (%v)",
			res2.MaxAbsShift, res.MaxAbsShift)
	}
}

func TestClusteringSensitivityDoesNotMutate(t *testing.T) {
	scores := []float64{1, 2, 3, 4}
	c, _ := NewClustering([]int{0, 0, 1, 1})
	want := append([]int(nil), c.Labels...)
	if _, err := ClusteringSensitivity(Arithmetic, scores, c); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if c.Labels[i] != want[i] {
			t.Fatal("sensitivity analysis mutated the clustering")
		}
	}
}
