package core

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: every hierarchical mean is strictly monotone in each
// individual score — improving any workload can never lower the suite
// score (a fairness property a scoring metric must have; a metric
// violating it would punish vendors for optimizing).
func TestHierarchicalMeanMonotoneInScores(t *testing.T) {
	for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
		kind := kind
		f := func(raw []float64, idxRaw uint8, bumpRaw float64) bool {
			xs := positiveScores(raw, 4)
			labels := make([]int, len(xs))
			for i := range labels {
				labels[i] = i % 3
			}
			c, err := NewClustering(labels)
			if err != nil {
				return false
			}
			before, err := HierarchicalMean(kind, xs, c)
			if err != nil {
				return false
			}
			idx := int(idxRaw) % len(xs)
			bump := math.Abs(math.Mod(bumpRaw, 5)) + 0.01
			xs[idx] += bump
			after, err := HierarchicalMean(kind, xs, c)
			if err != nil {
				return false
			}
			return after > before
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// Property: the hierarchical mean lies between the min and max
// workload score (it is a mean at both levels).
func TestHierarchicalMeanBounded(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		xs := positiveScores(raw, 3)
		k := int(kRaw)%3 + 1
		labels := make([]int, len(xs))
		for i := range labels {
			labels[i] = i % k
		}
		c, err := NewClustering(labels)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
			v, err := HierarchicalMean(kind, xs, c)
			if err != nil || v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merging two clusters of equal inner mean leaves the HGM
// unchanged only when the cluster count compensates — concretely,
// splitting a cluster into two equal-mean halves must *raise* the
// weight of that behaviour and therefore pull the score toward it.
func TestSplittingMovesScoreTowardSplitBehaviour(t *testing.T) {
	// Suite: {8, 8} (fast pair) + {1} (slow). One cluster for the
	// pair: HGM = sqrt(8·1) ≈ 2.83. Split the pair into singletons:
	// HGM = (8·8·1)^(1/3) = 4 — the duplicated behaviour now counts
	// twice and drags the score its way.
	scores := []float64{8, 8, 1}
	paired, _ := NewClustering([]int{0, 0, 1})
	split := Singletons(3)
	hPaired, err := HGM(scores, paired)
	if err != nil {
		t.Fatal(err)
	}
	hSplit, err := HGM(scores, split)
	if err != nil {
		t.Fatal(err)
	}
	if !(hSplit > hPaired) {
		t.Fatalf("split %v should exceed paired %v", hSplit, hPaired)
	}
	if math.Abs(hPaired-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("paired HGM = %v, want sqrt(8)", hPaired)
	}
	if math.Abs(hSplit-4) > 1e-12 {
		t.Fatalf("split HGM = %v, want 4", hSplit)
	}
}
