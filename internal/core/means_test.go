package core

import (
	"math"
	"testing"
	"testing/quick"

	"hmeans/internal/stat"
)

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// paperExample reproduces the HGM definition by hand on a small
// instance: clusters {1, 4} and {2, 8, 32}.
func TestHGMByHand(t *testing.T) {
	scores := []float64{1, 4, 2, 8, 32}
	c, err := NewClustering([]int{0, 0, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// inner GMs: √4 = 2, ∛(2·8·32) = 8; outer GM: √16 = 4.
	got, err := HGM(scores, c)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 4, 1e-12) {
		t.Fatalf("HGM = %v, want 4", got)
	}
}

func TestHAMByHand(t *testing.T) {
	scores := []float64{1, 3, 10, 20, 30}
	c, _ := NewClustering([]int{0, 0, 1, 1, 1})
	// inner AMs: 2 and 20; outer: 11.
	got, err := HAM(scores, c)
	if err != nil || !almostEqual(got, 11, 1e-12) {
		t.Fatalf("HAM = %v, %v; want 11", got, err)
	}
}

func TestHHMByHand(t *testing.T) {
	scores := []float64{1, 1.0 / 3.0, 0.5, 0.25}
	c, _ := NewClustering([]int{0, 0, 1, 1})
	// inner HMs: 2/(1+3) = 0.5 and 2/(2+4) = 1/3; outer: 2/(2+3) = 0.4.
	got, err := HHM(scores, c)
	if err != nil || !almostEqual(got, 0.4, 1e-12) {
		t.Fatalf("HHM = %v, %v; want 0.4", got, err)
	}
}

// positiveScores builds a valid score vector from quick-check input.
func positiveScores(raw []float64, minLen int) []float64 {
	xs := make([]float64, 0, len(raw)+minLen)
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		xs = append(xs, math.Abs(math.Mod(v, 20))+0.25)
	}
	for len(xs) < minLen {
		xs = append(xs, float64(len(xs))+0.5)
	}
	return xs
}

// Property (degeneracy, paper Section II): with singleton clusters
// every hierarchical mean equals its plain counterpart.
func TestSingletonDegeneracy(t *testing.T) {
	for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
		kind := kind
		f := func(raw []float64) bool {
			xs := positiveScores(raw, 1)
			h, err1 := HierarchicalMean(kind, xs, Singletons(len(xs)))
			p, err2 := PlainMean(kind, xs)
			return err1 == nil && err2 == nil && almostEqual(h, p, 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// Property: with one cluster the hierarchical mean is the plain mean
// of that cluster.
func TestOneClusterDegeneracy(t *testing.T) {
	for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
		kind := kind
		f := func(raw []float64) bool {
			xs := positiveScores(raw, 1)
			h, err1 := HierarchicalMean(kind, xs, OneCluster(len(xs)))
			p, err2 := PlainMean(kind, xs)
			return err1 == nil && err2 == nil && almostEqual(h, p, 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

// Property: hierarchical means are invariant under workload
// permutation (relabelling does not change the score).
func TestPermutationInvariance(t *testing.T) {
	f := func(raw []float64, seed uint64) bool {
		xs := positiveScores(raw, 4)
		n := len(xs)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i % 3
		}
		c, err := NewClustering(labels)
		if err != nil {
			return false
		}
		before, err := HGM(xs, c)
		if err != nil {
			return false
		}
		// Apply a deterministic rotation permutation.
		rot := int(seed%uint64(n-1)) + 1
		xs2 := make([]float64, n)
		l2 := make([]int, n)
		for i := range xs {
			xs2[(i+rot)%n] = xs[i]
			l2[(i+rot)%n] = labels[i]
		}
		c2, err := NewClustering(l2)
		if err != nil {
			return false
		}
		after, err := HGM(xs2, c2)
		return err == nil && almostEqual(before, after, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: HHM <= HGM <= HAM on any clustering (the hierarchical
// extension of the Pythagorean mean inequality — it holds at both
// levels).
func TestHierarchicalMeanInequality(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		xs := positiveScores(raw, 3)
		k := int(kRaw)%3 + 1
		labels := make([]int, len(xs))
		for i := range labels {
			labels[i] = i % k
		}
		c, err := NewClustering(labels)
		if err != nil {
			return false
		}
		hh, e1 := HHM(xs, c)
		hg, e2 := HGM(xs, c)
		ha, e3 := HAM(xs, c)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		return hh <= hg*(1+1e-9) && hg <= ha*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: HGM is scale-equivariant.
func TestHGMScaleEquivariance(t *testing.T) {
	f := func(raw []float64, cRaw float64) bool {
		xs := positiveScores(raw, 4)
		scale := math.Abs(math.Mod(cRaw, 8)) + 0.25
		labels := make([]int, len(xs))
		for i := range labels {
			labels[i] = i % 2
		}
		c, _ := NewClustering(labels)
		g1, err1 := HGM(xs, c)
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = scale * x
		}
		g2, err2 := HGM(scaled, c)
		return err1 == nil && err2 == nil && almostEqual(g2, scale*g1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the hierarchical mean equals the weighted mean under
// EquivalentWeights, for all three families.
func TestEquivalentWeightsIdentity(t *testing.T) {
	weightedMean := func(kind MeanKind, xs, ws []float64) (float64, error) {
		switch kind {
		case Geometric:
			return stat.WeightedGeometricMean(xs, ws)
		case Arithmetic:
			return stat.WeightedArithmeticMean(xs, ws)
		default:
			return stat.WeightedHarmonicMean(xs, ws)
		}
	}
	for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
		kind := kind
		f := func(raw []float64) bool {
			xs := positiveScores(raw, 5)
			labels := make([]int, len(xs))
			for i := range labels {
				labels[i] = i % 3
			}
			c, _ := NewClustering(labels)
			h, err1 := HierarchicalMean(kind, xs, c)
			w, err2 := weightedMean(kind, xs, EquivalentWeights(c))
			return err1 == nil && err2 == nil && almostEqual(h, w, 1e-9)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestEquivalentWeightsSumToOne(t *testing.T) {
	c, _ := NewClustering([]int{0, 0, 1, 2, 2, 2})
	ws := EquivalentWeights(c)
	sum := 0.0
	for _, w := range ws {
		sum += w
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	// Cluster of size 1 (label 1) gets weight 1/3; size-2 members 1/6.
	if !almostEqual(ws[2], 1.0/3.0, 1e-12) || !almostEqual(ws[0], 1.0/6.0, 1e-12) {
		t.Fatalf("weights = %v", ws)
	}
}

func TestNewClusteringValidation(t *testing.T) {
	if _, err := NewClustering(nil); err == nil {
		t.Error("empty labels accepted")
	}
	if _, err := NewClustering([]int{0, -1}); err == nil {
		t.Error("negative label accepted")
	}
	if _, err := NewClustering([]int{0, 2}); err == nil {
		t.Error("sparse labels accepted")
	}
	c, err := NewClustering([]int{1, 0, 1})
	if err != nil || c.K != 2 {
		t.Fatalf("valid clustering rejected: %v (K=%d)", err, c.K)
	}
}

func TestNewClusteringCopiesLabels(t *testing.T) {
	labels := []int{0, 1}
	c, _ := NewClustering(labels)
	labels[0] = 99
	if c.Labels[0] != 0 {
		t.Fatal("NewClustering aliases caller's slice")
	}
}

func TestHierarchicalMeanErrors(t *testing.T) {
	c, _ := NewClustering([]int{0, 1})
	if _, err := HGM([]float64{1}, c); err == nil {
		t.Error("score/label length mismatch accepted")
	}
	if _, err := HGM([]float64{1, -2}, c); err == nil {
		t.Error("negative score accepted by HGM")
	}
	if _, err := HierarchicalMean(MeanKind(9), []float64{1, 2}, c); err == nil {
		t.Error("unknown mean kind accepted")
	}
	// Clustering with an out-of-range label (constructed directly).
	bad := Clustering{Labels: []int{0, 5}, K: 2}
	if _, err := HGM([]float64{1, 2}, bad); err == nil {
		t.Error("out-of-range label accepted")
	}
	empty := Clustering{Labels: []int{0, 0}, K: 2}
	if _, err := HGM([]float64{1, 2}, empty); err == nil {
		t.Error("empty cluster accepted")
	}
}

func TestMeanKindString(t *testing.T) {
	if Geometric.String() != "geometric" || Arithmetic.String() != "arithmetic" ||
		Harmonic.String() != "harmonic" || MeanKind(7).String() != "unknown" {
		t.Fatal("MeanKind.String names wrong")
	}
}

// The paper's central claim in miniature: two redundant workloads
// that both benefit from some feature drag the plain mean up twice;
// clustering them cancels the double count.
func TestRedundancyCancellation(t *testing.T) {
	// Workloads: two clones scoring 4, two distinct scoring 1.
	scores := []float64{4, 4, 1, 1}
	plain, _ := PlainMean(Geometric, scores) // √(16·1) = 2
	c, _ := NewClustering([]int{0, 0, 1, 2})
	hier, _ := HGM(scores, c) // ∛(4·1·1) = 4^(1/3)
	if !almostEqual(plain, 2, 1e-12) {
		t.Fatalf("plain GM = %v, want 2", plain)
	}
	want := math.Pow(4, 1.0/3.0)
	if !almostEqual(hier, want, 1e-12) {
		t.Fatalf("HGM = %v, want %v", hier, want)
	}
	if hier >= plain {
		t.Fatal("clustering the redundant pair should reduce their pull on the score")
	}
}
