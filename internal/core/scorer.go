package core

import "fmt"

// Scorer computes hierarchical means for one fixed clustering without
// per-call allocation. Construction (or Reset) validates the
// clustering once and precomputes a cluster-major gather plan; each
// Mean call then gathers the scores into a reused buffer, reduces
// every cluster with the inner mean and combines the representatives
// — allocating nothing on the happy path. This is the steady-state
// scoring kernel: one Scorer per clustering serves any number of
// score vectors and all three mean families, which is exactly the
// shape of the service's k-sweep (reset per k, three means per score
// vector).
//
// Mean is read-only over the plan, but the gather buffer is shared
// scratch: a Scorer must not be used from multiple goroutines
// concurrently.
type Scorer struct {
	n, k int
	// slots[t] is the workload index whose score is gathered into
	// buf[t]; cluster l's scores occupy buf[offsets[l]:offsets[l+1]],
	// in ascending workload order — the exact value order the
	// label-scan grouping produced, so results are bit-identical.
	slots   []int
	offsets []int
	cur     []int // scratch cursors for plan construction
	buf     []float64
	reps    []float64
}

// NewScorer validates c and builds its gather plan. The clustering's
// label slice is read during construction only, not retained.
func NewScorer(c Clustering) (*Scorer, error) {
	s := &Scorer{}
	if err := s.Reset(c); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset re-plans the Scorer for a new clustering, reusing every
// buffer whose capacity suffices — a pooled Scorer cycling through a
// k-sweep stops allocating once it has seen the largest k. The
// validation and its error messages match HierarchicalMean's
// historical label checks exactly.
func (s *Scorer) Reset(c Clustering) error {
	n, k := len(c.Labels), c.K
	for _, l := range c.Labels {
		if l < 0 || l >= k {
			return fmt.Errorf("core: label %d out of range [0,%d)", l, k)
		}
	}
	s.offsets = resize(s.offsets, k+1)
	for i := range s.offsets {
		s.offsets[i] = 0
	}
	for _, l := range c.Labels {
		s.offsets[l+1]++
	}
	for l := 0; l < k; l++ {
		if s.offsets[l+1] == 0 {
			return fmt.Errorf("core: cluster %d is empty", l)
		}
	}
	for l := 0; l < k; l++ {
		s.offsets[l+1] += s.offsets[l]
	}
	s.slots = resize(s.slots, n)
	s.cur = resize(s.cur, k)
	copy(s.cur, s.offsets[:k])
	for i, l := range c.Labels {
		s.slots[s.cur[l]] = i
		s.cur[l]++
	}
	s.buf = resize(s.buf, n)
	s.reps = resize(s.reps, k)
	s.n, s.k = n, k
	return nil
}

// N returns the number of workloads the Scorer was planned for.
func (s *Scorer) N() int { return s.n }

// K returns the number of clusters.
func (s *Scorer) K() int { return s.k }

// Mean computes the hierarchical mean of the given family over the
// scores, partitioned by the Scorer's clustering. It is
// value-identical to HierarchicalMean with the same inputs and
// allocates nothing unless an error path formats one.
func (s *Scorer) Mean(kind MeanKind, scores []float64) (float64, error) {
	if len(scores) != s.n {
		return 0, fmt.Errorf("core: %d scores for %d workloads", len(scores), s.n)
	}
	for t, i := range s.slots {
		s.buf[t] = scores[i]
	}
	for l := 0; l < s.k; l++ {
		rep, err := kind.plain(s.buf[s.offsets[l]:s.offsets[l+1]])
		if err != nil {
			return 0, fmt.Errorf("core: inner mean of cluster %d: %w", l, err)
		}
		s.reps[l] = rep
	}
	out, err := kind.plain(s.reps)
	if err != nil {
		return 0, fmt.Errorf("core: outer mean: %w", err)
	}
	return out, nil
}

// resize returns sl with length n, reusing its backing array when the
// capacity allows and allocating a fresh one otherwise.
func resize[T int | float64](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}
