package core

import (
	"context"
	"errors"
	"fmt"

	"hmeans/internal/chars"
	"hmeans/internal/cluster"
	"hmeans/internal/obs"
	"hmeans/internal/par"
	"hmeans/internal/som"
	"hmeans/internal/vecmath"
)

// CharKind tells the pipeline which preprocessing recipe a
// characterization table needs.
type CharKind int

const (
	// Counters marks continuous measurements (SAR-style): constant
	// features are dropped, the rest standardized.
	Counters CharKind = iota
	// Bits marks usage bit vectors (hprof-style): single-user and
	// universal features are dropped, the rest standardized.
	Bits
)

// PipelineConfig configures the full cluster-detection pipeline of
// the paper's Section III: characterization preprocessing → SOM
// dimension reduction → hierarchical clustering of the SOM positions.
type PipelineConfig struct {
	// Kind selects the preprocessing recipe.
	Kind CharKind
	// SOM configures the dimension-reduction map. Zero values take
	// the package defaults.
	SOM som.Config
	// Linkage is the cluster-to-cluster distance (default Complete,
	// the paper's choice).
	Linkage cluster.Linkage
	// LinkageAlgorithm selects the agglomeration algorithm (default
	// AlgoAuto: the O(n²) NN-chain above cluster.DefaultAutoThreshold
	// points, the reference scan below). See cluster.Algorithm for the
	// equivalence guarantees; the choice never changes which clusters
	// a cut produces.
	LinkageAlgorithm cluster.Algorithm
	// Metric is the point-to-point distance (default Euclidean, the
	// paper's choice).
	Metric vecmath.Metric
	// SkipSOM clusters the preprocessed characteristic vectors
	// directly instead of their SOM positions — the PCA-free ablation
	// baseline.
	SkipSOM bool
	// SoftPlacement clusters the SOM's interpolated (inverse-
	// distance-weighted) positions instead of hard BMU cells. Soft
	// positions vary continuously, so two workloads that share a BMU
	// cell keep a small non-zero distance instead of collapsing to
	// exactly zero — useful when the downstream analysis needs
	// within-cell structure. Ignored with SkipSOM.
	SoftPlacement bool
	// Parallelism is the worker count for the pipeline's parallel
	// kernels: batch-SOM training, BMU placement, the pairwise
	// distance matrix and the linkage scans. Values <= 1 run
	// serially. Every parallel kernel reduces deterministically, so
	// results are bit-identical for any worker count; an explicit
	// SOM.Parallelism overrides this value for the SOM stage.
	Parallelism int
	// Quarantine enables graceful degradation: workloads carrying
	// non-finite characterization values are dropped (and recorded in
	// Pipeline.Quarantined and the obs trace) instead of failing the
	// whole run, and the pipeline clusters the survivors. Without it
	// a non-finite value is a typed *DataError wrapping ErrNonFinite.
	Quarantine bool
	// Obs receives the pipeline trace: a root "pipeline" span with
	// one child span per stage (validate, characterize, reduce,
	// cluster), and "cut"/"means" spans from the scoring methods of
	// the returned Pipeline. Nil falls back to the process-default
	// observer; instrumentation never changes any result.
	Obs *obs.Observer
}

// Pipeline is the result of cluster detection over one
// characterization: everything downstream scoring needs, plus the
// intermediate artifacts the paper visualizes (SOM map, dendrogram).
type Pipeline struct {
	// Workloads names the rows, in score order.
	Workloads []string
	// Prepared is the preprocessed characterization table.
	Prepared *chars.Table
	// Report describes what preprocessing dropped.
	Report chars.Report
	// Map is the trained SOM (nil when SkipSOM was set).
	Map *som.Map
	// Positions are the per-workload points handed to clustering
	// (SOM grid positions, or raw vectors when SkipSOM).
	Positions []vecmath.Vector
	// Dendrogram is the hierarchical clustering of Positions.
	Dendrogram *cluster.Dendrogram
	// Quarantined lists the workloads dropped by quarantine mode, in
	// original row order. Empty unless PipelineConfig.Quarantine was
	// set and the input contained non-finite rows.
	Quarantined []Quarantine

	// kept maps each surviving row to its index in the original
	// table; nil when nothing was quarantined.
	kept []int
	// originalN is the row count of the input table, before
	// quarantine.
	originalN int

	// obs is the observer the pipeline was built with; the scoring
	// methods record their cut/means spans against it.
	obs *obs.Observer
}

// DetectClusters runs the paper's cluster-detection pipeline on a raw
// characterization table.
func DetectClusters(table *chars.Table, cfg PipelineConfig) (*Pipeline, error) {
	return DetectClustersCtx(context.Background(), table, cfg)
}

// DetectClustersCtx is DetectClusters with cooperative cancellation:
// the context is checked between stages, between SOM training epochs
// and between linkage merge steps, so a cancel or deadline stops the
// pipeline promptly without abandoning goroutines. A context that
// never fires yields results bit-identical to DetectClusters.
func DetectClustersCtx(ctx context.Context, table *chars.Table, cfg PipelineConfig) (*Pipeline, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if table == nil || len(table.Rows) == 0 {
		return nil, errors.New("core: empty characterization table")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: pipeline cancelled: %w", err)
	}
	o := obs.Or(cfg.Obs)
	root := o.StartSpan("pipeline",
		obs.KV("workloads", len(table.Rows)),
		obs.KV("skip_som", cfg.SkipSOM),
		obs.KV("version", obs.Version()))
	defer root.End()
	if o.Active() {
		o.Metrics().Counter("pipeline.runs").Add(1)
		defer o.Metrics().CaptureMemStats()
	}
	// Stage-boundary gauges: pipeline.stage counts entered stages
	// (1=validate … 4=cluster) and pipeline.progress is the completed
	// fraction, so a /metrics scrape of a long run shows where it is.
	// The cluster stage refines pipeline.progress's last quarter with
	// its own cluster.progress merge-fraction gauge.
	const pipelineStages = 4
	stage := func(entered int) {
		if o.Active() {
			o.Metrics().Gauge("pipeline.stage").Set(float64(entered))
			o.Metrics().Gauge("pipeline.progress").Set(float64(entered-1) / pipelineStages)
		}
	}
	originalN := len(table.Rows)
	stage(1)
	vsp := root.Child("validate", obs.KV("quarantine", cfg.Quarantine))
	var quarantined []Quarantine
	var kept []int
	if cfg.Quarantine {
		table, quarantined, kept = quarantineSplit(table)
		for _, q := range quarantined {
			vsp.Event("pipeline.quarantine",
				obs.KV("workload", q.Workload),
				obs.KV("index", q.Index),
				obs.KV("reason", q.Reason))
		}
		if o.Active() && len(quarantined) > 0 {
			o.Metrics().Counter("pipeline.quarantined").Add(int64(len(quarantined)))
		}
		vsp.SetAttr("quarantined", len(quarantined))
		if len(table.Rows) == 0 {
			vsp.End()
			return nil, fmt.Errorf("core: every workload quarantined: %w",
				&DataError{Index: -1, Err: ErrNonFinite})
		}
	} else if err := ValidateTable(table); err != nil {
		vsp.End()
		return nil, err
	}
	vsp.End()
	p := &Pipeline{
		Workloads:   append([]string(nil), table.Workloads...),
		Quarantined: quarantined,
		kept:        kept,
		originalN:   originalN,
		obs:         o,
	}
	stage(2)
	sp := root.Child("characterize")
	switch cfg.Kind {
	case Bits:
		p.Prepared, p.Report = chars.PreprocessBits(table)
	default:
		p.Prepared, p.Report = chars.PreprocessCounters(table)
	}
	sp.SetAttr("features_kept", len(p.Prepared.Features))
	sp.SetAttr("features_dropped",
		len(p.Report.DroppedConstant)+len(p.Report.DroppedSingleUser)+len(p.Report.DroppedUniversal))
	sp.End()
	if len(p.Prepared.Features) == 0 {
		return nil, fmt.Errorf("core: preprocessing discarded every feature; nothing to cluster on: %w",
			&DataError{Index: -1, Err: ErrZeroVariance})
	}
	workers := par.Resolve(cfg.Parallelism)
	vectors := p.Prepared.Vectors()
	stage(3)
	sp = root.Child("reduce")
	if cfg.SkipSOM {
		p.Positions = vectors
		sp.SetAttr("skipped", true)
		sp.End()
	} else {
		if cfg.SOM.Rows == 0 && cfg.SOM.Cols == 0 {
			// Size the grid to the sample count (≈5√n units): large
			// fixed grids magnify tight workload blobs across many
			// cells and destabilize the downstream clustering.
			cfg.SOM.Rows, cfg.SOM.Cols = som.GridFor(len(vectors))
		}
		if cfg.SOM.Parallelism == 0 {
			cfg.SOM.Parallelism = workers
		}
		if cfg.SOM.Obs == nil {
			cfg.SOM.Obs = o
		}
		m, err := som.TrainCtx(ctx, cfg.SOM, vectors)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("core: SOM training: %w", err)
		}
		p.Map = m
		if cfg.SoftPlacement {
			p.Positions = m.SoftPlacementsP(vectors, workers)
		} else {
			p.Positions = m.PlacementsP(vectors, workers)
		}
		sp.SetAttr("grid", fmt.Sprintf("%dx%d", m.Rows(), m.Cols()))
		sp.End()
	}
	stage(4)
	sp = root.Child("cluster", obs.KV("points", len(p.Positions)))
	d, err := cluster.NewDendrogramOpts(p.Positions, cfg.Metric, cfg.Linkage, cluster.Options{
		Workers:     workers,
		Obs:         o,
		MergeEvents: o.Detail(),
		Ctx:         ctx,
		Algorithm:   cfg.LinkageAlgorithm,
	})
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: clustering: %w", err)
	}
	p.Dendrogram = d
	if o.Active() {
		o.Metrics().Gauge("pipeline.progress").Set(1)
	}
	return p, nil
}

// ClusteringAtK cuts the pipeline's dendrogram into exactly k
// clusters and returns it as a scoring Clustering.
func (p *Pipeline) ClusteringAtK(k int) (Clustering, error) {
	sp := p.obs.StartSpan("cut", obs.KV("k", k))
	defer sp.End()
	a, err := p.Dendrogram.CutK(k)
	if err != nil {
		return Clustering{}, err
	}
	return Clustering{Labels: a.Labels, K: a.K}, nil
}

// ClusteringAtDistance cuts the dendrogram at a merging distance.
func (p *Pipeline) ClusteringAtDistance(d float64) Clustering {
	sp := p.obs.StartSpan("cut", obs.KV("distance", d))
	defer sp.End()
	a := p.Dendrogram.CutDistance(d)
	return Clustering{Labels: a.Labels, K: a.K}
}

// AlignScores maps a score vector onto the pipeline's surviving
// workloads. After a quarantine it accepts either a full-length
// vector (one score per original row, quarantined included — those
// entries are dropped) or one already aligned to the survivors;
// without quarantine the input must match the workload count. The
// returned slice is safe to hand to the scoring methods.
func (p *Pipeline) AlignScores(scores []float64) ([]float64, error) {
	if len(scores) == len(p.Workloads) {
		return scores, nil
	}
	if len(p.kept) > 0 && len(scores) == p.originalN {
		out := make([]float64, len(p.kept))
		for i, idx := range p.kept {
			out[i] = scores[idx]
		}
		return out, nil
	}
	if p.originalN != len(p.Workloads) {
		return nil, fmt.Errorf("core: %d scores for %d surviving workloads (%d before quarantine)",
			len(scores), len(p.Workloads), p.originalN)
	}
	return nil, fmt.Errorf("core: %d scores for %d workloads", len(scores), len(p.Workloads))
}

// ScoreAtK computes the hierarchical mean of the scores under the
// k-cluster cut. Scores for quarantined workloads are dropped via
// AlignScores.
func (p *Pipeline) ScoreAtK(kind MeanKind, scores []float64, k int) (float64, error) {
	scores, err := p.AlignScores(scores)
	if err != nil {
		return 0, err
	}
	c, err := p.ClusteringAtK(k)
	if err != nil {
		return 0, err
	}
	sp := p.obs.StartSpan("means", obs.KV("kind", kind.String()), obs.KV("k", k))
	defer sp.End()
	return HierarchicalMean(kind, scores, c)
}

// ScoreSweep computes the hierarchical mean for every k in
// [kMin, kMax] (clamped to the valid range), the sweep of the paper's
// Tables IV–VI. The returned map is keyed by k.
func (p *Pipeline) ScoreSweep(kind MeanKind, scores []float64, kMin, kMax int) (map[int]float64, error) {
	if kMin > kMax {
		return nil, fmt.Errorf("core: empty sweep range [%d, %d]", kMin, kMax)
	}
	out := make(map[int]float64)
	for k := kMin; k <= kMax; k++ {
		if k < 1 || k > p.Dendrogram.Len() {
			continue
		}
		s, err := p.ScoreAtK(kind, scores, k)
		if err != nil {
			return nil, err
		}
		out[k] = s
	}
	return out, nil
}

// ClusterMembers returns, for a k-cut, the workload names per
// cluster.
func (p *Pipeline) ClusterMembers(k int) ([][]string, error) {
	a, err := p.Dendrogram.CutK(k)
	if err != nil {
		return nil, err
	}
	out := make([][]string, a.K)
	for i, l := range a.Labels {
		out[l] = append(out[l], p.Workloads[i])
	}
	return out, nil
}
