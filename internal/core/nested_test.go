package core

import (
	"math"
	"testing"

	"hmeans/internal/cluster"
	"hmeans/internal/vecmath"
)

// nestedFixture: four tight pairs arranged as two families of two
// pairs each. Positions force the dendrogram:
//
//	pairs at k=4: {0,1} {2,3} {4,5} {6,7}
//	families at k=2: {0..3} {4..7}
func nestedFixture(t *testing.T) *cluster.Dendrogram {
	t.Helper()
	pts := []vecmath.Vector{
		{0}, {0.1}, {2}, {2.1},
		{50}, {50.1}, {52}, {52.1},
	}
	d, err := cluster.NewDendrogram(pts, vecmath.Euclidean, cluster.Complete)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNestedMeanThreeLevels(t *testing.T) {
	d := nestedFixture(t)
	scores := []float64{2, 8, 4, 4, 1, 1, 9, 9}
	// Level k=4 inner GMs: √16=4, √16=4, 1, 9.
	// Level k=2 family GMs: √(4·4)=4, √(1·9)=3.
	// Outer GM: √12.
	got, err := NestedMean(Geometric, scores, d, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("nested HGM = %v, want %v", got, want)
	}
}

func TestNestedMeanSingleLevelMatchesHierarchical(t *testing.T) {
	d := nestedFixture(t)
	scores := []float64{2, 8, 4, 4, 1, 1, 9, 9}
	for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
		for k := 1; k <= 8; k++ {
			a, err := d.CutK(k)
			if err != nil {
				t.Fatal(err)
			}
			c := Clustering{Labels: a.Labels, K: a.K}
			want, err := HierarchicalMean(kind, scores, c)
			if err != nil {
				t.Fatal(err)
			}
			got, err := NestedMean(kind, scores, d, []int{k})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("%v k=%d: nested %v != hierarchical %v", kind, k, got, want)
			}
		}
	}
}

func TestNestedMeanDegeneracy(t *testing.T) {
	d := nestedFixture(t)
	scores := []float64{2, 8, 4, 4, 1, 1, 9, 9}
	// Levels {n} = plain mean; levels {1, n} also plain (one outer
	// group of singleton-level representatives... the k=1 level wraps
	// everything in one mean of the k=n representatives = plain).
	plain, _ := PlainMean(Geometric, scores)
	got, err := NestedMean(Geometric, scores, d, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-plain) > 1e-12 {
		t.Fatalf("levels {n}: %v != plain %v", got, plain)
	}
	got2, err := NestedMean(Geometric, scores, d, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got2-plain) > 1e-12 {
		t.Fatalf("levels {1,n}: %v != plain %v", got2, plain)
	}
}

func TestNestedMeanLevelOrderIrrelevant(t *testing.T) {
	d := nestedFixture(t)
	scores := []float64{2, 8, 4, 4, 1, 1, 9, 9}
	a, err := NestedMean(Geometric, scores, d, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NestedMean(Geometric, scores, d, []int{4, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("level order changed the result: %v vs %v", a, b)
	}
}

func TestNestedMeanErrors(t *testing.T) {
	d := nestedFixture(t)
	scores := []float64{2, 8, 4, 4, 1, 1, 9, 9}
	if _, err := NestedMean(Geometric, scores, nil, []int{2}); err == nil {
		t.Error("nil dendrogram accepted")
	}
	if _, err := NestedMean(Geometric, scores[:3], d, []int{2}); err == nil {
		t.Error("score length mismatch accepted")
	}
	if _, err := NestedMean(Geometric, scores, d, nil); err == nil {
		t.Error("no levels accepted")
	}
	if _, err := NestedMean(Geometric, scores, d, []int{0}); err == nil {
		t.Error("level 0 accepted")
	}
	if _, err := NestedMean(Geometric, scores, d, []int{9}); err == nil {
		t.Error("level > n accepted")
	}
	if _, err := NestedMean(Geometric, scores, d, []int{2, 2}); err == nil {
		t.Error("duplicate level accepted")
	}
	bad := append([]float64(nil), scores...)
	bad[0] = -1
	if _, err := NestedMean(Geometric, bad, d, []int{2, 4}); err == nil {
		t.Error("negative score accepted")
	}
}

func TestNestedMeanCancelsFamilyRedundancy(t *testing.T) {
	// The motivating scenario: one family holds two redundant pairs
	// of fast kernels; flat two-level HGM at k=4 still counts that
	// family twice, the three-level nesting counts it once.
	d := nestedFixture(t)
	scores := []float64{8, 8, 8, 8, 1, 1, 2, 2}
	a4, _ := d.CutK(4)
	flat, err := HierarchicalMean(Geometric, scores, Clustering{Labels: a4.Labels, K: a4.K})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := NestedMean(Geometric, scores, d, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	// With balanced families both reduce to 2^1.75: flat is
	// (8·8·1·2)^(1/4), nested is √(8·√2). The GM's log-linearity
	// makes balanced nesting coincide; the value still must not be
	// dominated by the redundant fast family.
	if math.Abs(flat-math.Pow(2, 1.75)) > 1e-12 || math.Abs(nested-flat) > 1e-12 {
		t.Fatalf("balanced nesting: flat %v, nested %v, want both 2^1.75", flat, nested)
	}
	// Unbalanced levels (k=5 splits one family asymmetrically) must
	// diverge from the flat score while staying bounded.
	nested25, err := NestedMean(Geometric, scores, d, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if nested25 <= 0 || nested25 >= 8 {
		t.Fatalf("nested {2,5} mean %v out of range", nested25)
	}
	if nested >= 8 {
		t.Fatalf("nested mean %v dominated by the redundant family", nested)
	}
}
