package core

import (
	"errors"
	"fmt"
	"math"

	"hmeans/internal/cluster"
	"hmeans/internal/obs"
)

// KRecommendation explains a recommended cluster count.
type KRecommendation struct {
	// K is the recommended cluster count.
	K int
	// Quality holds the geometric diagnostics of every candidate.
	Quality []cluster.KQuality
	// RatioDamping[k] is the paper's score-stability signal: the
	// mean absolute change of the A/B score ratio between k−1, k and
	// k+1 (lower = the ratio has "dampened" around this k).
	RatioDamping map[int]float64
}

// RecommendKQuality picks a cluster count on geometry alone: the
// silhouette/Davies–Bouldin sweep of cluster.RecommendK over the
// pipeline's reduced positions, without the paper's ratio-damping
// signal. It is the recommendation used when only one machine's
// scores (or none) are available, so no A/B ratio exists to dampen;
// with two score vectors, prefer RecommendK.
func (p *Pipeline) RecommendKQuality(kMin, kMax int) (KRecommendation, error) {
	var rec KRecommendation
	if kMin < 2 {
		kMin = 2
	}
	if n := p.Dendrogram.Len(); kMax > n {
		kMax = n
	}
	if kMin > kMax {
		return rec, fmt.Errorf("core: empty recommendation range [%d, %d]", kMin, kMax)
	}
	sp := p.obs.StartSpan("kselect", obs.KV("k_min", kMin), obs.KV("k_max", kMax),
		obs.KV("quality_only", true))
	defer sp.End()
	quality, err := p.Dendrogram.QualitySweep(p.Positions, kMin, kMax)
	if err != nil {
		return rec, err
	}
	rec.Quality = quality
	k, err := cluster.RecommendK(quality)
	if err != nil {
		return rec, err
	}
	rec.K = k
	if o := p.obs; o.Active() {
		o.Metrics().Gauge("kselect.k").Set(float64(k))
	}
	return rec, nil
}

// RecommendK mechanizes the paper's Section V-B.1 judgment: pick the
// cluster count where (1) the clustering is geometrically sound
// (silhouette on the reduced positions) and (2) "the fluctuation of
// ratio values tends to dampen". scoresA and scoresB are the two
// machines' per-workload scores; the sweep covers [kMin, kMax].
//
// The combined criterion ranks candidates by silhouette and breaks
// near-ties (within tol of the best silhouette) toward the smallest
// ratio damping.
func (p *Pipeline) RecommendK(kind MeanKind, scoresA, scoresB []float64, kMin, kMax int) (KRecommendation, error) {
	var rec KRecommendation
	if kMin < 2 {
		kMin = 2
	}
	n := p.Dendrogram.Len()
	if kMax > n {
		kMax = n
	}
	if kMin > kMax {
		return rec, fmt.Errorf("core: empty recommendation range [%d, %d]", kMin, kMax)
	}
	sp := p.obs.StartSpan("kselect", obs.KV("k_min", kMin), obs.KV("k_max", kMax))
	defer sp.End()
	quality, err := p.Dendrogram.QualitySweep(p.Positions, kMin, kMax)
	if err != nil {
		return rec, err
	}
	rec.Quality = quality

	// Ratio per k over the extended range [kMin-1, kMax+1] so the
	// damping of edge candidates is well defined.
	lo, hi := kMin-1, kMax+1
	if lo < 1 {
		lo = 1
	}
	if hi > n {
		hi = n
	}
	ratio := make(map[int]float64)
	for k := lo; k <= hi; k++ {
		a, err := p.ScoreAtK(kind, scoresA, k)
		if err != nil {
			return rec, err
		}
		b, err := p.ScoreAtK(kind, scoresB, k)
		if err != nil {
			return rec, err
		}
		if b <= 0 {
			return rec, errors.New("core: non-positive score ratio denominator")
		}
		ratio[k] = a / b
	}
	rec.RatioDamping = make(map[int]float64)
	for k := kMin; k <= kMax; k++ {
		var sum float64
		var terms int
		if r, ok := ratio[k-1]; ok {
			sum += math.Abs(ratio[k] - r)
			terms++
		}
		if r, ok := ratio[k+1]; ok {
			sum += math.Abs(ratio[k] - r)
			terms++
		}
		if terms > 0 {
			rec.RatioDamping[k] = sum / float64(terms)
		}
	}

	// Rank: silhouette first; within tol of the best, least damping.
	const tol = 0.05
	bestSil := math.Inf(-1)
	for _, q := range quality {
		if q.Silhouette > bestSil {
			bestSil = q.Silhouette
		}
	}
	bestK, bestDamp := 0, math.Inf(1)
	for _, q := range quality {
		if q.Silhouette < bestSil-tol {
			continue
		}
		d, ok := rec.RatioDamping[q.K]
		if !ok {
			d = math.Inf(1)
		}
		if d < bestDamp {
			bestK, bestDamp = q.K, d
		}
	}
	if bestK == 0 {
		bestK = quality[0].K
	}
	rec.K = bestK
	if o := p.obs; o.Active() {
		// One event per candidate plus the chosen k as gauges, so
		// traces show both the sweep and the decision.
		for _, q := range quality {
			sp.Event("kselect.candidate", obs.KV("k", q.K),
				obs.KV("silhouette", q.Silhouette), obs.KV("damping", rec.RatioDamping[q.K]))
		}
		reg := o.Metrics()
		reg.Gauge("kselect.k").Set(float64(bestK))
		reg.Gauge("kselect.best_silhouette").Set(bestSil)
	}
	return rec, nil
}
