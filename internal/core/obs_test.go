package core

import (
	"testing"

	"hmeans/internal/cluster"
	"hmeans/internal/obs"
)

// TestPipelineTrace checks the tracing acceptance criteria: the
// pipeline emits a root span with one child per stage, the stage
// spans explain (nearly) all of the root's wall-clock, and the
// scoring methods add cut/means spans.
func TestPipelineTrace(t *testing.T) {
	col := obs.NewCollector()
	o := obs.New(col)
	cfg := pipelineConfig()
	cfg.Obs = o
	p, err := DetectClusters(syntheticSuite(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ScoreAtK(Geometric, []float64{1, 2, 3, 4, 5, 6}, 3); err != nil {
		t.Fatal(err)
	}

	tr := col.Trace()
	byName := map[string]int{}
	for _, s := range tr.Spans {
		byName[s.Name]++
	}
	for _, want := range []string{"pipeline", "characterize", "reduce", "cluster", "som.train", "cluster.linkage", "cut", "means"} {
		if byName[want] == 0 {
			t.Fatalf("no %q span; got %v", want, byName)
		}
	}

	// Stage spans must be children of the pipeline root and account
	// for >= 95% of its wall-clock (the acceptance threshold).
	cov, ok := tr.Coverage("pipeline")
	if !ok {
		t.Fatal("coverage undefined: no pipeline root span")
	}
	if cov < 0.95 {
		t.Fatalf("stage coverage = %.3f, want >= 0.95", cov)
	}

	// The run must land in the metrics registry too.
	snap := o.Metrics().Snapshot()
	if runs, _ := snap["pipeline.runs"].(int64); runs != 1 {
		t.Fatalf("pipeline.runs = %v", snap["pipeline.runs"])
	}
	if _, ok := snap["mem.heap_alloc_bytes"]; !ok {
		t.Fatal("memory stats not captured")
	}
	// pipelineConfig trains sequentially, so the step counter and
	// annealing gauges must be present.
	if steps, _ := snap["som.steps"].(int64); steps <= 0 {
		t.Fatalf("som.steps = %v", snap["som.steps"])
	}
	if _, ok := snap["som.sigma"]; !ok {
		t.Fatal("no som.sigma gauge")
	}
}

// TestPipelineUninstrumented pins the "observability off" contract: a
// nil Obs with no process default must run every path without
// recording anything, and results must match the instrumented run
// bit-for-bit.
func TestPipelineUninstrumented(t *testing.T) {
	if obs.Default() != nil {
		t.Fatal("test requires no default observer")
	}
	bare, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	cfg := pipelineConfig()
	cfg.Obs = obs.New(col)
	traced, err := DetectClusters(syntheticSuite(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bm, tm := bare.Dendrogram.Merges(), traced.Dendrogram.Merges()
	if len(bm) != len(tm) {
		t.Fatalf("merge counts differ: %d vs %d", len(bm), len(tm))
	}
	for i := range bm {
		if bm[i] != tm[i] {
			t.Fatalf("merge %d differs: %+v vs %+v", i, bm[i], tm[i])
		}
	}
	sA, err := bare.ScoreAtK(Geometric, []float64{1, 2, 3, 4, 5, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := traced.ScoreAtK(Geometric, []float64{1, 2, 3, 4, 5, 6}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sA != sB {
		t.Fatalf("scores differ: %v vs %v", sA, sB)
	}
}

// TestPipelineProgressGauges checks the stage-boundary gauges a
// /metrics scrape sees during a run: after completion pipeline.stage
// sits at the last stage, and both the pipeline-level and the cluster
// stage's merge-fraction progress gauges read 1. It also pins the
// PipelineConfig → cluster.Options algorithm plumbing via the
// linkage span's algorithm attribute.
func TestPipelineProgressGauges(t *testing.T) {
	col := obs.NewCollector()
	o := obs.New(col)
	cfg := pipelineConfig()
	cfg.Obs = o
	cfg.LinkageAlgorithm = cluster.AlgoNNChain
	if _, err := DetectClusters(syntheticSuite(t), cfg); err != nil {
		t.Fatal(err)
	}
	if got := o.Metrics().Gauge("pipeline.stage").Value(); got != 4 {
		t.Fatalf("pipeline.stage gauge = %v, want 4", got)
	}
	if got := o.Metrics().Gauge("pipeline.progress").Value(); got != 1 {
		t.Fatalf("pipeline.progress gauge = %v, want 1", got)
	}
	if got := o.Metrics().Gauge("cluster.progress").Value(); got != 1 {
		t.Fatalf("cluster.progress gauge = %v, want 1", got)
	}
	found := false
	for _, s := range col.Trace().Spans {
		if s.Name != "cluster.linkage" {
			continue
		}
		for _, a := range s.Attrs {
			if a.Key == "algorithm" && a.Val == "nnchain" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no cluster.linkage span advertising algorithm=nnchain")
	}
}

// TestRecommendKTelemetry checks that k selection reports its sweep
// (one candidate event per k) and its decision (kselect.k gauge).
func TestRecommendKTelemetry(t *testing.T) {
	col := obs.NewCollector()
	o := obs.New(col)
	cfg := pipelineConfig()
	cfg.Obs = o
	p, err := DetectClusters(syntheticSuite(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := []float64{1.1, 1.2, 1.15, 2.0, 2.1, 0.4}
	b := []float64{1, 1, 1, 1, 1, 1}
	rec, err := p.RecommendK(Geometric, a, b, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := col.Trace()
	var kselect, candidates int
	for _, s := range tr.Spans {
		if s.Name == "kselect" {
			kselect++
		}
	}
	for _, e := range tr.Events {
		if e.Name == "kselect.candidate" {
			candidates++
		}
	}
	if kselect != 1 {
		t.Fatalf("kselect spans = %d", kselect)
	}
	if candidates != len(rec.Quality) {
		t.Fatalf("candidate events = %d, want %d", candidates, len(rec.Quality))
	}
	if got := o.Metrics().Gauge("kselect.k").Value(); int(got) != rec.K {
		t.Fatalf("kselect.k gauge = %v, recommendation = %d", got, rec.K)
	}
}
