package core

import (
	"errors"
	"fmt"
	"math"

	"hmeans/internal/vecmath"
)

// Subset is a cluster-based suite reduction: one representative
// workload per cluster, the application of workload-cluster analysis
// the paper's related work ([10], [11]) pursues. Where the
// hierarchical means keep all workloads and reweight, subsetting
// keeps one per cluster and drops the rest — useful when each run is
// expensive (e.g. RTL simulation).
type Subset struct {
	// Representatives holds one workload index per cluster, ordered
	// by cluster label.
	Representatives []int
	// Clustering is the partition the subset was drawn from.
	Clustering Clustering
}

// SelectSubset picks, from each cluster, the medoid — the member
// minimizing the total distance to its cluster mates in the reduced
// space. positions must align with the clustering's workloads.
func SelectSubset(positions []vecmath.Vector, c Clustering) (Subset, error) {
	if len(positions) != len(c.Labels) {
		return Subset{}, fmt.Errorf("core: %d positions for %d workloads", len(positions), len(c.Labels))
	}
	if len(positions) == 0 {
		return Subset{}, errors.New("core: empty suite")
	}
	members := make([][]int, c.K)
	for i, l := range c.Labels {
		if l < 0 || l >= c.K {
			return Subset{}, fmt.Errorf("core: label %d out of range", l)
		}
		members[l] = append(members[l], i)
	}
	reps := make([]int, c.K)
	for label, ms := range members {
		if len(ms) == 0 {
			return Subset{}, fmt.Errorf("core: cluster %d is empty", label)
		}
		best, bestCost := ms[0], math.Inf(1)
		for _, i := range ms {
			cost := 0.0
			for _, j := range ms {
				cost += vecmath.EuclideanDistance(positions[i], positions[j])
			}
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		reps[label] = best
	}
	return Subset{Representatives: reps, Clustering: c}, nil
}

// Scores extracts the representatives' scores from the full score
// vector, in cluster-label order.
func (s Subset) Scores(full []float64) ([]float64, error) {
	if len(full) != len(s.Clustering.Labels) {
		return nil, fmt.Errorf("core: %d scores for %d workloads", len(full), len(s.Clustering.Labels))
	}
	out := make([]float64, len(s.Representatives))
	for i, idx := range s.Representatives {
		out[i] = full[idx]
	}
	return out, nil
}

// SubsetError compares the subset's plain mean against the full
// suite's hierarchical mean of the same family — how well one-per-
// cluster approximates reweight-per-cluster. Returns the relative
// error |subset/hier − 1|.
func SubsetError(kind MeanKind, full []float64, s Subset) (float64, error) {
	subScores, err := s.Scores(full)
	if err != nil {
		return 0, err
	}
	sub, err := PlainMean(kind, subScores)
	if err != nil {
		return 0, err
	}
	hier, err := HierarchicalMean(kind, full, s.Clustering)
	if err != nil {
		return 0, err
	}
	return math.Abs(sub/hier - 1), nil
}
