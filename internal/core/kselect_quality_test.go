package core

import "testing"

// RecommendKQuality is the score-free recommendation the service uses
// when a request carries fewer than two score vectors: silhouette
// sweep only, no ratio damping.
func TestRecommendKQuality(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := p.RecommendKQuality(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rec.K < 2 || rec.K > 6 {
		t.Fatalf("recommended k = %d out of range [2,6]", rec.K)
	}
	if len(rec.Quality) == 0 {
		t.Fatal("no quality diagnostics")
	}
	if len(rec.RatioDamping) != 0 {
		t.Fatalf("quality-only recommendation has damping diagnostics: %v", rec.RatioDamping)
	}
}

func TestRecommendKQualityClampsRange(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// kMin below 2 clamps up, kMax beyond n clamps down.
	rec, err := p.RecommendKQuality(0, 99)
	if err != nil {
		t.Fatal(err)
	}
	n := len(p.Workloads)
	if rec.K < 2 || rec.K > n {
		t.Fatalf("recommended k = %d out of clamped range [2,%d]", rec.K, n)
	}
}

func TestRecommendKQualityEmptyRange(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RecommendKQuality(9, 12); err == nil {
		t.Error("empty range accepted")
	}
}
