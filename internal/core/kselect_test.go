package core

import (
	"math"
	"testing"

	"hmeans/internal/vecmath"
)

func TestRecommendKPipeline(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	scoresA := []float64{4, 4.1, 3.9, 1.5, 1.4, 0.8}
	scoresB := []float64{2, 2.1, 2.0, 1.5, 1.6, 1.2}
	rec, err := p.RecommendK(Geometric, scoresA, scoresB, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if rec.K < 2 || rec.K > 6 {
		t.Fatalf("recommended k = %d out of range", rec.K)
	}
	if len(rec.Quality) == 0 {
		t.Fatal("no quality diagnostics")
	}
	if len(rec.RatioDamping) == 0 {
		t.Fatal("no damping diagnostics")
	}
	for k, d := range rec.RatioDamping {
		if d < 0 {
			t.Fatalf("negative damping at k=%d: %v", k, d)
		}
	}
	// The synthetic suite has 3 intrinsic clusters; the
	// recommendation should find a geometrically sound cut (the
	// recommended k's silhouette must be within tolerance of the
	// best).
	bestSil := math.Inf(-1)
	var recSil float64
	for _, q := range rec.Quality {
		if q.Silhouette > bestSil {
			bestSil = q.Silhouette
		}
		if q.K == rec.K {
			recSil = q.Silhouette
		}
	}
	if recSil < bestSil-0.05-1e-12 {
		t.Fatalf("recommended k=%d has silhouette %v, best is %v", rec.K, recSil, bestSil)
	}
}

func TestRecommendKErrors(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	scores := []float64{4, 4.1, 3.9, 1.5, 1.4, 0.8}
	if _, err := p.RecommendK(Geometric, scores, scores, 9, 12); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := p.RecommendK(Geometric, scores[:2], scores, 2, 4); err == nil {
		t.Error("short score vector accepted")
	}
}

func TestSelectSubsetMedoids(t *testing.T) {
	positions := []vecmath.Vector{
		{0, 0}, {1, 0}, {0.4, 0}, // cluster 0: medoid is index 2
		{10, 10}, // cluster 1: singleton
	}
	c, err := NewClustering([]int{0, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := SelectSubset(positions, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Representatives) != 2 {
		t.Fatalf("representatives = %v", s.Representatives)
	}
	if s.Representatives[0] != 2 {
		t.Fatalf("cluster 0 medoid = %d, want 2", s.Representatives[0])
	}
	if s.Representatives[1] != 3 {
		t.Fatalf("cluster 1 representative = %d, want 3", s.Representatives[1])
	}
}

func TestSelectSubsetErrors(t *testing.T) {
	c, _ := NewClustering([]int{0, 1})
	if _, err := SelectSubset([]vecmath.Vector{{1}}, c); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := SelectSubset(nil, Clustering{}); err == nil {
		t.Error("empty suite accepted")
	}
	bad := Clustering{Labels: []int{0, 7}, K: 2}
	if _, err := SelectSubset([]vecmath.Vector{{1}, {2}}, bad); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestSubsetScores(t *testing.T) {
	positions := []vecmath.Vector{{0}, {0.1}, {5}}
	c, _ := NewClustering([]int{0, 0, 1})
	s, err := SelectSubset(positions, c)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := s.Scores([]float64{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 || scores[1] != 8 {
		t.Fatalf("subset scores = %v", scores)
	}
	if _, err := s.Scores([]float64{1}); err == nil {
		t.Error("short score vector accepted")
	}
}

func TestSubsetErrorZeroWhenClustersUniform(t *testing.T) {
	// When each cluster's members share one score, the medoid's score
	// is the cluster's inner mean — subsetting is exact.
	positions := []vecmath.Vector{{0}, {0.1}, {5}, {5.1}}
	c, _ := NewClustering([]int{0, 0, 1, 1})
	s, err := SelectSubset(positions, c)
	if err != nil {
		t.Fatal(err)
	}
	full := []float64{3, 3, 7, 7}
	e, err := SubsetError(Geometric, full, s)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Fatalf("subset error = %v, want 0", e)
	}
}

func TestSubsetErrorBoundedOnRealisticSpread(t *testing.T) {
	positions := []vecmath.Vector{{0}, {0.1}, {0.2}, {5}, {9}}
	c, _ := NewClustering([]int{0, 0, 0, 1, 2})
	s, err := SelectSubset(positions, c)
	if err != nil {
		t.Fatal(err)
	}
	full := []float64{2.0, 2.2, 1.9, 5, 0.7}
	e, err := SubsetError(Geometric, full, s)
	if err != nil {
		t.Fatal(err)
	}
	// The within-cluster spread is ~10%, so the one-per-cluster
	// approximation must stay within a few percent.
	if e > 0.1 {
		t.Fatalf("subset error = %v, suspiciously large", e)
	}
}
