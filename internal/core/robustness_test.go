package core

import (
	"testing"
)

func TestInjectRedundancy(t *testing.T) {
	scores := []float64{2, 8}
	c, _ := NewClustering([]int{0, 1})
	s2, c2, err := InjectRedundancy(scores, c, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) != 5 || len(c2.Labels) != 5 {
		t.Fatalf("inflated lengths = %d/%d, want 5/5", len(s2), len(c2.Labels))
	}
	for i := 2; i < 5; i++ {
		if s2[i] != 8 || c2.Labels[i] != 1 {
			t.Fatalf("clone %d = (%v, %d), want (8, 1)", i, s2[i], c2.Labels[i])
		}
	}
	// Originals untouched.
	if len(scores) != 2 || len(c.Labels) != 2 {
		t.Fatal("InjectRedundancy mutated its inputs")
	}
}

func TestInjectRedundancyErrors(t *testing.T) {
	c, _ := NewClustering([]int{0, 1})
	if _, _, err := InjectRedundancy([]float64{1}, c, 0, 1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := InjectRedundancy([]float64{1, 2}, c, 5, 1); err == nil {
		t.Error("out-of-range victim accepted")
	}
	if _, _, err := InjectRedundancy([]float64{1, 2}, c, 0, -1); err == nil {
		t.Error("negative copies accepted")
	}
}

func TestRedundancySweepPlainDriftsHierarchicalStays(t *testing.T) {
	// Victim (score 9) is a singleton cluster; others score 1.
	scores := []float64{9, 1, 1}
	c, _ := NewClustering([]int{0, 1, 2})
	sweep, err := RedundancySweep(Geometric, scores, c, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 9 {
		t.Fatalf("sweep length = %d, want 9", len(sweep))
	}
	base := sweep[0]
	if !almostEqual(base.Plain, base.Hierarchical, 1e-12) {
		t.Fatalf("with singletons plain %v != hierarchical %v", base.Plain, base.Hierarchical)
	}
	for _, imp := range sweep[1:] {
		// Plain mean must strictly increase with favourable clones.
		if imp.Plain <= base.Plain {
			t.Fatalf("plain mean did not inflate at %d copies: %v", imp.Copies, imp.Plain)
		}
		// Hierarchical mean must be exactly stable (victim cluster is
		// all clones of the same score).
		if !almostEqual(imp.Hierarchical, base.Hierarchical, 1e-12) {
			t.Fatalf("hierarchical mean drifted at %d copies: %v -> %v",
				imp.Copies, base.Hierarchical, imp.Hierarchical)
		}
	}
	// The attack is substantial: by 8 copies the plain GM has grown
	// by more than 50%.
	if sweep[8].Plain < base.Plain*1.5 {
		t.Fatalf("attack too weak to demonstrate: %v -> %v", base.Plain, sweep[8].Plain)
	}
}

func TestRedundancySweepAllKinds(t *testing.T) {
	scores := []float64{5, 2, 1}
	c, _ := NewClustering([]int{0, 1, 2})
	for _, kind := range []MeanKind{Geometric, Arithmetic, Harmonic} {
		sweep, err := RedundancySweep(kind, scores, c, 0, 4)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, imp := range sweep {
			if !almostEqual(imp.Hierarchical, sweep[0].Hierarchical, 1e-12) {
				t.Fatalf("%v: hierarchical drifted: %+v", kind, imp)
			}
		}
	}
}

func TestRatio(t *testing.T) {
	r, err := Ratio(2.10, 1.94)
	if err != nil || !almostEqual(r, 2.10/1.94, 1e-12) {
		t.Fatalf("Ratio = %v, %v", r, err)
	}
	if _, err := Ratio(1, 0); err == nil {
		t.Error("zero denominator accepted")
	}
	if _, err := Ratio(1, -2); err == nil {
		t.Error("negative denominator accepted")
	}
}
