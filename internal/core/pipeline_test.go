package core

import (
	"testing"

	"hmeans/internal/chars"
	"hmeans/internal/som"
)

// syntheticSuite builds a counter table with an obvious structure:
// workloads 0-2 are near-identical ("redundant kernels"), 3-4 form a
// second group, 5 is an outlier.
func syntheticSuite(t *testing.T) *chars.Table {
	t.Helper()
	names := []string{"k0", "k1", "k2", "g0", "g1", "solo"}
	features := []string{"f0", "f1", "f2", "const"}
	rows := [][]float64{
		{10, 1, 0.2, 7},
		{10.2, 1.1, 0.2, 7},
		{9.9, 0.9, 0.25, 7},
		{2, 8, 5, 7},
		{2.2, 7.8, 5.2, 7},
		{-5, -5, 12, 7},
	}
	tab, err := chars.NewTable(names, features, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func pipelineConfig() PipelineConfig {
	// Grid shape left zero: the pipeline sizes it to the sample
	// count (GridFor), which is what keeps BMU geometry stable.
	return PipelineConfig{
		SOM: som.Config{Steps: 6000, Seed: 11},
	}
}

func TestDetectClustersEndToEnd(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Map == nil || p.Dendrogram == nil {
		t.Fatal("pipeline missing artifacts")
	}
	if len(p.Report.DroppedConstant) != 1 {
		t.Fatalf("constant feature not dropped: %+v", p.Report)
	}
	if len(p.Positions) != 6 {
		t.Fatalf("positions = %d, want 6", len(p.Positions))
	}
	// At k=3 the redundant kernels must share a cluster and the
	// outlier must not join them.
	c, err := p.ClusteringAtK(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.K != 3 {
		t.Fatalf("K = %d, want 3", c.K)
	}
	if c.Labels[0] != c.Labels[1] || c.Labels[1] != c.Labels[2] {
		t.Fatalf("redundant kernels split: %v", c.Labels)
	}
	if c.Labels[5] == c.Labels[0] || c.Labels[5] == c.Labels[3] {
		t.Fatalf("outlier absorbed: %v", c.Labels)
	}
}

func TestPipelineSkipSOM(t *testing.T) {
	cfg := pipelineConfig()
	cfg.SkipSOM = true
	p, err := DetectClusters(syntheticSuite(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Map != nil {
		t.Fatal("SkipSOM still trained a map")
	}
	c, err := p.ClusteringAtK(3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Labels[0] != c.Labels[1] || c.Labels[1] != c.Labels[2] {
		t.Fatalf("redundant kernels split without SOM: %v", c.Labels)
	}
}

func TestPipelineSoftPlacement(t *testing.T) {
	cfg := pipelineConfig()
	cfg.SoftPlacement = true
	p, err := DetectClusters(syntheticSuite(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Map == nil {
		t.Fatal("soft placement still needs a trained map")
	}
	// Soft positions live on the grid but are generally fractional.
	fractional := false
	for _, pos := range p.Positions {
		if len(pos) != 2 {
			t.Fatalf("position %v not 2-D", pos)
		}
		if pos[0] < 0 || pos[0] > float64(p.Map.Rows()-1) ||
			pos[1] < 0 || pos[1] > float64(p.Map.Cols()-1) {
			t.Fatalf("position %v outside the grid", pos)
		}
		if pos[0] != float64(int(pos[0])) || pos[1] != float64(int(pos[1])) {
			fractional = true
		}
	}
	if !fractional {
		t.Error("soft placement produced only integer cells — looks like hard BMUs")
	}
	// Clustering still works on soft positions.
	c, err := p.ClusteringAtK(3)
	if err != nil || c.K != 3 {
		t.Fatalf("ClusteringAtK on soft positions: %+v, %v", c, err)
	}
}

func TestPipelineBits(t *testing.T) {
	tab, err := chars.FromBits(
		[]string{"a", "b", "c", "d"},
		[]string{"m1", "m2", "m3", "m4", "m5"},
		[][]bool{
			{true, true, false, true, false},
			{true, true, false, true, false},
			{true, false, true, false, false},
			{true, false, true, false, true},
		})
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipelineConfig()
	cfg.Kind = Bits
	p, err := DetectClusters(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// m1 (universal) and m5 (single user) must be gone.
	if len(p.Report.DroppedUniversal) != 1 || len(p.Report.DroppedSingleUser) != 1 {
		t.Fatalf("bit filters wrong: %+v", p.Report)
	}
	c, err := p.ClusteringAtK(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Labels[0] != c.Labels[1] || c.Labels[2] != c.Labels[3] || c.Labels[0] == c.Labels[2] {
		t.Fatalf("bit clustering wrong: %v", c.Labels)
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := DetectClusters(nil, pipelineConfig()); err == nil {
		t.Error("nil table accepted")
	}
	// All-constant table: preprocessing leaves nothing.
	tab, _ := chars.NewTable([]string{"a", "b"}, []string{"f"}, [][]float64{{1}, {1}})
	if _, err := DetectClusters(tab, pipelineConfig()); err == nil {
		t.Error("feature-free table accepted")
	}
}

func TestScoreSweep(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	scores := []float64{4, 4.2, 3.9, 1.5, 1.4, 0.8}
	sweep, err := p.ScoreSweep(Geometric, scores, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// n = 6, so valid k are 2..6.
	if len(sweep) != 5 {
		t.Fatalf("sweep has %d entries, want 5", len(sweep))
	}
	// k = n must equal the plain GM (degeneracy through the whole
	// pipeline).
	plain, _ := PlainMean(Geometric, scores)
	if !almostEqual(sweep[6], plain, 1e-9) {
		t.Fatalf("sweep[n] = %v, plain GM = %v", sweep[6], plain)
	}
	if _, err := p.ScoreSweep(Geometric, scores, 5, 2); err == nil {
		t.Error("inverted sweep range accepted")
	}
}

func TestClusterMembers(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	members, err := p.ClusterMembers(3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, m := range members {
		total += len(m)
	}
	if len(members) != 3 || total != 6 {
		t.Fatalf("members = %v", members)
	}
}

func TestClusteringAtDistance(t *testing.T) {
	p, err := DetectClusters(syntheticSuite(t), pipelineConfig())
	if err != nil {
		t.Fatal(err)
	}
	// At distance 0 everything in the same SOM cell merges but not
	// more; at a huge distance everything merges.
	all := p.ClusteringAtDistance(1e9)
	if all.K != 1 {
		t.Fatalf("K at huge distance = %d, want 1", all.K)
	}
}
