// Package viz renders the paper's figures as text: SOM workload maps
// (Figures 3, 5, 7), dendrograms (Figures 4, 6, 8) and aligned score
// tables (Tables III–VI). Everything writes plain ASCII so output is
// stable in logs, tests and CI.
package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hmeans/internal/som"
	"hmeans/internal/vecmath"
)

// SOMMap renders the workload distribution over the unit grid, one
// cell per unit. Cells with a single workload show its label; cells
// shared by several workloads (the paper's "darker cells") show all
// labels joined by '+'. Labels are abbreviated to their last name
// component.
func SOMMap(w io.Writer, m *som.Map, names []string, samples []vecmath.Vector) error {
	if len(names) != len(samples) {
		return fmt.Errorf("viz: %d names for %d samples", len(names), len(samples))
	}
	occupants := make(map[[2]int][]string)
	for i, s := range samples {
		r, c := m.BMU(s)
		key := [2]int{r, c}
		occupants[key] = append(occupants[key], shortName(names[i]))
	}
	width := 3
	for _, labels := range occupants {
		if l := len(strings.Join(labels, "+")); l > width {
			width = l
		}
	}
	line := rowSeparator(m.Cols(), width)
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for r := 0; r < m.Rows(); r++ {
		cells := make([]string, m.Cols())
		for c := 0; c < m.Cols(); c++ {
			label := strings.Join(occupants[[2]int{r, c}], "+")
			cells[c] = pad(label, width)
		}
		if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(cells, "|")); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// HitSummary lists shared cells — the paper's "particularly similar"
// workloads — one line per multi-occupant cell, sorted by position.
func HitSummary(w io.Writer, m *som.Map, names []string, samples []vecmath.Vector) error {
	occupants := make(map[[2]int][]string)
	for i, s := range samples {
		r, c := m.BMU(s)
		occupants[[2]int{r, c}] = append(occupants[[2]int{r, c}], names[i])
	}
	keys := make([][2]int, 0, len(occupants))
	for k, v := range occupants {
		if len(v) > 1 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "cell (%d,%d): %s\n", k[0], k[1], strings.Join(occupants[k], ", ")); err != nil {
			return err
		}
	}
	return nil
}

func shortName(s string) string {
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

func pad(s string, width int) string {
	if len(s) > width {
		s = s[:width]
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-len(s)-left)
}

func rowSeparator(cols, width int) string {
	var sb strings.Builder
	sb.WriteByte('+')
	for c := 0; c < cols; c++ {
		sb.WriteString(strings.Repeat("-", width))
		sb.WriteByte('+')
	}
	return sb.String()
}
