package viz

import (
	"math"
	"strings"
	"testing"
)

func TestHeatmapBasic(t *testing.T) {
	var sb strings.Builder
	err := Heatmap(&sb, [][]float64{
		{0, 0.5},
		{1, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // 2 rows + scale line
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Max value renders as '@@', min as spaces.
	if !strings.Contains(lines[1], "@@") {
		t.Fatalf("max glyph missing: %q", lines[1])
	}
	if !strings.HasPrefix(lines[0], "  ") {
		t.Fatalf("min glyph wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "scale:") {
		t.Fatalf("scale line missing: %q", lines[2])
	}
}

func TestHeatmapConstantMatrix(t *testing.T) {
	var sb strings.Builder
	if err := Heatmap(&sb, [][]float64{{3, 3}, {3, 3}}); err != nil {
		t.Fatal(err)
	}
	// Constant matrices render the lowest glyph everywhere without
	// dividing by zero (only the scale line mentions the max glyph).
	body := strings.Split(sb.String(), "scale:")[0]
	if strings.Contains(body, "@") {
		t.Fatalf("constant matrix rendered hot cells:\n%s", sb.String())
	}
}

func TestHeatmapErrors(t *testing.T) {
	if err := Heatmap(&strings.Builder{}, nil); err == nil {
		t.Error("empty heatmap accepted")
	}
	if err := Heatmap(&strings.Builder{}, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged heatmap accepted")
	}
	if err := Heatmap(&strings.Builder{}, [][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN heatmap accepted")
	}
}
