package viz

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hmeans/internal/cluster"
)

// Dendrogram renders the merge tree as indented text, deepest merges
// first — a textual stand-in for the paper's Figures 4, 6 and 8. Each
// line shows the merging distance and the leaves of the merged
// cluster:
//
//	d=12.00  {A B C D}
//	  d=2.00  {C D}
//	  d=1.00  {A B}
func Dendrogram(w io.Writer, d *cluster.Dendrogram, names []string) error {
	if len(names) != d.Len() {
		return fmt.Errorf("viz: %d names for %d leaves", len(names), d.Len())
	}
	merges := d.Merges()
	if len(merges) == 0 {
		_, err := fmt.Fprintf(w, "single leaf: %s\n", names[0])
		return err
	}
	// leaves per cluster id.
	leaves := make(map[int][]int, 2*d.Len())
	for i := 0; i < d.Len(); i++ {
		leaves[i] = []int{i}
	}
	children := make(map[int][2]int)
	for s, m := range merges {
		id := d.Len() + s
		leaves[id] = append(append([]int{}, leaves[m.A]...), leaves[m.B]...)
		children[id] = [2]int{m.A, m.B}
	}
	root := d.Len() + len(merges) - 1
	var render func(id, depth int) error
	render = func(id, depth int) error {
		indent := strings.Repeat("  ", depth)
		if id < d.Len() {
			_, err := fmt.Fprintf(w, "%s%s\n", indent, shortName(names[id]))
			return err
		}
		m := merges[id-d.Len()]
		ls := append([]int(nil), leaves[id]...)
		sort.Ints(ls)
		labels := make([]string, len(ls))
		for i, l := range ls {
			labels[i] = shortName(names[l])
		}
		if _, err := fmt.Fprintf(w, "%sd=%.2f  {%s}\n", indent, m.Distance, strings.Join(labels, " ")); err != nil {
			return err
		}
		ch := children[id]
		if err := render(ch[0], depth+1); err != nil {
			return err
		}
		return render(ch[1], depth+1)
	}
	return render(root, 0)
}

// CutTable prints, for each k in [kMin, kMax], the cluster membership
// at that cut — a compact alternative to reading the dendrogram.
func CutTable(w io.Writer, d *cluster.Dendrogram, names []string, kMin, kMax int) error {
	if len(names) != d.Len() {
		return fmt.Errorf("viz: %d names for %d leaves", len(names), d.Len())
	}
	for k := kMin; k <= kMax && k <= d.Len(); k++ {
		if k < 1 {
			continue
		}
		a, err := d.CutK(k)
		if err != nil {
			return err
		}
		parts := make([]string, a.K)
		for label, members := range a.Members() {
			ms := make([]string, len(members))
			for i, idx := range members {
				ms[i] = shortName(names[idx])
			}
			parts[label] = "{" + strings.Join(ms, " ") + "}"
		}
		if _, err := fmt.Fprintf(w, "k=%d: %s\n", k, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return nil
}
