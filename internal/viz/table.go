package viz

import (
	"fmt"
	"io"
	"strings"
)

// Table renders an aligned text table with a header row, matching the
// layout of the paper's score tables. Cells are right-aligned except
// the first column.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells and
// long rows are rejected.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.header) {
		return fmt.Errorf("viz: row has %d cells for %d columns", len(cells), len(t.header))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// AddRowf appends a row where every cell after the first is formatted
// with the given verb (e.g. "%.2f") from the values.
func (t *Table) AddRowf(label, verb string, values ...float64) error {
	cells := make([]string, 0, len(values)+1)
	cells = append(cells, label)
	for _, v := range values {
		cells = append(cells, fmt.Sprintf(verb, v))
	}
	return t.AddRow(cells...)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = c + strings.Repeat(" ", widths[i]-len(c))
			} else {
				parts[i] = strings.Repeat(" ", widths[i]-len(c)) + c
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, "  "))
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
