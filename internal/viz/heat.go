package viz

import (
	"fmt"
	"io"
	"math"
)

// Heatmap renders a matrix of non-negative values as an ASCII density
// grid: each cell becomes a glyph from " .:-=+*#%@" scaled between
// the matrix minimum and maximum. It is used for U-matrices (cluster
// boundaries appear as bright ridges) and SOM component planes.
func Heatmap(w io.Writer, values [][]float64) error {
	if len(values) == 0 {
		return fmt.Errorf("viz: empty heatmap")
	}
	const glyphs = " .:-=+*#%@"
	lo, hi := math.Inf(1), math.Inf(-1)
	cols := len(values[0])
	for _, row := range values {
		if len(row) != cols {
			return fmt.Errorf("viz: ragged heatmap rows")
		}
		for _, v := range row {
			if math.IsNaN(v) {
				return fmt.Errorf("viz: NaN in heatmap")
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	span := hi - lo
	for _, row := range values {
		for _, v := range row {
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(glyphs)-1))
			}
			// Print each glyph twice: terminal cells are ~2x taller
			// than wide, so doubling keeps the grid roughly square.
			if _, err := fmt.Fprintf(w, "%c%c", glyphs[idx], glyphs[idx]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "scale: %.3g (blank) .. %.3g (@)\n", lo, hi)
	return err
}
