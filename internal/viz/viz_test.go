package viz

import (
	"strings"
	"testing"

	"hmeans/internal/cluster"
	"hmeans/internal/som"
	"hmeans/internal/vecmath"
)

func trainedMap(t *testing.T) (*som.Map, []string, []vecmath.Vector) {
	t.Helper()
	samples := []vecmath.Vector{
		{0, 0, 1}, {0.1, 0, 1}, {5, 5, 0}, {9, 1, 4},
	}
	names := []string{"suite.alpha", "suite.beta", "suite.gamma", "suite.delta"}
	m, err := som.Train(som.Config{Rows: 4, Cols: 4, Steps: 2000, Seed: 3}, samples)
	if err != nil {
		t.Fatal(err)
	}
	return m, names, samples
}

func TestSOMMapRendersAllLabels(t *testing.T) {
	m, names, samples := trainedMap(t)
	var sb strings.Builder
	if err := SOMMap(&sb, m, names, samples); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, n := range []string{"alpha", "gamma", "delta"} {
		if !strings.Contains(out, n) {
			t.Fatalf("label %q missing from map:\n%s", n, out)
		}
	}
	// Grid framing: 5 separator lines for 4 rows.
	if got := strings.Count(out, "+--"); got == 0 {
		t.Fatal("no grid separators rendered")
	}
}

func TestSOMMapNameMismatch(t *testing.T) {
	m, _, samples := trainedMap(t)
	if err := SOMMap(&strings.Builder{}, m, []string{"x"}, samples); err == nil {
		t.Fatal("name/sample mismatch accepted")
	}
}

func TestHitSummaryListsSharedCells(t *testing.T) {
	samples := []vecmath.Vector{{1, 1}, {1, 1}, {9, 9}}
	names := []string{"aaa", "bbb", "zzz"}
	m, err := som.Train(som.Config{Rows: 3, Cols: 3, Steps: 1000, Seed: 1}, samples)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := HitSummary(&sb, m, names, samples); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "aaa, bbb") {
		t.Fatalf("shared cell not reported:\n%s", out)
	}
	if strings.Contains(out, "zzz") {
		t.Fatalf("singleton cell reported:\n%s", out)
	}
}

func TestDendrogramRendering(t *testing.T) {
	pts := []vecmath.Vector{{0}, {1}, {10}, {12}}
	names := []string{"w.a", "w.b", "w.c", "w.d"}
	d, err := cluster.NewDendrogram(pts, vecmath.Euclidean, cluster.Complete)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Dendrogram(&sb, d, names); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "d=12.00  {a b c d}") {
		t.Fatalf("root merge missing:\n%s", out)
	}
	if !strings.Contains(out, "d=1.00  {a b}") {
		t.Fatalf("leaf merge missing:\n%s", out)
	}
	// Indentation: the root is at depth 0, its children deeper.
	if !strings.Contains(out, "  d=") {
		t.Fatalf("no indentation:\n%s", out)
	}
}

func TestDendrogramSingleLeaf(t *testing.T) {
	d, _ := cluster.NewDendrogram([]vecmath.Vector{{1}}, vecmath.Euclidean, cluster.Complete)
	var sb strings.Builder
	if err := Dendrogram(&sb, d, []string{"only"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "only") {
		t.Fatal("single leaf not rendered")
	}
}

func TestDendrogramNameMismatch(t *testing.T) {
	d, _ := cluster.NewDendrogram([]vecmath.Vector{{1}, {2}}, vecmath.Euclidean, cluster.Complete)
	if err := Dendrogram(&strings.Builder{}, d, []string{"x"}); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestCutTable(t *testing.T) {
	pts := []vecmath.Vector{{0}, {1}, {10}, {12}}
	names := []string{"a", "b", "c", "d"}
	d, _ := cluster.NewDendrogram(pts, vecmath.Euclidean, cluster.Complete)
	var sb strings.Builder
	if err := CutTable(&sb, d, names, 2, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "k=2: {a b} {c d}") {
		t.Fatalf("k=2 cut wrong:\n%s", out)
	}
	if !strings.Contains(out, "k=4:") || strings.Contains(out, "k=5:") {
		t.Fatalf("cut range not clamped:\n%s", out)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("", "A", "B", "ratio(=A/B)")
	if err := tab.AddRowf("2 Clusters", "%.2f", 2.58, 2.06, 1.25); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddRowf("Geometric Mean", "%.2f", 2.10, 1.94, 1.08); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 Clusters") || !strings.Contains(out, "1.25") {
		t.Fatalf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Alignment: all lines same display width.
	for _, l := range lines[2:] {
		if len(l) != len(lines[2]) {
			t.Fatalf("misaligned rows:\n%s", out)
		}
	}
}

func TestTableRowTooLong(t *testing.T) {
	tab := NewTable("a", "b")
	if err := tab.AddRow("1", "2", "3"); err == nil {
		t.Fatal("overlong row accepted")
	}
}

func TestShortName(t *testing.T) {
	if shortName("SciMark2.FFT") != "FFT" || shortName("plain") != "plain" {
		t.Fatal("shortName wrong")
	}
}
