package stat

import "math"

// Standardize returns (x - mean) / stddev for each element, the
// z-score transform the paper applies to every counter channel before
// cluster analysis. If the standard deviation is zero (a constant
// feature) the zero vector is returned with ok=false so callers can
// drop the feature, mirroring the paper's "counters that did not vary
// over workloads were discarded".
func Standardize(xs []float64) (zs []float64, ok bool) {
	zs = make([]float64, len(xs))
	if len(xs) == 0 {
		return zs, false
	}
	mean, _ := ArithmeticMean(xs)
	sd, _ := StdDev(xs)
	if sd == 0 || math.IsNaN(sd) {
		return zs, false
	}
	for i, x := range xs {
		zs[i] = (x - mean) / sd
	}
	return zs, true
}

// StandardizeColumns z-standardizes each column of the row-major
// matrix rows in place and reports, per column, whether the column
// varied (constant columns are zeroed and flagged false). All rows
// must have equal length; rows may be empty.
func StandardizeColumns(rows [][]float64) (varied []bool) {
	if len(rows) == 0 {
		return nil
	}
	cols := len(rows[0])
	varied = make([]bool, cols)
	col := make([]float64, len(rows))
	for j := 0; j < cols; j++ {
		for i, row := range rows {
			col[i] = row[j]
		}
		z, ok := Standardize(col)
		varied[j] = ok
		for i := range rows {
			rows[i][j] = z[i]
		}
	}
	return varied
}

// DropColumns returns a copy of the row-major matrix rows with only
// the columns whose keep flag is true. It is used to discard constant
// counters and the degenerate method-utilization bits before SOM
// training.
func DropColumns(rows [][]float64, keep []bool) [][]float64 {
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	out := make([][]float64, len(rows))
	for i, row := range rows {
		out[i] = make([]float64, 0, kept)
		for j, k := range keep {
			if k {
				out[i] = append(out[i], row[j])
			}
		}
	}
	return out
}
