package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardizeBasic(t *testing.T) {
	zs, ok := Standardize([]float64{1, 2, 3, 4, 5})
	if !ok {
		t.Fatal("Standardize reported constant input")
	}
	mean, _ := ArithmeticMean(zs)
	sd, _ := StdDev(zs)
	if math.Abs(mean) > eps || math.Abs(sd-1) > eps {
		t.Fatalf("standardized mean/sd = %v/%v; want 0/1", mean, sd)
	}
}

func TestStandardizeConstant(t *testing.T) {
	zs, ok := Standardize([]float64{7, 7, 7})
	if ok {
		t.Fatal("constant column reported as varying")
	}
	for _, z := range zs {
		if z != 0 {
			t.Fatalf("constant column not zeroed: %v", zs)
		}
	}
}

func TestStandardizeEmpty(t *testing.T) {
	zs, ok := Standardize(nil)
	if ok || len(zs) != 0 {
		t.Fatalf("Standardize(nil) = %v, %v; want empty, false", zs, ok)
	}
}

func TestStandardizeColumns(t *testing.T) {
	rows := [][]float64{
		{1, 5, 100},
		{2, 5, 200},
		{3, 5, 300},
	}
	varied := StandardizeColumns(rows)
	if !varied[0] || varied[1] || !varied[2] {
		t.Fatalf("varied flags = %v; want [true false true]", varied)
	}
	// Column 1 (constant) must be zeroed.
	for i := range rows {
		if rows[i][1] != 0 {
			t.Fatalf("constant column not zeroed: %v", rows)
		}
	}
	// Column 0 and 2 have the same shape, so identical z-scores.
	for i := range rows {
		if !almostEqual(rows[i][0], rows[i][2], eps) {
			t.Fatalf("equal-shape columns standardized differently: %v", rows)
		}
	}
}

func TestDropColumns(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	out := DropColumns(rows, []bool{true, false, true})
	want := [][]float64{{1, 3}, {4, 6}}
	for i := range want {
		for j := range want[i] {
			if out[i][j] != want[i][j] {
				t.Fatalf("DropColumns = %v; want %v", out, want)
			}
		}
	}
	// Original must be untouched.
	if len(rows[0]) != 3 {
		t.Fatal("DropColumns mutated its input")
	}
}

func TestDropColumnsAll(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	out := DropColumns(rows, []bool{false, false})
	if len(out) != 2 || len(out[0]) != 0 || len(out[1]) != 0 {
		t.Fatalf("DropColumns all-false = %v; want rows of length 0", out)
	}
}

// Property: standardization is idempotent (z(z(x)) == z(x)) for
// non-constant input.
func TestStandardizeIdempotent(t *testing.T) {
	f := func(raw []float64) bool {
		xs := positiveSample(raw)
		if len(xs) < 2 {
			return true
		}
		xs[0] += 1 // ensure non-constant
		z1, ok := Standardize(xs)
		if !ok {
			return true
		}
		z2, ok2 := Standardize(z1)
		if !ok2 {
			return false
		}
		for i := range z1 {
			if !almostEqual(z1[i], z2[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
