package stat

import (
	"math"
	"sort"
)

// Covariance returns the population covariance of paired samples
// xs and ys, which must have equal, non-zero length.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, ErrDomain
	}
	mx, _ := ArithmeticMean(xs)
	my, _ := ArithmeticMean(ys)
	sum := 0.0
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(len(xs)), nil
}

// Pearson returns the Pearson product-moment correlation coefficient
// of xs and ys. It returns ErrDomain if either sample is constant.
func Pearson(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx, _ := StdDev(xs)
	sy, _ := StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0, ErrDomain
	}
	r := cov / (sx * sy)
	// Guard rounding excursions outside [-1, 1].
	return math.Max(-1, math.Min(1, r)), nil
}

// Spearman returns Spearman's rank correlation coefficient, i.e. the
// Pearson correlation of the rank transforms, with mid-ranks for
// ties. It is used to compare orderings produced by different scoring
// metrics.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, ErrDomain
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based fractional ranks of xs (ties receive the
// average of the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := (float64(i+1) + float64(j+1)) / 2
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
