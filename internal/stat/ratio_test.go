package stat

import (
	"errors"
	"testing"

	"hmeans/internal/rng"
)

func TestBootstrapRatioCIBasic(t *testing.T) {
	// ys = xs / 1.5 everywhere: the ratio is exactly 1.5 with zero
	// sampling variance, so the interval must collapse onto 1.5.
	xs := []float64{3, 6, 1.5, 9, 4.5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x / 1.5
	}
	iv, err := BootstrapRatioCI(xs, ys, 0.95, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(iv.Point, 1.5, 1e-12) {
		t.Fatalf("point = %v", iv.Point)
	}
	if !almostEqual(iv.Lo, 1.5, 1e-9) || !almostEqual(iv.Hi, 1.5, 1e-9) {
		t.Fatalf("constant-ratio interval = [%v, %v]", iv.Lo, iv.Hi)
	}
}

func TestBootstrapRatioCIVariedRatios(t *testing.T) {
	r := rng.New(3)
	n := 30
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		base := 1 + 4*r.Float64()
		xs[i] = base * (1.2 + 0.5*r.Float64()) // A roughly 1.2-1.7x faster
		ys[i] = base
	}
	iv, err := BootstrapRatioCI(xs, ys, 0.95, 800, 7)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo >= iv.Hi || !iv.Contains(iv.Point) {
		t.Fatalf("interval %+v malformed", iv)
	}
	// The true ratio band excludes 1: the comparison is significant.
	if iv.Contains(1) {
		t.Fatalf("interval %v..%v should exclude 1 for a clear winner", iv.Lo, iv.Hi)
	}
}

func TestBootstrapRatioCIPairing(t *testing.T) {
	// Anti-correlated pairs: unpaired resampling would wildly inflate
	// the variance; paired resampling keeps the ratio interval tight
	// around the true value even though both vectors vary 10x.
	xs := []float64{1, 10, 2, 20, 4, 40}
	ys := []float64{0.5, 5, 1, 10, 2, 20} // exactly half each
	iv, err := BootstrapRatioCI(xs, ys, 0.95, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(iv.Point, 2, 1e-12) || iv.Width() > 1e-9 {
		t.Fatalf("paired interval = %+v, want exactly 2", iv)
	}
}

func TestBootstrapRatioCIErrors(t *testing.T) {
	if _, err := BootstrapRatioCI(nil, nil, 0.95, 100, 1); !errors.Is(err, ErrEmpty) {
		t.Error("empty input accepted")
	}
	if _, err := BootstrapRatioCI([]float64{1}, []float64{1, 2}, 0.95, 100, 1); !errors.Is(err, ErrDomain) {
		t.Error("length mismatch accepted")
	}
	if _, err := BootstrapRatioCI([]float64{1}, []float64{1}, 2, 100, 1); !errors.Is(err, ErrDomain) {
		t.Error("bad level accepted")
	}
	if _, err := BootstrapRatioCI([]float64{1}, []float64{1}, 0.9, 2, 1); !errors.Is(err, ErrDomain) {
		t.Error("too few resamples accepted")
	}
	if _, err := BootstrapRatioCI([]float64{-1}, []float64{1}, 0.9, 100, 1); err == nil {
		t.Error("negative score accepted")
	}
}
