package stat

import (
	"fmt"

	"hmeans/internal/rng"
)

// BootstrapRatioCI estimates a confidence interval for the ratio of
// geometric means GM(xs)/GM(ys) by paired bootstrap over positions:
// each resample draws the same workload indices for both vectors, so
// the per-workload pairing (same program on two machines) is
// preserved. This answers the question every suite comparison should
// ask explicitly: given the workload sample we have, how sure are we
// about the headline ratio?
func BootstrapRatioCI(xs, ys []float64, level float64, resamples int, seed uint64) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if len(xs) != len(ys) {
		return Interval{}, fmt.Errorf("%w: %d vs %d paired values", ErrDomain, len(xs), len(ys))
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("%w: confidence level %v", ErrDomain, level)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("%w: need at least 10 resamples", ErrDomain)
	}
	ratio := func(a, b []float64) (float64, error) {
		ga, err := GeometricMean(a)
		if err != nil {
			return 0, err
		}
		gb, err := GeometricMean(b)
		if err != nil {
			return 0, err
		}
		return ga / gb, nil
	}
	point, err := ratio(xs, ys)
	if err != nil {
		return Interval{}, err
	}
	r := rng.New(seed)
	sa := make([]float64, len(xs))
	sb := make([]float64, len(ys))
	values := make([]float64, 0, resamples)
	for b := 0; b < resamples; b++ {
		for i := range sa {
			j := r.Intn(len(xs))
			sa[i], sb[i] = xs[j], ys[j]
		}
		v, err := ratio(sa, sb)
		if err != nil {
			continue
		}
		values = append(values, v)
	}
	if len(values) < resamples/2 {
		return Interval{}, fmt.Errorf("stat: only %d of %d ratio resamples were valid", len(values), resamples)
	}
	alpha := (1 - level) / 2
	lo, err := Quantile(values, alpha)
	if err != nil {
		return Interval{}, err
	}
	hi, err := Quantile(values, 1-alpha)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: lo, Hi: hi, Point: point, Level: level}, nil
}
