package stat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func almostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// positiveSample converts arbitrary quick-check input into a non-empty
// slice of values in (0, ~100], the domain shared by all three means.
func positiveSample(raw []float64) []float64 {
	xs := make([]float64, 0, len(raw)+1)
	for _, v := range raw {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		xs = append(xs, math.Abs(math.Mod(v, 100))+0.5)
	}
	if len(xs) == 0 {
		xs = append(xs, 1.0)
	}
	return xs
}

func TestArithmeticMeanBasic(t *testing.T) {
	got, err := ArithmeticMean([]float64{1, 2, 3, 4})
	if err != nil || got != 2.5 {
		t.Fatalf("ArithmeticMean = %v, %v; want 2.5, nil", got, err)
	}
}

func TestGeometricMeanBasic(t *testing.T) {
	got, err := GeometricMean([]float64{1, 4, 16})
	if err != nil || !almostEqual(got, 4, eps) {
		t.Fatalf("GeometricMean = %v, %v; want 4, nil", got, err)
	}
}

func TestHarmonicMeanBasic(t *testing.T) {
	got, err := HarmonicMean([]float64{1, 2, 4})
	want := 3.0 / (1 + 0.5 + 0.25)
	if err != nil || !almostEqual(got, want, eps) {
		t.Fatalf("HarmonicMean = %v, %v; want %v, nil", got, err, want)
	}
}

func TestMeansEmptyInput(t *testing.T) {
	if _, err := ArithmeticMean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("ArithmeticMean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := GeometricMean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("GeometricMean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := HarmonicMean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("HarmonicMean(nil) err = %v, want ErrEmpty", err)
	}
}

func TestGeometricMeanDomain(t *testing.T) {
	for _, bad := range [][]float64{{1, 0, 2}, {1, -3}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := GeometricMean(bad); !errors.Is(err, ErrDomain) {
			t.Errorf("GeometricMean(%v) err = %v, want ErrDomain", bad, err)
		}
	}
}

func TestHarmonicMeanDomain(t *testing.T) {
	for _, bad := range [][]float64{{1, 0}, {-1}, {math.NaN()}} {
		if _, err := HarmonicMean(bad); !errors.Is(err, ErrDomain) {
			t.Errorf("HarmonicMean(%v) err = %v, want ErrDomain", bad, err)
		}
	}
}

func TestGeometricMeanNoOverflow(t *testing.T) {
	// 400 values of 1e300 would overflow a naive product.
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 1e300
	}
	got, err := GeometricMean(xs)
	if err != nil || !almostEqual(got, 1e300, 1e-9) {
		t.Fatalf("GeometricMean(large) = %v, %v; want 1e300", got, err)
	}
}

// Property: HM <= GM <= AM for positive samples (AM-GM-HM inequality).
func TestPythagoreanMeanInequality(t *testing.T) {
	f := func(raw []float64) bool {
		xs := positiveSample(raw)
		am, err1 := ArithmeticMean(xs)
		gm, err2 := GeometricMean(xs)
		hm, err3 := HarmonicMean(xs)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return hm <= gm*(1+1e-9) && gm <= am*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three means lie between min and max of the sample.
func TestMeansBounded(t *testing.T) {
	f := func(raw []float64) bool {
		xs := positiveSample(raw)
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		for _, fn := range []func([]float64) (float64, error){ArithmeticMean, GeometricMean, HarmonicMean} {
			m, err := fn(xs)
			if err != nil || m < lo-1e-9 || m > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: geometric mean is scale-equivariant: GM(c*x) = c*GM(x).
func TestGeometricMeanScaleEquivariance(t *testing.T) {
	f := func(raw []float64, cRaw float64) bool {
		xs := positiveSample(raw)
		c := math.Abs(math.Mod(cRaw, 10)) + 0.5
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = c * x
		}
		g1, _ := GeometricMean(xs)
		g2, _ := GeometricMean(scaled)
		return almostEqual(g2, c*g1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedMeansUniformWeightsMatchPlain(t *testing.T) {
	xs := []float64{1.3, 2.7, 0.4, 9.2}
	ws := []float64{2, 2, 2, 2}
	am, _ := ArithmeticMean(xs)
	gm, _ := GeometricMean(xs)
	hm, _ := HarmonicMean(xs)
	wam, err := WeightedArithmeticMean(xs, ws)
	if err != nil || !almostEqual(wam, am, eps) {
		t.Errorf("WAM uniform = %v, want %v (err %v)", wam, am, err)
	}
	wgm, err := WeightedGeometricMean(xs, ws)
	if err != nil || !almostEqual(wgm, gm, 1e-9) {
		t.Errorf("WGM uniform = %v, want %v (err %v)", wgm, gm, err)
	}
	whm, err := WeightedHarmonicMean(xs, ws)
	if err != nil || !almostEqual(whm, hm, 1e-9) {
		t.Errorf("WHM uniform = %v, want %v (err %v)", whm, hm, err)
	}
}

func TestWeightedMeanZeroWeightDropsValue(t *testing.T) {
	got, err := WeightedArithmeticMean([]float64{5, 1000}, []float64{1, 0})
	if err != nil || got != 5 {
		t.Fatalf("WAM with zero weight = %v, %v; want 5", got, err)
	}
}

func TestWeightedMeanErrors(t *testing.T) {
	if _, err := WeightedArithmeticMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch not detected")
	}
	if _, err := WeightedArithmeticMean([]float64{1}, []float64{-1}); !errors.Is(err, ErrDomain) {
		t.Error("negative weight not rejected")
	}
	if _, err := WeightedArithmeticMean([]float64{1, 2}, []float64{0, 0}); !errors.Is(err, ErrDomain) {
		t.Error("all-zero weights not rejected")
	}
	if _, err := WeightedGeometricMean([]float64{0}, []float64{1}); !errors.Is(err, ErrDomain) {
		t.Error("WGM zero value not rejected")
	}
	if _, err := WeightedHarmonicMean([]float64{-2}, []float64{1}); !errors.Is(err, ErrDomain) {
		t.Error("WHM negative value not rejected")
	}
}

func TestSingleElementMeans(t *testing.T) {
	for _, fn := range []func([]float64) (float64, error){ArithmeticMean, GeometricMean, HarmonicMean} {
		got, err := fn([]float64{3.7})
		if err != nil || !almostEqual(got, 3.7, eps) {
			t.Errorf("mean of single element = %v, %v; want 3.7", got, err)
		}
	}
}
