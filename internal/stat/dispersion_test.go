package stat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestVariance(t *testing.T) {
	got, err := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || got != 4 {
		t.Fatalf("Variance = %v, %v; want 4", got, err)
	}
}

func TestSampleVariance(t *testing.T) {
	got, err := SampleVariance([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 32.0 / 7.0
	if err != nil || !almostEqual(got, want, eps) {
		t.Fatalf("SampleVariance = %v, %v; want %v", got, err, want)
	}
	if _, err := SampleVariance([]float64{1}); !errors.Is(err, ErrEmpty) {
		t.Error("SampleVariance of one element should fail")
	}
}

func TestStdDevConstant(t *testing.T) {
	got, err := StdDev([]float64{3, 3, 3})
	if err != nil || got != 0 {
		t.Fatalf("StdDev(const) = %v, %v; want 0", got, err)
	}
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	rg, _ := Range(xs)
	if lo != -1 || hi != 7 || rg != 8 {
		t.Fatalf("Min/Max/Range = %v/%v/%v; want -1/7/8", lo, hi, rg)
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Min(nil) should fail")
	}
	if _, err := Range(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Range(nil) should fail")
	}
}

func TestMedian(t *testing.T) {
	if m, _ := Median([]float64{5, 1, 3}); m != 3 {
		t.Errorf("odd median = %v, want 3", m)
	}
	if m, _ := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v, want 2.5", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil || !almostEqual(got, c.want, eps) {
			t.Errorf("Quantile(%v) = %v, %v; want %v", c.q, got, err, c.want)
		}
	}
	if _, err := Quantile(xs, 1.5); !errors.Is(err, ErrDomain) {
		t.Error("Quantile(1.5) should fail")
	}
	if _, err := Quantile(xs, math.NaN()); !errors.Is(err, ErrDomain) {
		t.Error("Quantile(NaN) should fail")
	}
	if q, _ := Quantile([]float64{42}, 0.3); q != 42 {
		t.Error("single-element quantile should be the element")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_, _ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated its input: %v", xs)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	got, err := CoefficientOfVariation([]float64{10, 10, 10})
	if err != nil || got != 0 {
		t.Fatalf("CV of constant = %v, %v; want 0", got, err)
	}
	if _, err := CoefficientOfVariation([]float64{-1, 1}); !errors.Is(err, ErrDomain) {
		t.Error("CV with zero mean should fail")
	}
}

// Property: variance is translation invariant and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	f := func(raw []float64, shiftRaw, scaleRaw float64) bool {
		xs := positiveSample(raw)
		shift := math.Mod(shiftRaw, 100)
		scale := math.Mod(scaleRaw, 10)
		if math.IsNaN(shift) || math.IsNaN(scale) {
			return true
		}
		moved := make([]float64, len(xs))
		for i, x := range xs {
			moved[i] = scale*x + shift
		}
		v1, _ := Variance(xs)
		v2, _ := Variance(moved)
		return almostEqual(v2, scale*scale*v1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1Raw, q2Raw float64) bool {
		xs := positiveSample(raw)
		q1 := math.Abs(math.Mod(q1Raw, 1))
		q2 := math.Abs(math.Mod(q2Raw, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, e1 := Quantile(xs, q1)
		v2, e2 := Quantile(xs, q2)
		return e1 == nil && e2 == nil && v1 <= v2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
