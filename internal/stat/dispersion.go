package stat

import (
	"math"
	"sort"
)

// Variance returns the population variance of xs (divide by n).
// The clustering pipeline standardizes with population moments, as the
// paper's "subtract the mean and divide by standard deviation" does.
func Variance(xs []float64) (float64, error) {
	mean, err := ArithmeticMean(xs)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs)), nil
}

// SampleVariance returns the unbiased sample variance (divide by n-1).
// It requires at least two observations.
func SampleVariance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mean, _ := ArithmeticMean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return sum / float64(len(xs)-1), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Median returns the median of xs (average of the two middle values
// for even-length input). xs is not modified.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile of xs, q in [0, 1], using linear
// interpolation between order statistics (type-7, the R/NumPy
// default). xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, ErrDomain
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Range returns max - min of xs.
func Range(xs []float64) (float64, error) {
	lo, err := Min(xs)
	if err != nil {
		return 0, err
	}
	hi, _ := Max(xs)
	return hi - lo, nil
}

// CoefficientOfVariation returns the population standard deviation
// divided by the arithmetic mean. The mean must be non-zero.
func CoefficientOfVariation(xs []float64) (float64, error) {
	mean, err := ArithmeticMean(xs)
	if err != nil {
		return 0, err
	}
	if mean == 0 {
		return 0, ErrDomain
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return sd / mean, nil
}
