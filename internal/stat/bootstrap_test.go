package stat

import (
	"errors"
	"testing"

	"hmeans/internal/rng"
)

func TestBootstrapMeanCIBasic(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 60)
	for i := range xs {
		xs[i] = 2 + 0.3*r.NormFloat64()
	}
	iv, err := BootstrapMeanCI(xs, 0.95, 500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo >= iv.Hi {
		t.Fatalf("degenerate interval %+v", iv)
	}
	if !iv.Contains(iv.Point) {
		t.Fatalf("interval %v..%v excludes its own point %v", iv.Lo, iv.Hi, iv.Point)
	}
	// The true GM (~2) must be comfortably inside.
	if !iv.Contains(2) {
		t.Fatalf("interval %v..%v excludes the true mean", iv.Lo, iv.Hi)
	}
	if iv.Width() <= 0 || iv.Width() > 0.5 {
		t.Fatalf("implausible width %v", iv.Width())
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	a, err := BootstrapMeanCI(xs, 0.9, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapMeanCI(xs, 0.9, 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("bootstrap not deterministic: %+v vs %+v", a, b)
	}
}

func TestBootstrapWiderAtHigherLevel(t *testing.T) {
	xs := []float64{1, 3, 2, 5, 4, 7, 6, 2, 3, 8}
	iv90, err := BootstrapMeanCI(xs, 0.90, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	iv99, err := BootstrapMeanCI(xs, 0.99, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	if iv99.Width() <= iv90.Width() {
		t.Fatalf("99%% interval (%v) not wider than 90%% (%v)", iv99.Width(), iv90.Width())
	}
}

func TestBootstrapErrors(t *testing.T) {
	if _, err := BootstrapMeanCI(nil, 0.95, 100, 1); !errors.Is(err, ErrEmpty) {
		t.Error("empty sample accepted")
	}
	xs := []float64{1, 2}
	if _, err := BootstrapMeanCI(xs, 0, 100, 1); !errors.Is(err, ErrDomain) {
		t.Error("level 0 accepted")
	}
	if _, err := BootstrapMeanCI(xs, 1, 100, 1); !errors.Is(err, ErrDomain) {
		t.Error("level 1 accepted")
	}
	if _, err := BootstrapMeanCI(xs, 0.95, 5, 1); !errors.Is(err, ErrDomain) {
		t.Error("too few resamples accepted")
	}
	// Statistic that always fails.
	_, err := BootstrapCI(xs, 0.95, 100, 1, func([]float64) (float64, error) {
		return 0, ErrDomain
	})
	if err == nil {
		t.Error("always-failing statistic accepted")
	}
}

func TestBootstrapCustomStatistic(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	iv, err := BootstrapCI(xs, 0.95, 100, 1, Median)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 5 || iv.Hi != 5 || iv.Point != 5 {
		t.Fatalf("constant-sample median CI = %+v", iv)
	}
}
