package stat

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCovariance(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	got, err := Covariance(xs, ys)
	if err != nil || !almostEqual(got, 4.0/3.0, eps) {
		t.Fatalf("Covariance = %v, %v; want 4/3", got, err)
	}
	if _, err := Covariance(xs, ys[:2]); !errors.Is(err, ErrDomain) {
		t.Error("length mismatch not rejected")
	}
	if _, err := Covariance(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Error("empty input not rejected")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	if r, err := Pearson(xs, ys); err != nil || !almostEqual(r, 1, eps) {
		t.Errorf("Pearson(perfect+) = %v, %v; want 1", r, err)
	}
	neg := []float64{40, 30, 20, 10}
	if r, err := Pearson(xs, neg); err != nil || !almostEqual(r, -1, eps) {
		t.Errorf("Pearson(perfect-) = %v, %v; want -1", r, err)
	}
}

func TestPearsonConstantRejected(t *testing.T) {
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrDomain) {
		t.Error("constant sample not rejected")
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v; want %v", got, want)
		}
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly increasing transform gives Spearman exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125} // cube: non-linear but monotone
	r, err := Spearman(xs, ys)
	if err != nil || !almostEqual(r, 1, eps) {
		t.Fatalf("Spearman(monotone) = %v, %v; want 1", r, err)
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric.
func TestPearsonProperties(t *testing.T) {
	f := func(rawX, rawY []float64) bool {
		xs := positiveSample(rawX)
		ys := positiveSample(rawY)
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n < 3 {
			return true
		}
		xs, ys = xs[:n], ys[:n]
		xs[0] += 1
		ys[0] += 2 // avoid constant vectors
		r1, err1 := Pearson(xs, ys)
		if err1 != nil {
			return true // constant after truncation — fine
		}
		r2, err2 := Pearson(ys, xs)
		if err2 != nil {
			return false
		}
		return r1 >= -1 && r1 <= 1 && almostEqual(r1, r2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is invariant under positive affine transforms.
func TestPearsonAffineInvariance(t *testing.T) {
	f := func(raw []float64, aRaw, bRaw float64) bool {
		xs := positiveSample(raw)
		if len(xs) < 3 {
			return true
		}
		xs[0] += 1
		a := math.Abs(math.Mod(aRaw, 5)) + 0.1
		b := math.Mod(bRaw, 50)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x + b
		}
		r, err := Pearson(xs, ys)
		return err == nil && almostEqual(r, 1, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
