package stat

import (
	"errors"
	"testing"

	"hmeans/internal/rng"
)

func TestPermutationDetectsClearDifference(t *testing.T) {
	// Machine X is 2x faster on every one of 20 workloads: the null
	// should be decisively rejected.
	r := rng.New(1)
	n := 20
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		base := 1 + 3*r.Float64()
		ys[i] = base
		xs[i] = 2 * base * (1 + 0.05*r.NormFloat64())
	}
	p, obs, err := PairedPermutationTest(xs, ys, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if obs <= 0 {
		t.Fatalf("observed statistic %v", obs)
	}
	if p > 0.01 {
		t.Fatalf("p = %v for a 2x-everywhere difference", p)
	}
}

func TestPermutationAcceptsNull(t *testing.T) {
	// Symmetric noise around equality: p must not be small.
	r := rng.New(2)
	n := 15
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		base := 1 + 3*r.Float64()
		xs[i] = base * (1 + 0.2*r.NormFloat64())
		ys[i] = base * (1 + 0.2*r.NormFloat64())
	}
	p, _, err := PairedPermutationTest(xs, ys, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.05 {
		t.Fatalf("p = %v under the null", p)
	}
}

func TestPermutationPaperSuite(t *testing.T) {
	// The paper's Table III speedups: 13 workloads, ratio 1.08. The
	// permutation test must agree with the bootstrap CI's verdict
	// that this is not significant at the usual level.
	a := []float64{4.75, 5.32, 3.97, 6.50, 2.57, 1.09, 1.19, 0.75, 1.22, 0.71, 1.16, 5.12, 1.88}
	b := []float64{3.99, 3.65, 2.37, 6.11, 1.41, 1.07, 0.90, 0.98, 1.31, 0.90, 2.31, 2.77, 2.62}
	p, obs, err := PairedPermutationTest(a, b, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if obs <= 0 {
		t.Fatal("zero observed statistic")
	}
	if p < 0.05 {
		t.Fatalf("p = %v; 13 workloads at ratio 1.08 should not be significant", p)
	}
}

func TestPermutationDeterministic(t *testing.T) {
	xs := []float64{2, 3, 4, 5}
	ys := []float64{1, 2, 3, 4}
	p1, o1, err := PairedPermutationTest(xs, ys, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2, o2, err := PairedPermutationTest(xs, ys, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || o1 != o2 {
		t.Fatal("permutation test not deterministic per seed")
	}
}

func TestPermutationErrors(t *testing.T) {
	if _, _, err := PairedPermutationTest(nil, nil, 100, 1); !errors.Is(err, ErrEmpty) {
		t.Error("empty input accepted")
	}
	if _, _, err := PairedPermutationTest([]float64{1}, []float64{1, 2}, 100, 1); !errors.Is(err, ErrDomain) {
		t.Error("length mismatch accepted")
	}
	if _, _, err := PairedPermutationTest([]float64{1}, []float64{1}, 5, 1); !errors.Is(err, ErrDomain) {
		t.Error("too few permutations accepted")
	}
	if _, _, err := PairedPermutationTest([]float64{-1}, []float64{1}, 100, 1); err == nil {
		t.Error("negative score accepted")
	}
}
