// Package stat provides the descriptive statistics used by the
// hierarchical-means pipeline: the three Pythagorean means and their
// weighted forms, dispersion measures, standardization, quantiles and
// correlation.
//
// Every mean follows the same contract: it returns an error (rather
// than NaN) on empty input or on domain violations (non-positive
// values for the geometric and harmonic means), because in this
// library a malformed score vector is a caller bug that must surface
// at the scoring boundary, not three layers later as a silent NaN in
// a published benchmark number.
package stat

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned by aggregate functions invoked on an empty
// sample.
var ErrEmpty = errors.New("stat: empty sample")

// ErrDomain is returned when a sample value lies outside the domain
// of the requested statistic (e.g. a non-positive score passed to the
// geometric mean).
var ErrDomain = errors.New("stat: value outside statistic domain")

// ArithmeticMean returns the arithmetic mean of xs.
func ArithmeticMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// GeometricMean returns the geometric mean of xs. All values must be
// strictly positive. The computation works in log space so that long
// products of large speedups cannot overflow.
func GeometricMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("%w: geometric mean requires finite positive values, got %v", ErrDomain, x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// HarmonicMean returns the harmonic mean of xs. All values must be
// strictly positive.
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	invSum := 0.0
	for _, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("%w: harmonic mean requires finite positive values, got %v", ErrDomain, x)
		}
		invSum += 1 / x
	}
	return float64(len(xs)) / invSum, nil
}

// WeightedArithmeticMean returns sum(w_i * x_i) / sum(w_i). Weights
// must be non-negative with a positive sum. This is the paper's
// "weighted mean" workaround that the hierarchical means replace.
func WeightedArithmeticMean(xs, ws []float64) (float64, error) {
	if err := checkWeights(xs, ws); err != nil {
		return 0, err
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	return num / den, nil
}

// WeightedGeometricMean returns exp(sum(w_i * ln x_i) / sum(w_i)).
func WeightedGeometricMean(xs, ws []float64) (float64, error) {
	if err := checkWeights(xs, ws); err != nil {
		return 0, err
	}
	var num, den float64
	for i, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("%w: weighted geometric mean requires finite positive values, got %v", ErrDomain, x)
		}
		num += ws[i] * math.Log(x)
		den += ws[i]
	}
	return math.Exp(num / den), nil
}

// WeightedHarmonicMean returns sum(w_i) / sum(w_i / x_i).
func WeightedHarmonicMean(xs, ws []float64) (float64, error) {
	if err := checkWeights(xs, ws); err != nil {
		return 0, err
	}
	var num, den float64
	for i, x := range xs {
		if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("%w: weighted harmonic mean requires finite positive values, got %v", ErrDomain, x)
		}
		num += ws[i]
		den += ws[i] / x
	}
	return num / den, nil
}

func checkWeights(xs, ws []float64) error {
	if len(xs) == 0 {
		return ErrEmpty
	}
	if len(xs) != len(ws) {
		return fmt.Errorf("stat: %d values but %d weights", len(xs), len(ws))
	}
	sum := 0.0
	for _, w := range ws {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("%w: weights must be finite and non-negative, got %v", ErrDomain, w)
		}
		sum += w
	}
	if sum <= 0 {
		return fmt.Errorf("%w: weight sum must be positive", ErrDomain)
	}
	return nil
}
