package stat

import (
	"fmt"
	"math"

	"hmeans/internal/rng"
)

// PairedPermutationTest tests whether the geometric means of two
// paired score vectors differ, against the null hypothesis that for
// each workload the two machines' scores are exchangeable (neither
// machine is systematically faster). The statistic is
// |log GM(xs) − log GM(ys)|; each permutation swaps a random subset
// of the pairs. The returned p-value is the fraction of permutations
// with a statistic at least as extreme as the observed one (with the
// +1 correction that keeps the estimate valid at small counts).
//
// This is the sharper companion to BootstrapRatioCI: the bootstrap
// asks "how variable is the ratio under workload resampling", the
// permutation test asks "could a ratio this far from 1 arise if the
// machines were equivalent".
func PairedPermutationTest(xs, ys []float64, permutations int, seed uint64) (pValue, observed float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if len(xs) != len(ys) {
		return 0, 0, fmt.Errorf("%w: %d vs %d paired values", ErrDomain, len(xs), len(ys))
	}
	if permutations < 10 {
		return 0, 0, fmt.Errorf("%w: need at least 10 permutations", ErrDomain)
	}
	stat := func(a, b []float64) (float64, error) {
		ga, err := GeometricMean(a)
		if err != nil {
			return 0, err
		}
		gb, err := GeometricMean(b)
		if err != nil {
			return 0, err
		}
		return math.Abs(math.Log(ga / gb)), nil
	}
	observed, err = stat(xs, ys)
	if err != nil {
		return 0, 0, err
	}
	r := rng.New(seed)
	pa := make([]float64, len(xs))
	pb := make([]float64, len(ys))
	extreme := 0
	for p := 0; p < permutations; p++ {
		for i := range xs {
			if r.Uint64()&1 == 0 {
				pa[i], pb[i] = xs[i], ys[i]
			} else {
				pa[i], pb[i] = ys[i], xs[i]
			}
		}
		v, err := stat(pa, pb)
		if err != nil {
			return 0, 0, err
		}
		if v >= observed-1e-15 {
			extreme++
		}
	}
	return float64(extreme+1) / float64(permutations+1), observed, nil
}
