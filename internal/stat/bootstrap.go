package stat

import (
	"fmt"

	"hmeans/internal/rng"
)

// Interval is a two-sided confidence interval for a statistic.
type Interval struct {
	// Lo and Hi bound the interval.
	Lo, Hi float64
	// Point is the statistic on the original sample.
	Point float64
	// Level is the nominal confidence level, e.g. 0.95.
	Level float64
}

// BootstrapCI estimates a percentile-bootstrap confidence interval
// for an arbitrary statistic of the sample: it resamples xs with
// replacement `resamples` times, evaluates the statistic on each
// resample, and takes the (1−level)/2 and (1+level)/2 quantiles of
// the resulting distribution.
//
// Benchmark scores are means of noisy measurements; reporting a score
// without an interval invites over-reading a 1% difference. The
// statistic receives a scratch resample slice it must not retain.
func BootstrapCI(xs []float64, level float64, resamples int, seed uint64,
	statistic func([]float64) (float64, error)) (Interval, error) {
	if len(xs) == 0 {
		return Interval{}, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return Interval{}, fmt.Errorf("%w: confidence level %v", ErrDomain, level)
	}
	if resamples < 10 {
		return Interval{}, fmt.Errorf("%w: need at least 10 resamples, got %d", ErrDomain, resamples)
	}
	point, err := statistic(xs)
	if err != nil {
		return Interval{}, fmt.Errorf("stat: statistic on original sample: %w", err)
	}
	r := rng.New(seed)
	scratch := make([]float64, len(xs))
	values := make([]float64, 0, resamples)
	for b := 0; b < resamples; b++ {
		for i := range scratch {
			scratch[i] = xs[r.Intn(len(xs))]
		}
		v, err := statistic(scratch)
		if err != nil {
			// A resample can violate the statistic's domain (e.g.
			// all-equal values breaking a correlation). Skip it; the
			// quantiles use the valid draws.
			continue
		}
		values = append(values, v)
	}
	if len(values) < resamples/2 {
		return Interval{}, fmt.Errorf("stat: only %d of %d bootstrap resamples were valid", len(values), resamples)
	}
	alpha := (1 - level) / 2
	lo, err := Quantile(values, alpha)
	if err != nil {
		return Interval{}, err
	}
	hi, err := Quantile(values, 1-alpha)
	if err != nil {
		return Interval{}, err
	}
	return Interval{Lo: lo, Hi: hi, Point: point, Level: level}, nil
}

// BootstrapMeanCI is BootstrapCI specialized to the geometric mean —
// the interval to attach to a SPEC-style suite score.
func BootstrapMeanCI(xs []float64, level float64, resamples int, seed uint64) (Interval, error) {
	return BootstrapCI(xs, level, resamples, seed, GeometricMean)
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }
