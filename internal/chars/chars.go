// Package chars implements the workload-characterization layer:
// turning raw measurements (operating-system counters or Java
// method-utilization bits) into the standardized characteristic
// vectors the SOM consumes.
//
// It reproduces the paper's two preprocessing recipes:
//
//   - SAR counters (Section IV-C, first approach): average the
//     per-run samples into one value per counter, discard counters
//     that do not vary across workloads, and z-standardize each
//     counter.
//   - Java method utilization (second approach): one bit per known
//     method, discard methods used by exactly one workload or by all
//     workloads (both extremes "tend to bias the SOM learning
//     process"), and z-standardize the remaining bit columns.
package chars

import (
	"errors"
	"fmt"

	"hmeans/internal/stat"
	"hmeans/internal/vecmath"
)

// Table is a workloads × features characterization matrix with named
// axes.
type Table struct {
	// Workloads names each row.
	Workloads []string
	// Features names each column.
	Features []string
	// Rows holds one characteristic vector per workload.
	Rows [][]float64
}

// NewTable validates and wraps a characterization matrix. The data is
// not copied.
func NewTable(workloads, features []string, rows [][]float64) (*Table, error) {
	if len(workloads) == 0 {
		return nil, errors.New("chars: no workloads")
	}
	if len(rows) != len(workloads) {
		return nil, fmt.Errorf("chars: %d rows for %d workloads", len(rows), len(workloads))
	}
	for i, r := range rows {
		if len(r) != len(features) {
			return nil, fmt.Errorf("chars: row %d has %d values for %d features", i, len(r), len(features))
		}
	}
	return &Table{Workloads: workloads, Features: features, Rows: rows}, nil
}

// FromBits builds a Table from a boolean usage matrix (1.0 for used,
// 0.0 for unused), e.g. hprof method coverage.
func FromBits(workloads, features []string, bits [][]bool) (*Table, error) {
	rows := make([][]float64, len(bits))
	for i, b := range bits {
		rows[i] = make([]float64, len(b))
		for j, set := range b {
			if set {
				rows[i][j] = 1
			}
		}
	}
	return NewTable(workloads, features, rows)
}

// Clone returns a deep copy of the table.
func (t *Table) Clone() *Table {
	rows := make([][]float64, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = append([]float64(nil), r...)
	}
	return &Table{
		Workloads: append([]string(nil), t.Workloads...),
		Features:  append([]string(nil), t.Features...),
		Rows:      rows,
	}
}

// Vectors returns the rows as vecmath vectors (views, not copies).
func (t *Table) Vectors() []vecmath.Vector {
	out := make([]vecmath.Vector, len(t.Rows))
	for i, r := range t.Rows {
		out[i] = vecmath.Vector(r)
	}
	return out
}

// Report describes what preprocessing removed.
type Report struct {
	// DroppedConstant lists features discarded because they did not
	// vary across workloads.
	DroppedConstant []string
	// DroppedSingleUser lists bit features used by exactly one
	// workload.
	DroppedSingleUser []string
	// DroppedUniversal lists bit features used by every workload.
	DroppedUniversal []string
	// Kept is the number of surviving features.
	Kept int
}

// PreprocessCounters applies the paper's counter recipe to a copy of
// t: drop constant features, then z-standardize each surviving
// column. The input table is unchanged.
func PreprocessCounters(t *Table) (*Table, Report) {
	work := t.Clone()
	var rep Report
	varied := stat.StandardizeColumns(work.Rows)
	keep := make([]bool, len(varied))
	for j, v := range varied {
		keep[j] = v
		if !v {
			rep.DroppedConstant = append(rep.DroppedConstant, work.Features[j])
		}
	}
	work.Rows = stat.DropColumns(work.Rows, keep)
	work.Features = filterNames(work.Features, keep)
	rep.Kept = len(work.Features)
	return work, rep
}

// PreprocessBits applies the paper's method-utilization recipe to a
// copy of t: drop bit features used by exactly one workload or by all
// workloads, then z-standardize the remaining columns. Values are
// treated as set when non-zero. The input table is unchanged.
func PreprocessBits(t *Table) (*Table, Report) {
	work := t.Clone()
	var rep Report
	n := len(work.Rows)
	cols := len(work.Features)
	keep := make([]bool, cols)
	for j := 0; j < cols; j++ {
		users := 0
		for i := 0; i < n; i++ {
			if work.Rows[i][j] != 0 {
				users++
			}
		}
		switch {
		case users <= 1:
			rep.DroppedSingleUser = append(rep.DroppedSingleUser, work.Features[j])
		case users == n:
			rep.DroppedUniversal = append(rep.DroppedUniversal, work.Features[j])
		default:
			keep[j] = true
		}
	}
	work.Rows = stat.DropColumns(work.Rows, keep)
	work.Features = filterNames(work.Features, keep)
	varied := stat.StandardizeColumns(work.Rows)
	// A kept bit column always varies (some users, some non-users),
	// but guard against degenerate inputs anyway.
	keep2 := make([]bool, len(varied))
	anyDropped := false
	for j, v := range varied {
		keep2[j] = v
		if !v {
			anyDropped = true
			rep.DroppedConstant = append(rep.DroppedConstant, work.Features[j])
		}
	}
	if anyDropped {
		work.Rows = stat.DropColumns(work.Rows, keep2)
		work.Features = filterNames(work.Features, keep2)
	}
	rep.Kept = len(work.Features)
	return work, rep
}

func filterNames(names []string, keep []bool) []string {
	out := make([]string, 0, len(names))
	for j, k := range keep {
		if k {
			out = append(out, names[j])
		}
	}
	return out
}
