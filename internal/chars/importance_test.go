package chars

import (
	"math"
	"testing"
)

func TestFeatureImportanceRanks(t *testing.T) {
	// f0 separates the clusters perfectly, f1 is pure noise across
	// them, f2 is constant.
	tab := mustTable(t,
		[]string{"a", "b", "c", "d"},
		[]string{"separator", "noise", "const"},
		[][]float64{
			{10, 5, 7},
			{10, -5, 7},
			{-10, 5, 7},
			{-10, -5, 7},
		})
	labels := []int{0, 0, 1, 1}
	scores, err := FeatureImportance(tab, labels)
	if err != nil {
		t.Fatal(err)
	}
	if scores[0].Feature != "separator" || math.Abs(scores[0].EtaSquared-1) > 1e-12 {
		t.Fatalf("top feature = %+v, want separator with eta2=1", scores[0])
	}
	for _, s := range scores[1:] {
		if s.Feature == "noise" && s.EtaSquared > 1e-12 {
			t.Fatalf("noise feature scored %v", s.EtaSquared)
		}
		if s.Feature == "const" && s.EtaSquared != 0 {
			t.Fatalf("constant feature scored %v", s.EtaSquared)
		}
	}
}

func TestFeatureImportanceBounds(t *testing.T) {
	tab := mustTable(t,
		[]string{"a", "b", "c"},
		[]string{"f0", "f1"},
		[][]float64{{1, 9}, {2, 3}, {5, 4}})
	scores, err := FeatureImportance(tab, []int{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range scores {
		if s.EtaSquared < 0 || s.EtaSquared > 1 {
			t.Fatalf("eta2 %v out of [0,1]", s.EtaSquared)
		}
	}
	// Sorted descending.
	for i := 1; i < len(scores); i++ {
		if scores[i].EtaSquared > scores[i-1].EtaSquared {
			t.Fatal("scores not sorted")
		}
	}
}

func TestFeatureImportanceErrors(t *testing.T) {
	tab := mustTable(t, []string{"a"}, []string{"f"}, [][]float64{{1}})
	if _, err := FeatureImportance(tab, []int{0, 1}); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, err := FeatureImportance(tab, []int{-1}); err == nil {
		t.Error("negative label accepted")
	}
}

func TestTopFeatures(t *testing.T) {
	tab := mustTable(t,
		[]string{"a", "b"},
		[]string{"f0", "f1", "f2"},
		[][]float64{{1, 2, 3}, {9, 2, 4}})
	top, err := TopFeatures(tab, []int{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("top = %d features", len(top))
	}
	all, err := TopFeatures(tab, []int{0, 1}, 99)
	if err != nil || len(all) != 3 {
		t.Fatalf("clamping failed: %d, %v", len(all), err)
	}
	none, err := TopFeatures(tab, []int{0, 1}, -1)
	if err != nil || len(none) != 0 {
		t.Fatalf("negative n: %d, %v", len(none), err)
	}
}
