package chars

import (
	"errors"
	"fmt"
	"sort"
)

// FeatureScore ranks one feature's power to discriminate a
// clustering.
type FeatureScore struct {
	// Feature is the feature's name.
	Feature string
	// EtaSquared is the fraction of the feature's variance explained
	// by the cluster labels (between-cluster sum of squares over
	// total): 1 means the feature separates the clusters perfectly,
	// 0 means it carries no cluster signal.
	EtaSquared float64
}

// FeatureImportance scores every feature of the table against a
// cluster labelling and returns the scores sorted by descending
// η² — the interpretability companion to the pipeline: *which
// counters* make the SciMark2 kernels a cluster? labels must assign
// each workload a cluster id; constant features score 0.
func FeatureImportance(t *Table, labels []int) ([]FeatureScore, error) {
	if len(labels) != len(t.Rows) {
		return nil, fmt.Errorf("chars: %d labels for %d workloads", len(labels), len(t.Rows))
	}
	if len(t.Rows) == 0 {
		return nil, errors.New("chars: empty table")
	}
	k := 0
	for _, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("chars: negative label %d", l)
		}
		if l >= k {
			k = l + 1
		}
	}
	counts := make([]float64, k)
	for _, l := range labels {
		counts[l]++
	}
	out := make([]FeatureScore, len(t.Features))
	groupSum := make([]float64, k)
	for j, name := range t.Features {
		var total, mean float64
		for i := range t.Rows {
			mean += t.Rows[i][j]
		}
		mean /= float64(len(t.Rows))
		for g := range groupSum {
			groupSum[g] = 0
		}
		for i := range t.Rows {
			v := t.Rows[i][j]
			d := v - mean
			total += d * d
			groupSum[labels[i]] += v
		}
		between := 0.0
		for g, sum := range groupSum {
			if counts[g] == 0 {
				continue
			}
			gm := sum / counts[g]
			between += counts[g] * (gm - mean) * (gm - mean)
		}
		score := 0.0
		if total > 0 {
			score = between / total
			if score > 1 {
				score = 1 // guard rounding
			}
		}
		out[j] = FeatureScore{Feature: name, EtaSquared: score}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].EtaSquared > out[b].EtaSquared })
	return out, nil
}

// TopFeatures returns the n highest-η² features (fewer if the table
// is narrower).
func TopFeatures(t *Table, labels []int, n int) ([]FeatureScore, error) {
	scores, err := FeatureImportance(t, labels)
	if err != nil {
		return nil, err
	}
	if n > len(scores) {
		n = len(scores)
	}
	if n < 0 {
		n = 0
	}
	return scores[:n], nil
}
