package chars

import (
	"errors"
	"fmt"

	"hmeans/internal/stat"
)

// AverageSamples collapses repeated measurements into one
// characteristic value per feature, the paper's treatment of the 15
// SAR samples collected per counter per run ("the average value of
// those samples was used as a representative counter value").
//
// samples[run][feature] holds one sampled vector per run; all runs
// must have the same width.
func AverageSamples(samples [][]float64) ([]float64, error) {
	if len(samples) == 0 {
		return nil, errors.New("chars: no samples")
	}
	width := len(samples[0])
	out := make([]float64, width)
	for i, s := range samples {
		if len(s) != width {
			return nil, fmt.Errorf("chars: sample %d has width %d, want %d", i, len(s), width)
		}
		for j, v := range s {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(samples))
	}
	return out, nil
}

// FeatureSpread reports, per feature, the population coefficient of
// dispersion max-min across workloads — a quick way to inspect which
// counters actually distinguish the suite.
func (t *Table) FeatureSpread() []float64 {
	if len(t.Rows) == 0 {
		return nil
	}
	out := make([]float64, len(t.Features))
	col := make([]float64, len(t.Rows))
	for j := range t.Features {
		for i := range t.Rows {
			col[i] = t.Rows[i][j]
		}
		rg, err := stat.Range(col)
		if err == nil {
			out[j] = rg
		}
	}
	return out
}
