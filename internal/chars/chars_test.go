package chars

import (
	"math"
	"testing"
)

func mustTable(t *testing.T, workloads, features []string, rows [][]float64) *Table {
	t.Helper()
	tab, err := NewTable(workloads, features, rows)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(nil, nil, nil); err == nil {
		t.Error("empty workloads accepted")
	}
	if _, err := NewTable([]string{"a"}, []string{"f"}, nil); err == nil {
		t.Error("row-count mismatch accepted")
	}
	if _, err := NewTable([]string{"a"}, []string{"f", "g"}, [][]float64{{1}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestPreprocessCountersDropsConstantAndStandardizes(t *testing.T) {
	tab := mustTable(t,
		[]string{"w1", "w2", "w3"},
		[]string{"cpu", "const", "faults"},
		[][]float64{
			{1, 5, 100},
			{2, 5, 300},
			{3, 5, 200},
		})
	out, rep := PreprocessCounters(tab)
	if len(rep.DroppedConstant) != 1 || rep.DroppedConstant[0] != "const" {
		t.Fatalf("DroppedConstant = %v", rep.DroppedConstant)
	}
	if rep.Kept != 2 || len(out.Features) != 2 {
		t.Fatalf("Kept = %d, features = %v", rep.Kept, out.Features)
	}
	// Surviving columns are z-scores: mean 0, sd 1.
	for j := 0; j < 2; j++ {
		sum, sumSq := 0.0, 0.0
		for i := range out.Rows {
			sum += out.Rows[i][j]
			sumSq += out.Rows[i][j] * out.Rows[i][j]
		}
		if math.Abs(sum) > 1e-9 || math.Abs(sumSq/3-1) > 1e-9 {
			t.Fatalf("column %d not standardized: sum=%v sumSq=%v", j, sum, sumSq)
		}
	}
	// Original untouched.
	if tab.Rows[0][0] != 1 || len(tab.Features) != 3 {
		t.Fatal("PreprocessCounters mutated its input")
	}
}

func TestPreprocessBitsFilters(t *testing.T) {
	tab, err := FromBits(
		[]string{"w1", "w2", "w3"},
		[]string{"onlyW1", "everyone", "shared12", "shared23", "nobody"},
		[][]bool{
			{true, true, true, false, false},
			{false, true, true, true, false},
			{false, true, false, true, false},
		})
	if err != nil {
		t.Fatal(err)
	}
	out, rep := PreprocessBits(tab)
	if len(rep.DroppedSingleUser) != 2 { // onlyW1 (1 user) and nobody (0 users)
		t.Fatalf("DroppedSingleUser = %v", rep.DroppedSingleUser)
	}
	if len(rep.DroppedUniversal) != 1 || rep.DroppedUniversal[0] != "everyone" {
		t.Fatalf("DroppedUniversal = %v", rep.DroppedUniversal)
	}
	if rep.Kept != 2 {
		t.Fatalf("Kept = %d, want 2 (shared12, shared23)", rep.Kept)
	}
	wantFeatures := map[string]bool{"shared12": true, "shared23": true}
	for _, f := range out.Features {
		if !wantFeatures[f] {
			t.Fatalf("unexpected surviving feature %q", f)
		}
	}
}

func TestPreprocessBitsStandardizes(t *testing.T) {
	tab, _ := FromBits(
		[]string{"a", "b", "c", "d"},
		[]string{"f"},
		[][]bool{{true}, {true}, {false}, {false}})
	out, rep := PreprocessBits(tab)
	if rep.Kept != 1 {
		t.Fatalf("Kept = %d", rep.Kept)
	}
	// z-scores of {1,1,0,0}: ±1.
	for i, want := range []float64{1, 1, -1, -1} {
		if math.Abs(out.Rows[i][0]-want) > 1e-9 {
			t.Fatalf("standardized bits = %v", out.Rows)
		}
	}
}

func TestVectorsShareStorage(t *testing.T) {
	tab := mustTable(t, []string{"w"}, []string{"f"}, [][]float64{{7}})
	v := tab.Vectors()
	v[0][0] = 9
	if tab.Rows[0][0] != 9 {
		t.Fatal("Vectors should view the table rows")
	}
}

func TestCloneIndependence(t *testing.T) {
	tab := mustTable(t, []string{"w"}, []string{"f"}, [][]float64{{7}})
	c := tab.Clone()
	c.Rows[0][0] = 1
	c.Features[0] = "x"
	if tab.Rows[0][0] != 7 || tab.Features[0] != "f" {
		t.Fatal("Clone aliases original")
	}
}

func TestAverageSamples(t *testing.T) {
	got, err := AverageSamples([][]float64{{1, 10}, {3, 20}, {5, 30}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 20 {
		t.Fatalf("AverageSamples = %v, want [3 20]", got)
	}
	if _, err := AverageSamples(nil); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := AverageSamples([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged samples accepted")
	}
}

func TestFeatureSpread(t *testing.T) {
	tab := mustTable(t, []string{"a", "b"}, []string{"f", "g"}, [][]float64{{1, 5}, {4, 5}})
	spread := tab.FeatureSpread()
	if spread[0] != 3 || spread[1] != 0 {
		t.Fatalf("FeatureSpread = %v, want [3 0]", spread)
	}
}

func TestPreprocessBitsAllDegenerate(t *testing.T) {
	tab, _ := FromBits([]string{"a", "b"}, []string{"all", "none"},
		[][]bool{{true, false}, {true, false}})
	out, rep := PreprocessBits(tab)
	if rep.Kept != 0 || len(out.Features) != 0 {
		t.Fatalf("degenerate table kept %d features", rep.Kept)
	}
	for _, r := range out.Rows {
		if len(r) != 0 {
			t.Fatal("rows not emptied")
		}
	}
}
