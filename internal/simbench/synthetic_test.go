package simbench

import (
	"math"
	"testing"
)

// TestSyntheticDeterministic pins the generator as a pure function of
// its spec: two materializations are bit-identical, a different seed
// is not, and a golden fingerprint guards against silent changes to
// the stream-consumption order (which would invalidate every recorded
// benchmark and campaign result naming points by seed).
func TestSyntheticDeterministic(t *testing.T) {
	spec := SyntheticSpec{N: 500, Dims: 3, Clusters: 8, Seed: 42}
	a, b := spec.Points(), spec.Points()
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("got %d and %d points, want 500", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("point %d dim %d: %v != %v across identical specs", i, j, a[i][j], b[i][j])
			}
		}
	}
	spec.Seed = 43
	c := spec.Points()
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical clouds")
	}
	// Golden fingerprint: the coordinate sum of the seed-42 cloud.
	// Recompute only for a deliberate, documented generator change.
	sum := 0.0
	for _, p := range a {
		for _, x := range p {
			sum += x
		}
	}
	const golden = 9143.570493688147
	if math.Abs(sum-golden) > 1e-9 {
		t.Fatalf("seed-42 coordinate sum %.12f, golden %.12f — generator stream changed", sum, golden)
	}
}

// TestSyntheticShape checks the documented structure: round-robin
// assignment puts point i within a few spreads of center i mod k, and
// the zero-value fields take their documented defaults.
func TestSyntheticShape(t *testing.T) {
	spec := SyntheticSpec{N: 400, Dims: 2, Clusters: 5, Seed: 9, Spread: 0.05}
	pts := spec.Points()
	// Reconstruct each blob's mean; every member must sit within
	// 8 spreads of it (a >12σ outlier per coordinate would be
	// astronomically unlikely).
	k := spec.Clusters
	means := make([][]float64, k)
	counts := make([]int, k)
	for i, p := range pts {
		c := i % k
		if means[c] == nil {
			means[c] = make([]float64, len(p))
		}
		for j, x := range p {
			means[c][j] += x
		}
		counts[c]++
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	for i, p := range pts {
		c := i % k
		for j, x := range p {
			if d := math.Abs(x - means[c][j]); d > 8*spec.Spread {
				t.Fatalf("point %d dim %d is %.3f from its blob mean (spread %.3f)", i, j, d, spec.Spread)
			}
		}
	}

	defaults := SyntheticSpec{N: 10, Seed: 1}.Points()
	if len(defaults) != 10 || len(defaults[0]) != 3 {
		t.Fatalf("defaulted spec produced %d points of dim %d, want 10 of dim 3", len(defaults), len(defaults[0]))
	}
	one := SyntheticSpec{}.Points()
	if len(one) != 1 {
		t.Fatalf("zero spec produced %d points, want 1", len(one))
	}
}
