package simbench

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hmeans/internal/obs"
	"hmeans/internal/rng"
	"hmeans/internal/stat"
)

// ErrMeasurementFailed marks a run campaign that exhausted its retry
// budget without producing a usable time.
var ErrMeasurementFailed = errors.New("simbench: measurement failed")

// MeasureError says which workload/machine pair exhausted its
// attempts. It unwraps to ErrMeasurementFailed.
type MeasureError struct {
	Workload string
	Machine  string
	// Attempts is how many times the run was tried.
	Attempts int
	// Last is the final (unusable) value observed.
	Last float64
}

func (e *MeasureError) Error() string {
	return fmt.Sprintf("simbench: measuring %s on %s: %d attempts exhausted (last value %v)",
		e.Workload, e.Machine, e.Attempts, e.Last)
}

func (e *MeasureError) Unwrap() error { return ErrMeasurementFailed }

// Runner produces one measured execution time in seconds. The
// default is the simulator's Run; fault-injection tests substitute
// flaky runners here.
type Runner func(w *Workload, m Machine, r *rng.Source) float64

// RetryPolicy bounds how a measurement campaign reacts to failed
// runs (non-finite or non-positive times) and to outliers. The zero
// value is exactly the non-retrying behavior of MeasureTime.
type RetryPolicy struct {
	// MaxAttempts is the per-run attempt budget; values <= 1 mean a
	// single attempt (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it. Zero disables sleeping entirely — the
	// configuration tests use, keeping them instant and rand-free.
	BaseDelay time.Duration
	// OutlierZ re-measures (once) any run further than OutlierZ
	// standard deviations from the campaign mean. Zero disables the
	// pass.
	OutlierZ float64
	// Seed feeds the deterministic jitter stream; campaigns with the
	// same seed back off identically.
	Seed uint64
	// Sleep replaces time.Sleep in tests. Nil means time.Sleep.
	Sleep func(time.Duration)
	// Runner replaces the simulator's Run. Nil means Run.
	Runner Runner
}

func (p RetryPolicy) runner() Runner {
	if p.Runner != nil {
		return p.Runner
	}
	return func(w *Workload, m Machine, r *rng.Source) float64 {
		return Run(w, m, r).Seconds
	}
}

// Backoff returns the pause before retry `attempt` (1-based): an
// exponential series on BaseDelay with ±25% jitter drawn from the
// policy's own seeded stream, so the schedule depends only on
// (BaseDelay, Seed) — never on wall-clock or the global rng.
func (p RetryPolicy) Backoff(attempt int, jitter *rng.Source) time.Duration {
	if p.BaseDelay <= 0 || attempt < 1 {
		return 0
	}
	d := float64(p.BaseDelay) * float64(uint64(1)<<uint(attempt-1))
	return time.Duration(d * (0.75 + 0.5*jitter.Float64()))
}

// usableTime reports whether one run produced a time a campaign can
// average: finite and positive.
func usableTime(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// MeasureTimeRetry is MeasureTime with bounded, deterministic retry:
// runs that come back non-finite or non-positive are retried up to
// the policy's budget with exponential backoff, and (optionally)
// outliers beyond OutlierZ standard deviations are re-measured once.
// With the zero policy it is bit-identical to MeasureTime.
func MeasureTimeRetry(w *Workload, m Machine, runs int, r *rng.Source, p RetryPolicy) (float64, error) {
	if runs <= 0 {
		return 0, errors.New("simbench: runs must be positive")
	}
	maxAttempts := p.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	run := p.runner()
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	jitter := rng.New(p.Seed)
	o := obs.Default()

	measure := func() (float64, error) {
		var v float64
		for a := 1; a <= maxAttempts; a++ {
			v = run(w, m, r)
			if usableTime(v) {
				return v, nil
			}
			if o.Active() {
				o.Metrics().Counter("simbench.retries").Add(1)
			}
			if a < maxAttempts {
				if d := p.Backoff(a, jitter); d > 0 {
					sleep(d)
				}
			}
		}
		return 0, &MeasureError{Workload: w.Name, Machine: m.Name, Attempts: maxAttempts, Last: v}
	}

	times := make([]float64, runs)
	for i := range times {
		v, err := measure()
		if err != nil {
			return 0, err
		}
		times[i] = v
	}

	// Outlier pass: anything beyond OutlierZ sample standard
	// deviations from the mean gets one re-measurement, in index
	// order so the extra draws are deterministic.
	if p.OutlierZ > 0 && runs >= 3 {
		mean, sd := meanStddev(times)
		if sd > 0 {
			for i, t := range times {
				if math.Abs(t-mean) > p.OutlierZ*sd {
					v, err := measure()
					if err != nil {
						return 0, err
					}
					times[i] = v
					if o.Active() {
						o.Metrics().Counter("simbench.remeasured").Add(1)
					}
				}
			}
		}
	}
	return stat.ArithmeticMean(times)
}

// meanStddev returns the arithmetic mean and the sample standard
// deviation of xs (len >= 2 assumed by the caller).
func meanStddev(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// MeasuredSpeedupsRetry is MeasuredSpeedups with every per-machine
// campaign run under the retry policy. A workload whose retry budget
// is exhausted fails the whole campaign with a *MeasureError.
func MeasuredSpeedupsRetry(ws []Workload, target, ref Machine, runs int, seed uint64, p RetryPolicy) ([]float64, error) {
	if len(ws) == 0 {
		return nil, errors.New("simbench: no workloads")
	}
	o := obs.Default()
	sp := o.StartSpan("simbench.campaign", obs.KV("workloads", len(ws)),
		obs.KV("runs", runs), obs.KV("target", target.Name), obs.KV("reference", ref.Name),
		obs.KV("retry", p.MaxAttempts))
	defer sp.End()
	recordCampaign(o, len(ws), runs)
	r := rng.New(seed)
	out := make([]float64, len(ws))
	for i := range ws {
		tTarget, err := MeasureTimeRetry(&ws[i], target, runs, r, p)
		if err != nil {
			return nil, err
		}
		tRef, err := MeasureTimeRetry(&ws[i], ref, runs, r, p)
		if err != nil {
			return nil, err
		}
		out[i] = tRef / tTarget
	}
	return out, nil
}
