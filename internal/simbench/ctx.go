package simbench

import (
	"context"
	"errors"
	"fmt"

	"hmeans/internal/obs"
	"hmeans/internal/par"
	"hmeans/internal/rng"
)

// MeasuredSpeedupsCtx is MeasuredSpeedups with cooperative
// cancellation: the context is checked between per-workload
// campaigns, so a cancel or deadline stops the sweep at the next
// workload boundary. A context that never fires is bit-identical to
// MeasuredSpeedups.
func MeasuredSpeedupsCtx(ctx context.Context, ws []Workload, target, ref Machine, runs int, seed uint64) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ws) == 0 {
		return nil, errors.New("simbench: no workloads")
	}
	o := obs.Default()
	sp := o.StartSpan("simbench.campaign", obs.KV("workloads", len(ws)),
		obs.KV("runs", runs), obs.KV("target", target.Name), obs.KV("reference", ref.Name))
	defer sp.End()
	recordCampaign(o, len(ws), runs)
	r := rng.New(seed)
	out := make([]float64, len(ws))
	for i := range ws {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("simbench: campaign cancelled at workload %d of %d: %w", i, len(ws), err)
		}
		tTarget, err := MeasureTime(&ws[i], target, runs, r)
		if err != nil {
			return nil, fmt.Errorf("simbench: measuring %s on %s: %w", ws[i].Name, target.Name, err)
		}
		tRef, err := MeasureTime(&ws[i], ref, runs, r)
		if err != nil {
			return nil, fmt.Errorf("simbench: measuring %s on %s: %w", ws[i].Name, ref.Name, err)
		}
		out[i] = tRef / tTarget
		if o.Detail() {
			sp.Event("simbench.workload", obs.KV("workload", ws[i].Name), obs.KV("speedup", out[i]))
		}
	}
	return out, nil
}

// MeasuredSpeedupsParallelCtx is MeasuredSpeedupsParallel with
// cooperative cancellation between workload shards. Per-workload
// sub-stream seeding is unchanged, so a never-firing context is
// bit-identical to MeasuredSpeedupsParallel for any worker count.
func MeasuredSpeedupsParallelCtx(ctx context.Context, ws []Workload, target, ref Machine, runs int, seed uint64, workers int) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(ws) == 0 {
		return nil, errors.New("simbench: no workloads")
	}
	o := obs.Default()
	sp := o.StartSpan("simbench.campaign", obs.KV("workloads", len(ws)),
		obs.KV("runs", runs), obs.KV("target", target.Name), obs.KV("reference", ref.Name),
		obs.KV("workers", par.Resolve(workers)))
	defer sp.End()
	recordCampaign(o, len(ws), runs)
	base := rng.New(seed)
	seeds := make([]uint64, len(ws))
	for i := range seeds {
		seeds[i] = base.Uint64()
	}
	out := make([]float64, len(ws))
	errs := make([]error, len(ws))
	err := par.ForCtx(ctx, workers, len(ws), func(start, end int) {
		for i := start; i < end; i++ {
			r := rng.New(seeds[i])
			tTarget, err := MeasureTime(&ws[i], target, runs, r)
			if err != nil {
				errs[i] = fmt.Errorf("simbench: measuring %s on %s: %w", ws[i].Name, target.Name, err)
				continue
			}
			tRef, err := MeasureTime(&ws[i], ref, runs, r)
			if err != nil {
				errs[i] = fmt.Errorf("simbench: measuring %s on %s: %w", ws[i].Name, ref.Name, err)
				continue
			}
			out[i] = tRef / tTarget
		}
	})
	if err != nil {
		return nil, fmt.Errorf("simbench: campaign cancelled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
