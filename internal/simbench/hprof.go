package simbench

import (
	"fmt"
	"hash/fnv"
	"sort"

	"hmeans/internal/chars"
)

// methodDomain describes one library/package domain in the synthetic
// Java method universe.
type methodDomain struct {
	// prefix becomes the package part of generated method names.
	prefix string
	// count is how many methods the domain contains.
	count int
	// coveragePct is the probability (in percent) that a given user
	// of the domain calls a given method.
	coveragePct int
}

// methodDomains is the synthetic method universe. Domain sizes are
// loosely modelled on the real libraries (java.util is bigger than
// a SciMark kernel). The scimark.* domains are the self-contained
// math library the paper calls out: SciMark2 workloads "heavily rely
// on self contained math libraries", which is why they coagulate
// into a single SOM cell under method-utilization characterization.
var methodDomains = map[string]methodDomain{
	"java.lang":          {prefix: "java.lang", count: 60, coveragePct: 80},
	"java.util":          {prefix: "java.util", count: 45, coveragePct: 75},
	"java.io":            {prefix: "java.io", count: 30, coveragePct: 70},
	"java.net":           {prefix: "java.net", count: 16, coveragePct: 75},
	"jvm98.harness":      {prefix: "spec.harness", count: 14, coveragePct: 90},
	"dacapo.harness":     {prefix: "dacapo.harness", count: 14, coveragePct: 90},
	"scimark.kernel":     {prefix: "jnt.scimark2.kernel", count: 28, coveragePct: 95},
	"scimark.fft":        {prefix: "jnt.scimark2.FFT", count: 8, coveragePct: 100},
	"scimark.lu":         {prefix: "jnt.scimark2.LU", count: 8, coveragePct: 100},
	"scimark.montecarlo": {prefix: "jnt.scimark2.MonteCarlo", count: 6, coveragePct: 100},
	"scimark.sor":        {prefix: "jnt.scimark2.SOR", count: 6, coveragePct: 100},
	"scimark.sparse":     {prefix: "jnt.scimark2.SparseCompRow", count: 8, coveragePct: 100},
	"compress":           {prefix: "spec.benchmarks._201_compress", count: 16, coveragePct: 95},
	"jess":               {prefix: "spec.benchmarks._202_jess.jess", count: 32, coveragePct: 90},
	"javac":              {prefix: "spec.benchmarks._213_javac", count: 42, coveragePct: 90},
	"mpegaudio":          {prefix: "spec.benchmarks._222_mpegaudio", count: 22, coveragePct: 95},
	"mtrt":               {prefix: "spec.benchmarks._205_raytrace", count: 26, coveragePct: 90},
	"jdbc.sql":           {prefix: "org.hsqldb", count: 36, coveragePct: 85},
	"awt.graphics":       {prefix: "org.jfree.chart", count: 40, coveragePct: 85},
	"pdf":                {prefix: "com.lowagie.text.pdf", count: 16, coveragePct: 85},
	"xml":                {prefix: "org.apache.xalan", count: 36, coveragePct: 85},
}

// methodVerbs lends the generated names some realism.
var methodVerbs = []string{
	"init", "get", "set", "compute", "update", "read", "write", "parse",
	"next", "apply", "resolve", "visit", "transform", "render", "hash",
	"copy", "index", "scan", "emit", "flush",
}

// domainMethodNames returns the fully qualified method names of a
// domain, deterministically.
func domainMethodNames(key string) []string {
	d, ok := methodDomains[key]
	if !ok {
		return nil
	}
	out := make([]string, d.count)
	for i := 0; i < d.count; i++ {
		out[i] = fmt.Sprintf("%s.C%d.%s%d", d.prefix, i/8, methodVerbs[i%len(methodVerbs)], i)
	}
	return out
}

// coverageGroup returns the identity under which a workload draws its
// method-coverage decisions. The five SciMark2 kernels share one
// group: they are builds of the same self-contained numeric harness,
// so they call identical subsets of every shared library. All other
// workloads decide independently.
func coverageGroup(w *Workload) string {
	if w.Suite == SciMark2 {
		return "scimark-shared"
	}
	return w.Name
}

// usesMethod decides deterministically whether the workload's
// coverage group calls the method.
func usesMethod(group, domainKey, method string) bool {
	d := methodDomains[domainKey]
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%s", group, domainKey, method)
	return int(h.Sum64()%100) < d.coveragePct
}

// MethodProfile returns the sorted list of method names the workload
// calls, the synthetic analogue of an hprof coverage dump.
func MethodProfile(w *Workload) []string {
	group := coverageGroup(w)
	var out []string
	for _, dk := range w.MethodDomains {
		for _, m := range domainMethodNames(dk) {
			if usesMethod(group, dk, m) {
				out = append(out, m)
			}
		}
	}
	sort.Strings(out)
	return out
}

// MethodUniverse returns the sorted union of all method names that
// appear in any of the given workloads' profiles — "a list of the
// complete method names that appear on the hprof result".
func MethodUniverse(ws []Workload) []string {
	seen := map[string]bool{}
	for i := range ws {
		for _, m := range MethodProfile(&ws[i]) {
			seen[m] = true
		}
	}
	out := make([]string, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// HprofTable builds the paper's second characterization: a bit vector
// per workload over the union of observed methods (1 = the workload
// calls the method). The degenerate-bit filtering and standardization
// are applied later by chars.PreprocessBits.
func HprofTable(ws []Workload) (*chars.Table, error) {
	universe := MethodUniverse(ws)
	index := make(map[string]int, len(universe))
	for i, m := range universe {
		index[m] = i
	}
	bits := make([][]bool, len(ws))
	for i := range ws {
		row := make([]bool, len(universe))
		for _, m := range MethodProfile(&ws[i]) {
			row[index[m]] = true
		}
		bits[i] = row
	}
	return chars.FromBits(WorkloadNames(ws), universe, bits)
}
