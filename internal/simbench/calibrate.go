package simbench

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// TableIIITargets returns the per-workload speedups the paper
// measured on machines A and B relative to the reference machine
// (Table III). These are the calibration targets for the execution
// model.
func TableIIITargets() map[string]map[string]float64 {
	return map[string]map[string]float64{
		"jvm98.201.compress":  {"A": 4.75, "B": 3.99},
		"jvm98.202.jess":      {"A": 5.32, "B": 3.65},
		"jvm98.213.javac":     {"A": 3.97, "B": 2.37},
		"jvm98.222.mpegaudio": {"A": 6.50, "B": 6.11},
		"jvm98.227.mtrt":      {"A": 2.57, "B": 1.41},
		"SciMark2.FFT":        {"A": 1.09, "B": 1.07},
		"SciMark2.LU":         {"A": 1.19, "B": 0.90},
		"SciMark2.MonteCarlo": {"A": 0.75, "B": 0.98},
		"SciMark2.SOR":        {"A": 1.22, "B": 1.31},
		"SciMark2.Sparse":     {"A": 0.71, "B": 0.90},
		"DaCapo.hsqldb":       {"A": 1.16, "B": 2.31},
		"DaCapo.chart":        {"A": 5.12, "B": 2.77},
		"DaCapo.xalan":        {"A": 1.88, "B": 2.62},
	}
}

// CalibrationResult reports how well the demand fit matched the
// targets before residuals were applied.
type CalibrationResult struct {
	// Workloads are calibrated copies of the input workloads: demand
	// parameters refined by coordinate descent, and per-machine
	// residual factors set so the modelled speedups equal the
	// targets exactly.
	Workloads []Workload
	// ModelRelErr[workload][machine] is |model/target − 1| after the
	// demand fit but before residuals — the honest measure of how
	// much the analytic model explains on its own.
	ModelRelErr map[string]map[string]float64
	// MeanRelErr averages ModelRelErr over all (workload, machine)
	// pairs.
	MeanRelErr float64
}

// paramSpec describes one tunable demand parameter for the fitter.
type paramSpec struct {
	name    string
	get     func(*Demand) float64
	set     func(*Demand, float64)
	lo, hi  float64 // hard bounds
	relSpan float64 // multiplicative span around the nominal value
	absSpan float64 // additive span (used when relSpan == 0)
}

// fitParams lists the demand parameters coordinate descent may
// adjust. Spans are tight around the nominal profile on purpose: the
// fit must refine, not rewrite, each workload's qualitative character
// (that character also drives the SAR and hprof views).
func fitParams() []paramSpec {
	return []paramSpec{
		{name: "FPFraction",
			get: func(d *Demand) float64 { return d.FPFraction },
			set: func(d *Demand, v float64) { d.FPFraction = v },
			lo:  0.01, hi: 0.95, absSpan: 0.10},
		{name: "WorkingSetKB",
			get: func(d *Demand) float64 { return d.WorkingSetKB },
			set: func(d *Demand, v float64) { d.WorkingSetKB = v },
			lo:  16, hi: 4096, relSpan: 1.45},
		{name: "FootprintMB",
			get: func(d *Demand) float64 { return d.FootprintMB },
			set: func(d *Demand, v float64) { d.FootprintMB = v },
			lo:  4, hi: 450, relSpan: 1.6},
		{name: "MemIntensity",
			get: func(d *Demand) float64 { return d.MemIntensity },
			set: func(d *Demand, v float64) { d.MemIntensity = v },
			lo:  0.01, hi: 1.5, relSpan: 1.35},
		{name: "AllocIntensity",
			get: func(d *Demand) float64 { return d.AllocIntensity },
			set: func(d *Demand, v float64) { d.AllocIntensity = v },
			lo:  0.005, hi: 1.2, relSpan: 1.6},
		{name: "CodeComplexity",
			get: func(d *Demand) float64 { return d.CodeComplexity },
			set: func(d *Demand, v float64) { d.CodeComplexity = v },
			lo:  0.4, hi: 2.2, absSpan: 0.35},
	}
}

// Calibrate fits each workload's demand parameters so the modelled
// speedups on the given machines approach the targets, then installs
// per-machine residual factors that close the remaining gap exactly
// (the standard "calibrate the simulator against the silicon" step).
// Workloads without a target entry are left untouched and reported
// with zero error.
func Calibrate(ws []Workload, machines []Machine, ref Machine, targets map[string]map[string]float64) (CalibrationResult, error) {
	if len(machines) == 0 {
		return CalibrationResult{}, errors.New("simbench: no machines to calibrate against")
	}
	res := CalibrationResult{
		Workloads:   make([]Workload, len(ws)),
		ModelRelErr: make(map[string]map[string]float64, len(ws)),
	}
	count := 0
	for i := range ws {
		w := ws[i] // copy
		tgt, ok := targets[w.Name]
		if !ok {
			res.Workloads[i] = w
			continue
		}
		fitDemand(&w, machines, ref, tgt)
		// Record pre-residual errors, then close the gap.
		errs := make(map[string]float64, len(machines))
		w.affinity = make(map[string]float64, len(machines))
		for _, m := range machines {
			want, ok := tgt[m.Name]
			if !ok || want <= 0 {
				return CalibrationResult{}, fmt.Errorf("simbench: missing or invalid target for %s on %s", w.Name, m.Name)
			}
			got := Speedup(&w, m, ref)
			errs[m.Name] = math.Abs(got/want - 1)
			res.MeanRelErr += errs[m.Name]
			count++
			// time is divided by affinity; speedup scales with it.
			w.affinity[m.Name] = want / got
		}
		res.ModelRelErr[w.Name] = errs
		res.Workloads[i] = w
	}
	if count > 0 {
		res.MeanRelErr /= float64(count)
	}
	return res, nil
}

// fitDemand runs bounded coordinate descent on w's demand parameters,
// minimizing the squared log-error of the modelled speedups against
// the targets over all machines.
func fitDemand(w *Workload, machines []Machine, ref Machine, tgt map[string]float64) {
	params := fitParams()
	loss := func() float64 {
		sum := 0.0
		for _, m := range machines {
			want := tgt[m.Name]
			if want <= 0 {
				continue
			}
			got := Speedup(w, m, ref)
			d := math.Log(got / want)
			sum += d * d
		}
		return sum
	}
	// Per-parameter bounds anchored at the nominal value.
	type bound struct{ lo, hi float64 }
	bounds := make([]bound, len(params))
	for i, p := range params {
		v := p.get(&w.Demand)
		var lo, hi float64
		if p.relSpan > 0 {
			lo, hi = v/p.relSpan, v*p.relSpan
		} else {
			lo, hi = v-p.absSpan, v+p.absSpan
		}
		bounds[i] = bound{math.Max(lo, p.lo), math.Min(hi, p.hi)}
	}
	best := loss()
	step := 0.25 // relative step within each parameter's span
	for iter := 0; iter < 60 && step > 0.005; iter++ {
		improved := false
		for i, p := range params {
			cur := p.get(&w.Demand)
			span := bounds[i].hi - bounds[i].lo
			if span <= 0 {
				continue
			}
			for _, cand := range []float64{cur + step*span, cur - step*span} {
				if cand < bounds[i].lo || cand > bounds[i].hi {
					continue
				}
				p.set(&w.Demand, cand)
				if l := loss(); l < best-1e-12 {
					best = l
					cur = cand
					improved = true
				} else {
					p.set(&w.Demand, cur)
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
}

var (
	calibratedOnce sync.Once
	calibrated     CalibrationResult
	calibratedErr  error
)

// CalibratedSuite returns the 13 Table I workloads calibrated against
// the paper's Table III on machines A and B. The calibration runs
// once per process and is deterministic.
func CalibratedSuite() ([]Workload, CalibrationResult, error) {
	calibratedOnce.Do(func() {
		calibrated, calibratedErr = Calibrate(
			BaseWorkloads(),
			[]Machine{MachineA(), MachineB()},
			Reference(),
			TableIIITargets(),
		)
	})
	if calibratedErr != nil {
		return nil, CalibrationResult{}, calibratedErr
	}
	// Hand out copies so callers cannot corrupt the cache.
	ws := append([]Workload(nil), calibrated.Workloads...)
	return ws, calibrated, nil
}
