package simbench

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	ws, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSuite(&buf, "specjvm2007-sim", ws); err != nil {
		t.Fatal(err)
	}
	name, back, err := LoadSuite(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "specjvm2007-sim" || len(back) != len(ws) {
		t.Fatalf("round trip: name=%q n=%d", name, len(back))
	}
	// Calibration residuals must survive: modelled speedups after
	// the round trip equal the originals exactly.
	a, ref := MachineA(), Reference()
	for i := range ws {
		if back[i].Name != ws[i].Name {
			t.Fatalf("order changed: %s vs %s", back[i].Name, ws[i].Name)
		}
		s1 := Speedup(&ws[i], a, ref)
		s2 := Speedup(&back[i], a, ref)
		if math.Abs(s1-s2) > 1e-12 {
			t.Fatalf("%s speedup changed through manifest: %v vs %v", ws[i].Name, s1, s2)
		}
		if back[i].Description != ws[i].Description || back[i].Version != ws[i].Version {
			t.Fatalf("%s metadata lost", ws[i].Name)
		}
	}
}

func TestLoadSuiteValidation(t *testing.T) {
	cases := []string{
		"not json",
		`{"name":"x","workloads":[]}`,
		`{"name":"x","workloads":[{"name":"","suite":"S","demand":{},"methodDomains":["java.lang"]}]}`,
		`{"name":"x","workloads":[
			{"name":"a","suite":"S","demand":{"WorkGOps":1,"FPFraction":0.1,"WorkingSetKB":10,"FootprintMB":1,"Parallelism":1,"CodeComplexity":1},"methodDomains":["java.lang"]},
			{"name":"a","suite":"S","demand":{"WorkGOps":1,"FPFraction":0.1,"WorkingSetKB":10,"FootprintMB":1,"Parallelism":1,"CodeComplexity":1},"methodDomains":["java.lang"]}]}`,
		`{"name":"x","workloads":[{"name":"a","suite":"S","demand":{"WorkGOps":1,"FPFraction":0.1,"WorkingSetKB":10,"FootprintMB":1,"Parallelism":1,"CodeComplexity":1},"methodDomains":["java.lang"],"affinity":{"A":-1}}]}`,
	}
	for i, c := range cases {
		if _, _, err := LoadSuite(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestLoadSuiteMinimal(t *testing.T) {
	manifest := `{
	  "name": "tiny",
	  "workloads": [{
	    "name": "k1", "suite": "Custom",
	    "demand": {"WorkGOps": 10, "FPFraction": 0.5, "WorkingSetKB": 64,
	               "FootprintMB": 4, "MemIntensity": 0.3, "Parallelism": 1,
	               "CodeComplexity": 1},
	    "methodDomains": ["java.lang"]
	  }]
	}`
	name, ws, err := LoadSuite(strings.NewReader(manifest))
	if err != nil {
		t.Fatal(err)
	}
	if name != "tiny" || len(ws) != 1 {
		t.Fatalf("parsed %q, %d workloads", name, len(ws))
	}
	if ws[0].Affinity("A") != 1 {
		t.Fatal("missing affinity should default to 1")
	}
	if sec := ExecutionTime(&ws[0], MachineB()); sec <= 0 {
		t.Fatalf("execution time %v", sec)
	}
}
