package simbench

import (
	"errors"
	"fmt"
	"sort"
)

// NewWorkload validates and builds a user-defined workload so that
// proposed suite additions can be evaluated with exactly the pipeline
// used for the built-in members ("should SPECjvm2007 also adopt these
// two kernels?" is the consortium question this library exists to
// answer quantitatively). Method domains must exist in the synthetic
// method universe; see MethodDomainNames.
func NewWorkload(name string, suite SourceSuite, d Demand, domains []string) (Workload, error) {
	if name == "" {
		return Workload{}, errors.New("simbench: workload needs a name")
	}
	if err := validateDemand(d); err != nil {
		return Workload{}, fmt.Errorf("simbench: workload %s: %w", name, err)
	}
	if len(domains) == 0 {
		return Workload{}, fmt.Errorf("simbench: workload %s needs at least one method domain", name)
	}
	for _, dom := range domains {
		if _, ok := methodDomains[dom]; !ok {
			return Workload{}, fmt.Errorf("simbench: workload %s references unknown method domain %q", name, dom)
		}
	}
	return Workload{
		Name:          name,
		Suite:         suite,
		Version:       "custom",
		InputSet:      "custom",
		Description:   "user-defined workload",
		Demand:        d,
		MethodDomains: append([]string(nil), domains...),
	}, nil
}

func validateDemand(d Demand) error {
	switch {
	case d.WorkGOps <= 0:
		return errors.New("WorkGOps must be positive")
	case d.FPFraction < 0 || d.FPFraction > 1:
		return errors.New("FPFraction must be in [0, 1]")
	case d.WorkingSetKB <= 0:
		return errors.New("WorkingSetKB must be positive")
	case d.FootprintMB <= 0:
		return errors.New("FootprintMB must be positive")
	case d.MemIntensity < 0 || d.AllocIntensity < 0 || d.IOIntensity < 0 ||
		d.NetIntensity < 0 || d.SyscallIntensity < 0:
		return errors.New("intensities must be non-negative")
	case d.Parallelism < 1:
		return errors.New("Parallelism must be at least 1")
	case d.CodeComplexity <= 0:
		return errors.New("CodeComplexity must be positive")
	default:
		return nil
	}
}

// ExtendSuite returns base plus the additions, rejecting duplicate
// workload names — the programmatic form of a consortium's "proposed
// adoption set".
func ExtendSuite(base []Workload, additions ...Workload) ([]Workload, error) {
	seen := make(map[string]bool, len(base)+len(additions))
	out := make([]Workload, 0, len(base)+len(additions))
	for _, w := range base {
		if seen[w.Name] {
			return nil, fmt.Errorf("simbench: duplicate workload %q in base suite", w.Name)
		}
		seen[w.Name] = true
		out = append(out, w)
	}
	for _, w := range additions {
		if seen[w.Name] {
			return nil, fmt.Errorf("simbench: workload %q already in the suite", w.Name)
		}
		seen[w.Name] = true
		out = append(out, w)
	}
	return out, nil
}

// MethodDomainNames returns the names of every method domain in the
// synthetic universe, for building custom workloads.
func MethodDomainNames() []string {
	out := make([]string, 0, len(methodDomains))
	for name := range methodDomains {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
