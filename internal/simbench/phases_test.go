package simbench

import (
	"strings"
	"testing"
)

func workloadByName(t *testing.T, name string) *Workload {
	t.Helper()
	ws, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if ws[i].Name == name {
			w := ws[i]
			return &w
		}
	}
	t.Fatalf("workload %s not found", name)
	return nil
}

func TestPhaseString(t *testing.T) {
	if PhaseSteady.String() != "steady" || PhaseWarmup.String() != "warmup" ||
		PhaseGC.String() != "gc" || PhaseIO.String() != "io" || Phase(9).String() != "unknown" {
		t.Fatal("phase names wrong")
	}
}

func TestRunStartsInWarmup(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	for i := range ws {
		if got := PhaseAt(&ws[i], 0, 0); got != PhaseWarmup {
			t.Errorf("%s at t=0 is %v, want warmup", ws[i].Name, got)
		}
	}
}

func TestGCBurstsScaleWithAllocation(t *testing.T) {
	// Allocation-heavy workloads must see more GC samples than the
	// allocation-free numeric kernels.
	gcCount := func(w *Workload) int {
		n := 0
		for _, p := range PhaseSchedule(w, 100) {
			if p == PhaseGC {
				n++
			}
		}
		return n
	}
	heavy := workloadByName(t, "DaCapo.xalan")
	light := workloadByName(t, "SciMark2.LU")
	if gcCount(heavy) <= gcCount(light) {
		t.Fatalf("xalan GC samples (%d) should exceed LU's (%d)",
			gcCount(heavy), gcCount(light))
	}
	if gcCount(light) > 5 {
		t.Fatalf("numeric kernel sees %d GC samples out of 100", gcCount(light))
	}
}

func TestPhaseScheduleDeterministic(t *testing.T) {
	w := workloadByName(t, "DaCapo.hsqldb")
	a := PhaseSchedule(w, 15)
	b := PhaseSchedule(w, 15)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("phase schedule not deterministic")
		}
	}
	if len(a) != 15 {
		t.Fatalf("schedule length %d", len(a))
	}
}

func TestPhaseModulationDirections(t *testing.T) {
	w := workloadByName(t, "DaCapo.hsqldb")
	f := latents(w, MachineA())
	gc := phaseModulation(f, PhaseGC)
	if gc.cpuUser >= f.cpuUser {
		t.Error("GC should depress user CPU")
	}
	if gc.pgfault <= f.pgfault {
		t.Error("GC should raise page faults")
	}
	warm := phaseModulation(f, PhaseWarmup)
	if warm.cpuSys <= f.cpuSys {
		t.Error("warmup should raise system CPU")
	}
	io := phaseModulation(f, PhaseIO)
	if io.ioWrite <= f.ioWrite {
		t.Error("IO phase should raise write traffic")
	}
	steady := phaseModulation(f, PhaseSteady)
	if steady != f {
		t.Error("steady phase must not modulate")
	}
}

func TestSARTablePhased(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	tab, err := SARTablePhased(ws, MachineA(), SARSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Features) != 3*len(SARCounterNames()) {
		t.Fatalf("phased features = %d, want 3x%d", len(tab.Features), len(SARCounterNames()))
	}
	// Feature naming: thirds suffixed .p0/.p1/.p2.
	if !strings.HasSuffix(tab.Features[0], ".p0") {
		t.Fatalf("first phased feature %q", tab.Features[0])
	}
	if !strings.HasSuffix(tab.Features[len(tab.Features)-1], ".p2") {
		t.Fatalf("last phased feature %q", tab.Features[len(tab.Features)-1])
	}
	if _, err := SARTablePhased(ws, MachineA(), SARSpec{Samples: 2, Seed: 1}); err == nil {
		t.Error("too few samples accepted")
	}
}

func TestWarmupVisibleInEarlyThird(t *testing.T) {
	// For a JIT-heavy workload the early third must show more system
	// CPU than the late third.
	ws, _, _ := CalibratedSuite()
	tab, err := SARTablePhased(ws, MachineA(), SARSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var chartIdx = -1
	for i, n := range tab.Workloads {
		if n == "DaCapo.chart" {
			chartIdx = i
		}
	}
	var early, late = -1, -1
	for j, f := range tab.Features {
		if f == "cpu.sys.00.p0" {
			early = j
		}
		if f == "cpu.sys.00.p2" {
			late = j
		}
	}
	if chartIdx < 0 || early < 0 || late < 0 {
		t.Fatal("lookup failed")
	}
	if tab.Rows[chartIdx][early] <= tab.Rows[chartIdx][late] {
		t.Fatalf("early sys CPU (%v) should exceed late (%v) for a JIT-heavy workload",
			tab.Rows[chartIdx][early], tab.Rows[chartIdx][late])
	}
}
