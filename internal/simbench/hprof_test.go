package simbench

import (
	"sort"
	"strings"
	"testing"
)

func TestMethodProfileDeterministic(t *testing.T) {
	ws := BaseWorkloads()
	p1 := MethodProfile(&ws[0])
	p2 := MethodProfile(&ws[0])
	if len(p1) == 0 {
		t.Fatal("empty method profile")
	}
	if len(p1) != len(p2) {
		t.Fatal("profile not deterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("profile not deterministic")
		}
	}
	if !sort.StringsAreSorted(p1) {
		t.Fatal("profile not sorted")
	}
}

func TestSciMarkProfilesIdenticalOnSharedDomains(t *testing.T) {
	// The five SciMark2 kernels share a coverage group, so their use
	// of shared domains (java.lang, scimark.kernel) must be
	// identical; only their kernel-private domains differ. This is
	// what makes them land on a single SOM cell in the paper's
	// Figure 7.
	ws := BaseWorkloads()
	sharedOf := func(w *Workload) []string {
		var out []string
		for _, m := range MethodProfile(w) {
			if strings.HasPrefix(m, "java.lang") || strings.HasPrefix(m, "jnt.scimark2.kernel") {
				out = append(out, m)
			}
		}
		return out
	}
	base := sharedOf(&ws[5]) // FFT
	for i := 6; i <= 9; i++ {
		got := sharedOf(&ws[i])
		if len(got) != len(base) {
			t.Fatalf("%s shared-domain profile differs in size from FFT", ws[i].Name)
		}
		for j := range got {
			if got[j] != base[j] {
				t.Fatalf("%s shared-domain profile differs from FFT at %q", ws[i].Name, got[j])
			}
		}
	}
	// Sanity: two non-SciMark workloads must NOT have identical
	// java.lang usage (independent coverage groups).
	jl := func(w *Workload) string {
		var sb strings.Builder
		for _, m := range MethodProfile(w) {
			if strings.HasPrefix(m, "java.lang") {
				sb.WriteString(m)
				sb.WriteByte('\n')
			}
		}
		return sb.String()
	}
	if jl(&ws[0]) == jl(&ws[1]) {
		t.Fatal("independent workloads have identical java.lang usage")
	}
}

func TestMethodUniverseCoversProfiles(t *testing.T) {
	ws := BaseWorkloads()
	universe := MethodUniverse(ws)
	if len(universe) < 200 {
		t.Fatalf("universe has %d methods, suspiciously small", len(universe))
	}
	index := map[string]bool{}
	for _, m := range universe {
		index[m] = true
	}
	for i := range ws {
		for _, m := range MethodProfile(&ws[i]) {
			if !index[m] {
				t.Fatalf("method %s of %s missing from universe", m, ws[i].Name)
			}
		}
	}
}

func TestHprofTableBits(t *testing.T) {
	ws := BaseWorkloads()
	tab, err := HprofTable(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Every value is 0 or 1, every row non-empty, every column used
	// by at least one workload (universe = union of profiles).
	for i, row := range tab.Rows {
		ones := 0
		for _, v := range row {
			if v != 0 && v != 1 {
				t.Fatalf("non-bit value %v", v)
			}
			if v == 1 {
				ones++
			}
		}
		if ones == 0 {
			t.Fatalf("workload %s uses no methods", tab.Workloads[i])
		}
	}
	for j := range tab.Features {
		used := false
		for i := range tab.Rows {
			if tab.Rows[i][j] == 1 {
				used = true
				break
			}
		}
		if !used {
			t.Fatalf("method %s in universe but unused", tab.Features[j])
		}
	}
}

func TestSciMarkRowsIdenticalAfterKernelDomainRemoval(t *testing.T) {
	// In the full bit table the SciMark rows differ only on their
	// kernel-private methods — exactly the bits the paper's
	// preprocessing drops as single-user. Verify the premise here:
	// restricted to methods used by ≥2 workloads, SciMark rows are
	// identical.
	ws := BaseWorkloads()
	tab, err := HprofTable(ws)
	if err != nil {
		t.Fatal(err)
	}
	for j := range tab.Features {
		users := 0
		for i := range tab.Rows {
			if tab.Rows[i][j] == 1 {
				users++
			}
		}
		if users < 2 {
			continue
		}
		for i := 6; i <= 9; i++ {
			if tab.Rows[i][j] != tab.Rows[5][j] {
				t.Fatalf("SciMark rows differ on shared method %s", tab.Features[j])
			}
		}
	}
}

func TestDomainMethodNames(t *testing.T) {
	names := domainMethodNames("java.lang")
	if len(names) != methodDomains["java.lang"].count {
		t.Fatalf("domain size %d", len(names))
	}
	for _, n := range names {
		if !strings.HasPrefix(n, "java.lang.") {
			t.Fatalf("bad method name %q", n)
		}
	}
	if domainMethodNames("no-such-domain") != nil {
		t.Fatal("unknown domain should return nil")
	}
}

func TestWorkloadDomainsExist(t *testing.T) {
	for _, w := range BaseWorkloads() {
		for _, d := range w.MethodDomains {
			if _, ok := methodDomains[d]; !ok {
				t.Fatalf("%s references unknown domain %q", w.Name, d)
			}
		}
	}
}
