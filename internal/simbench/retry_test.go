package simbench

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"hmeans/internal/rng"
)

// suite unwraps the calibrated 13-workload suite for tests.
func suite(t *testing.T) []Workload {
	t.Helper()
	ws, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

// TestMeasureTimeRetryZeroPolicyBitIdentical: the zero policy must
// reproduce MeasureTime exactly — same draws, same mean.
func TestMeasureTimeRetryZeroPolicyBitIdentical(t *testing.T) {
	ws := suite(t)
	m := MachineA()
	plain, err := MeasureTime(&ws[0], m, 10, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	retried, err := MeasureTimeRetry(&ws[0], m, 10, rng.New(42), RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if plain != retried {
		t.Fatalf("zero-policy retry diverged: %v vs %v", plain, retried)
	}
}

// TestMeasuredSpeedupsRetryZeroPolicyBitIdentical extends the
// equivalence to the whole campaign.
func TestMeasuredSpeedupsRetryZeroPolicyBitIdentical(t *testing.T) {
	ws := suite(t)
	plain, err := MeasuredSpeedups(ws, MachineA(), Reference(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	retried, err := MeasuredSpeedupsRetry(ws, MachineA(), Reference(), 10, 7, RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != retried[i] {
			t.Fatalf("workload %d: %v vs %v", i, plain[i], retried[i])
		}
	}
}

// flaky returns a Runner that produces NaN for the first n calls and
// then delegates to the real simulator. Failing calls never touch the
// rng stream, so a recovered campaign matches a clean one exactly.
func flaky(n int) Runner {
	calls := 0
	return func(w *Workload, m Machine, r *rng.Source) float64 {
		calls++
		if calls <= n {
			return math.NaN()
		}
		return Run(w, m, r).Seconds
	}
}

func TestRetryRecoversFromFlakyRuns(t *testing.T) {
	ws := suite(t)
	m := MachineA()
	clean, err := MeasureTime(&ws[0], m, 5, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasureTimeRetry(&ws[0], m, 5, rng.New(3), RetryPolicy{
		MaxAttempts: 3,
		Runner:      flaky(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != clean {
		t.Fatalf("recovered campaign diverged from clean: %v vs %v", got, clean)
	}
}

func TestRetryExhaustionTypedError(t *testing.T) {
	ws := suite(t)
	always := func(w *Workload, m Machine, r *rng.Source) float64 { return math.Inf(1) }
	_, err := MeasureTimeRetry(&ws[0], MachineA(), 5, rng.New(1), RetryPolicy{
		MaxAttempts: 4,
		Runner:      always,
	})
	if !errors.Is(err, ErrMeasurementFailed) {
		t.Fatalf("error %v, want ErrMeasurementFailed", err)
	}
	var me *MeasureError
	if !errors.As(err, &me) {
		t.Fatalf("error %T does not expose *MeasureError", err)
	}
	if me.Attempts != 4 || me.Workload != ws[0].Name {
		t.Fatalf("MeasureError %+v, want 4 attempts on %s", me, ws[0].Name)
	}
}

// TestBackoffDeterministic: the backoff schedule is a pure function
// of (BaseDelay, Seed) — exponential, jittered, reproducible — and a
// zero BaseDelay never sleeps.
func TestBackoffDeterministic(t *testing.T) {
	schedule := func(seed uint64) []time.Duration {
		p := RetryPolicy{BaseDelay: 10 * time.Millisecond, Seed: seed}
		j := rng.New(p.Seed)
		out := make([]time.Duration, 5)
		for a := 1; a <= 5; a++ {
			out[a-1] = p.Backoff(a, j)
		}
		return out
	}
	a, b := schedule(9), schedule(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different schedules: %v vs %v", a, b)
		}
		lo := time.Duration(float64(10*time.Millisecond) * float64(uint(1)<<uint(i)) * 0.75)
		hi := time.Duration(float64(10*time.Millisecond) * float64(uint(1)<<uint(i)) * 1.25)
		if a[i] < lo || a[i] > hi {
			t.Fatalf("attempt %d delay %v outside jitter band [%v, %v]", i+1, a[i], lo, hi)
		}
	}

	// BaseDelay 0: the Sleep hook must never fire even when retries
	// happen.
	slept := 0
	ws := suite(t)
	_, err := MeasureTimeRetry(&ws[0], MachineA(), 5, rng.New(3), RetryPolicy{
		MaxAttempts: 3,
		Runner:      flaky(2),
		Sleep:       func(time.Duration) { slept++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if slept != 0 {
		t.Fatalf("zero BaseDelay slept %d times", slept)
	}
}

// TestOutlierRemeasured: a run far outside the campaign's spread is
// re-measured once and the replacement lands in the average.
func TestOutlierRemeasured(t *testing.T) {
	ws := suite(t)
	seq := []float64{1, 1, 1, 100, 1}
	calls := 0
	scripted := func(w *Workload, m Machine, r *rng.Source) float64 {
		v := seq[calls%len(seq)]
		calls++
		return v
	}
	mean, err := MeasureTimeRetry(&ws[0], MachineA(), 4, rng.New(1), RetryPolicy{
		OutlierZ: 1,
		Runner:   scripted,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 1 {
		t.Fatalf("outlier survived: mean %v, want 1", mean)
	}
	if calls != 5 {
		t.Fatalf("%d runner calls, want 4 + 1 re-measurement", calls)
	}
}

func TestMeasuredSpeedupsCtx(t *testing.T) {
	ws := suite(t)
	plain, err := MeasuredSpeedups(ws, MachineA(), Reference(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := MeasuredSpeedupsCtx(context.Background(), ws, MachineA(), Reference(), 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("workload %d: ctx variant diverged: %v vs %v", i, plain[i], withCtx[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasuredSpeedupsCtx(ctx, ws, MachineA(), Reference(), 10, 7); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign: error %v, want context.Canceled", err)
	}
}

func TestMeasuredSpeedupsParallelCtx(t *testing.T) {
	ws := suite(t)
	plain, err := MeasuredSpeedupsParallel(ws, MachineA(), Reference(), 10, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := MeasuredSpeedupsParallelCtx(context.Background(), ws, MachineA(), Reference(), 10, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("workload %d: ctx variant diverged: %v vs %v", i, plain[i], withCtx[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MeasuredSpeedupsParallelCtx(ctx, ws, MachineA(), Reference(), 10, 7, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled campaign: error %v, want context.Canceled", err)
	}
}
