package simbench

// SourceSuite identifies which existing benchmark a workload was
// adopted from, mirroring Table I's composition of the hypothetical
// SPECjvm2007-like suite.
type SourceSuite string

const (
	SPECjvm98 SourceSuite = "SPECjvm98"
	SciMark2  SourceSuite = "SciMark2"
	DaCapo    SourceSuite = "DaCapo"
)

// Demand is a workload's resource-demand profile. The execution
// model (model.go), the SAR sampler (sar.go) and the hprof profiler
// (hprof.go) all derive their outputs from this one profile, so the
// three views of a workload stay mutually consistent.
type Demand struct {
	// WorkGOps is the total abstract work in giga-operations on the
	// reference machine's instruction mix.
	WorkGOps float64
	// FPFraction is the share of work that is floating-point.
	FPFraction float64
	// WorkingSetKB is the hot working set contending for L2.
	WorkingSetKB float64
	// FootprintMB is the total live heap, contending for RAM.
	FootprintMB float64
	// MemIntensity is memory accesses per operation (drives cache
	// miss stalls and bus traffic).
	MemIntensity float64
	// AllocIntensity is object allocation per operation (drives GC
	// activity, page faults and system time).
	AllocIntensity float64
	// IOIntensity is file/device traffic per operation.
	IOIntensity float64
	// NetIntensity is network-ish traffic per operation (loopback
	// JDBC, socket chatter).
	NetIntensity float64
	// Parallelism is the effective number of runnable threads
	// (mtrt is the suite's only truly multi-threaded member).
	Parallelism float64
	// CodeComplexity scales how much a strong JIT helps: large
	// branchy object-oriented code (javac, chart) benefits more than
	// tight numeric kernels.
	CodeComplexity float64
	// SyscallIntensity drives context switches and interrupts.
	SyscallIntensity float64
}

// Workload is one member of the simulated suite.
type Workload struct {
	// Name is the qualified workload name as the paper prints it,
	// e.g. "jvm98.201.compress" or "SciMark2.FFT".
	Name string
	// Suite is the source benchmark suite.
	Suite SourceSuite
	// Version and InputSet carry Table I's metadata.
	Version, InputSet string
	// Description summarizes what the real workload does.
	Description string
	// Demand is the resource-demand profile driving the simulation.
	Demand Demand
	// MethodDomains lists the library domains whose methods this
	// workload exercises; hprof.go expands them into a method-usage
	// bit vector.
	MethodDomains []string
	// affinity holds the calibrated per-machine residual factors
	// (machine name → multiplicative speed adjustment) fitted by
	// Calibrate; nil means uncalibrated.
	affinity map[string]float64
}

// Affinity returns the calibrated residual factor for machine name
// (1.0 when uncalibrated): the model's execution time is divided by
// it.
func (w *Workload) Affinity(name string) float64 {
	if w.affinity == nil {
		return 1
	}
	if f, ok := w.affinity[name]; ok {
		return f
	}
	return 1
}

// BaseWorkloads returns the 13 members of the hypothetical suite of
// Table I with their nominal (pre-calibration) demand profiles. The
// profiles encode the qualitative knowledge the paper states or that
// is well documented for these workloads: the five SciMark2 kernels
// are small-footprint, FP-heavy, self-contained numeric loops (and
// therefore mutually redundant); SPECjvm98 members span compression,
// rule evaluation, compilation, audio decoding and ray tracing; the
// DaCapo members are long-running, allocation-heavy programs.
func BaseWorkloads() []Workload {
	return []Workload{
		{
			Name: "jvm98.201.compress", Suite: SPECjvm98, Version: "1.04", InputSet: "s100",
			Description: "Java port of 129.compress (modified Lempel-Ziv, LZW)",
			Demand: Demand{
				WorkGOps: 95, FPFraction: 0.05, WorkingSetKB: 640, FootprintMB: 30,
				MemIntensity: 0.55, AllocIntensity: 0.04, IOIntensity: 0.10,
				Parallelism: 1, CodeComplexity: 0.9, SyscallIntensity: 0.05,
			},
			MethodDomains: []string{"java.lang", "java.io", "jvm98.harness", "compress"},
		},
		{
			Name: "jvm98.202.jess", Suite: SPECjvm98, Version: "1.04", InputSet: "s100",
			Description: "Java Expert Shell System solving CLIPS puzzles with if-then rules",
			Demand: Demand{
				WorkGOps: 60, FPFraction: 0.04, WorkingSetKB: 900, FootprintMB: 40,
				MemIntensity: 0.75, AllocIntensity: 0.45, IOIntensity: 0.02,
				Parallelism: 1, CodeComplexity: 1.5, SyscallIntensity: 0.08,
			},
			MethodDomains: []string{"java.lang", "java.util", "jvm98.harness", "jess"},
		},
		{
			Name: "jvm98.213.javac", Suite: SPECjvm98, Version: "1.04", InputSet: "s100",
			Description: "The Java compiler from JDK 1.0.2",
			Demand: Demand{
				WorkGOps: 55, FPFraction: 0.02, WorkingSetKB: 1800, FootprintMB: 70,
				MemIntensity: 0.95, AllocIntensity: 0.70, IOIntensity: 0.06,
				Parallelism: 1, CodeComplexity: 1.7, SyscallIntensity: 0.10,
			},
			MethodDomains: []string{"java.lang", "java.util", "java.io", "jvm98.harness", "javac"},
		},
		{
			Name: "jvm98.222.mpegaudio", Suite: SPECjvm98, Version: "1.04", InputSet: "s100",
			Description: "Decompresses ISO MPEG Layer-3 audio files",
			Demand: Demand{
				WorkGOps: 110, FPFraction: 0.55, WorkingSetKB: 220, FootprintMB: 12,
				MemIntensity: 0.35, AllocIntensity: 0.02, IOIntensity: 0.12,
				Parallelism: 1, CodeComplexity: 1.0, SyscallIntensity: 0.04,
			},
			MethodDomains: []string{"java.lang", "java.io", "jvm98.harness", "mpegaudio"},
		},
		{
			Name: "jvm98.227.mtrt", Suite: SPECjvm98, Version: "1.04", InputSet: "s100",
			Description: "Multi-threaded raytracer rendering a dinosaur scene",
			Demand: Demand{
				WorkGOps: 50, FPFraction: 0.45, WorkingSetKB: 1100, FootprintMB: 35,
				MemIntensity: 0.70, AllocIntensity: 0.40, IOIntensity: 0.02,
				Parallelism: 2, CodeComplexity: 1.4, SyscallIntensity: 0.12,
			},
			MethodDomains: []string{"java.lang", "java.util", "jvm98.harness", "mtrt"},
		},
		{
			Name: "SciMark2.FFT", Suite: SciMark2, Version: "2.0", InputSet: "regular",
			Description: "1-D forward transform of 4K complex numbers (complex arithmetic, shuffling, trigonometric functions)",
			Demand: Demand{
				WorkGOps: 70, FPFraction: 0.85, WorkingSetKB: 80, FootprintMB: 6,
				MemIntensity: 0.40, AllocIntensity: 0.01, IOIntensity: 0.005,
				Parallelism: 1, CodeComplexity: 0.6, SyscallIntensity: 0.02,
			},
			MethodDomains: []string{"java.lang", "scimark.kernel", "scimark.fft"},
		},
		{
			Name: "SciMark2.LU", Suite: SciMark2, Version: "2.0", InputSet: "regular",
			Description: "LU factorization of a dense 100x100 matrix with partial pivoting (BLAS-style kernels)",
			Demand: Demand{
				WorkGOps: 75, FPFraction: 0.88, WorkingSetKB: 90, FootprintMB: 6,
				MemIntensity: 0.45, AllocIntensity: 0.01, IOIntensity: 0.005,
				Parallelism: 1, CodeComplexity: 0.6, SyscallIntensity: 0.02,
			},
			MethodDomains: []string{"java.lang", "scimark.kernel", "scimark.lu"},
		},
		{
			Name: "SciMark2.MonteCarlo", Suite: SciMark2, Version: "2.0", InputSet: "regular",
			Description: "Approximates Pi by integrating the quarter circle with random points",
			Demand: Demand{
				WorkGOps: 65, FPFraction: 0.90, WorkingSetKB: 40, FootprintMB: 5,
				MemIntensity: 0.30, AllocIntensity: 0.01, IOIntensity: 0.005,
				Parallelism: 1, CodeComplexity: 0.55, SyscallIntensity: 0.02,
			},
			MethodDomains: []string{"java.lang", "scimark.kernel", "scimark.montecarlo"},
		},
		{
			Name: "SciMark2.SOR", Suite: SciMark2, Version: "2.0", InputSet: "regular",
			Description: "Jacobi successive over-relaxation on a 100x100 grid (finite-difference access patterns)",
			Demand: Demand{
				WorkGOps: 68, FPFraction: 0.90, WorkingSetKB: 85, FootprintMB: 5,
				MemIntensity: 0.42, AllocIntensity: 0.01, IOIntensity: 0.005,
				Parallelism: 1, CodeComplexity: 0.55, SyscallIntensity: 0.02,
			},
			MethodDomains: []string{"java.lang", "scimark.kernel", "scimark.sor"},
		},
		{
			Name: "SciMark2.Sparse", Suite: SciMark2, Version: "2.0", InputSet: "regular",
			Description: "Sparse matrix-vector multiply in compressed-row format (indirection addressing)",
			Demand: Demand{
				WorkGOps: 62, FPFraction: 0.82, WorkingSetKB: 130, FootprintMB: 6,
				MemIntensity: 0.60, AllocIntensity: 0.01, IOIntensity: 0.005,
				Parallelism: 1, CodeComplexity: 0.6, SyscallIntensity: 0.02,
			},
			MethodDomains: []string{"java.lang", "scimark.kernel", "scimark.sparse"},
		},
		{
			Name: "DaCapo.hsqldb", Suite: DaCapo, Version: "2006-08", InputSet: "default",
			Description: "JDBCbench-like in-memory banking transactions against HSQLDB",
			Demand: Demand{
				WorkGOps: 45, FPFraction: 0.03, WorkingSetKB: 2600, FootprintMB: 260,
				MemIntensity: 1.00, AllocIntensity: 0.85, IOIntensity: 0.10,
				NetIntensity: 0.30, Parallelism: 1, CodeComplexity: 1.6, SyscallIntensity: 0.45,
			},
			MethodDomains: []string{"java.lang", "java.util", "java.io", "java.net", "dacapo.harness", "jdbc.sql"},
		},
		{
			Name: "DaCapo.chart", Suite: DaCapo, Version: "2006-08", InputSet: "default",
			Description: "JFreeChart plotting complex line graphs rendered as PDF",
			Demand: Demand{
				WorkGOps: 65, FPFraction: 0.30, WorkingSetKB: 1500, FootprintMB: 120,
				MemIntensity: 0.80, AllocIntensity: 0.75, IOIntensity: 0.25,
				Parallelism: 1, CodeComplexity: 1.8, SyscallIntensity: 0.18,
			},
			MethodDomains: []string{"java.lang", "java.util", "java.io", "dacapo.harness", "awt.graphics", "pdf"},
		},
		{
			Name: "DaCapo.xalan", Suite: DaCapo, Version: "2006-08", InputSet: "default",
			Description: "Transforms XML documents into HTML",
			Demand: Demand{
				WorkGOps: 55, FPFraction: 0.02, WorkingSetKB: 2100, FootprintMB: 160,
				MemIntensity: 0.90, AllocIntensity: 0.80, IOIntensity: 0.30,
				Parallelism: 1, CodeComplexity: 1.5, SyscallIntensity: 0.30,
			},
			MethodDomains: []string{"java.lang", "java.util", "java.io", "dacapo.harness", "xml"},
		},
	}
}

// WorkloadNames returns the names of ws in order.
func WorkloadNames(ws []Workload) []string {
	out := make([]string, len(ws))
	for i := range ws {
		out[i] = ws[i].Name
	}
	return out
}
