package simbench

import (
	"fmt"
	"hash/fnv"
	"math"

	"hmeans/internal/chars"
	"hmeans/internal/rng"
)

// SARSpec configures the synthetic SAR sampling campaign.
type SARSpec struct {
	// Samples per run; the paper collected 15 at even intervals.
	Samples int
	// Noise is the relative per-sample measurement noise. Zero means
	// the default 4%.
	Noise float64
	// Seed drives the sampling noise.
	Seed uint64
}

func (s SARSpec) withDefaults() SARSpec {
	if s.Samples <= 0 {
		s.Samples = 15
	}
	if s.Noise <= 0 {
		s.Noise = 0.04
	}
	return s
}

// latentFactors condenses a workload×machine pairing into the
// OS-visible activity levels SAR observes. Every channel family in
// the synthetic counter set is an affine expansion of one of these.
type latentFactors struct {
	cpuUser, cpuSys, cpuIOWait float64
	ctxsw, intr                float64
	pgfault, majflt, swap      float64
	memUsedPct, cached         float64
	ioTPS, ioRead, ioWrite     float64
	netRx, netTx               float64
	runq, procs                float64
	busTraffic                 float64
}

// latents derives the OS activity profile of w running on m from the
// same demand model the execution times use. The shapes matter more
// than the magnitudes: workloads with similar demands must land on
// similar vectors (the SciMark2 kernels), and memory pressure must be
// machine-dependent (DaCapo on the 512 MB machine B pages; on the
// 2 GB machine A it does not) so clusterings can legitimately differ
// across machines, as the paper observed.
func latents(w *Workload, m Machine) latentFactors {
	d := w.Demand
	spill := spillFraction(d.WorkingSetKB, m.L2KB)
	occupancy := d.FootprintMB / m.MemoryMB
	paging := 0.0
	if occupancy > 0.5 {
		paging = 4 * (occupancy - 0.5) * (occupancy - 0.5)
	}
	sysLoad := 0.25*d.IOIntensity + 0.20*d.NetIntensity + 0.35*d.SyscallIntensity + 0.25*d.AllocIntensity + paging
	busy := 1 / (1 + sysLoad)
	var f latentFactors
	f.cpuUser = 100 * busy * (0.75 + 0.25*(1-spill))
	f.cpuSys = 100 * sysLoad / (1 + sysLoad) * 0.8
	f.cpuIOWait = 100 * (0.5*d.IOIntensity + paging) / (1 + sysLoad)
	f.ctxsw = 800*d.SyscallIntensity + 500*d.NetIntensity + 300*(d.Parallelism-1) + 50
	f.intr = 400*d.IOIntensity + 350*d.NetIntensity + 120
	f.pgfault = 900*d.AllocIntensity + 200*occupancy + 20
	// Reclaim pressure rises smoothly with memory occupancy well
	// before outright thrashing: the OS starts evicting and faulting
	// pages back in. This keeps memory-hungry workloads visibly
	// machine-dependent even when they stop short of the paging knee.
	f.majflt = 400*paging + 150*occupancy*occupancy
	f.swap = 900*paging + 350*occupancy*occupancy
	f.memUsedPct = 100 * math.Min(0.97, 0.15+occupancy)
	f.cached = 100 * math.Min(0.9, 0.1+0.6*d.IOIntensity)
	f.ioTPS = 300*d.IOIntensity + 60*d.AllocIntensity
	f.ioRead = 2000 * d.IOIntensity
	f.ioWrite = 1400*d.IOIntensity + 300*d.AllocIntensity
	f.netRx = 2500 * d.NetIntensity
	f.netTx = 2200 * d.NetIntensity
	f.runq = math.Min(d.Parallelism, float64(m.Cores)) + 0.5*sysLoad
	f.procs = 40 + 10*d.Parallelism
	// Front-side-bus traffic: last-level cache misses per operation.
	// This is the most machine-dependent channel family — the same
	// workload fits machine A's 2 MB L2 but spills machine B's
	// 512 KB — and is what lets clusterings legitimately differ per
	// machine, as the paper observed.
	f.busTraffic = 3000*d.MemIntensity*spill + 40
	return f
}

// channelFamily expands one latent into several named counters with
// deterministic per-channel gains, imitating SAR's many related
// channels (per-device transfer rates, per-queue depths, …).
type channelFamily struct {
	name  string
	value func(latentFactors) float64
	width int
}

func sarFamilies() []channelFamily {
	return []channelFamily{
		{"cpu.user", func(f latentFactors) float64 { return f.cpuUser }, 12},
		{"cpu.sys", func(f latentFactors) float64 { return f.cpuSys }, 12},
		{"cpu.iowait", func(f latentFactors) float64 { return f.cpuIOWait }, 8},
		{"proc.cswch", func(f latentFactors) float64 { return f.ctxsw }, 12},
		{"irq.intr", func(f latentFactors) float64 { return f.intr }, 12},
		{"mem.pgfault", func(f latentFactors) float64 { return f.pgfault }, 14},
		{"mem.majflt", func(f latentFactors) float64 { return f.majflt }, 8},
		{"swap.pswp", func(f latentFactors) float64 { return f.swap }, 8},
		{"mem.usedpct", func(f latentFactors) float64 { return f.memUsedPct }, 10},
		{"mem.cached", func(f latentFactors) float64 { return f.cached }, 8},
		{"io.tps", func(f latentFactors) float64 { return f.ioTPS }, 14},
		{"io.bread", func(f latentFactors) float64 { return f.ioRead }, 10},
		{"io.bwrtn", func(f latentFactors) float64 { return f.ioWrite }, 10},
		{"net.rxpck", func(f latentFactors) float64 { return f.netRx }, 12},
		{"net.txpck", func(f latentFactors) float64 { return f.netTx }, 12},
		{"queue.runq", func(f latentFactors) float64 { return f.runq }, 10},
		{"proc.plist", func(f latentFactors) float64 { return f.procs }, 8},
		{"mem.bustraf", func(f latentFactors) float64 { return f.busTraffic }, 14},
	}
}

// constChannels is the number of counters that never vary across
// workloads (kernel build constants, fixed table sizes, …); they
// exercise the characterization stage's drop-constant filter.
const constChannels = 12

// SARCounterNames returns the names of every synthetic counter in
// sampling order.
func SARCounterNames() []string {
	var names []string
	for _, fam := range sarFamilies() {
		for c := 0; c < fam.width; c++ {
			names = append(names, fmt.Sprintf("%s.%02d", fam.name, c))
		}
	}
	for c := 0; c < constChannels; c++ {
		names = append(names, fmt.Sprintf("const.%02d", c))
	}
	return names
}

// channelGain returns the deterministic per-channel multiplier in
// [0.4, 1.6] that differentiates members of a family.
func channelGain(family string, idx int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", family, idx)
	return 0.4 + 1.2*float64(h.Sum64()%10000)/10000
}

// SampleSAR simulates one SAR campaign for w on m: spec.Samples
// vectors of counter values at even intervals across the run. Row
// order matches SARCounterNames.
func SampleSAR(w *Workload, m Machine, spec SARSpec) [][]float64 {
	spec = spec.withDefaults()
	f := latents(w, m)
	// Per-(workload, machine) noise stream, independent of other
	// workloads so adding a workload never perturbs existing data.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s@%s/%d", w.Name, m.Name, spec.Seed)
	r := rng.New(h.Sum64())
	families := sarFamilies()
	rows := make([][]float64, spec.Samples)
	for s := range rows {
		// Each sample observes the workload in whatever phase it is
		// in at that point of the run (warmup / GC burst / IO flush /
		// steady); the latents are modulated accordingly.
		t := 0.0
		if spec.Samples > 1 {
			t = float64(s) / float64(spec.Samples-1)
		}
		fs := phaseModulation(f, PhaseAt(w, t, s))
		row := make([]float64, 0, len(SARCounterNames()))
		for _, fam := range families {
			base := fam.value(fs)
			for c := 0; c < fam.width; c++ {
				v := base * channelGain(fam.name, c) * (1 + spec.Noise*r.NormFloat64())
				if v < 0 {
					v = 0
				}
				row = append(row, v)
			}
		}
		for c := 0; c < constChannels; c++ {
			row = append(row, 64) // constant across all workloads
		}
		rows[s] = row
	}
	return rows
}

// SARTable runs the full characterization campaign of the paper's
// Section IV-C (first approach) for every workload on machine m:
// sample all counters, average the samples into one representative
// value per counter, and return the raw workloads×counters table
// (preprocessing — drop-constant and standardization — is the
// chars package's job).
func SARTable(ws []Workload, m Machine, spec SARSpec) (*chars.Table, error) {
	rows := make([][]float64, len(ws))
	for i := range ws {
		avg, err := chars.AverageSamples(SampleSAR(&ws[i], m, spec))
		if err != nil {
			return nil, fmt.Errorf("simbench: averaging SAR samples for %s: %w", ws[i].Name, err)
		}
		rows[i] = avg
	}
	return chars.NewTable(WorkloadNames(ws), SARCounterNames(), rows)
}
