package simbench

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Manifest is the serializable definition of a benchmark suite: the
// file format through which users bring their own workloads to the
// CLI tools without recompiling. Calibration residuals are part of
// the manifest so a calibrated suite round-trips exactly.
type Manifest struct {
	// Name labels the suite.
	Name string `json:"name"`
	// Workloads defines the members.
	Workloads []ManifestWorkload `json:"workloads"`
}

// ManifestWorkload is one suite member in manifest form.
type ManifestWorkload struct {
	Name          string             `json:"name"`
	Suite         SourceSuite        `json:"suite"`
	Version       string             `json:"version,omitempty"`
	InputSet      string             `json:"inputSet,omitempty"`
	Description   string             `json:"description,omitempty"`
	Demand        Demand             `json:"demand"`
	MethodDomains []string           `json:"methodDomains"`
	Affinity      map[string]float64 `json:"affinity,omitempty"`
}

// SaveSuite writes the workloads as a JSON manifest.
func SaveSuite(w io.Writer, name string, ws []Workload) error {
	m := Manifest{Name: name, Workloads: make([]ManifestWorkload, len(ws))}
	for i := range ws {
		wl := &ws[i]
		m.Workloads[i] = ManifestWorkload{
			Name:          wl.Name,
			Suite:         wl.Suite,
			Version:       wl.Version,
			InputSet:      wl.InputSet,
			Description:   wl.Description,
			Demand:        wl.Demand,
			MethodDomains: wl.MethodDomains,
			Affinity:      wl.affinity,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// LoadSuite reads and validates a JSON suite manifest.
func LoadSuite(r io.Reader) (string, []Workload, error) {
	var m Manifest
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return "", nil, fmt.Errorf("simbench: decoding suite manifest: %w", err)
	}
	if len(m.Workloads) == 0 {
		return "", nil, errors.New("simbench: manifest defines no workloads")
	}
	out := make([]Workload, 0, len(m.Workloads))
	seen := make(map[string]bool, len(m.Workloads))
	for i, mw := range m.Workloads {
		if seen[mw.Name] {
			return "", nil, fmt.Errorf("simbench: manifest workload %d duplicates name %q", i, mw.Name)
		}
		w, err := NewWorkload(mw.Name, mw.Suite, mw.Demand, mw.MethodDomains)
		if err != nil {
			return "", nil, fmt.Errorf("simbench: manifest workload %d: %w", i, err)
		}
		if mw.Version != "" {
			w.Version = mw.Version
		}
		if mw.InputSet != "" {
			w.InputSet = mw.InputSet
		}
		if mw.Description != "" {
			w.Description = mw.Description
		}
		if mw.Affinity != nil {
			for machine, f := range mw.Affinity {
				if f <= 0 {
					return "", nil, fmt.Errorf("simbench: manifest workload %q has non-positive affinity for %q", mw.Name, machine)
				}
			}
			w.affinity = mw.Affinity
		}
		seen[mw.Name] = true
		out = append(out, w)
	}
	return m.Name, out, nil
}
