package simbench

import (
	"math"
	"testing"
)

// TestMeasuredSpeedupsParallelWorkerInvariant: the parallel campaign
// seeds every workload's noise stream up front from the campaign
// seed, so the speedups must be bit-identical for every worker count.
func TestMeasuredSpeedupsParallelWorkerInvariant(t *testing.T) {
	ws, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	base, err := MeasuredSpeedupsParallel(ws, MachineA(), Reference(), 10, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(ws) {
		t.Fatalf("got %d speedups for %d workloads", len(base), len(ws))
	}
	for _, v := range base {
		if !(v > 0) {
			t.Fatalf("non-positive speedup %v", v)
		}
	}
	for _, workers := range []int{2, 8} {
		got, err := MeasuredSpeedupsParallel(ws, MachineA(), Reference(), 10, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(base[i]) {
				t.Fatalf("workers %d: speedup %d = %v, 1-worker %v", workers, i, got[i], base[i])
			}
		}
	}
}
