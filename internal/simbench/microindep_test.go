package simbench

import (
	"math"
	"testing"

	"hmeans/internal/vecmath"
)

func TestMicroIndepTableShape(t *testing.T) {
	ws, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := MicroIndepTable(ws)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 13 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Features) != len(tab.Rows[0]) {
		t.Fatalf("feature names %d != row width %d", len(tab.Features), len(tab.Rows[0]))
	}
	for i, row := range tab.Rows {
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("invalid value at (%s, %s): %v", tab.Workloads[i], tab.Features[j], v)
			}
		}
	}
}

func TestMicroIndepMachineIndependence(t *testing.T) {
	// By construction the table uses no machine input; guard that the
	// instruction-mix fractions are a proper distribution anyway.
	ws, _, _ := CalibratedSuite()
	tab, err := MicroIndepTable(ws)
	if err != nil {
		t.Fatal(err)
	}
	// mix.* are columns 0..4 and must sum to ~1.
	for i, row := range tab.Rows {
		sum := row[0] + row[1] + row[2] + row[3] + row[4]
		if math.Abs(sum-1) > 0.06 {
			t.Errorf("%s instruction mix sums to %v", tab.Workloads[i], sum)
		}
	}
	// Stride fractions are a distribution too.
	for i, row := range tab.Rows {
		sum := row[5] + row[6] + row[7]
		if sum < 0.6 || sum > 1.1 {
			t.Errorf("%s stride distribution sums to %v", tab.Workloads[i], sum)
		}
	}
}

func TestMicroIndepSciMarkCoherent(t *testing.T) {
	// The paper's expectation: under microarchitecture-independent
	// features the SciMark kernels stay mutually similar.
	ws, _, _ := CalibratedSuite()
	tab, err := MicroIndepTable(ws)
	if err != nil {
		t.Fatal(err)
	}
	// Standardize columns (copy) before measuring distances.
	work := tab.Clone()
	cols := len(work.Features)
	for j := 0; j < cols; j++ {
		var sum, sumSq float64
		for i := range work.Rows {
			sum += work.Rows[i][j]
			sumSq += work.Rows[i][j] * work.Rows[i][j]
		}
		mean := sum / float64(len(work.Rows))
		sd := math.Sqrt(sumSq/float64(len(work.Rows)) - mean*mean)
		for i := range work.Rows {
			if sd > 0 {
				work.Rows[i][j] = (work.Rows[i][j] - mean) / sd
			} else {
				work.Rows[i][j] = 0
			}
		}
	}
	vecs := work.Vectors()
	var maxWithin float64
	minAcross := math.Inf(1)
	for i := 5; i <= 9; i++ {
		for j := i + 1; j <= 9; j++ {
			if d := vecmath.EuclideanDistance(vecs[i], vecs[j]); d > maxWithin {
				maxWithin = d
			}
		}
		for j := 0; j < 13; j++ {
			if j >= 5 && j <= 9 {
				continue
			}
			if d := vecmath.EuclideanDistance(vecs[i], vecs[j]); d < minAcross {
				minAcross = d
			}
		}
	}
	if maxWithin >= minAcross {
		t.Fatalf("SciMark not coherent in micro-independent space: within %v >= across %v",
			maxWithin, minAcross)
	}
}

func TestMicroIndepFPSeparation(t *testing.T) {
	// FP fraction must separate mpegaudio/SciMark (high FP) from
	// compress/javac/xalan (integer).
	ws, _, _ := CalibratedSuite()
	tab, _ := MicroIndepTable(ws)
	fpIdx := -1
	for j, f := range tab.Features {
		if f == "mix.fp" {
			fpIdx = j
		}
	}
	if fpIdx < 0 {
		t.Fatal("mix.fp feature missing")
	}
	byName := map[string]float64{}
	for i, name := range tab.Workloads {
		byName[name] = tab.Rows[i][fpIdx]
	}
	if byName["SciMark2.LU"] <= byName["jvm98.213.javac"] {
		t.Fatalf("LU fp (%v) should exceed javac fp (%v)",
			byName["SciMark2.LU"], byName["jvm98.213.javac"])
	}
}
