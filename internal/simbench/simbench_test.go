package simbench

import (
	"math"
	"testing"

	"hmeans/internal/rng"
)

func TestBaseWorkloadsMetadata(t *testing.T) {
	ws := BaseWorkloads()
	if len(ws) != 13 {
		t.Fatalf("suite has %d workloads, want 13 (Table I)", len(ws))
	}
	counts := map[SourceSuite]int{}
	seen := map[string]bool{}
	for i := range ws {
		w := &ws[i]
		counts[w.Suite]++
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
		if w.Description == "" || w.Version == "" || w.InputSet == "" {
			t.Errorf("%s missing Table I metadata", w.Name)
		}
		if len(w.MethodDomains) == 0 {
			t.Errorf("%s has no method domains", w.Name)
		}
		d := w.Demand
		if d.WorkGOps <= 0 || d.FPFraction < 0 || d.FPFraction > 1 ||
			d.WorkingSetKB <= 0 || d.FootprintMB <= 0 || d.Parallelism < 1 {
			t.Errorf("%s has implausible demand %+v", w.Name, d)
		}
	}
	if counts[SPECjvm98] != 5 || counts[SciMark2] != 5 || counts[DaCapo] != 3 {
		t.Fatalf("suite composition = %v, want 5/5/3", counts)
	}
}

func TestMachinesMatchTableII(t *testing.T) {
	a, b, ref := MachineA(), MachineB(), Reference()
	if a.L2KB != 2048 || a.MemoryMB != 2048 || a.Cores != 2 || a.ClockGHz != 3.0 {
		t.Errorf("machine A spec wrong: %+v", a)
	}
	if b.L2KB != 512 || b.MemoryMB != 512 || b.Cores != 1 || b.ClockGHz != 3.0 {
		t.Errorf("machine B spec wrong: %+v", b)
	}
	if ref.L2KB != 8192 || ref.MemoryMB != 1024 || ref.ClockGHz != 1.2 {
		t.Errorf("reference spec wrong: %+v", ref)
	}
}

func TestExecutionTimePositiveAndFinite(t *testing.T) {
	ws := BaseWorkloads()
	for _, m := range []Machine{MachineA(), MachineB(), Reference()} {
		for i := range ws {
			sec := ExecutionTime(&ws[i], m)
			if sec <= 0 || math.IsNaN(sec) || math.IsInf(sec, 0) {
				t.Fatalf("time of %s on %s = %v", ws[i].Name, m.Name, sec)
			}
		}
	}
}

func TestSpillFraction(t *testing.T) {
	if f := spillFraction(100, 2048); f != 0 {
		t.Errorf("fitting working set spills %v", f)
	}
	if f := spillFraction(2048*40, 2048); f != 1 {
		t.Errorf("40x working set spill = %v, want 1", f)
	}
	mid := spillFraction(4096, 2048)
	if mid <= 0 || mid >= 1 {
		t.Errorf("2x working set spill = %v, want in (0,1)", mid)
	}
}

func TestCacheSizeMonotonicity(t *testing.T) {
	// A machine with a bigger L2 must never be slower, all else equal.
	ws := BaseWorkloads()
	small := MachineB()
	big := MachineB()
	big.Name = "B-bigcache"
	big.L2KB = 8192
	for i := range ws {
		if ExecutionTime(&ws[i], big) > ExecutionTime(&ws[i], small)+1e-12 {
			t.Fatalf("%s slower with bigger cache", ws[i].Name)
		}
	}
}

func TestMemoryPressureHurts(t *testing.T) {
	// hsqldb (260 MB footprint) must suffer on a 512 MB machine
	// relative to a 2 GB one beyond the pure cache effect.
	ws := BaseWorkloads()
	var hsqldb *Workload
	for i := range ws {
		if ws[i].Name == "DaCapo.hsqldb" {
			hsqldb = &ws[i]
		}
	}
	tight := MachineA()
	tight.Name = "A-tight"
	tight.MemoryMB = 320
	if ExecutionTime(hsqldb, tight) <= ExecutionTime(hsqldb, MachineA()) {
		t.Fatal("memory pressure did not slow hsqldb down")
	}
}

func TestParallelismHelpsOnlyMultithreaded(t *testing.T) {
	ws := BaseWorkloads()
	uni := MachineA()
	uni.Name = "A-1core"
	uni.Cores = 1
	for i := range ws {
		w := &ws[i]
		t2, t1 := ExecutionTime(w, MachineA()), ExecutionTime(w, uni)
		if w.Demand.Parallelism > 1 {
			if t2 >= t1 {
				t.Errorf("%s (parallel) not helped by second core", w.Name)
			}
		} else if math.Abs(t2-t1) > 1e-12 {
			t.Errorf("%s (serial) affected by core count", w.Name)
		}
	}
}

func TestCalibrationHitsTableIII(t *testing.T) {
	ws, res, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	targets := TableIIITargets()
	a, b, ref := MachineA(), MachineB(), Reference()
	for i := range ws {
		w := &ws[i]
		tgt := targets[w.Name]
		if got := Speedup(w, a, ref); math.Abs(got/tgt["A"]-1) > 1e-9 {
			t.Errorf("%s on A: %v, want %v", w.Name, got, tgt["A"])
		}
		if got := Speedup(w, b, ref); math.Abs(got/tgt["B"]-1) > 1e-9 {
			t.Errorf("%s on B: %v, want %v", w.Name, got, tgt["B"])
		}
	}
	// The analytic model must do real explanatory work on its own:
	// after the demand fit the mean residual must be well under 2x.
	if res.MeanRelErr > 0.6 {
		t.Errorf("mean pre-residual model error %v too large", res.MeanRelErr)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(BaseWorkloads(), nil, Reference(), TableIIITargets()); err == nil {
		t.Error("no machines accepted")
	}
	bad := map[string]map[string]float64{"jvm98.201.compress": {"A": -1, "B": 2}}
	if _, err := Calibrate(BaseWorkloads(), []Machine{MachineA(), MachineB()}, Reference(), bad); err == nil {
		t.Error("negative target accepted")
	}
}

func TestCalibrateLeavesUntargetedWorkloadsAlone(t *testing.T) {
	ws := BaseWorkloads()[:2]
	targets := map[string]map[string]float64{ws[0].Name: {"A": 2, "B": 3}}
	res, err := Calibrate(ws, []Machine{MachineA(), MachineB()}, Reference(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[1].affinity != nil {
		t.Error("untargeted workload was calibrated")
	}
	if res.Workloads[1].Affinity("A") != 1 {
		t.Error("uncalibrated affinity != 1")
	}
	if got := Speedup(&res.Workloads[0], MachineA(), Reference()); math.Abs(got-2) > 1e-9 {
		t.Errorf("targeted workload speedup = %v, want 2", got)
	}
}

func TestCalibratedSuiteReturnsCopies(t *testing.T) {
	ws1, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	ws1[0].Name = "corrupted"
	ws2, _, _ := CalibratedSuite()
	if ws2[0].Name == "corrupted" {
		t.Fatal("CalibratedSuite exposes shared state")
	}
}

func TestRunNoiseAndDeterminism(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	w := &ws[0]
	m := MachineA()
	base := ExecutionTime(w, m)
	r := rng.New(7)
	sawDifferent := false
	for i := 0; i < 50; i++ {
		got := Run(w, m, r).Seconds
		if got < base*0.85 || got > base*1.15 {
			t.Fatalf("run time %v wildly off base %v", got, base)
		}
		if got != base {
			sawDifferent = true
		}
	}
	if !sawDifferent {
		t.Fatal("run noise never fired")
	}
	// Same seed → same sequence.
	a, b := rng.New(3), rng.New(3)
	for i := 0; i < 10; i++ {
		if Run(w, m, a).Seconds != Run(w, m, b).Seconds {
			t.Fatal("Run is not deterministic per seed")
		}
	}
}

func TestMeasureTimeAveragesToModel(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	w := &ws[3]
	m := MachineB()
	base := ExecutionTime(w, m)
	got, err := MeasureTime(w, m, 400, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got/base-1) > 0.01 {
		t.Fatalf("mean of 400 runs %v is far from model %v", got, base)
	}
	if _, err := MeasureTime(w, m, 0, rng.New(1)); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestMeasureTimeStats(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	w := &ws[1]
	m := MachineA()
	meas, err := MeasureTimeStats(w, m, 30, 0.95, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(meas.Times) != 30 {
		t.Fatalf("times = %d", len(meas.Times))
	}
	if !meas.CI.Contains(meas.Mean) {
		t.Fatalf("CI %v..%v excludes the mean %v", meas.CI.Lo, meas.CI.Hi, meas.Mean)
	}
	base := ExecutionTime(w, m)
	if !meas.CI.Contains(base) {
		t.Fatalf("CI %v..%v excludes the model time %v", meas.CI.Lo, meas.CI.Hi, base)
	}
	if meas.CI.Width() <= 0 || meas.CI.Width() > base*0.1 {
		t.Fatalf("implausible CI width %v for base %v", meas.CI.Width(), base)
	}
	if _, err := MeasureTimeStats(w, m, 1, 0.95, rng.New(1)); err == nil {
		t.Error("single run accepted")
	}
}

func TestMeasuredSpeedupsCloseToTableIII(t *testing.T) {
	ws, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	got, err := MeasuredSpeedups(ws, MachineA(), Reference(), 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	targets := TableIIITargets()
	for i := range ws {
		want := targets[ws[i].Name]["A"]
		if math.Abs(got[i]/want-1) > 0.05 {
			t.Errorf("%s measured %v, Table III %v", ws[i].Name, got[i], want)
		}
	}
	if _, err := MeasuredSpeedups(nil, MachineA(), Reference(), 10, 1); err == nil {
		t.Error("empty workload list accepted")
	}
}
