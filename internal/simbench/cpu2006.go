package simbench

// CPU2006Like is the source-suite label for the second case study.
const CPU2006Like SourceSuite = "CPU2006-like"

// CPU2006LikeWorkloads returns a second, non-Java case-study suite in
// the mould of SPEC CPU2006: native integer and floating-point
// programs. It exists to exercise the paper's generalization path —
// "For non-Java workloads, other microarchitecture independent
// workload features such as instruction mix, memory strides, etc. can
// be used instead" — with a composition that has its own planted
// artificial redundancy: three LZ-family compression codecs adopted
// together (the bzip2/gzip/xz situation), which should coagulate
// under micro-independent characterization exactly the way SciMark2
// does in the Java suite.
//
// These workloads carry no Java method domains (they are native
// binaries), so only the demand-driven characterizations (SAR,
// micro-independent) apply; HprofTable must not be used with them.
func CPU2006LikeWorkloads() []Workload {
	w := func(name string, d Demand) Workload {
		return Workload{
			Name:        name,
			Suite:       CPU2006Like,
			Version:     "1.0",
			InputSet:    "ref",
			Description: "native CPU2006-like workload",
			Demand:      d,
		}
	}
	return []Workload{
		// Integer side.
		w("int.compiler", Demand{ // gcc-like
			WorkGOps: 80, FPFraction: 0.01, WorkingSetKB: 2200, FootprintMB: 90,
			MemIntensity: 0.9, AllocIntensity: 0.5, IOIntensity: 0.08,
			Parallelism: 1, CodeComplexity: 1.8, SyscallIntensity: 0.08,
		}),
		w("int.pathfinder", Demand{ // astar/mcf-like: pointer chasing
			WorkGOps: 70, FPFraction: 0.02, WorkingSetKB: 3600, FootprintMB: 320,
			MemIntensity: 1.2, AllocIntensity: 0.25, IOIntensity: 0.01,
			Parallelism: 1, CodeComplexity: 1.1, SyscallIntensity: 0.03,
		}),
		w("int.interpreter", Demand{ // perlbench-like
			WorkGOps: 75, FPFraction: 0.02, WorkingSetKB: 1400, FootprintMB: 110,
			MemIntensity: 0.8, AllocIntensity: 0.6, IOIntensity: 0.1,
			Parallelism: 1, CodeComplexity: 1.7, SyscallIntensity: 0.1,
		}),
		w("int.gamesearch", Demand{ // gobmk-like: branchy search
			WorkGOps: 65, FPFraction: 0.01, WorkingSetKB: 900, FootprintMB: 30,
			MemIntensity: 0.6, AllocIntensity: 0.1, IOIntensity: 0.01,
			Parallelism: 1, CodeComplexity: 1.5, SyscallIntensity: 0.02,
		}),
		// The planted adoption set: three codecs from one family.
		w("int.lzA", Demand{
			WorkGOps: 90, FPFraction: 0.01, WorkingSetKB: 700, FootprintMB: 24,
			MemIntensity: 0.55, AllocIntensity: 0.03, IOIntensity: 0.12,
			Parallelism: 1, CodeComplexity: 0.9, SyscallIntensity: 0.05,
		}),
		w("int.lzB", Demand{
			WorkGOps: 95, FPFraction: 0.01, WorkingSetKB: 760, FootprintMB: 26,
			MemIntensity: 0.58, AllocIntensity: 0.03, IOIntensity: 0.11,
			Parallelism: 1, CodeComplexity: 0.9, SyscallIntensity: 0.05,
		}),
		w("int.lzC", Demand{
			WorkGOps: 85, FPFraction: 0.01, WorkingSetKB: 660, FootprintMB: 22,
			MemIntensity: 0.53, AllocIntensity: 0.04, IOIntensity: 0.13,
			Parallelism: 1, CodeComplexity: 0.95, SyscallIntensity: 0.05,
		}),
		// Floating-point side.
		w("fp.fluid", Demand{ // lbm/bwaves-like: streaming FP
			WorkGOps: 110, FPFraction: 0.85, WorkingSetKB: 3800, FootprintMB: 240,
			MemIntensity: 0.95, AllocIntensity: 0.02, IOIntensity: 0.02,
			Parallelism: 1, CodeComplexity: 0.6, SyscallIntensity: 0.02,
		}),
		w("fp.molecular", Demand{ // namd-like: cache-resident FP
			WorkGOps: 100, FPFraction: 0.88, WorkingSetKB: 450, FootprintMB: 40,
			MemIntensity: 0.45, AllocIntensity: 0.02, IOIntensity: 0.01,
			Parallelism: 1, CodeComplexity: 0.7, SyscallIntensity: 0.02,
		}),
		w("fp.lattice", Demand{ // milc-like: strided FP
			WorkGOps: 95, FPFraction: 0.82, WorkingSetKB: 2600, FootprintMB: 180,
			MemIntensity: 0.85, AllocIntensity: 0.02, IOIntensity: 0.02,
			Parallelism: 1, CodeComplexity: 0.65, SyscallIntensity: 0.02,
		}),
		w("fp.raytrace", Demand{ // povray-like: FP + branchy
			WorkGOps: 85, FPFraction: 0.6, WorkingSetKB: 1100, FootprintMB: 60,
			MemIntensity: 0.6, AllocIntensity: 0.15, IOIntensity: 0.05,
			Parallelism: 1, CodeComplexity: 1.3, SyscallIntensity: 0.04,
		}),
		w("fp.weather", Demand{ // wrf-like: mixed FP with IO
			WorkGOps: 105, FPFraction: 0.7, WorkingSetKB: 2900, FootprintMB: 210,
			MemIntensity: 0.8, AllocIntensity: 0.05, IOIntensity: 0.2,
			Parallelism: 1, CodeComplexity: 1.0, SyscallIntensity: 0.08,
		}),
	}
}
