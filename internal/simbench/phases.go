package simbench

import (
	"fmt"
	"hash/fnv"
	"math"

	"hmeans/internal/chars"
)

// Phase identifies what a workload is doing at a point in its run.
// Real Java workloads are strongly phased — class loading and JIT
// compilation up front, periodic garbage-collection bursts, I/O
// flushes — and the paper's SAR campaign (15 samples at even
// intervals) observes those phases. The phase model modulates the
// steady-state latent factors per sample so the synthetic counters
// carry realistic time structure, which the averaging step of the
// characterization then collapses exactly as the paper's did.
type Phase int

const (
	// PhaseSteady is the workload's nominal behaviour.
	PhaseSteady Phase = iota
	// PhaseWarmup covers class loading and JIT compilation at the
	// start of the run: system-time heavy, user-IPC poor.
	PhaseWarmup
	// PhaseGC is a garbage-collection burst: faults and system time
	// spike, user CPU stalls.
	PhaseGC
	// PhaseIO is a buffered-I/O flush window.
	PhaseIO
)

// String returns the phase's name.
func (p Phase) String() string {
	switch p {
	case PhaseSteady:
		return "steady"
	case PhaseWarmup:
		return "warmup"
	case PhaseGC:
		return "gc"
	case PhaseIO:
		return "io"
	default:
		return "unknown"
	}
}

// PhaseAt returns the phase of workload w at normalized run time
// t ∈ [0, 1] on the given sample index (the index disambiguates
// deterministic burst placement). The schedule is a deterministic
// function of the demand profile:
//
//   - the first warmupFraction of the run is PhaseWarmup, longer for
//     complex code (more to JIT);
//   - allocation-heavy workloads take periodic PhaseGC bursts, more
//     frequent at higher AllocIntensity;
//   - I/O-heavy workloads take periodic PhaseIO windows.
func PhaseAt(w *Workload, t float64, sample int) Phase {
	d := w.Demand
	warmup := 0.06 + 0.05*d.CodeComplexity
	if t < warmup {
		return PhaseWarmup
	}
	// Deterministic burst placement: hash the sample slot.
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/burst/%d", w.Name, sample)
	u := float64(h.Sum64()%10000) / 10000
	gcShare := math.Min(0.45, 0.5*d.AllocIntensity)
	ioShare := math.Min(0.3, 0.6*d.IOIntensity)
	switch {
	case u < gcShare:
		return PhaseGC
	case u < gcShare+ioShare:
		return PhaseIO
	default:
		return PhaseSteady
	}
}

// phaseModulation scales the latent factors for a phase.
func phaseModulation(f latentFactors, p Phase) latentFactors {
	switch p {
	case PhaseWarmup:
		f.cpuUser *= 0.7
		f.cpuSys *= 1.9
		f.pgfault *= 1.8 // class loading faults pages in
		f.intr *= 1.2
		f.ioTPS *= 1.5 // reading class files
		f.ioRead *= 1.6
	case PhaseGC:
		f.cpuUser *= 0.55
		f.cpuSys *= 1.8
		f.pgfault *= 2.6
		f.majflt *= 1.6
		f.runq += 0.5
	case PhaseIO:
		f.cpuUser *= 0.8
		f.cpuIOWait *= 2.2
		f.ioTPS *= 2.0
		f.ioWrite *= 2.4
		f.intr *= 1.5
	}
	return f
}

// PhaseSchedule returns the phase of each of the campaign's samples
// for w, a diagnostic for inspecting the synthetic time structure.
func PhaseSchedule(w *Workload, samples int) []Phase {
	out := make([]Phase, samples)
	for s := range out {
		t := 0.0
		if samples > 1 {
			t = float64(s) / float64(samples-1)
		}
		out[s] = PhaseAt(w, t, s)
	}
	return out
}

// SARTablePhased characterizes each workload with phase-resolved
// vectors instead of whole-run averages: the samples are split into
// early/middle/late thirds, each third averaged separately, and the
// three averages concatenated (features get ".p0/.p1/.p2" suffixes).
// This is the "vertical profiling" style alternative to the paper's
// flat averaging; the ext-phases experiment compares the clusterings
// the two produce.
func SARTablePhased(ws []Workload, m Machine, spec SARSpec) (*chars.Table, error) {
	spec = spec.withDefaults()
	if spec.Samples < 3 {
		return nil, fmt.Errorf("simbench: phased characterization needs at least 3 samples, got %d", spec.Samples)
	}
	baseNames := SARCounterNames()
	features := make([]string, 0, 3*len(baseNames))
	for third := 0; third < 3; third++ {
		for _, n := range baseNames {
			features = append(features, fmt.Sprintf("%s.p%d", n, third))
		}
	}
	rows := make([][]float64, len(ws))
	for i := range ws {
		samples := SampleSAR(&ws[i], m, spec)
		row := make([]float64, 0, 3*len(baseNames))
		bounds := []int{0, len(samples) / 3, 2 * len(samples) / 3, len(samples)}
		for third := 0; third < 3; third++ {
			avg, err := chars.AverageSamples(samples[bounds[third]:bounds[third+1]])
			if err != nil {
				return nil, fmt.Errorf("simbench: phased averaging for %s: %w", ws[i].Name, err)
			}
			row = append(row, avg...)
		}
		rows[i] = row
	}
	return chars.NewTable(WorkloadNames(ws), features, rows)
}
