package simbench

import "math"

// ExecutionTime returns the modelled wall-clock seconds for one run
// of w on m, without measurement noise and without calibration
// residuals. The model is deliberately simple but physically shaped —
// every term corresponds to a mechanism the paper's machines actually
// differ in (cache capacity, memory capacity, core count, JIT,
// clock):
//
//	cpi    = 1/ipc(mix) + memStallCycles
//	time   = Work·cpi / clock · (1 + paging + gc + io) / (jit · par)
//
// Absolute times are only plausible, not validated; the methodology
// consumes speedups (ratios), which Calibrate fits to Table III.
func ExecutionTime(w *Workload, m Machine) float64 {
	d := w.Demand

	// Instruction throughput for the workload's int/FP mix.
	ipc := (1-d.FPFraction)*m.IntIPC + d.FPFraction*m.FPIPC

	// Cache behaviour: the fraction of the working set that spills
	// out of L2 turns MemIntensity accesses into memory stalls.
	spill := spillFraction(d.WorkingSetKB, m.L2KB)
	latencyCycles := m.MemLatencyNS * m.ClockGHz // ns × cycles/ns
	memStall := d.MemIntensity * spill * latencyCycles * 0.02

	cpi := 1/ipc + memStall

	// Memory-capacity pressure: once the live heap approaches
	// physical memory, the OS pages and the GC runs hot.
	occupancy := d.FootprintMB / m.MemoryMB
	paging := 0.0
	if occupancy > 0.5 {
		paging = 4 * (occupancy - 0.5) * (occupancy - 0.5)
	}
	gc := d.AllocIntensity * (0.15 + 0.6*occupancy)

	// I/O and network time scales with bus speed only weakly; treat
	// it as a fixed fraction of work per intensity unit.
	io := 0.4*d.IOIntensity + 0.3*d.NetIntensity + 0.2*d.SyscallIntensity

	// JIT quality helps complex object-oriented code the most.
	jit := math.Pow(m.JITQuality, d.CodeComplexity)

	// Thread-level parallelism: only as many threads as cores help,
	// with 70% scaling efficiency.
	eff := math.Min(d.Parallelism, float64(m.Cores))
	par := 1 + 0.7*(eff-1)

	seconds := d.WorkGOps * cpi / m.ClockGHz * (1 + paging + gc + io) / (jit * par)
	// Calibration residual (1.0 when uncalibrated).
	return seconds / w.Affinity(m.Name)
}

// spillFraction estimates how much of a working set misses in a
// cache of the given capacity: 0 when it fits, saturating toward 1 as
// the set grows to ~32× the cache.
func spillFraction(wsKB, cacheKB float64) float64 {
	if wsKB <= cacheKB {
		return 0
	}
	f := math.Log(wsKB/cacheKB) / math.Log(32)
	if f > 1 {
		return 1
	}
	return f
}

// Speedup returns the modelled execution-time speedup of w on m over
// the reference machine ref: time(ref)/time(m) — the paper's
// individual-workload score metric.
func Speedup(w *Workload, m, ref Machine) float64 {
	return ExecutionTime(w, ref) / ExecutionTime(w, m)
}
