package simbench

import (
	"context"
	"errors"

	"hmeans/internal/obs"
	"hmeans/internal/rng"
	"hmeans/internal/stat"
)

// RunResult is one simulated execution of a workload on a machine.
type RunResult struct {
	Workload string
	Machine  string
	// Seconds is the measured (noisy) wall-clock time.
	Seconds float64
}

// runNoise is the relative standard deviation of run-to-run time
// variation (scheduler jitter, GC timing, cache state).
const runNoise = 0.012

// Run simulates a single execution of w on m, perturbing the
// modelled time with multiplicative measurement noise drawn from r.
func Run(w *Workload, m Machine, r *rng.Source) RunResult {
	base := ExecutionTime(w, m)
	noisy := base * (1 + runNoise*r.NormFloat64())
	if noisy < base*0.9 {
		noisy = base * 0.9 // a run can't beat physics by much
	}
	return RunResult{Workload: w.Name, Machine: m.Name, Seconds: noisy}
}

// MeasureTime runs w on m `runs` times and returns the mean time,
// mirroring the paper's "executed 10 times on each machine, and the
// average execution time was used".
func MeasureTime(w *Workload, m Machine, runs int, r *rng.Source) (float64, error) {
	if runs <= 0 {
		return 0, errors.New("simbench: runs must be positive")
	}
	times := make([]float64, runs)
	for i := range times {
		times[i] = Run(w, m, r).Seconds
	}
	return stat.ArithmeticMean(times)
}

// Measurement is a run campaign summary: the mean time and a
// bootstrap confidence interval around it.
type Measurement struct {
	// Mean is the average wall-clock seconds over the runs.
	Mean float64
	// CI is the percentile-bootstrap confidence interval of the mean.
	CI stat.Interval
	// Times holds the individual run times.
	Times []float64
}

// MeasureTimeStats runs w on m `runs` times and returns the mean with
// a bootstrap confidence interval at the given level — the interval a
// responsible benchmark report attaches to a score. Needs at least
// two runs.
func MeasureTimeStats(w *Workload, m Machine, runs int, level float64, r *rng.Source) (Measurement, error) {
	if runs < 2 {
		return Measurement{}, errors.New("simbench: need at least two runs for an interval")
	}
	times := make([]float64, runs)
	for i := range times {
		times[i] = Run(w, m, r).Seconds
	}
	mean, err := stat.ArithmeticMean(times)
	if err != nil {
		return Measurement{}, err
	}
	ci, err := stat.BootstrapCI(times, level, 400, r.Uint64(), stat.ArithmeticMean)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Mean: mean, CI: ci, Times: times}, nil
}

// MeasuredSpeedups measures every workload on the target machine and
// the reference (runs executions each, averaged) and returns the
// speedups time(ref)/time(target) in workload order. The seed makes
// the measurement campaign reproducible.
func MeasuredSpeedups(ws []Workload, target, ref Machine, runs int, seed uint64) ([]float64, error) {
	return MeasuredSpeedupsCtx(context.Background(), ws, target, ref, runs, seed)
}

// recordCampaign folds one measurement campaign into the registry:
// campaigns run and simulated executions performed (each workload runs
// `runs` times on both machines).
func recordCampaign(o *obs.Observer, workloads, runs int) {
	if !o.Active() {
		return
	}
	reg := o.Metrics()
	reg.Counter("simbench.campaigns").Add(1)
	reg.Counter("simbench.executions").Add(int64(2 * workloads * runs))
}

// MeasuredSpeedupsParallel is MeasuredSpeedups with the per-workload
// measurement campaigns spread across `workers` goroutines. Each
// workload draws its noise from a private sub-stream seeded up front
// from the campaign seed, so the result depends only on (ws, seed) —
// identical for every worker count — but the individual noise draws
// differ from MeasuredSpeedups' single shared stream.
func MeasuredSpeedupsParallel(ws []Workload, target, ref Machine, runs int, seed uint64, workers int) ([]float64, error) {
	return MeasuredSpeedupsParallelCtx(context.Background(), ws, target, ref, runs, seed, workers)
}
