package simbench

import (
	"math"
	"testing"

	"hmeans/internal/vecmath"
)

func TestCPU2006LikeWorkloads(t *testing.T) {
	ws := CPU2006LikeWorkloads()
	if len(ws) != 12 {
		t.Fatalf("suite has %d workloads", len(ws))
	}
	seen := map[string]bool{}
	for i := range ws {
		w := &ws[i]
		if seen[w.Name] {
			t.Fatalf("duplicate %s", w.Name)
		}
		seen[w.Name] = true
		if w.Suite != CPU2006Like {
			t.Errorf("%s has suite %s", w.Name, w.Suite)
		}
		if err := validateDemand(w.Demand); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		// The native workloads must run through the execution model
		// and SAR sampler.
		for _, m := range []Machine{MachineA(), MachineB(), Reference()} {
			if sec := ExecutionTime(w, m); sec <= 0 || math.IsNaN(sec) {
				t.Errorf("%s on %s: time %v", w.Name, m.Name, sec)
			}
		}
		if len(SampleSAR(w, MachineA(), SARSpec{Seed: 1})) != 15 {
			t.Errorf("%s: SAR sampling failed", w.Name)
		}
	}
}

func TestCPU2006CodecsCoherent(t *testing.T) {
	// The planted adoption set must be mutually closer in
	// micro-independent space than to any other workload.
	ws := CPU2006LikeWorkloads()
	tab, err := MicroIndepTable(ws)
	if err != nil {
		t.Fatal(err)
	}
	// Standardize columns.
	cols := len(tab.Features)
	for j := 0; j < cols; j++ {
		var sum, sumSq float64
		for i := range tab.Rows {
			sum += tab.Rows[i][j]
			sumSq += tab.Rows[i][j] * tab.Rows[i][j]
		}
		mean := sum / float64(len(tab.Rows))
		sd := math.Sqrt(sumSq/float64(len(tab.Rows)) - mean*mean)
		for i := range tab.Rows {
			if sd > 0 {
				tab.Rows[i][j] = (tab.Rows[i][j] - mean) / sd
			} else {
				tab.Rows[i][j] = 0
			}
		}
	}
	vecs := tab.Vectors()
	isLZ := func(i int) bool {
		n := tab.Workloads[i]
		return n == "int.lzA" || n == "int.lzB" || n == "int.lzC"
	}
	var maxWithin float64
	minAcross := math.Inf(1)
	for i := range vecs {
		if !isLZ(i) {
			continue
		}
		for j := range vecs {
			if i == j {
				continue
			}
			d := vecmath.EuclideanDistance(vecs[i], vecs[j])
			if isLZ(j) {
				if d > maxWithin {
					maxWithin = d
				}
			} else if d < minAcross {
				minAcross = d
			}
		}
	}
	if maxWithin >= minAcross {
		t.Fatalf("codecs not coherent: within %v >= across %v", maxWithin, minAcross)
	}
}
