package simbench

import (
	"math"

	"hmeans/internal/chars"
)

// MicroIndepTable builds the characterization the paper proposes as
// future work for non-Java workloads (Section V-C: "By employing
// other microarchitecture independent workload features, e.g.,
// instruction mix, memory stride, etc., we expect the workload
// clusters to appear similar over a variety of machines"): a vector
// of program-intrinsic features — instruction mix, memory-stride
// distribution, footprint, branch behaviour, parallelism — derived
// from each workload's demand profile and from nothing
// machine-specific. Unlike the SAR view, this table is identical no
// matter which machine the suite runs on.
func MicroIndepTable(ws []Workload) (*chars.Table, error) {
	features := []string{
		// Instruction mix (fractions of dynamic instructions).
		"mix.int", "mix.fp", "mix.load", "mix.store", "mix.branch",
		// Memory behaviour.
		"mem.stride1", "mem.stride8", "mem.strideRand",
		"mem.log2WorkingSetKB", "mem.log2FootprintMB", "mem.accessPerOp",
		// Control behaviour.
		"ctl.branchEntropy", "ctl.codeComplexity",
		// Runtime behaviour (still machine-independent: properties of
		// the program, not of the host).
		"rt.allocPerOp", "rt.ioPerOp", "rt.netPerOp", "rt.syscallPerOp",
		"rt.threads",
	}
	rows := make([][]float64, len(ws))
	for i := range ws {
		rows[i] = microIndepVector(&ws[i].Demand)
	}
	return chars.NewTable(WorkloadNames(ws), features, rows)
}

// microIndepVector derives the feature vector from a demand profile.
// The derivations are simple program-structure arguments: memory
// accesses split into loads and stores ~2:1; branch density rises
// with code complexity; stride regularity falls as the working set's
// access pattern becomes pointer-driven (approximated by the ratio of
// memory intensity to working-set compactness).
func microIndepVector(d *Demand) []float64 {
	// Fraction of dynamic instructions that touch memory: an op with
	// MemIntensity accesses per operation spends m/(1+m) of its
	// instruction stream on loads/stores.
	memFrac := d.MemIntensity / (1 + d.MemIntensity)
	loads := memFrac * 2 / 3
	stores := memFrac / 3
	branch := (0.08 + 0.09*d.CodeComplexity) * (1 - memFrac)
	compute := 1 - memFrac - branch
	intOps := compute * (1 - d.FPFraction)
	fpOps := compute * d.FPFraction

	// Stride distribution: numeric kernels with small working sets
	// stream unit-stride; large-footprint object-graph code chases
	// pointers (random strides). The middle ground strides regularly
	// but coarsely (row-major grids, records).
	irregular := clamp01(0.15 + 0.5*math.Log1p(d.AllocIntensity*4) + 0.000_15*d.FootprintMB)
	stride1 := (1 - irregular) * (1 - 0.3*d.FPFraction)
	stride8 := (1 - irregular) * 0.3 * d.FPFraction
	strideRand := irregular

	return []float64{
		intOps, fpOps, loads, stores, branch,
		stride1, stride8, strideRand,
		math.Log2(d.WorkingSetKB), math.Log2(d.FootprintMB), d.MemIntensity,
		clamp01(0.2 + 0.35*d.CodeComplexity), d.CodeComplexity,
		d.AllocIntensity, d.IOIntensity, d.NetIntensity, d.SyscallIntensity,
		d.Parallelism,
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
