package simbench

import (
	"strings"
	"testing"
)

func validDemand() Demand {
	return Demand{
		WorkGOps: 50, FPFraction: 0.8, WorkingSetKB: 100, FootprintMB: 8,
		MemIntensity: 0.4, AllocIntensity: 0.01, Parallelism: 1, CodeComplexity: 0.6,
	}
}

func TestNewWorkloadValid(t *testing.T) {
	w, err := NewWorkload("SciMark2.Jacobi", SciMark2, validDemand(),
		[]string{"java.lang", "scimark.kernel"})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "SciMark2.Jacobi" || w.Suite != SciMark2 {
		t.Fatalf("workload = %+v", w)
	}
	// The custom workload must work through the whole substrate.
	if sec := ExecutionTime(&w, MachineA()); sec <= 0 {
		t.Fatalf("execution time %v", sec)
	}
	if len(MethodProfile(&w)) == 0 {
		t.Fatal("no method profile")
	}
	samples := SampleSAR(&w, MachineB(), SARSpec{Seed: 1})
	if len(samples) != 15 {
		t.Fatal("SAR sampling failed")
	}
}

func TestNewWorkloadValidation(t *testing.T) {
	good := validDemand()
	cases := []struct {
		name    string
		mutate  func(*Demand)
		domains []string
	}{
		{"", nil, []string{"java.lang"}},
		{"w", func(d *Demand) { d.WorkGOps = 0 }, []string{"java.lang"}},
		{"w", func(d *Demand) { d.FPFraction = 1.5 }, []string{"java.lang"}},
		{"w", func(d *Demand) { d.WorkingSetKB = -1 }, []string{"java.lang"}},
		{"w", func(d *Demand) { d.FootprintMB = 0 }, []string{"java.lang"}},
		{"w", func(d *Demand) { d.MemIntensity = -0.1 }, []string{"java.lang"}},
		{"w", func(d *Demand) { d.Parallelism = 0 }, []string{"java.lang"}},
		{"w", func(d *Demand) { d.CodeComplexity = 0 }, []string{"java.lang"}},
		{"w", nil, nil},
		{"w", nil, []string{"no.such.domain"}},
	}
	for i, c := range cases {
		d := good
		if c.mutate != nil {
			c.mutate(&d)
		}
		if _, err := NewWorkload(c.name, SciMark2, d, c.domains); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestExtendSuite(t *testing.T) {
	base := BaseWorkloads()
	extra, err := NewWorkload("SciMark2.Jacobi", SciMark2, validDemand(),
		[]string{"java.lang", "scimark.kernel"})
	if err != nil {
		t.Fatal(err)
	}
	extended, err := ExtendSuite(base, extra)
	if err != nil {
		t.Fatal(err)
	}
	if len(extended) != 14 {
		t.Fatalf("extended suite has %d workloads", len(extended))
	}
	// Duplicates rejected.
	if _, err := ExtendSuite(extended, extra); err == nil {
		t.Error("duplicate addition accepted")
	}
	dup := base[0]
	if _, err := ExtendSuite(append(base, dup)); err == nil {
		t.Error("duplicate base accepted")
	}
}

func TestExtendSuiteDoesNotAliasBase(t *testing.T) {
	base := BaseWorkloads()
	extra, _ := NewWorkload("X.y", DaCapo, validDemand(), []string{"java.lang"})
	extended, err := ExtendSuite(base[:3], extra)
	if err != nil {
		t.Fatal(err)
	}
	extended[0].Name = "mutated"
	if base[0].Name == "mutated" {
		t.Fatal("ExtendSuite aliases base storage")
	}
}

func TestMethodDomainNames(t *testing.T) {
	names := MethodDomainNames()
	if len(names) != len(methodDomains) {
		t.Fatalf("%d names for %d domains", len(names), len(methodDomains))
	}
	if !sortIsSorted(names) {
		t.Fatal("names not sorted")
	}
	found := false
	for _, n := range names {
		if n == "scimark.kernel" {
			found = true
		}
	}
	if !found {
		t.Fatal("scimark.kernel missing")
	}
}

func sortIsSorted(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

// TestProposedAdoptionScenario is the end-to-end consortium question:
// adding a sixth numeric kernel must deepen the SciMark redundancy
// cluster, not diversify the suite.
func TestProposedAdoptionScenario(t *testing.T) {
	ws, _, err := CalibratedSuite()
	if err != nil {
		t.Fatal(err)
	}
	jacobi, err := NewWorkload("SciMark2.Jacobi", SciMark2, Demand{
		WorkGOps: 66, FPFraction: 0.88, WorkingSetKB: 90, FootprintMB: 5,
		MemIntensity: 0.42, AllocIntensity: 0.01, IOIntensity: 0.005,
		Parallelism: 1, CodeComplexity: 0.55, SyscallIntensity: 0.02,
	}, []string{"java.lang", "scimark.kernel", "scimark.sor"})
	if err != nil {
		t.Fatal(err)
	}
	extended, err := ExtendSuite(ws, jacobi)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := HprofTable(extended)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 14 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// In the bit view the new kernel shares the SciMark coverage
	// group, so its usage of the common library domains (java.lang
	// and the self-contained math kernel) must be identical to the
	// other kernels'. (Its kernel-specific domains legitimately
	// differ.)
	last := len(tab.Rows) - 1
	for j, name := range tab.Features {
		if !strings.HasPrefix(name, "java.lang") && !strings.HasPrefix(name, "jnt.scimark2.kernel") {
			continue
		}
		if tab.Rows[last][j] != tab.Rows[5][j] { // FFT is index 5
			t.Fatalf("new kernel differs from FFT on shared method %s", name)
		}
	}
}
