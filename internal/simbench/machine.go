// Package simbench is the simulated benchmarking substrate standing
// in for the paper's physical testbed (Table II) and real Java
// workloads (Table I).
//
// The paper measured a hypothetical SPECjvm2007-like suite on three
// machines (a dual Xeon "A", a Pentium 4 "B" and an UltraSPARC
// reference). We do not have that hardware, so this package models
// it: each workload carries a resource-demand profile, each machine a
// capability profile, and an analytic execution model derives run
// times from the two. A calibration pass (calibrate.go) fits the
// per-workload demands — plus small per-machine residuals, exactly as
// one calibrates an architectural simulator against silicon — so the
// suite reproduces the paper's Table III speedups. The same demand
// profiles drive the synthetic SAR counter sampler (sar.go) and the
// hprof-style method profiler (hprof.go) used for workload
// characterization, so "similar" workloads are similar for the same
// underlying reason in every view the pipeline sees.
package simbench

// Machine models one hardware/JVM configuration from the paper's
// Table II.
type Machine struct {
	// Name identifies the machine ("A", "B", "reference").
	Name string
	// CPU is a human-readable processor description.
	CPU string
	// ClockGHz is the core clock.
	ClockGHz float64
	// Cores is the number of hardware threads the JVM can use
	// (HyperThreading was disabled in the paper's setup).
	Cores int
	// L2KB is the last-level cache size in KiB.
	L2KB float64
	// BusMHz is the front-side bus speed.
	BusMHz float64
	// MemoryMB is the installed RAM.
	MemoryMB float64
	// IntIPC and FPIPC are sustained instructions-per-cycle for
	// integer-dominated and floating-point-dominated code.
	IntIPC, FPIPC float64
	// MemLatencyNS is the main-memory access latency seen by a
	// last-level cache miss.
	MemLatencyNS float64
	// JITQuality scales generated-code quality (1.0 = the model's
	// baseline JIT; the JRockit machines run a stronger compiler
	// than the reference HotSpot of 2006).
	JITQuality float64
	// OS and JVM document the software stack (Table II metadata).
	OS, JVM string
}

// MachineA returns the paper's machine A: dual Intel Xeon, 3.00 GHz,
// 2 MB L2, 800 MHz bus, 2 GB memory, JRockit R26.4.
func MachineA() Machine {
	return Machine{
		Name:         "A",
		CPU:          "Dual Intel Xeon 3.00 GHz (HT disabled)",
		ClockGHz:     3.0,
		Cores:        2,
		L2KB:         2048,
		BusMHz:       800,
		MemoryMB:     2048,
		IntIPC:       1.05,
		FPIPC:        0.45,
		MemLatencyNS: 95,
		JITQuality:   1.35,
		OS:           "Red Hat Enterprise Linux WS 4 (2.6.9-34.0.1.ELsmp)",
		JVM:          "BEA JRockit R26.4.0-jdk1.5.0_06 (32 bit)",
	}
}

// MachineB returns the paper's machine B: Intel Pentium 4, 3.00 GHz,
// 512 KB L2, 800 MHz bus, 512 MB memory, JRockit R26.4.
func MachineB() Machine {
	return Machine{
		Name:         "B",
		CPU:          "Intel Pentium 4 3.00 GHz (HT disabled)",
		ClockGHz:     3.0,
		Cores:        1,
		L2KB:         512,
		BusMHz:       800,
		MemoryMB:     512,
		IntIPC:       0.95,
		FPIPC:        0.42,
		MemLatencyNS: 90,
		JITQuality:   1.35,
		OS:           "Red Hat Enterprise Linux WS 4 (2.6.9-42.0.3.ELsmp)",
		JVM:          "BEA JRockit R26.4.0-jdk1.5.0_06 (32 bit)",
	}
}

// Reference returns the paper's reference machine: Sun UltraSPARC III
// Cu 1.2 GHz, 8 MB external L2, 1 GB memory, HotSpot 1.5. Workload
// scores are execution-time speedups over this machine.
func Reference() Machine {
	return Machine{
		Name:         "reference",
		CPU:          "Sun UltraSPARC III Cu 1.2 GHz",
		ClockGHz:     1.2,
		Cores:        1,
		L2KB:         8192,
		BusMHz:       800,
		MemoryMB:     1024,
		IntIPC:       0.9,
		FPIPC:        1.15,
		MemLatencyNS: 140,
		JITQuality:   1.0,
		OS:           "Solaris 8",
		JVM:          "Sun Java HotSpot build 1.5.0_09-b01",
	}
}
