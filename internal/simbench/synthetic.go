package simbench

import (
	"hmeans/internal/rng"
	"hmeans/internal/vecmath"
)

// SyntheticSpec describes a seeded clustered-Gaussian point cloud:
// Clusters centers drawn uniformly in [0, 10)^Dims, then N points
// assigned round-robin to the centers with isotropic Gaussian noise
// of standard deviation Spread around each. The cloud is a pure
// function of the spec — same spec, same bits, on every machine —
// which is what lets the suite-scale clustering benchmarks and the
// large-n campaign in EXPERIMENTS.md name their inputs by seed
// instead of shipping data files.
//
// The shape mimics what the paper's pipeline hands its clustering
// stage at scale: compact workload blobs separated by much more than
// their internal spread, so merge heights are distinct with
// probability one and every agglomeration algorithm produces the
// identical tree.
type SyntheticSpec struct {
	// N is the point count (minimum 1).
	N int
	// Dims is the point dimensionality (0 means 3, the SOM-position
	// scale the pipeline clusters at plus one).
	Dims int
	// Clusters is the number of Gaussian blobs (0 means 8; clamped
	// to N).
	Clusters int
	// Seed drives center placement and the per-point noise.
	Seed uint64
	// Spread is the per-coordinate standard deviation around each
	// center (0 means 0.05 — tight blobs in a [0, 10) box).
	Spread float64
}

// Points materializes the cloud. One rng stream, consumed in a fixed
// order (centers first, then points), makes the result deterministic;
// callers own the returned vectors.
func (s SyntheticSpec) Points() []vecmath.Vector {
	n := s.N
	if n < 1 {
		n = 1
	}
	dims := s.Dims
	if dims <= 0 {
		dims = 3
	}
	k := s.Clusters
	if k <= 0 {
		k = 8
	}
	if k > n {
		k = n
	}
	spread := s.Spread
	if spread <= 0 {
		spread = 0.05
	}
	r := rng.New(s.Seed)
	centers := make([]vecmath.Vector, k)
	for c := range centers {
		v := vecmath.NewVector(dims)
		for j := range v {
			v[j] = r.Float64() * 10
		}
		centers[c] = v
	}
	// One backing array for all points: at n=100k the per-vector
	// allocation overhead would dominate the generator.
	flat := make([]float64, n*dims)
	pts := make([]vecmath.Vector, n)
	for i := range pts {
		c := centers[i%k]
		v := vecmath.Vector(flat[i*dims : (i+1)*dims : (i+1)*dims])
		for j := range v {
			v[j] = c[j] + r.NormFloat64()*spread
		}
		pts[i] = v
	}
	return pts
}
