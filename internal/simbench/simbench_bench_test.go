package simbench

import (
	"testing"

	"hmeans/internal/rng"
)

func BenchmarkExecutionTime(b *testing.B) {
	b.ReportAllocs()
	ws, _, err := CalibratedSuite()
	if err != nil {
		b.Fatal(err)
	}
	m := MachineA()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExecutionTime(&ws[i%len(ws)], m)
	}
}

func BenchmarkCalibration(b *testing.B) {
	b.ReportAllocs()
	machines := []Machine{MachineA(), MachineB()}
	ref := Reference()
	targets := TableIIITargets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Calibrate(BaseWorkloads(), machines, ref, targets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSampleSAR(b *testing.B) {
	b.ReportAllocs()
	ws, _, err := CalibratedSuite()
	if err != nil {
		b.Fatal(err)
	}
	m := MachineA()
	spec := SARSpec{Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleSAR(&ws[i%len(ws)], m, spec)
	}
}

func BenchmarkSARTable(b *testing.B) {
	b.ReportAllocs()
	ws, _, err := CalibratedSuite()
	if err != nil {
		b.Fatal(err)
	}
	m := MachineB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SARTable(ws, m, SARSpec{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHprofTable(b *testing.B) {
	b.ReportAllocs()
	ws, _, err := CalibratedSuite()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := HprofTable(ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureTime(b *testing.B) {
	b.ReportAllocs()
	ws, _, err := CalibratedSuite()
	if err != nil {
		b.Fatal(err)
	}
	m := MachineA()
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MeasureTime(&ws[i%len(ws)], m, 10, r); err != nil {
			b.Fatal(err)
		}
	}
}
