package simbench

import (
	"math"
	"strings"
	"testing"

	"hmeans/internal/vecmath"
)

func TestSARCounterNames(t *testing.T) {
	names := SARCounterNames()
	// The paper used "a couple hundred counters"; our synthetic set
	// must be in that regime.
	if len(names) < 150 || len(names) > 300 {
		t.Fatalf("counter count = %d, want a couple hundred", len(names))
	}
	seen := map[string]bool{}
	consts := 0
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
		if strings.HasPrefix(n, "const.") {
			consts++
		}
	}
	if consts != constChannels {
		t.Fatalf("constant channels = %d, want %d", consts, constChannels)
	}
}

func TestSampleSARShapeAndDeterminism(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	spec := SARSpec{Seed: 5}
	s1 := SampleSAR(&ws[0], MachineA(), spec)
	s2 := SampleSAR(&ws[0], MachineA(), spec)
	if len(s1) != 15 {
		t.Fatalf("samples = %d, want 15 (paper's campaign)", len(s1))
	}
	names := SARCounterNames()
	for i := range s1 {
		if len(s1[i]) != len(names) {
			t.Fatalf("sample %d width %d, want %d", i, len(s1[i]), len(names))
		}
		for j := range s1[i] {
			if s1[i][j] != s2[i][j] {
				t.Fatal("SAR sampling is not deterministic")
			}
			if s1[i][j] < 0 || math.IsNaN(s1[i][j]) {
				t.Fatalf("invalid counter value %v", s1[i][j])
			}
		}
	}
}

func TestSARConstantChannelsConstant(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	tab, err := SARTable(ws, MachineB(), SARSpec{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for j, name := range tab.Features {
		if !strings.HasPrefix(name, "const.") {
			continue
		}
		for i := 1; i < len(tab.Rows); i++ {
			if tab.Rows[i][j] != tab.Rows[0][j] {
				t.Fatalf("constant channel %s varies", name)
			}
		}
	}
}

func TestSARNoiseIndependentPerWorkload(t *testing.T) {
	// Adding a workload must not change another workload's samples:
	// noise streams are keyed per (workload, machine, seed).
	ws, _, _ := CalibratedSuite()
	spec := SARSpec{Seed: 9}
	solo := SampleSAR(&ws[2], MachineA(), spec)
	again := SampleSAR(&ws[2], MachineA(), spec)
	for i := range solo {
		for j := range solo[i] {
			if solo[i][j] != again[i][j] {
				t.Fatal("per-workload noise stream not stable")
			}
		}
	}
}

// sciMarkCoherence checks the load-bearing property of the synthetic
// SAR view: the five SciMark2 kernels must be mutually closer than
// they are to the rest of the suite.
func TestSciMarkCoherentInSARSpace(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	for _, m := range []Machine{MachineA(), MachineB()} {
		tab, err := SARTable(ws, m, SARSpec{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Standardize a copy (as the pipeline would).
		work := tab.Clone()
		vecs := make([]vecmath.Vector, len(work.Rows))
		// Column-standardize manually to avoid importing chars here.
		cols := len(work.Features)
		for j := 0; j < cols; j++ {
			var sum, sumSq float64
			for i := range work.Rows {
				sum += work.Rows[i][j]
				sumSq += work.Rows[i][j] * work.Rows[i][j]
			}
			mean := sum / float64(len(work.Rows))
			sd := math.Sqrt(sumSq/float64(len(work.Rows)) - mean*mean)
			for i := range work.Rows {
				if sd > 0 {
					work.Rows[i][j] = (work.Rows[i][j] - mean) / sd
				} else {
					work.Rows[i][j] = 0
				}
			}
		}
		for i := range work.Rows {
			vecs[i] = vecmath.Vector(work.Rows[i])
		}
		// SciMark indices are 5..9 in suite order.
		var within, across []float64
		for i := 5; i <= 9; i++ {
			for j := 5; j <= 9; j++ {
				if i < j {
					within = append(within, vecmath.EuclideanDistance(vecs[i], vecs[j]))
				}
			}
			for j := 0; j < 13; j++ {
				if j < 5 || j > 9 {
					across = append(across, vecmath.EuclideanDistance(vecs[i], vecs[j]))
				}
			}
		}
		maxWithin, minAcross := 0.0, math.Inf(1)
		for _, d := range within {
			if d > maxWithin {
				maxWithin = d
			}
		}
		for _, d := range across {
			if d < minAcross {
				minAcross = d
			}
		}
		if maxWithin >= minAcross {
			t.Fatalf("machine %s: SciMark2 not coherent: maxWithin %v >= minAcross %v",
				m.Name, maxWithin, minAcross)
		}
	}
}

func TestMachineDependentCharacterization(t *testing.T) {
	// The same workload must look different on A and B (the paper's
	// machine-dependence finding) — at minimum hsqldb, which pages on
	// B but not on A.
	ws, _, _ := CalibratedSuite()
	var hsqldb *Workload
	for i := range ws {
		if ws[i].Name == "DaCapo.hsqldb" {
			hsqldb = &ws[i]
		}
	}
	fa := latents(hsqldb, MachineA())
	fb := latents(hsqldb, MachineB())
	if fb.swap <= fa.swap {
		t.Fatalf("hsqldb swap activity on B (%v) should exceed A (%v)", fb.swap, fa.swap)
	}
	if fb.majflt <= fa.majflt {
		t.Fatalf("hsqldb major faults on B (%v) should exceed A (%v)", fb.majflt, fa.majflt)
	}
}

func TestSARTableShape(t *testing.T) {
	ws, _, _ := CalibratedSuite()
	tab, err := SARTable(ws, MachineA(), SARSpec{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Workloads) != 13 || len(tab.Rows) != 13 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Features))
	}
	if len(tab.Features) != len(SARCounterNames()) {
		t.Fatalf("feature count %d != counter count %d", len(tab.Features), len(SARCounterNames()))
	}
}

func TestChannelGainRange(t *testing.T) {
	for i := 0; i < 50; i++ {
		g := channelGain("cpu.user", i)
		if g < 0.4 || g > 1.6 {
			t.Fatalf("gain %v out of range", g)
		}
	}
	if channelGain("cpu.user", 0) == channelGain("cpu.user", 1) {
		t.Fatal("gains not differentiated per channel")
	}
	if channelGain("cpu.user", 0) != channelGain("cpu.user", 0) {
		t.Fatal("gain not deterministic")
	}
}
