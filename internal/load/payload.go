package load

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"hmeans/internal/dataio"
	"hmeans/internal/rng"
	"hmeans/internal/service"
)

// Kind classifies one request in the payload mix.
type Kind uint8

// The payload kinds. Hits replay one fixed request (after the first
// compute every reply comes from the content-addressed cache), misses
// carry a unique SOM seed each (distinct cache key, full pipeline
// run), and invalids are rejected by request validation with a 400
// before any computation — the cheap-failure traffic a public
// endpoint sees constantly.
const (
	KindHit Kind = iota
	KindMiss
	KindInvalid
)

// String names the kind for reports and test failures.
func (k Kind) String() string {
	switch k {
	case KindHit:
		return "hit"
	case KindMiss:
		return "miss"
	case KindInvalid:
		return "invalid"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Mix is a payload composition in percent. The three shares must sum
// to 100.
type Mix struct {
	HitPct     int
	MissPct    int
	InvalidPct int
}

// ParseMix parses a -mix flag value like "hit=60,miss=30,invalid=10".
// Omitted components default to 0; the shares must sum to 100.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("bad mix component %q (want name=percent)", part)
		}
		pct, err := strconv.Atoi(val)
		if err != nil || pct < 0 || pct > 100 {
			return Mix{}, fmt.Errorf("bad mix percentage %q for %q", val, name)
		}
		switch name {
		case "hit":
			m.HitPct = pct
		case "miss":
			m.MissPct = pct
		case "invalid":
			m.InvalidPct = pct
		default:
			return Mix{}, fmt.Errorf("unknown mix component %q (want hit, miss or invalid)", name)
		}
	}
	if sum := m.HitPct + m.MissPct + m.InvalidPct; sum != 100 {
		return Mix{}, fmt.Errorf("mix percentages sum to %d, want 100", sum)
	}
	return m, nil
}

// String renders the mix in ParseMix's format.
func (m Mix) String() string {
	return fmt.Sprintf("hit=%d,miss=%d,invalid=%d", m.HitPct, m.MissPct, m.InvalidPct)
}

// PayloadSet is the fully materialized request sequence of one run:
// the kind, the pre-encoded body and the expected HTTP status of
// request i. Everything is built before the run starts, so the hot
// send loop never marshals JSON, and the whole sequence is a pure
// function of (base, mix, n, seed) — same seed, same payloads.
type PayloadSet struct {
	Kinds  []Kind
	Bodies [][]byte
	// Expect is the status a healthy unloaded daemon returns for each
	// request: 200 for hits and misses, 400 for invalids. Any other
	// reply (except a 429 shed) is a contract violation the report
	// counts as a mismatch.
	Expect []int
}

// missSeedBase offsets the per-miss SOM seeds away from the run seed
// so a miss can never collide with the fixed hit payload's cache key.
const missSeedBase = 1 << 32

// BuildPayloads assigns each of the n requests a kind (deterministic
// seeded draw, proportions per mix) and pre-encodes its body from the
// base request. The base's own Config.Seed is the hit payload's
// identity; misses get unique seeds missSeedBase+i.
func BuildPayloads(base *service.Request, mix Mix, n int, seed uint64) (*PayloadSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("load: payloads need n > 0, got %d", n)
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("load: base request invalid: %w", err)
	}
	hitBody, err := json.Marshal(base)
	if err != nil {
		return nil, err
	}
	// The invalid payload asks for a negative cut: rejected by
	// Request.Validate with a 400 before any pipeline work, like the
	// malformed traffic a deployed scorer sheds all day.
	badReq := *base
	badReq.K = -1
	invalidBody, err := json.Marshal(&badReq)
	if err != nil {
		return nil, err
	}

	ps := &PayloadSet{
		Kinds:  make([]Kind, n),
		Bodies: make([][]byte, n),
		Expect: make([]int, n),
	}
	src := rng.New(seed)
	for i := 0; i < n; i++ {
		kind := KindInvalid
		switch draw := src.Intn(100); {
		case draw < mix.HitPct:
			kind = KindHit
		case draw < mix.HitPct+mix.MissPct:
			kind = KindMiss
		}
		ps.Kinds[i] = kind
		switch kind {
		case KindHit:
			ps.Bodies[i] = hitBody
			ps.Expect[i] = http.StatusOK
		case KindMiss:
			miss := *base
			miss.Config.Seed = missSeedBase + uint64(i)
			body, err := json.Marshal(&miss)
			if err != nil {
				return nil, err
			}
			ps.Bodies[i] = body
			ps.Expect[i] = http.StatusOK
		case KindInvalid:
			ps.Bodies[i] = invalidBody
			ps.Expect[i] = http.StatusBadRequest
		}
	}
	return ps, nil
}

// Counts tallies the set per kind, for the report's config echo.
func (ps *PayloadSet) Counts() map[string]int {
	out := make(map[string]int, 3)
	for _, k := range ps.Kinds {
		out[k.String()]++
	}
	return out
}

// SyntheticBaseRequest builds a well-formed scoring request with n
// workloads and f features — two separated blobs plus a smooth score
// vector — for hermetic runs that should not depend on CSV inputs.
// The shape matches the service tests' fixture so a load run and the
// unit suite exercise the same kind of geometry.
func SyntheticBaseRequest(n, f int, seed uint64) *service.Request {
	req := &service.Request{
		Config: service.ConfigJSON{Seed: seed},
		Scores: map[string][]float64{"scores": make([]float64, n)},
	}
	for i := 0; i < n; i++ {
		req.Table.Workloads = append(req.Table.Workloads, fmt.Sprintf("wl%02d", i))
		row := make([]float64, f)
		for j := 0; j < f; j++ {
			base := 1.0
			if i >= n/2 {
				base = 9.0
			}
			row[j] = base + 0.1*float64(i) + 0.01*float64(j*i)
		}
		req.Table.Rows = append(req.Table.Rows, row)
		req.Scores["scores"][i] = 1.0 + 0.25*float64(i)
	}
	for j := 0; j < f; j++ {
		req.Table.Features = append(req.Table.Features, fmt.Sprintf("feat%d", j))
	}
	return req
}

// BaseRequestFromCSV loads the same workload,score + characterization
// CSV pair the batch CLI and hmeansctl take and assembles the base
// scoring request — so the load gate drives the daemon with the
// paper's real 13-workload case study, not a synthetic stand-in.
func BaseRequestFromCSV(scoresPath, charsPath, kind string, seed uint64) (*service.Request, error) {
	sf, err := os.Open(scoresPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	scores, err := dataio.ReadScores(sf)
	if err != nil {
		return nil, err
	}
	cf, err := os.Open(charsPath)
	if err != nil {
		return nil, err
	}
	defer cf.Close()
	m, err := dataio.ReadMatrix(cf)
	if err != nil {
		return nil, err
	}
	rowOf := make(map[string][]float64, len(m.Workloads))
	for i, name := range m.Workloads {
		rowOf[name] = m.Rows[i]
	}
	rows := make([][]float64, len(scores.Workloads))
	for i, name := range scores.Workloads {
		row, ok := rowOf[name]
		if !ok {
			return nil, fmt.Errorf("workload %q has a score but no characterization row", name)
		}
		rows[i] = row
	}
	return &service.Request{
		Table: service.TableJSON{
			Workloads: scores.Workloads,
			Features:  m.Features,
			Rows:      rows,
		},
		Scores: map[string][]float64{"scores": scores.Values},
		Config: service.ConfigJSON{Kind: kind, Seed: seed},
	}, nil
}
