package load

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"hmeans/internal/obs"
	"hmeans/internal/service"
)

// Daemon is a self-managed scoring service for hermetic load runs:
// the same service stack cmd/hmeansd serves (service.Server behind
// its Handler, observability endpoints included), booted in-process
// on an ephemeral loopback port and torn down when the run ends. CI
// uses it so the load gate needs no externally provisioned daemon and
// cannot leak one.
type Daemon struct {
	// URL is the base URL clients should target.
	URL string

	srv *service.Server
	hs  *http.Server
	err chan error
}

// StartDaemon boots the service on 127.0.0.1:0 and waits for nothing:
// the listener is accepting before it returns.
func StartDaemon(cfg service.Config) (*Daemon, error) {
	srv := service.New(cfg)
	mux := srv.Handler()
	obs.Or(cfg.Obs).Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("load: self-managed daemon: %w", err)
	}
	d := &Daemon{
		URL: "http://" + ln.Addr().String(),
		srv: srv,
		hs:  &http.Server{Handler: mux},
		err: make(chan error, 1),
	}
	go func() { d.err <- d.hs.Serve(ln) }()
	return d, nil
}

// Server exposes the underlying service for tests and the sizing
// study (cache length, queue depth, inflight count).
func (d *Daemon) Server() *service.Server { return d.srv }

// Close shuts the daemon down gracefully, letting in-flight requests
// finish briefly, and surfaces any serve-loop failure.
func (d *Daemon) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if err := <-d.err; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
