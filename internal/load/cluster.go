package load

import (
	"fmt"
	"net"
	"net/http"

	"hmeans/internal/gateway"
	"hmeans/internal/obs"
	"hmeans/internal/service"
)

// Cluster is a self-managed horizontal deployment for hermetic load
// runs: N in-process replicas (each a full Daemon) fronted by an
// hmeansgw gateway on an ephemeral loopback port. The load loop
// targets Cluster.URL exactly as it would a single daemon — the
// gateway speaks the same protocol and serves the same bytes — so the
// cluster load leg in CI needs no externally provisioned fleet and
// cannot leak one.
type Cluster struct {
	// URL is the gateway base URL clients should target.
	URL string
	// Replicas are the backing daemons, in ring membership order.
	Replicas []*Daemon

	gw  *gateway.Gateway
	hs  *http.Server
	err chan error
}

// StartCluster boots n replicas and a gateway over them. Each replica
// gets its own server built from cfg (so caches and queues are
// per-replica, as they would be across processes); cfg.Obs is shared,
// which merges the replicas' counters into one registry — fine for a
// load run, where fleet-wide totals are what the report wants.
func StartCluster(n int, cfg service.Config) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("load: cluster needs at least 1 replica, got %d", n)
	}
	c := &Cluster{err: make(chan error, 1)}
	addrs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		d, err := StartDaemon(cfg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.Replicas = append(c.Replicas, d)
		addrs = append(addrs, d.URL)
	}
	gw, err := gateway.New(gateway.Config{
		Replicas: addrs,
		Obs:      cfg.Obs,
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	mux := gw.Handler()
	obs.Or(cfg.Obs).Register(mux)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("load: self-managed gateway: %w", err)
	}
	c.gw = gw
	c.URL = "http://" + ln.Addr().String()
	c.hs = &http.Server{Handler: mux}
	go func() { c.err <- c.hs.Serve(ln) }()
	return c, nil
}

// Gateway exposes the routing tier for tests (ring state, breakers).
func (c *Cluster) Gateway() *gateway.Gateway { return c.gw }

// Close tears the cluster down front-to-back: the gateway first (so
// nothing routes into a dying replica), then every replica. The first
// failure wins; teardown still visits everything.
func (c *Cluster) Close() error {
	var first error
	if c.hs != nil {
		c.gw.BeginDrain()
		if err := c.hs.Close(); err != nil {
			first = err
		}
		if err := <-c.err; err != nil && err != http.ErrServerClosed && first == nil {
			first = err
		}
	}
	for _, d := range c.Replicas {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
