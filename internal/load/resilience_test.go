package load

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hmeans/internal/service"
)

// TestClosedLoopVerifiesDigestAndRetries drives the closed loop
// against a stub daemon that corrupts the X-Hmeans-Digest of every
// request's FIRST response: the harness must refuse to count the
// corrupted 200 as done, record it as an integrity + transport
// failure, retry under the same request ID, and finish the run clean.
func TestClosedLoopVerifiesDigestAndRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("jittered retry waits skipped in -short mode")
	}
	goConcurrency(t)
	body := []byte(`{"score":1}` + "\n")
	var (
		mu   sync.Mutex
		seen = map[string]bool{}
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.Copy(io.Discard, r.Body)
		id := r.Header.Get(service.HeaderRequestID)
		mu.Lock()
		first := !seen[id]
		seen[id] = true
		mu.Unlock()
		if first {
			w.Header().Set(service.HeaderDigest, service.Digest([]byte("not the body")))
		} else {
			w.Header().Set(service.HeaderDigest, service.Digest(body))
		}
		_, _ = w.Write(body)
	}))
	defer ts.Close()

	const n = 4
	base := SyntheticBaseRequest(8, 4, 2007)
	ps, err := BuildPayloads(base, Mix{HitPct: 100}, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Mode: Closed, Dist: Constant, RPS: 0,
		Payloads: ps, Concurrency: n, Seed: 11, MaxRetries: 2,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkAccounting(t, rep)
	tot := rep.Totals
	if tot.IntegrityErrors != n {
		t.Errorf("integrity errors = %d, want %d (one corrupted first response each)", tot.IntegrityErrors, n)
	}
	if tot.TransportErrors != n {
		t.Errorf("transport errors = %d, want %d (each integrity failure counts)", tot.TransportErrors, n)
	}
	if tot.Retries < n {
		t.Errorf("retries = %d, want >= %d (every corruption must be retried)", tot.Retries, n)
	}
	if tot.Done != n {
		t.Errorf("done = %d, want %d (retries recover every request)", tot.Done, n)
	}
	if tot.Errors != 0 {
		t.Errorf("errors = %d, want 0 — recovered integrity failures are not request errors: %+v", tot.Errors, tot)
	}
}

// TestClosedLoopBreakerOpensOnDeadTarget points the closed loop with
// an armed breaker at a closed listener: consecutive connection
// failures must open the shared breaker (visible in the report), and
// every request must resolve to a drop — never a hang.
func TestClosedLoopBreakerOpensOnDeadTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("jittered retry waits skipped in -short mode")
	}
	goConcurrency(t)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens: every dial is refused

	const n = 4
	base := SyntheticBaseRequest(8, 4, 2007)
	ps, err := BuildPayloads(base, Mix{HitPct: 100}, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL: url, Mode: Closed, Dist: Constant, RPS: 0,
		Payloads: ps, Concurrency: 2, Seed: 11, MaxRetries: 1,
		BreakerThreshold: 2,
	})
	if err == nil {
		t.Fatal("run against a dead target reported success")
	}
	checkAccounting(t, rep)
	tot := rep.Totals
	if tot.BreakerOpens == 0 {
		t.Errorf("breaker never opened against a dead target: %+v", tot)
	}
	if tot.Done != 0 {
		t.Errorf("done = %d against a dead target, want 0", tot.Done)
	}
	if tot.TransportDropped+tot.BreakerDropped != n {
		t.Errorf("dropped %d (transport) + %d (breaker) != %d requests: %+v",
			tot.TransportDropped, tot.BreakerDropped, n, tot)
	}
	if tot.Errors != n {
		t.Errorf("errors = %d, want %d (every request unresolved)", tot.Errors, n)
	}
}
