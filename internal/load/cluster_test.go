package load

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"hmeans/internal/obs"
	"hmeans/internal/service"
)

func TestStartClusterRejectsZeroReplicas(t *testing.T) {
	if _, err := StartCluster(0, service.Config{}); err == nil {
		t.Fatal("0-replica cluster accepted")
	}
}

// TestClusterServesThroughGateway boots the self-managed cluster and
// proves the load harness's target contract holds: scoring works
// through the gateway URL, repeats are cache hits on a sticky replica,
// and teardown is clean.
func TestClusterServesThroughGateway(t *testing.T) {
	o := obs.New()
	c, err := StartCluster(2, service.Config{CacheSize: 8, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			t.Errorf("cluster close: %v", err)
		}
	}()
	if len(c.Replicas) != 2 {
		t.Fatalf("%d replicas, want 2", len(c.Replicas))
	}

	body, err := json.Marshal(SyntheticBaseRequest(8, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	post := func() (*http.Response, []byte) {
		resp, err := http.Post(c.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST via gateway: %v", err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	r1, b1 := post()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", r1.StatusCode, b1)
	}
	replica := r1.Header.Get("X-Hmeans-Replica")
	r2, b2 := post()
	if r2.Header.Get("X-Hmeans-Cache") != service.CacheHit {
		t.Fatalf("repeat cache %q, want hit", r2.Header.Get("X-Hmeans-Cache"))
	}
	if r2.Header.Get("X-Hmeans-Replica") != replica {
		t.Fatalf("repeat routed to %q, want sticky %q", r2.Header.Get("X-Hmeans-Replica"), replica)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("gateway repeat bytes differ")
	}
}

// TestClusterUnderLoad drives a small deterministic load run at the
// cluster and checks the report adds up — the same invariant the
// single-daemon harness pins, now through the routing tier.
func TestClusterUnderLoad(t *testing.T) {
	o := obs.New()
	c, err := StartCluster(2, service.Config{CacheSize: 16, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 30
	payloads, err := BuildPayloads(SyntheticBaseRequest(8, 4, 7), Mix{HitPct: 70, MissPct: 30}, n, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), Config{
		BaseURL:     c.URL,
		Mode:        Closed,
		Payloads:    payloads,
		Concurrency: 4,
		Seed:        7,
		MaxRetries:  2,
		Obs:         o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Config.Requests != n {
		t.Fatalf("report counts %d requests, want %d", rep.Config.Requests, n)
	}
	if rep.ErrorRate != 0 {
		t.Fatalf("error rate %v under a healthy cluster, want 0", rep.ErrorRate)
	}
	// The lease and routing tier actually saw the traffic.
	if o.Metrics().Counter("gateway.requests").Value() == 0 {
		t.Fatal("gateway.requests never moved — load bypassed the gateway")
	}
}
