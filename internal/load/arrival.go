package load

import (
	"fmt"
	"math"
	"time"

	"hmeans/internal/rng"
)

// Dist names an arrival-time distribution. The three families mirror
// the elastic-hpcc load-driver exemplar: constant arrivals probe
// steady-state capacity, uniform arrivals add bounded jitter, and
// Pareto arrivals produce the bursty heavy-tailed traffic that
// actually exercises queueing and shedding.
type Dist string

// The supported arrival distributions.
const (
	Constant Dist = "constant"
	Uniform  Dist = "uniform"
	Pareto   Dist = "pareto"
)

// ParseDist validates a -dist flag value.
func ParseDist(s string) (Dist, error) {
	switch Dist(s) {
	case Constant, Uniform, Pareto:
		return Dist(s), nil
	}
	return "", fmt.Errorf("unknown arrival distribution %q (want constant, uniform or pareto)", s)
}

// paretoAlpha is the Pareto shape used for inter-arrival gaps. α=3
// (the elastic-hpcc setting) keeps a finite variance while still
// producing multi-×-mean bursts; the scale is solved from α so every
// distribution has the same mean gap 1/rps and runs are comparable
// across -dist values.
const paretoAlpha = 3.0

// Schedule returns n arrival offsets from the start of a run whose
// inter-arrival gaps are drawn from dist with mean 1/rps seconds.
// The schedule is a pure function of (dist, rps, n, seed): it draws
// only from the repo's deterministic rng, so the same seed replays
// the identical schedule on every box and every Go release — the
// property the determinism unit tests pin.
func Schedule(dist Dist, rps float64, n int, seed uint64) ([]time.Duration, error) {
	if n <= 0 {
		return nil, fmt.Errorf("load: schedule needs n > 0, got %d", n)
	}
	if !(rps > 0) {
		return nil, fmt.Errorf("load: schedule needs rps > 0, got %v", rps)
	}
	if _, err := ParseDist(string(dist)); err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	mean := 1 / rps // seconds
	src := rng.New(seed)
	gap := func() float64 {
		switch dist {
		case Uniform:
			// U[0, 2·mean): same mean, bounded jitter.
			return 2 * mean * src.Float64()
		case Pareto:
			// Inverse-CDF sampling: xm·U^(-1/α), with the scale xm
			// solved so E[gap] = α·xm/(α−1) = mean.
			xm := mean * (paretoAlpha - 1) / paretoAlpha
			u := 1 - src.Float64() // (0, 1]: avoids the U=0 pole
			return xm * math.Pow(u, -1/paretoAlpha)
		default:
			return mean
		}
	}
	offsets := make([]time.Duration, n)
	var at float64
	for i := range offsets {
		at += gap()
		offsets[i] = time.Duration(at * float64(time.Second))
	}
	return offsets, nil
}
