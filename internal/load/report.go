package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"hmeans/internal/viz"
)

// Schema identifies the load-report JSON format. Version 1: totals,
// dense status counts, interpolated log-bucket percentiles.
const Schema = "hmeans-load/1"

// Report is the hmeans-load/1 record one run produces: enough to gate
// CI on, diff across commits, and reconstruct what was driven.
type Report struct {
	Schema string `json:"schema"`
	// Config echoes the run parameters, so an uploaded artifact is
	// self-describing.
	Config ReportConfig `json:"config"`
	// Totals are the request-accounting counters; see each field.
	Totals Totals `json:"totals"`
	// StatusCounts tallies responses per HTTP status code.
	StatusCounts map[string]int64 `json:"status_counts"`
	// LatencyMs summarizes the latency distribution of every response
	// that carried a status line (shed 429s included — a fast 429 is
	// still an answer the client waited for).
	LatencyMs Latency `json:"latency_ms"`
	// Slowest lists the top slowTrackDepth slowest completed requests
	// (slowest first) with the X-Request-ID each was sent under, so a
	// tail sample can be joined against the daemon's access log and
	// JSONL trace. Additive in schema 1: older readers ignore it.
	Slowest []SlowRequest `json:"slowest,omitempty"`
	// ThroughputRPS is completed responses per wall-clock second.
	ThroughputRPS float64 `json:"throughput_rps"`
	// ErrorRate is Totals.Errors / Totals.Sent.
	ErrorRate float64 `json:"error_rate"`
	// DurationS is the wall-clock span from first send to last reply.
	DurationS float64 `json:"duration_s"`
}

// ReportConfig echoes the parameters of the run.
type ReportConfig struct {
	Mode        string         `json:"mode"`
	Dist        string         `json:"dist"`
	RPS         float64        `json:"rps"`
	Requests    int            `json:"requests"`
	Concurrency int            `json:"concurrency,omitempty"`
	Seed        uint64         `json:"seed"`
	Mix         string         `json:"mix"`
	Payloads    map[string]int `json:"payloads"`
	Target      string         `json:"target"`
	SelfManaged bool           `json:"self_managed,omitempty"`
	MaxInflight int            `json:"max_inflight,omitempty"`
	QueueDepth  int            `json:"queue_depth,omitempty"`
	Workloads   int            `json:"workloads"`
}

// Totals is the request accounting of one run.
type Totals struct {
	// Sent counts requests handed to the transport.
	Sent int64 `json:"sent"`
	// Done counts responses that carried an HTTP status line.
	Done int64 `json:"done"`
	// Retries counts closed-loop re-sends: after a 429 Retry-After,
	// a transport error, or an integrity failure.
	Retries int64 `json:"retries"`
	// Shed counts 429 replies (each retry's 429 counts again).
	Shed int64 `json:"shed"`
	// DroppedShed counts requests that ended in a 429: the open loop
	// never retries, and the closed loop ran out of retry budget.
	DroppedShed int64 `json:"dropped_shed"`
	// TransportErrors counts attempts with no trustworthy answer: no
	// status line at all, a body torn mid-read, or a 200 that failed
	// its integrity check. Counted per attempt, so done +
	// transport_errors == sent even when failed attempts are retried.
	TransportErrors int64 `json:"transport_errors"`
	// TransportDropped counts requests whose FINAL attempt was a
	// transport/integrity failure — the open loop never retries, the
	// closed loop exhausted its budget. A retried-and-recovered
	// transport error counts here zero times, exactly like a
	// retried-and-recovered shed. Additive in schema 1.
	TransportDropped int64 `json:"transport_dropped,omitempty"`
	// Mismatches counts responses whose status was neither the
	// payload's expected status nor a 429 — 5xx, unexpected 4xx, or a
	// 200 for a payload the daemon must reject.
	Mismatches int64 `json:"mismatches"`
	// IntegrityErrors counts 200s whose body failed its
	// X-Hmeans-Digest check. Each is also counted in TransportErrors
	// (a corrupted answer is no answer), so this field refines rather
	// than extends the accounting. Additive in schema 1.
	IntegrityErrors int64 `json:"integrity_errors,omitempty"`
	// BreakerDropped counts requests abandoned because the shared
	// circuit breaker stayed open through their whole retry budget.
	// Additive in schema 1.
	BreakerDropped int64 `json:"breaker_dropped,omitempty"`
	// BreakerOpens counts closed→open transitions of the shared
	// breaker over the run. Additive in schema 1.
	BreakerOpens int64 `json:"breaker_opens,omitempty"`
	// Errors = TransportDropped + Mismatches + DroppedShed +
	// BreakerDropped: every request the client could not turn into
	// its contracted answer, counted once per request (not per
	// attempt).
	Errors int64 `json:"errors"`
}

// Latency summarizes the latency histogram in milliseconds.
type Latency struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	Count uint64  `json:"count"`
}

// ReadReport loads and schema-checks an hmeans-load/1 file.
func ReadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, Schema)
	}
	return &rep, nil
}

// WriteJSON encodes the report, indented, with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the human-readable summary the JSON schema
// serializes.
func (r *Report) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "load run: %s/%s %d requests @ %g rps (mix %s, seed %d) against %s\n",
		r.Config.Mode, r.Config.Dist, r.Config.Requests, r.Config.RPS,
		r.Config.Mix, r.Config.Seed, r.Config.Target)
	t := viz.NewTable("metric", "value")
	// Two columns per row by construction, so AddRow cannot fail.
	add := func(name, val string) { _ = t.AddRow(name, val) }
	add("throughput", fmt.Sprintf("%.1f rps", r.ThroughputRPS))
	add("duration", fmt.Sprintf("%.2f s", r.DurationS))
	add("p50 / p95 / p99", fmt.Sprintf("%.1f / %.1f / %.1f ms", r.LatencyMs.P50, r.LatencyMs.P95, r.LatencyMs.P99))
	add("max / mean", fmt.Sprintf("%.1f / %.1f ms", r.LatencyMs.Max, r.LatencyMs.Mean))
	add("sent / done", fmt.Sprintf("%d / %d", r.Totals.Sent, r.Totals.Done))
	add("shed (429) / retries", fmt.Sprintf("%d / %d", r.Totals.Shed, r.Totals.Retries))
	add("errors", fmt.Sprintf("%d (rate %.4f)", r.Totals.Errors, r.ErrorRate))
	for _, code := range sortedKeys(r.StatusCounts) {
		add("status "+code, fmt.Sprintf("%d", r.StatusCounts[code]))
	}
	for i, s := range r.Slowest {
		add(fmt.Sprintf("slow #%d", i+1), fmt.Sprintf("%s (%d, %.1f ms)", s.RequestID, s.Status, s.LatencyMs))
	}
	return t.Render(w)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
