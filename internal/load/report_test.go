package load

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema: Schema,
		Config: ReportConfig{Mode: "open", Dist: "uniform", RPS: 30, Requests: 300,
			Seed: 1, Mix: "hit=60,miss=30,invalid=10", Target: "http://127.0.0.1:1"},
		Totals:        Totals{Sent: 300, Done: 300, Shed: 3, Errors: 3, DroppedShed: 3},
		StatusCounts:  map[string]int64{"200": 267, "400": 30, "429": 3},
		LatencyMs:     Latency{P50: 4, P90: 12, P95: 20, P99: 80, Max: 120, Mean: 7, Count: 300},
		ThroughputRPS: 29.5,
		ErrorRate:     0.01,
		DurationS:     10.2,
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rep := sampleReport()
	if err := rep.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Totals != rep.Totals || got.LatencyMs != rep.LatencyMs {
		t.Fatalf("round trip diverged: %+v vs %+v", got, rep)
	}
	if got.Config.Mode != rep.Config.Mode || got.Config.Mix != rep.Config.Mix ||
		got.StatusCounts["200"] != rep.StatusCounts["200"] {
		t.Fatalf("config/status round trip diverged: %+v", got)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"hmeans-load/0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReport(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleReport().WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p50 / p95 / p99", "429", "throughput", "open/uniform"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output lacks %q:\n%s", want, out)
		}
	}
}

func TestSLOCheck(t *testing.T) {
	rep := sampleReport()
	ok := &SLO{Schema: SLOSchema, MaxP99Ms: 100, MaxErrorRate: 0.02}
	if err := rep.Check(ok); err != nil {
		t.Errorf("within-budget report breached: %v", err)
	}
	p99 := &SLO{Schema: SLOSchema, MaxP99Ms: 50, MaxErrorRate: 0.02}
	if err := rep.Check(p99); err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("p99 breach not reported: %v", err)
	}
	errRate := &SLO{Schema: SLOSchema, MaxP99Ms: 100, MaxErrorRate: 0.001}
	if err := rep.Check(errRate); err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Errorf("error-rate breach not reported: %v", err)
	}
	thr := &SLO{Schema: SLOSchema, MaxP99Ms: 100, MaxErrorRate: 0.02, MinThroughputRPS: 50}
	if err := rep.Check(thr); err == nil || !strings.Contains(err.Error(), "throughput") {
		t.Errorf("throughput breach not reported: %v", err)
	}
	// Every breach must be named at once, not just the first.
	all := &SLO{Schema: SLOSchema, MaxP99Ms: 1, MaxErrorRate: 0.001, MinThroughputRPS: 50}
	err := rep.Check(all)
	if err == nil {
		t.Fatal("triple breach passed")
	}
	for _, want := range []string{"p99", "error rate", "throughput"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("triple breach omits %q: %v", want, err)
		}
	}
}

func TestReadSLO(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `{"schema":"hmeans-slo/1","max_p99_ms":1500,"max_error_rate":0.01}`)
	slo, err := ReadSLO(good)
	if err != nil || slo.MaxP99Ms != 1500 || slo.MaxErrorRate != 0.01 {
		t.Fatalf("ReadSLO = %+v, %v", slo, err)
	}
	for name, body := range map[string]string{
		"schema.json":  `{"schema":"hmeans-slo/9","max_p99_ms":1}`,
		"nop99.json":   `{"schema":"hmeans-slo/1","max_error_rate":0.01}`,
		"badrate.json": `{"schema":"hmeans-slo/1","max_p99_ms":1,"max_error_rate":2}`,
		"unknown.json": `{"schema":"hmeans-slo/1","max_p99_ms":1,"max_error_rate":0.1,"p99":5}`,
	} {
		if _, err := ReadSLO(write(name, body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
