package load

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"hmeans/internal/service"
)

func TestRequestIDDeterministic(t *testing.T) {
	if got := RequestID(2007, 41); got != "load-2007-000041" {
		t.Fatalf("RequestID(2007, 41) = %q", got)
	}
	if got := RequestID(0, 0); got != "load-0-000000" {
		t.Fatalf("RequestID(0, 0) = %q", got)
	}
}

func TestSlowTrackerKeepsTopK(t *testing.T) {
	var tr slowTracker
	// Feed 3*depth observations with distinct latencies 1..30 ms.
	for i := 1; i <= 3*slowTrackDepth; i++ {
		tr.add(fmt.Sprintf("id-%02d", i), 200, float64(i))
	}
	got := tr.sorted()
	if len(got) != slowTrackDepth {
		t.Fatalf("kept %d entries, want %d", len(got), slowTrackDepth)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].LatencyMs > got[j].LatencyMs }) {
		t.Fatalf("not sorted slowest-first: %v", got)
	}
	// The survivors must be exactly the slowest k.
	for i, s := range got {
		want := float64(3*slowTrackDepth - i)
		if s.LatencyMs != want {
			t.Fatalf("entry %d: latency %v, want %v (%v)", i, s.LatencyMs, want, got)
		}
	}
	// Ties break on ID so a deterministic run reports deterministically.
	var tie slowTracker
	tie.add("b", 200, 5)
	tie.add("a", 200, 5)
	ties := tie.sorted()
	if ties[0].RequestID != "a" || ties[1].RequestID != "b" {
		t.Fatalf("tie-break not by ID: %v", ties)
	}
}

// TestRunReportsSlowestRequests drives a tiny run end-to-end and
// checks the report's slowest list: populated, bounded, slowest
// first, and every ID is the deterministic (seed, i) form the daemon
// also saw — the join key of the whole telemetry story.
func TestRunReportsSlowestRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("load run skipped in -short mode")
	}
	goConcurrency(t)
	base := SyntheticBaseRequest(8, 4, 2007)
	ps, err := BuildPayloads(base, Mix{HitPct: 100}, 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	rep := runSelfManaged(t,
		service.Config{MaxInflight: 4, QueueDepth: 64, CacheSize: 16},
		Config{Mode: Open, Dist: Constant, RPS: 200, Payloads: ps, Seed: 7})
	checkAccounting(t, rep)

	if len(rep.Slowest) == 0 || len(rep.Slowest) > slowTrackDepth {
		t.Fatalf("slowest has %d entries", len(rep.Slowest))
	}
	if !sort.SliceIsSorted(rep.Slowest, func(i, j int) bool {
		return rep.Slowest[i].LatencyMs > rep.Slowest[j].LatencyMs
	}) {
		t.Fatalf("slowest not sorted: %v", rep.Slowest)
	}
	for _, s := range rep.Slowest {
		if !strings.HasPrefix(s.RequestID, "load-7-") {
			t.Fatalf("unexpected request id %q", s.RequestID)
		}
		if s.LatencyMs <= 0 || s.Status == 0 {
			t.Fatalf("degenerate slow entry %+v", s)
		}
	}
	if rep.Slowest[0].LatencyMs != rep.LatencyMs.Max {
		t.Fatalf("slowest[0] %.3f ms != max %.3f ms", rep.Slowest[0].LatencyMs, rep.LatencyMs.Max)
	}

	// The table renderer surfaces the leaderboard for humans.
	var sb strings.Builder
	if err := rep.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "slow #1") || !strings.Contains(sb.String(), rep.Slowest[0].RequestID) {
		t.Fatalf("table missing slowest rows:\n%s", sb.String())
	}
}
