package load

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"hmeans/internal/service"
)

// goConcurrency makes client/server concurrency real on a 1-CPU CI
// box: with GOMAXPROCS=1 a fast handler runs to completion before the
// next arrival is even read off its socket, so neither queueing nor
// shedding could ever be observed.
func goConcurrency(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(max(4, runtime.NumCPU()))
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// healthySLO is loose enough for any CI box; the undersized test
// below must breach it anyway.
func healthySLO() *SLO {
	return &SLO{Schema: SLOSchema, MaxP99Ms: 30_000, MaxErrorRate: 0.01}
}

func runSelfManaged(t *testing.T, svc service.Config, cfg Config) *Report {
	t.Helper()
	d, err := StartDaemon(svc)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			t.Errorf("daemon close: %v", err)
		}
	}()
	cfg.BaseURL = d.URL
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep
}

func checkAccounting(t *testing.T, rep *Report) {
	t.Helper()
	tot := rep.Totals
	if tot.Done+tot.TransportErrors != tot.Sent {
		t.Errorf("accounting: done %d + transport %d != sent %d", tot.Done, tot.TransportErrors, tot.Sent)
	}
	var statusSum int64
	for _, v := range rep.StatusCounts {
		statusSum += v
	}
	if statusSum != tot.Done {
		t.Errorf("status counts sum to %d, done is %d", statusSum, tot.Done)
	}
	if uint64(tot.Done) != rep.LatencyMs.Count {
		t.Errorf("latency count %d != done %d", rep.LatencyMs.Count, tot.Done)
	}
	if tot.Errors != tot.TransportDropped+tot.Mismatches+tot.DroppedShed+tot.BreakerDropped {
		t.Errorf("errors %d != transport-dropped %d + mismatches %d + dropped %d + breaker-dropped %d",
			tot.Errors, tot.TransportDropped, tot.Mismatches, tot.DroppedShed, tot.BreakerDropped)
	}
	if tot.TransportDropped > tot.TransportErrors {
		t.Errorf("transport-dropped %d exceeds per-attempt transport errors %d",
			tot.TransportDropped, tot.TransportErrors)
	}
	if tot.IntegrityErrors > tot.TransportErrors {
		t.Errorf("integrity errors %d exceed transport errors %d (each must be counted in both)",
			tot.IntegrityErrors, tot.TransportErrors)
	}
}

// TestOpenLoopHealthyDaemonMeetsSLO is the load gate in miniature: an
// open-loop mixed run against an adequately sized self-managed daemon
// must complete every request with its contracted status and pass
// the committed-style SLO.
func TestOpenLoopHealthyDaemonMeetsSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("load run skipped in -short mode")
	}
	goConcurrency(t)
	base := SyntheticBaseRequest(8, 4, 2007)
	ps, err := BuildPayloads(base, Mix{HitPct: 60, MissPct: 30, InvalidPct: 10}, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep := runSelfManaged(t,
		service.Config{MaxInflight: 4, QueueDepth: 64, CacheSize: 128},
		Config{Mode: Open, Dist: Uniform, RPS: 150, Payloads: ps, Seed: 11})

	checkAccounting(t, rep)
	if rep.Totals.Errors != 0 {
		t.Fatalf("healthy run produced %d errors: %+v (status %v)", rep.Totals.Errors, rep.Totals, rep.StatusCounts)
	}
	if rep.StatusCounts["200"] == 0 || rep.StatusCounts["400"] == 0 {
		t.Fatalf("expected both 200s and 400s in a mixed run, got %v", rep.StatusCounts)
	}
	if rep.Schema != Schema {
		t.Errorf("schema %q", rep.Schema)
	}
	if err := rep.Check(healthySLO()); err != nil {
		t.Errorf("healthy run breached the SLO: %v", err)
	}
}

// TestOpenLoopUndersizedDaemonFailsSLO is the acceptance criterion:
// the same gate, pointed at a deliberately undersized daemon
// (-max-inflight=1, no queue), must fail — open-loop arrivals outrun
// the single worker, sheds pile up, and the error-rate SLO breaks.
func TestOpenLoopUndersizedDaemonFailsSLO(t *testing.T) {
	if testing.Short() {
		t.Skip("load run skipped in -short mode")
	}
	goConcurrency(t)
	// n=40 workloads: each miss costs well over an arrival gap, so the
	// single worker cannot hide the overload inside one scheduling
	// quantum. All misses: every request needs a real pipeline run, so
	// a 1-wide pool with no queue must shed under a 200 rps open loop.
	base := SyntheticBaseRequest(40, 6, 2007)
	ps, err := BuildPayloads(base, Mix{MissPct: 100}, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep := runSelfManaged(t,
		service.Config{MaxInflight: 1, QueueDepth: 0, CacheSize: 0},
		Config{Mode: Open, Dist: Constant, RPS: 200, Payloads: ps, Seed: 11})

	checkAccounting(t, rep)
	if rep.Totals.Shed == 0 {
		t.Fatal("undersized daemon never shed — the overload was not an overload")
	}
	if err := rep.Check(healthySLO()); err == nil {
		t.Fatalf("undersized daemon passed the SLO: %+v", rep.Totals)
	} else if !strings.Contains(err.Error(), "error rate") {
		t.Errorf("breach should name the error rate, got: %v", err)
	}
}

// TestClosedLoopHonorsRetryAfter drives an undersized daemon with a
// closed loop: workers that hit a 429 wait out Retry-After and retry,
// so with enough budget the run completes without errors — the shed
// requests resolve instead of being dropped.
func TestClosedLoopHonorsRetryAfter(t *testing.T) {
	if testing.Short() {
		t.Skip("load run skipped in -short mode")
	}
	goConcurrency(t)
	base := SyntheticBaseRequest(40, 6, 2007)
	ps, err := BuildPayloads(base, Mix{MissPct: 100}, 16, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep := runSelfManaged(t,
		service.Config{MaxInflight: 1, QueueDepth: 0, CacheSize: 0},
		Config{Mode: Closed, Dist: Constant, RPS: 0, Concurrency: 6,
			Payloads: ps, Seed: 11, MaxRetries: 20})

	checkAccounting(t, rep)
	if rep.Totals.Shed == 0 {
		t.Fatal("6 workers against a pool of 1 never shed — expected 429s")
	}
	if rep.Totals.Retries == 0 {
		t.Fatal("sheds occurred but no Retry-After retry was issued")
	}
	if rep.Totals.Errors != 0 {
		t.Fatalf("closed loop with retry budget still errored: %+v", rep.Totals)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config accepted")
	}
	base := SyntheticBaseRequest(8, 4, 1)
	ps, _ := BuildPayloads(base, Mix{HitPct: 100}, 4, 1)
	if _, err := Run(context.Background(), Config{Mode: Closed, Payloads: ps}); err == nil {
		t.Error("closed loop without concurrency accepted")
	}
	if _, err := Run(context.Background(), Config{Mode: Open, Dist: Constant, RPS: 0, Payloads: ps}); err == nil {
		t.Error("open loop without rps accepted")
	}
}
