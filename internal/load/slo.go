package load

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// SLOSchema identifies the SLO file format.
const SLOSchema = "hmeans-slo/1"

// SLO is the committed service-level objective the load gate enforces
// (slo.json at the repo root). The gate measures p99 rather than the
// mean deliberately: a mean hides exactly the queueing collapse the
// harness exists to catch — a daemon can average 20ms while its 99th
// percentile sits behind a saturated queue for seconds, and it is the
// tail every fleet-wide deployment feels first.
type SLO struct {
	Schema string `json:"schema"`
	// MaxP99Ms bounds the 99th-percentile latency in milliseconds.
	MaxP99Ms float64 `json:"max_p99_ms"`
	// MaxErrorRate bounds Totals.Errors / Totals.Sent — transport
	// failures, contract mismatches and unresolved sheds.
	MaxErrorRate float64 `json:"max_error_rate"`
	// MinThroughputRPS optionally requires a completion rate; 0
	// disables the check.
	MinThroughputRPS float64 `json:"min_throughput_rps,omitempty"`
}

// ReadSLO loads and schema-checks an hmeans-slo/1 file.
func ReadSLO(path string) (*SLO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var slo SLO
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&slo); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if slo.Schema != SLOSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, slo.Schema, SLOSchema)
	}
	if !(slo.MaxP99Ms > 0) {
		return nil, fmt.Errorf("%s: max_p99_ms must be > 0, got %v", path, slo.MaxP99Ms)
	}
	if slo.MaxErrorRate < 0 || slo.MaxErrorRate > 1 {
		return nil, fmt.Errorf("%s: max_error_rate must be in [0, 1], got %v", path, slo.MaxErrorRate)
	}
	return &slo, nil
}

// Check compares the report against the SLO and returns an error
// naming every breach (non-nil means the gate fails).
func (r *Report) Check(slo *SLO) error {
	var breaches []string
	if r.LatencyMs.P99 > slo.MaxP99Ms {
		breaches = append(breaches, fmt.Sprintf("p99 %.1fms > %.1fms", r.LatencyMs.P99, slo.MaxP99Ms))
	}
	if r.ErrorRate > slo.MaxErrorRate {
		breaches = append(breaches, fmt.Sprintf("error rate %.4f > %.4f (%d errors / %d sent)",
			r.ErrorRate, slo.MaxErrorRate, r.Totals.Errors, r.Totals.Sent))
	}
	if slo.MinThroughputRPS > 0 && r.ThroughputRPS < slo.MinThroughputRPS {
		breaches = append(breaches, fmt.Sprintf("throughput %.1f rps < %.1f rps", r.ThroughputRPS, slo.MinThroughputRPS))
	}
	if len(breaches) > 0 {
		return fmt.Errorf("SLO breach: %s", strings.Join(breaches, "; "))
	}
	return nil
}
