package load

import (
	"math"
	"testing"
	"time"
)

// TestScheduleDeterministicPinned pins the exact arrival schedules
// for one (rps, n, seed) triple across all three distributions: the
// load harness's replayability contract is that the same -seed yields
// the identical schedule, on any box and any Go release. If these
// literals ever change, the rng stream or the sampling math changed —
// which silently invalidates every recorded load report.
func TestScheduleDeterministicPinned(t *testing.T) {
	want := map[Dist][]time.Duration{
		Constant: {10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
			40 * time.Millisecond, 50 * time.Millisecond, 60 * time.Millisecond},
		Uniform: {1677259, 9256864, 22857732, 41351591, 61187669, 76582459},
		Pareto:  {6864178, 14678182, 24425349, 40212248, 73277607, 84154435},
	}
	for dist, exp := range want {
		got, err := Schedule(dist, 100, 6, 42)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Errorf("%s[%d] = %v, want %v", dist, i, got[i], exp[i])
			}
		}
	}
}

func TestScheduleSameSeedSameSchedule(t *testing.T) {
	for _, dist := range []Dist{Constant, Uniform, Pareto} {
		a, err := Schedule(dist, 37.5, 200, 9)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Schedule(dist, 37.5, 200, 9)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: schedule diverges at %d: %v vs %v", dist, i, a[i], b[i])
			}
		}
		if dist != Constant {
			c, _ := Schedule(dist, 37.5, 200, 10)
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Errorf("%s: different seeds produced the identical schedule", dist)
			}
		}
	}
}

// TestScheduleMeanRate checks each distribution actually targets the
// requested rate: over many arrivals the mean gap must be 1/rps
// within sampling noise, so p99 numbers are comparable across -dist.
func TestScheduleMeanRate(t *testing.T) {
	const rps, n = 50.0, 20000
	for _, dist := range []Dist{Constant, Uniform, Pareto} {
		s, err := Schedule(dist, rps, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		meanGap := s[n-1].Seconds() / n
		if math.Abs(meanGap-1/rps) > 0.05/rps {
			t.Errorf("%s: mean gap %.6fs, want %.6fs ±5%%", dist, meanGap, 1/rps)
		}
		for i := 1; i < n; i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("%s: schedule not strictly increasing at %d", dist, i)
			}
		}
	}
}

// TestParetoHeavyTail verifies the Pareto schedule is actually bursty:
// its largest gap must dwarf its mean gap (constant's never does).
func TestParetoHeavyTail(t *testing.T) {
	const rps, n = 50.0, 5000
	s, _ := Schedule(Pareto, rps, n, 3)
	var maxGap time.Duration
	prev := time.Duration(0)
	for _, at := range s {
		if g := at - prev; g > maxGap {
			maxGap = g
		}
		prev = at
	}
	mean := s[n-1] / n
	if maxGap < 3*mean {
		t.Errorf("pareto max gap %v is not heavy-tailed vs mean %v", maxGap, mean)
	}
}

func TestScheduleRejectsBadInputs(t *testing.T) {
	if _, err := Schedule(Constant, 0, 10, 1); err == nil {
		t.Error("rps=0 accepted")
	}
	if _, err := Schedule(Constant, 100, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Schedule(Dist("zipf"), 100, 10, 1); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := ParseDist("zipf"); err == nil {
		t.Error("ParseDist accepted zipf")
	}
	for _, ok := range []string{"constant", "uniform", "pareto"} {
		if _, err := ParseDist(ok); err != nil {
			t.Errorf("ParseDist(%q): %v", ok, err)
		}
	}
}
