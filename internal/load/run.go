// Package load is the production load harness behind cmd/hmeansload:
// it drives a live hmeansd the way a fleet of clients would and turns
// what comes back into a gateable tail-latency report.
//
// Two loop disciplines are supported, because they answer different
// questions:
//
//   - The open loop fires requests on a precomputed arrival schedule
//     regardless of how fast the daemon answers. Arrivals do not slow
//     down when the service does, so queueing delay shows up in the
//     measured latencies instead of being silently absorbed — this is
//     the discipline that exposes tail collapse and coordinated
//     omission, and the one the CI gate uses.
//   - The closed loop keeps a fixed number of workers, each waiting
//     for its response (honoring 429 Retry-After) before sending the
//     next request. It measures sustainable throughput under polite
//     clients and exercises the retry path.
//
// Arrival schedules and payload mixes are pure functions of the seed
// (internal/rng, no math/rand), so a run is replayable: same -seed,
// same schedule, same payload sequence, byte for byte.
package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hmeans/internal/obs"
	"hmeans/internal/resilience"
	"hmeans/internal/rng"
	"hmeans/internal/service"
)

// Mode names a load-generation loop discipline.
type Mode string

// The supported modes.
const (
	Open   Mode = "open"
	Closed Mode = "closed"
)

// ParseMode validates a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case Open, Closed:
		return Mode(s), nil
	}
	return "", fmt.Errorf("unknown mode %q (want open or closed)", s)
}

// Config describes one load run.
type Config struct {
	// BaseURL targets the daemon (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Mode selects the loop discipline.
	Mode Mode
	// Dist shapes inter-arrival (open) or think-time (closed) gaps.
	Dist Dist
	// RPS is the target mean arrival rate. In closed mode 0 disables
	// think time entirely (maximum pressure).
	RPS float64
	// Payloads is the pre-built request sequence; its length is the
	// request count.
	Payloads *PayloadSet
	// Concurrency is the closed-loop worker count; ignored when open.
	Concurrency int
	// Seed derives the arrival/think schedule (the payload sequence
	// was seeded at BuildPayloads time).
	Seed uint64
	// MaxRetries bounds closed-loop retries per request (Retry-After
	// 429s, transport errors, integrity failures); negative means 0.
	MaxRetries int
	// BreakerThreshold, when > 0, arms a shared circuit breaker for
	// the closed loop: that many consecutive transport failures open
	// it, workers back off for roughly one Retry-After instead of
	// hammering a dead daemon, and a half-open probe closes it again
	// once the daemon answers. 0 disables the breaker.
	BreakerThreshold int
	// Obs, when active, receives a span per run plus client-side
	// counters and the latency histogram under load.* names. Nil
	// falls back to the process default.
	Obs *obs.Observer
	// Client overrides the HTTP client; nil builds one sized for the
	// run's concurrency.
	Client *http.Client
}

// Run executes the configured load run and summarizes it. ctx cancels
// the run early; whatever was measured up to that point is still
// reported (with an error only if nothing completed).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Payloads == nil || len(cfg.Payloads.Kinds) == 0 {
		return nil, fmt.Errorf("load: no payloads")
	}
	n := len(cfg.Payloads.Kinds)
	if cfg.Mode == Closed && cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("load: closed loop needs concurrency > 0, got %d", cfg.Concurrency)
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	var schedule []time.Duration
	if cfg.Mode == Open || cfg.RPS > 0 {
		var err error
		if schedule, err = Schedule(cfg.Dist, cfg.RPS, n, cfg.Seed); err != nil {
			return nil, err
		}
	}
	client := cfg.Client
	if client == nil {
		workers := cfg.Concurrency
		if cfg.Mode == Open {
			workers = n // open loop: every request may be in flight at once
		}
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        workers,
			MaxIdleConnsPerHost: workers,
		}}
	}

	o := obs.Or(cfg.Obs)
	sp := o.StartSpan("load.run",
		obs.KV("mode", string(cfg.Mode)), obs.KV("dist", string(cfg.Dist)),
		obs.KV("requests", n), obs.KV("rps", cfg.RPS))
	defer sp.End()

	rec := newRecorder()
	url := cfg.BaseURL + "/v1/score"
	// Correlation IDs are precomputed so the hot loop only indexes:
	// request i of a run is always RequestID(seed, i), which makes a
	// report's slowest-request IDs reproducible run over run and
	// greppable straight out of the daemon's access log and trace.
	ids := make([]string, n)
	for i := range ids {
		ids[i] = RequestID(cfg.Seed, i)
	}
	start := time.Now()
	switch cfg.Mode {
	case Open:
		runOpen(ctx, client, url, cfg.Payloads, ids, schedule, rec)
	default:
		runClosed(ctx, client, url, cfg, ids, schedule, rec)
	}
	wall := time.Since(start)

	rep := assemble(cfg, rec, wall)
	sp.SetAttr("done", rep.Totals.Done)
	sp.SetAttr("errors", rep.Totals.Errors)
	sp.SetAttr("p99_ms", rep.LatencyMs.P99)
	if o.Active() {
		m := o.Metrics()
		m.Counter("load.sent").Add(rep.Totals.Sent)
		m.Counter("load.errors").Add(rep.Totals.Errors)
		m.Counter("load.shed").Add(rep.Totals.Shed)
	}
	if rep.Totals.Done == 0 {
		return rep, fmt.Errorf("load: no request completed (transport errors: %d)", rep.Totals.TransportErrors)
	}
	return rep, nil
}

// runOpen fires request i at schedule[i] no matter what came back
// earlier. A 429 is terminal here: an open-loop client that re-queued
// sheds would change the arrival process it is supposed to hold fixed.
func runOpen(ctx context.Context, client *http.Client, url string, ps *PayloadSet, ids []string, schedule []time.Duration, rec *recorder) {
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	var wg sync.WaitGroup
	for i := range ps.Bodies {
		wait := schedule[i] - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				wg.Wait()
				return
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status := send(ctx, client, url, ids[i], ps.Bodies[i], ps.Expect[i], rec)
			switch {
			case status == 0:
				rec.dropFailed() // open loop never retries: terminal
			case status == http.StatusTooManyRequests:
				rec.dropShed()
			}
		}(i)
	}
	wg.Wait()
}

// runClosed runs workers pulling requests off a shared index; each
// worker sleeps its think gap, sends, and retries the same payload on
// a 429 (waiting out a jittered Retry-After) or a transport/integrity
// failure, up to cfg.MaxRetries. With BreakerThreshold > 0 the workers
// share one circuit breaker: consecutive transport failures open it,
// and workers then back off instead of hammering a dead daemon.
func runClosed(ctx context.Context, client *http.Client, url string, cfg Config, ids []string, schedule []time.Duration, rec *recorder) {
	ps := cfg.Payloads
	var br *resilience.Breaker
	if cfg.BreakerThreshold > 0 {
		br = resilience.NewBreaker(cfg.BreakerThreshold, retryAfterDelay())
	}
	var next atomic.Int64
	gapAt := func(i int) time.Duration {
		if schedule == nil {
			return 0
		}
		if i == 0 {
			return schedule[0]
		}
		return schedule[i] - schedule[i-1]
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker jitters its waits from its own seeded stream:
			// the run stays replayable from -seed alone, but workers
			// that shed together do not wake in lockstep and re-shed.
			jr := rng.New(cfg.Seed + 0x9E3779B97F4A7C15*uint64(w+1))
			for {
				i := int(next.Add(1) - 1)
				if i >= len(ps.Bodies) || ctx.Err() != nil {
					return
				}
				if gap := gapAt(i); gap > 0 && !sleep(ctx, gap) {
					return
				}
				for attempt := 0; ; attempt++ {
					status, blocked := 0, false
					if br != nil && br.Allow() != nil {
						blocked = true
					} else {
						// Retries reuse the same ID: they are the same
						// logical request, and the server-side log then
						// shows every attempt under one correlation key.
						status = send(ctx, client, url, ids[i], ps.Bodies[i], ps.Expect[i], rec)
						if br != nil {
							br.Record(status == 0)
						}
					}
					if status != 0 && status != http.StatusTooManyRequests {
						break // a real answer, even a 4xx/5xx: the request resolved
					}
					if attempt >= cfg.MaxRetries || !sleep(ctx, service.RetryAfterJitter(jr)) {
						switch {
						case blocked:
							rec.dropBlocked()
						case status == http.StatusTooManyRequests:
							rec.dropShed()
						default: // status 0: transport/integrity, never resolved
							rec.dropFailed()
						}
						break
					}
					rec.retries.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if br != nil {
		rec.opens.Store(br.Opens())
	}
}

// retryAfterDelay converts the service's exported Retry-After
// contract into a base wait, used as the breaker cooldown. The daemon
// always sends whole seconds (service.RetryAfter); parsing the shared
// constant instead of the response header keeps the delay
// deterministic and pins the two sides together at compile^W test
// time. Worker sleeps jitter around this base via
// service.RetryAfterJitter.
func retryAfterDelay() time.Duration {
	secs, err := strconv.Atoi(service.RetryAfter)
	if err != nil || secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// RequestID is the deterministic correlation ID the harness sends as
// X-Request-ID for request i of a run seeded with seed. Pure function
// of (seed, i), like the schedule and the payload bytes — so a
// report's slowest-request IDs name the same requests on every replay
// and can be grepped through the daemon's access log and JSONL trace.
func RequestID(seed uint64, i int) string {
	return fmt.Sprintf("load-%d-%06d", seed, i)
}

// send issues one request and records the outcome. It returns the
// HTTP status, or 0 on a transport error.
func send(ctx context.Context, client *http.Client, url, id string, body []byte, expect int, rec *recorder) int {
	rec.sent.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		rec.transport.Add(1)
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.HeaderRequestID, id)
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		rec.transport.Add(1)
		return 0
	}
	// Read the full body so the connection is reusable and the timing
	// covers the whole response — that is what a client experiences —
	// and so a 200's bytes can be checked against their digest.
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rec.transport.Add(1) // torn mid-body: no trustworthy answer
		return 0
	}
	if resp.StatusCode == http.StatusOK {
		if service.VerifyDigest(resp.Header.Get(service.HeaderDigest), raw) != nil {
			// A corrupted 200 is worse than no answer: count it as an
			// integrity failure AND a transport error (never as done),
			// so it is retried and can never pass as a good response.
			rec.integrity.Add(1)
			rec.transport.Add(1)
			return 0
		}
	}
	rec.observe(id, resp.StatusCode, expect, float64(time.Since(t0))/float64(time.Millisecond))
	return resp.StatusCode
}

// sleep waits d or until ctx fires; it reports whether the full wait
// completed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// assemble folds the recorder into the report.
func assemble(cfg Config, rec *recorder, wall time.Duration) *Report {
	sent := rec.sent.Load()
	errs := rec.failedDrop.Load() + rec.mismatch.Load() + rec.dropped.Load() + rec.blocked.Load()
	rep := &Report{
		Schema: Schema,
		Config: ReportConfig{
			Mode:        string(cfg.Mode),
			Dist:        string(cfg.Dist),
			RPS:         cfg.RPS,
			Requests:    len(cfg.Payloads.Kinds),
			Concurrency: cfg.Concurrency,
			Seed:        cfg.Seed,
			Mix:         mixOf(cfg.Payloads),
			Payloads:    cfg.Payloads.Counts(),
			Target:      cfg.BaseURL,
		},
		Totals: Totals{
			Sent:             sent,
			Done:             rec.done.Load(),
			Retries:          rec.retries.Load(),
			Shed:             rec.shed.Load(),
			DroppedShed:      rec.dropped.Load(),
			TransportErrors:  rec.transport.Load(),
			TransportDropped: rec.failedDrop.Load(),
			Mismatches:       rec.mismatch.Load(),
			IntegrityErrors:  rec.integrity.Load(),
			BreakerDropped:   rec.blocked.Load(),
			BreakerOpens:     rec.opens.Load(),
			Errors:           errs,
		},
		StatusCounts: rec.statusCounts(),
		Slowest:      rec.slow.sorted(),
		LatencyMs: Latency{
			P50:   rec.hist.Quantile(0.50),
			P90:   rec.hist.Quantile(0.90),
			P95:   rec.hist.Quantile(0.95),
			P99:   rec.hist.Quantile(0.99),
			Max:   rec.max(),
			Mean:  rec.hist.Mean(),
			Count: rec.hist.Count(),
		},
		DurationS: wall.Seconds(),
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.Totals.Done) / wall.Seconds()
	}
	if sent > 0 {
		rep.ErrorRate = float64(errs) / float64(sent)
	}
	return rep
}

// mixOf reconstructs the percentage string from the materialized set
// (exact when n is a multiple of 100, descriptive otherwise).
func mixOf(ps *PayloadSet) string {
	n := len(ps.Kinds)
	if n == 0 {
		return ""
	}
	c := ps.Counts()
	return fmt.Sprintf("hit=%d,miss=%d,invalid=%d",
		100*c[KindHit.String()]/n, 100*c[KindMiss.String()]/n, 100*c[KindInvalid.String()]/n)
}
