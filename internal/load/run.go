// Package load is the production load harness behind cmd/hmeansload:
// it drives a live hmeansd the way a fleet of clients would and turns
// what comes back into a gateable tail-latency report.
//
// Two loop disciplines are supported, because they answer different
// questions:
//
//   - The open loop fires requests on a precomputed arrival schedule
//     regardless of how fast the daemon answers. Arrivals do not slow
//     down when the service does, so queueing delay shows up in the
//     measured latencies instead of being silently absorbed — this is
//     the discipline that exposes tail collapse and coordinated
//     omission, and the one the CI gate uses.
//   - The closed loop keeps a fixed number of workers, each waiting
//     for its response (honoring 429 Retry-After) before sending the
//     next request. It measures sustainable throughput under polite
//     clients and exercises the retry path.
//
// Arrival schedules and payload mixes are pure functions of the seed
// (internal/rng, no math/rand), so a run is replayable: same -seed,
// same schedule, same payload sequence, byte for byte.
package load

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hmeans/internal/obs"
	"hmeans/internal/service"
)

// Mode names a load-generation loop discipline.
type Mode string

// The supported modes.
const (
	Open   Mode = "open"
	Closed Mode = "closed"
)

// ParseMode validates a -mode flag value.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case Open, Closed:
		return Mode(s), nil
	}
	return "", fmt.Errorf("unknown mode %q (want open or closed)", s)
}

// Config describes one load run.
type Config struct {
	// BaseURL targets the daemon (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Mode selects the loop discipline.
	Mode Mode
	// Dist shapes inter-arrival (open) or think-time (closed) gaps.
	Dist Dist
	// RPS is the target mean arrival rate. In closed mode 0 disables
	// think time entirely (maximum pressure).
	RPS float64
	// Payloads is the pre-built request sequence; its length is the
	// request count.
	Payloads *PayloadSet
	// Concurrency is the closed-loop worker count; ignored when open.
	Concurrency int
	// Seed derives the arrival/think schedule (the payload sequence
	// was seeded at BuildPayloads time).
	Seed uint64
	// MaxRetries bounds closed-loop Retry-After retries per request;
	// negative means 0.
	MaxRetries int
	// Obs, when active, receives a span per run plus client-side
	// counters and the latency histogram under load.* names. Nil
	// falls back to the process default.
	Obs *obs.Observer
	// Client overrides the HTTP client; nil builds one sized for the
	// run's concurrency.
	Client *http.Client
}

// Run executes the configured load run and summarizes it. ctx cancels
// the run early; whatever was measured up to that point is still
// reported (with an error only if nothing completed).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Payloads == nil || len(cfg.Payloads.Kinds) == 0 {
		return nil, fmt.Errorf("load: no payloads")
	}
	n := len(cfg.Payloads.Kinds)
	if cfg.Mode == Closed && cfg.Concurrency <= 0 {
		return nil, fmt.Errorf("load: closed loop needs concurrency > 0, got %d", cfg.Concurrency)
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	var schedule []time.Duration
	if cfg.Mode == Open || cfg.RPS > 0 {
		var err error
		if schedule, err = Schedule(cfg.Dist, cfg.RPS, n, cfg.Seed); err != nil {
			return nil, err
		}
	}
	client := cfg.Client
	if client == nil {
		workers := cfg.Concurrency
		if cfg.Mode == Open {
			workers = n // open loop: every request may be in flight at once
		}
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        workers,
			MaxIdleConnsPerHost: workers,
		}}
	}

	o := obs.Or(cfg.Obs)
	sp := o.StartSpan("load.run",
		obs.KV("mode", string(cfg.Mode)), obs.KV("dist", string(cfg.Dist)),
		obs.KV("requests", n), obs.KV("rps", cfg.RPS))
	defer sp.End()

	rec := newRecorder()
	url := cfg.BaseURL + "/v1/score"
	// Correlation IDs are precomputed so the hot loop only indexes:
	// request i of a run is always RequestID(seed, i), which makes a
	// report's slowest-request IDs reproducible run over run and
	// greppable straight out of the daemon's access log and trace.
	ids := make([]string, n)
	for i := range ids {
		ids[i] = RequestID(cfg.Seed, i)
	}
	start := time.Now()
	switch cfg.Mode {
	case Open:
		runOpen(ctx, client, url, cfg.Payloads, ids, schedule, rec)
	default:
		runClosed(ctx, client, url, cfg.Payloads, ids, schedule, cfg.Concurrency, cfg.MaxRetries, rec)
	}
	wall := time.Since(start)

	rep := assemble(cfg, rec, wall)
	sp.SetAttr("done", rep.Totals.Done)
	sp.SetAttr("errors", rep.Totals.Errors)
	sp.SetAttr("p99_ms", rep.LatencyMs.P99)
	if o.Active() {
		m := o.Metrics()
		m.Counter("load.sent").Add(rep.Totals.Sent)
		m.Counter("load.errors").Add(rep.Totals.Errors)
		m.Counter("load.shed").Add(rep.Totals.Shed)
	}
	if rep.Totals.Done == 0 {
		return rep, fmt.Errorf("load: no request completed (transport errors: %d)", rep.Totals.TransportErrors)
	}
	return rep, nil
}

// runOpen fires request i at schedule[i] no matter what came back
// earlier. A 429 is terminal here: an open-loop client that re-queued
// sheds would change the arrival process it is supposed to hold fixed.
func runOpen(ctx context.Context, client *http.Client, url string, ps *PayloadSet, ids []string, schedule []time.Duration, rec *recorder) {
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	var wg sync.WaitGroup
	for i := range ps.Bodies {
		wait := schedule[i] - time.Since(start)
		if wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				wg.Wait()
				return
			}
		} else if ctx.Err() != nil {
			wg.Wait()
			return
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status := send(ctx, client, url, ids[i], ps.Bodies[i], ps.Expect[i], rec)
			if status == http.StatusTooManyRequests {
				rec.dropShed()
			}
		}(i)
	}
	wg.Wait()
}

// runClosed runs workers pulls requests off a shared index; each
// worker sleeps its think gap, sends, and on a 429 honors the
// daemon's Retry-After before re-sending the same payload.
func runClosed(ctx context.Context, client *http.Client, url string, ps *PayloadSet, ids []string, schedule []time.Duration, workers, maxRetries int, rec *recorder) {
	var next atomic.Int64
	gapAt := func(i int) time.Duration {
		if schedule == nil {
			return 0
		}
		if i == 0 {
			return schedule[0]
		}
		return schedule[i] - schedule[i-1]
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= len(ps.Bodies) || ctx.Err() != nil {
					return
				}
				if gap := gapAt(i); gap > 0 && !sleep(ctx, gap) {
					return
				}
				for attempt := 0; ; attempt++ {
					// Retries reuse the same ID: they are the same
					// logical request, and the server-side log then
					// shows every attempt under one correlation key.
					status := send(ctx, client, url, ids[i], ps.Bodies[i], ps.Expect[i], rec)
					if status != http.StatusTooManyRequests {
						break
					}
					if attempt >= maxRetries || !sleep(ctx, retryAfterDelay()) {
						rec.dropShed()
						break
					}
					rec.retries.Add(1)
				}
			}
		}()
	}
	wg.Wait()
}

// retryAfterDelay converts the service's exported Retry-After
// contract into a wait. The daemon always sends whole seconds
// (service.RetryAfter); parsing the shared constant instead of the
// response header keeps the delay deterministic and pins the two
// sides together at compile^W test time.
func retryAfterDelay() time.Duration {
	secs, err := strconv.Atoi(service.RetryAfter)
	if err != nil || secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// RequestID is the deterministic correlation ID the harness sends as
// X-Request-ID for request i of a run seeded with seed. Pure function
// of (seed, i), like the schedule and the payload bytes — so a
// report's slowest-request IDs name the same requests on every replay
// and can be grepped through the daemon's access log and JSONL trace.
func RequestID(seed uint64, i int) string {
	return fmt.Sprintf("load-%d-%06d", seed, i)
}

// send issues one request and records the outcome. It returns the
// HTTP status, or 0 on a transport error.
func send(ctx context.Context, client *http.Client, url, id string, body []byte, expect int, rec *recorder) int {
	rec.sent.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		rec.transport.Add(1)
		return 0
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.HeaderRequestID, id)
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		rec.transport.Add(1)
		return 0
	}
	// Drain so the connection is reusable, then time the full
	// response, body included — that is what a client experiences.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rec.observe(id, resp.StatusCode, expect, float64(time.Since(t0))/float64(time.Millisecond))
	return resp.StatusCode
}

// sleep waits d or until ctx fires; it reports whether the full wait
// completed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// assemble folds the recorder into the report.
func assemble(cfg Config, rec *recorder, wall time.Duration) *Report {
	sent := rec.sent.Load()
	errs := rec.transport.Load() + rec.mismatch.Load() + rec.dropped.Load()
	rep := &Report{
		Schema: Schema,
		Config: ReportConfig{
			Mode:        string(cfg.Mode),
			Dist:        string(cfg.Dist),
			RPS:         cfg.RPS,
			Requests:    len(cfg.Payloads.Kinds),
			Concurrency: cfg.Concurrency,
			Seed:        cfg.Seed,
			Mix:         mixOf(cfg.Payloads),
			Payloads:    cfg.Payloads.Counts(),
			Target:      cfg.BaseURL,
		},
		Totals: Totals{
			Sent:            sent,
			Done:            rec.done.Load(),
			Retries:         rec.retries.Load(),
			Shed:            rec.shed.Load(),
			DroppedShed:     rec.dropped.Load(),
			TransportErrors: rec.transport.Load(),
			Mismatches:      rec.mismatch.Load(),
			Errors:          errs,
		},
		StatusCounts: rec.statusCounts(),
		Slowest:      rec.slow.sorted(),
		LatencyMs: Latency{
			P50:   rec.hist.Quantile(0.50),
			P90:   rec.hist.Quantile(0.90),
			P95:   rec.hist.Quantile(0.95),
			P99:   rec.hist.Quantile(0.99),
			Max:   rec.max(),
			Mean:  rec.hist.Mean(),
			Count: rec.hist.Count(),
		},
		DurationS: wall.Seconds(),
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.Totals.Done) / wall.Seconds()
	}
	if sent > 0 {
		rep.ErrorRate = float64(errs) / float64(sent)
	}
	return rep
}

// mixOf reconstructs the percentage string from the materialized set
// (exact when n is a multiple of 100, descriptive otherwise).
func mixOf(ps *PayloadSet) string {
	n := len(ps.Kinds)
	if n == 0 {
		return ""
	}
	c := ps.Counts()
	return fmt.Sprintf("hit=%d,miss=%d,invalid=%d",
		100*c[KindHit.String()]/n, 100*c[KindMiss.String()]/n, 100*c[KindInvalid.String()]/n)
}
