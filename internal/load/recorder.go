package load

import (
	"math"
	"net/http"
	"sync/atomic"

	"hmeans/internal/obs"
)

// latencyBuckets are the recorder's fixed log-spaced bounds: 50µs to
// 2 minutes at 15% growth (~100 buckets). Growth bounds the quantile
// error — a reported p99 is within ±15% of the true value at any
// magnitude — while the fixed layout keeps Observe allocation-free.
var latencyBuckets = obs.LogBounds(0.05, 120_000, 1.15)

// maxStatus bounds the dense per-status counter array; statuses
// outside [100, maxStatus) land in the "other" bucket.
const maxStatus = 600

// recorder is the streaming latency/status sink of one run. Every
// field is a fixed-size atomic, so recording a response in steady
// state performs no allocation — the harness can sustain high RPS
// without its own GC pauses polluting the tail it is measuring.
type recorder struct {
	hist      *obs.Histogram // latency in ms, all completed responses
	statuses  [maxStatus]atomic.Int64
	other     atomic.Int64 // statuses outside the dense array
	sent      atomic.Int64 // requests handed to the transport
	done      atomic.Int64 // responses with a status line
	transport atomic.Int64 // requests that died without a status
	mismatch  atomic.Int64 // status ≠ expected and ≠ 429
	shed      atomic.Int64 // 429 replies (before any retry succeeds)
	dropped   atomic.Int64 // 429s never resolved (open loop, or retries exhausted)
	retries   atomic.Int64 // closed-loop Retry-After retries issued
	maxBits   atomic.Uint64
}

func newRecorder() *recorder {
	reg := obs.NewRegistry()
	return &recorder{hist: reg.Histogram("load.latency_ms", latencyBuckets...)}
}

// observe records one completed response: its latency, its status,
// and whether it honored the payload's contract. A 429 is recorded as
// shed, never as a mismatch — shedding is the daemon keeping its
// promise under overload; whether an unresolved shed counts against
// the run is the loop's call (see dropShed).
func (r *recorder) observe(status, expect int, ms float64) {
	r.done.Add(1)
	r.hist.Observe(ms)
	for {
		old := r.maxBits.Load()
		if ms <= math.Float64frombits(old) && old != 0 {
			break
		}
		if r.maxBits.CompareAndSwap(old, math.Float64bits(ms)) {
			break
		}
	}
	if status >= 100 && status < maxStatus {
		r.statuses[status].Add(1)
	} else {
		r.other.Add(1)
	}
	if status == http.StatusTooManyRequests {
		r.shed.Add(1)
		return
	}
	if status != expect {
		r.mismatch.Add(1)
	}
}

// dropShed marks one shed request as finally unresolved: the open
// loop never retries, and the closed loop exhausted its budget.
func (r *recorder) dropShed() { r.dropped.Add(1) }

// max returns the largest observed latency in ms.
func (r *recorder) max() float64 { return math.Float64frombits(r.maxBits.Load()) }

// statusCounts exports the non-zero status tallies.
func (r *recorder) statusCounts() map[string]int64 {
	out := make(map[string]int64)
	for s := range r.statuses {
		if v := r.statuses[s].Load(); v != 0 {
			out[itoa3(s)] = v
		}
	}
	if v := r.other.Load(); v != 0 {
		out["other"] = v
	}
	return out
}

// itoa3 formats a 3-digit status without strconv's interface boxing
// (cosmetic — this only runs once per run, at report time).
func itoa3(s int) string {
	return string([]byte{byte('0' + s/100), byte('0' + s/10%10), byte('0' + s%10)})
}
