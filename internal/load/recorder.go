package load

import (
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"hmeans/internal/obs"
)

// latencyBuckets are the recorder's fixed log-spaced bounds: 50µs to
// 2 minutes at 15% growth (~100 buckets). Growth bounds the quantile
// error — a reported p99 is within ±15% of the true value at any
// magnitude — while the fixed layout keeps Observe allocation-free.
var latencyBuckets = obs.LogBounds(0.05, 120_000, 1.15)

// maxStatus bounds the dense per-status counter array; statuses
// outside [100, maxStatus) land in the "other" bucket.
const maxStatus = 600

// recorder is the streaming latency/status sink of one run. Every
// field is a fixed-size atomic, so recording a response in steady
// state performs no allocation — the harness can sustain high RPS
// without its own GC pauses polluting the tail it is measuring.
type recorder struct {
	hist      *obs.Histogram // latency in ms, all completed responses
	statuses  [maxStatus]atomic.Int64
	other     atomic.Int64 // statuses outside the dense array
	sent      atomic.Int64 // requests handed to the transport
	done      atomic.Int64 // responses with a status line
	transport atomic.Int64 // requests that died without a status
	mismatch  atomic.Int64 // status ≠ expected and ≠ 429
	shed      atomic.Int64 // 429 replies (before any retry succeeds)
	dropped   atomic.Int64 // 429s never resolved (open loop, or retries exhausted)
	retries   atomic.Int64 // closed-loop retries issued (429s, transport errors)
	// integrity counts 200s whose body failed the X-Hmeans-Digest
	// check. Each is also counted in transport (no trustworthy status),
	// so done + transport == sent still holds.
	integrity atomic.Int64
	// failedDrop counts requests whose FINAL attempt was a transport
	// or integrity failure: transport counts attempts, failedDrop
	// counts requests that never resolved (like dropped for sheds).
	failedDrop atomic.Int64
	blocked    atomic.Int64 // requests abandoned while the breaker was open
	opens      atomic.Int64 // closed→open transitions of the shared breaker
	maxBits    atomic.Uint64
	slow       slowTracker // top-k slowest requests by correlation ID
}

func newRecorder() *recorder {
	reg := obs.NewRegistry()
	return &recorder{hist: reg.Histogram("load.latency_ms", latencyBuckets...)}
}

// observe records one completed response: its latency, its status,
// and whether it honored the payload's contract. A 429 is recorded as
// shed, never as a mismatch — shedding is the daemon keeping its
// promise under overload; whether an unresolved shed counts against
// the run is the loop's call (see dropShed). id is the request's
// X-Request-ID, kept for the slowest-request leaderboard so a bad
// tail sample can be chased into the daemon's access log and trace.
func (r *recorder) observe(id string, status, expect int, ms float64) {
	r.slow.add(id, status, ms)
	r.done.Add(1)
	r.hist.Observe(ms)
	for {
		old := r.maxBits.Load()
		if ms <= math.Float64frombits(old) && old != 0 {
			break
		}
		if r.maxBits.CompareAndSwap(old, math.Float64bits(ms)) {
			break
		}
	}
	if status >= 100 && status < maxStatus {
		r.statuses[status].Add(1)
	} else {
		r.other.Add(1)
	}
	if status == http.StatusTooManyRequests {
		r.shed.Add(1)
		return
	}
	if status != expect {
		r.mismatch.Add(1)
	}
}

// dropShed marks one shed request as finally unresolved: the open
// loop never retries, and the closed loop exhausted its budget.
func (r *recorder) dropShed() { r.dropped.Add(1) }

// dropBlocked marks one request abandoned because the circuit breaker
// stayed open through its whole retry budget — it never got an answer,
// and its last attempts were never even sent.
func (r *recorder) dropBlocked() { r.blocked.Add(1) }

// dropFailed marks one request whose final attempt died without a
// trustworthy answer (transport or integrity failure, retries
// exhausted or never attempted).
func (r *recorder) dropFailed() { r.failedDrop.Add(1) }

// max returns the largest observed latency in ms.
func (r *recorder) max() float64 { return math.Float64frombits(r.maxBits.Load()) }

// statusCounts exports the non-zero status tallies.
func (r *recorder) statusCounts() map[string]int64 {
	out := make(map[string]int64)
	for s := range r.statuses {
		if v := r.statuses[s].Load(); v != 0 {
			out[itoa3(s)] = v
		}
	}
	if v := r.other.Load(); v != 0 {
		out["other"] = v
	}
	return out
}

// itoa3 formats a 3-digit status without strconv's interface boxing
// (cosmetic — this only runs once per run, at report time).
func itoa3(s int) string {
	return string([]byte{byte('0' + s/100), byte('0' + s/10%10), byte('0' + s%10)})
}

// SlowRequest identifies one of a run's slowest completed requests.
// Because the harness sends every request with a deterministic
// X-Request-ID (see RequestID) and hmeansd logs and traces that same
// ID, each entry is a direct pointer into the server-side telemetry
// for the exact requests that built the tail.
type SlowRequest struct {
	RequestID string  `json:"request_id"`
	Status    int     `json:"status"`
	LatencyMs float64 `json:"latency_ms"`
}

// slowTrackDepth is the leaderboard size: enough to cover the p99
// stragglers of a CI-sized run without bloating the report.
const slowTrackDepth = 10

// slowTracker keeps the k slowest responses seen so far in a fixed
// array (replace-the-minimum), so steady-state tracking allocates
// nothing — the IDs it stores were built once, before the hot loop.
type slowTracker struct {
	mu      sync.Mutex
	entries [slowTrackDepth]SlowRequest
	n       int
}

func (t *slowTracker) add(id string, status int, ms float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < len(t.entries) {
		t.entries[t.n] = SlowRequest{RequestID: id, Status: status, LatencyMs: ms}
		t.n++
		return
	}
	minI := 0
	for i := 1; i < t.n; i++ {
		if t.entries[i].LatencyMs < t.entries[minI].LatencyMs {
			minI = i
		}
	}
	if ms > t.entries[minI].LatencyMs {
		t.entries[minI] = SlowRequest{RequestID: id, Status: status, LatencyMs: ms}
	}
}

// sorted returns the leaderboard slowest-first, ties broken by ID so
// the report is deterministic for a deterministic run.
func (t *slowTracker) sorted() []SlowRequest {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := append([]SlowRequest(nil), t.entries[:t.n]...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].LatencyMs != out[j].LatencyMs {
			return out[i].LatencyMs > out[j].LatencyMs
		}
		return out[i].RequestID < out[j].RequestID
	})
	return out
}
