package load

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestPayloadMixDeterministicPinned pins the exact kind sequence for
// one (mix, n, seed): the other half of the replayability contract —
// same -seed, same payload mix, request for request.
func TestPayloadMixDeterministicPinned(t *testing.T) {
	base := SyntheticBaseRequest(13, 6, 2007)
	ps, err := BuildPayloads(base, Mix{HitPct: 60, MissPct: 30, InvalidPct: 10}, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Fields("invalid miss hit miss miss hit hit invalid hit hit hit invalid invalid hit hit miss miss invalid hit invalid")
	for i, k := range ps.Kinds {
		if k.String() != want[i] {
			t.Errorf("kind[%d] = %s, want %s", i, k, want[i])
		}
	}
}

func TestPayloadsSameSeedSameBytes(t *testing.T) {
	base := SyntheticBaseRequest(8, 4, 1)
	mix := Mix{HitPct: 50, MissPct: 40, InvalidPct: 10}
	a, err := BuildPayloads(base, mix, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPayloads(base, mix, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Bodies {
		if a.Kinds[i] != b.Kinds[i] || !bytes.Equal(a.Bodies[i], b.Bodies[i]) {
			t.Fatalf("payload %d diverges across identical builds", i)
		}
	}
}

// TestPayloadIdentities checks the cache semantics each kind encodes:
// all hit bodies are one identical byte string (the replayed request),
// every miss body is unique, and invalids expect a 400.
func TestPayloadIdentities(t *testing.T) {
	base := SyntheticBaseRequest(8, 4, 1)
	ps, err := BuildPayloads(base, Mix{HitPct: 40, MissPct: 40, InvalidPct: 20}, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	var hitBody []byte
	missSeen := make(map[string]bool)
	for i, k := range ps.Kinds {
		switch k {
		case KindHit:
			if hitBody == nil {
				hitBody = ps.Bodies[i]
			} else if !bytes.Equal(hitBody, ps.Bodies[i]) {
				t.Fatalf("hit payload %d differs from the replayed request", i)
			}
			if ps.Expect[i] != http.StatusOK {
				t.Fatalf("hit payload %d expects %d", i, ps.Expect[i])
			}
		case KindMiss:
			s := string(ps.Bodies[i])
			if missSeen[s] {
				t.Fatalf("miss payload %d is a duplicate — it would cache-hit", i)
			}
			missSeen[s] = true
			if bytes.Equal(ps.Bodies[i], hitBody) {
				t.Fatalf("miss payload %d equals the hit payload", i)
			}
			if ps.Expect[i] != http.StatusOK {
				t.Fatalf("miss payload %d expects %d", i, ps.Expect[i])
			}
		case KindInvalid:
			if ps.Expect[i] != http.StatusBadRequest {
				t.Fatalf("invalid payload %d expects %d, want 400", i, ps.Expect[i])
			}
		}
	}
	if hitBody == nil || len(missSeen) == 0 {
		t.Fatal("mix produced no hits or no misses at n=100")
	}
}

func TestBuildPayloadsRejectsInvalidBase(t *testing.T) {
	base := SyntheticBaseRequest(8, 4, 1)
	base.Table.Rows = base.Table.Rows[:3] // shape violation
	if _, err := BuildPayloads(base, Mix{HitPct: 100}, 10, 1); err == nil {
		t.Error("malformed base request accepted")
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("hit=60,miss=30,invalid=10")
	if err != nil || m != (Mix{60, 30, 10}) {
		t.Fatalf("ParseMix = %+v, %v", m, err)
	}
	if m.String() != "hit=60,miss=30,invalid=10" {
		t.Errorf("Mix.String = %q", m.String())
	}
	if _, err := ParseMix("hit=100"); err != nil {
		t.Errorf("single-component 100%% mix rejected: %v", err)
	}
	for _, bad := range []string{"hit=50,miss=30", "hit=60,miss=30,invalid=20", "hot=100", "hit=abc", "hit", "hit=-5,miss=105"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}
