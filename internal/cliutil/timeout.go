package cliutil

import (
	"context"
	"flag"
	"time"
)

// RegisterTimeout installs the shared -timeout flag on fs and returns
// the destination. Zero (the default) means no deadline.
func RegisterTimeout(fs *flag.FlagSet) *time.Duration {
	d := fs.Duration("timeout", 0, "abort the run after this duration (e.g. 30s, 2m); 0 = no limit")
	return d
}

// WithTimeout turns a -timeout value into the run's root context: a
// deadline context for positive d, a plain background context for
// zero. The cancel func must always be deferred.
func WithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(context.Background())
	}
	return context.WithTimeout(context.Background(), d)
}
