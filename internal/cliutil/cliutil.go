// Package cliutil holds the small shared conventions of the cmd/
// binaries: a usage-error type that exits with the conventional status
// 2 and a one-line hint, a shared -timeout flag that bounds a whole
// run with a context deadline, and the main-function wrapper that
// maps a run function's error to the process exit code (0 ok, 1
// internal/runtime failure, 2 usage mistake, 3 invalid input data,
// 4 service unavailable, 5 transport failure).
package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
)

// UsageError marks a command-line mistake (bad flag value, missing
// argument): the user needs the usage hint, not a stack of context.
type UsageError struct{ msg string }

// Usagef builds a UsageError.
func Usagef(format string, args ...any) *UsageError {
	return &UsageError{msg: fmt.Sprintf(format, args...)}
}

// Error returns the message.
func (e *UsageError) Error() string { return e.msg }

// dataError is the marker interface the data packages (core, cluster)
// implement on their typed input-validation errors. Matching on the
// method instead of the concrete types keeps cliutil free of
// dependencies on the analysis packages.
type dataError interface {
	error
	DataError() bool
}

// Exit codes beyond the classic 0/1/2/3 quartet, for errors that
// carry their own code via ExitCoder. Scripts branch on these: 4
// means "come back later" (retry against the service), 5 means "check
// the network path" — neither is a reason to distrust the inputs.
const (
	// ExitUnavailable (4) marks a service that refused work it will
	// accept later: shed with 429, draining with 503, or a client-side
	// circuit breaker holding requests back.
	ExitUnavailable = 4
	// ExitTransport (5) marks a network-level failure: connection
	// refused or reset, a torn response, or a body that failed its
	// integrity check — the request may never have reached the
	// service, or the answer never cleanly left it.
	ExitTransport = 5
)

// ExitCoder lets an error pick its own exit code. Checked after the
// usage and data-error conventions, so those classic mappings can
// never be overridden.
type ExitCoder interface {
	error
	ExitCode() int
}

// Run executes a command's run function and maps its error to an exit
// code, printing diagnostics to stderr:
//
//	nil              → 0
//	flag.ErrHelp     → 0 (the flag package already printed usage)
//	*UsageError      → 2, message plus a "-h" hint on one line
//	data error       → 3, message prefixed with "invalid input"
//	ExitCoder        → its ExitCode() (4 unavailable, 5 transport)
//	anything else    → 1, message prefixed with the tool name
//
// A data error is any error whose chain carries a DataError() bool
// method — bad input data (non-finite values, degenerate requests)
// rather than a bug or a usage mistake, so scripts can tell the
// difference. main functions reduce to
// os.Exit(cliutil.Run(name, os.Stderr, fn)).
func Run(name string, stderr io.Writer, fn func() error) int {
	err := fn()
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	}
	var ue *UsageError
	if errors.As(err, &ue) {
		fmt.Fprintf(stderr, "%s: %s (run '%s -h' for usage)\n", name, ue.msg, name)
		return 2
	}
	var de dataError
	if errors.As(err, &de) && de.DataError() {
		fmt.Fprintf(stderr, "%s: invalid input: %v\n", name, err)
		return 3
	}
	var ec ExitCoder
	if errors.As(err, &ec) {
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return ec.ExitCode()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stderr, "%s: timed out: %v\n", name, err)
		return 1
	}
	fmt.Fprintf(stderr, "%s: %v\n", name, err)
	return 1
}

// ValidateParallel checks a -parallel flag value: 0 means "all CPUs"
// and positive values are worker counts, but negative values are
// always a mistake.
func ValidateParallel(v int) error {
	if v < 0 {
		return Usagef("-parallel must be >= 0 (0 = all CPUs), got %d", v)
	}
	return nil
}

// ValidatePositiveFloat checks a float flag that must be strictly
// positive and finite — rates like -rps, where 0, negatives, NaN and
// ±Inf are all usage mistakes rather than extreme settings.
func ValidatePositiveFloat(flagName string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		return Usagef("%s must be a positive finite number, got %v", flagName, v)
	}
	return nil
}

// ValidateMin checks an integer flag against its lower bound,
// reporting a UsageError naming the flag on violation. It covers the
// server-tuning flags (-max-inflight >= 1, -queue-depth >= 0,
// -cache-size >= 0) without a bespoke check per flag.
func ValidateMin(flagName string, v, min int) error {
	if v < min {
		return Usagef("%s must be >= %d, got %d", flagName, min, v)
	}
	return nil
}
