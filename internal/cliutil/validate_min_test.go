package cliutil

import (
	"errors"
	"strings"
	"testing"
)

func TestValidateMin(t *testing.T) {
	if err := ValidateMin("-queue-depth", 0, 0); err != nil {
		t.Fatalf("ValidateMin at the floor = %v", err)
	}
	if err := ValidateMin("-cache-size", 128, 0); err != nil {
		t.Fatalf("ValidateMin above the floor = %v", err)
	}
	err := ValidateMin("-max-inflight", -1, 0)
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("ValidateMin(-1) = %v, want UsageError", err)
	}
	if !strings.Contains(err.Error(), "-max-inflight") || !strings.Contains(err.Error(), "-1") {
		t.Fatalf("message %q names neither flag nor value", err.Error())
	}
}
