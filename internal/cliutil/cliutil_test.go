package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		wantCode int
		wantOut  string
	}{
		{"nil", nil, 0, ""},
		{"help", flag.ErrHelp, 0, ""},
		{"wrapped-help", fmt.Errorf("parse: %w", flag.ErrHelp), 0, ""},
		{"usage", Usagef("-parallel must be >= 0 (0 = all CPUs), got %d", -2), 2,
			"tool: -parallel must be >= 0 (0 = all CPUs), got -2 (run 'tool -h' for usage)\n"},
		{"wrapped-usage", fmt.Errorf("outer: %w", Usagef("bad value")), 2,
			"tool: bad value (run 'tool -h' for usage)\n"},
		{"plain", errors.New("boom"), 1, "tool: boom\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			code := Run("tool", &sb, func() error { return tc.err })
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d", code, tc.wantCode)
			}
			if sb.String() != tc.wantOut {
				t.Fatalf("stderr = %q, want %q", sb.String(), tc.wantOut)
			}
		})
	}
}

func TestValidateParallel(t *testing.T) {
	for _, ok := range []int{0, 1, 8} {
		if err := ValidateParallel(ok); err != nil {
			t.Fatalf("ValidateParallel(%d) = %v", ok, err)
		}
	}
	err := ValidateParallel(-1)
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("ValidateParallel(-1) = %v, want UsageError", err)
	}
}
