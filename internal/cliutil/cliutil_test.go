package cliutil

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// fakeDataError stands in for the typed validation errors of the
// analysis packages: anything carrying DataError() bool.
type fakeDataError struct{ msg string }

func (e *fakeDataError) Error() string   { return e.msg }
func (e *fakeDataError) DataError() bool { return true }

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		wantCode int
		wantOut  string
	}{
		{"nil", nil, 0, ""},
		{"help", flag.ErrHelp, 0, ""},
		{"wrapped-help", fmt.Errorf("parse: %w", flag.ErrHelp), 0, ""},
		{"usage", Usagef("-parallel must be >= 0 (0 = all CPUs), got %d", -2), 2,
			"tool: -parallel must be >= 0 (0 = all CPUs), got -2 (run 'tool -h' for usage)\n"},
		{"wrapped-usage", fmt.Errorf("outer: %w", Usagef("bad value")), 2,
			"tool: bad value (run 'tool -h' for usage)\n"},
		{"plain", errors.New("boom"), 1, "tool: boom\n"},
		{"data", &fakeDataError{msg: "NaN in scores"}, 3,
			"tool: invalid input: NaN in scores\n"},
		{"wrapped-data", fmt.Errorf("reading scores: %w", &fakeDataError{msg: "NaN at row 3"}), 3,
			"tool: invalid input: reading scores: NaN at row 3\n"},
		{"deadline", fmt.Errorf("pipeline: %w", context.DeadlineExceeded), 1,
			"tool: timed out: pipeline: context deadline exceeded\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			code := Run("tool", &sb, func() error { return tc.err })
			if code != tc.wantCode {
				t.Fatalf("exit code = %d, want %d", code, tc.wantCode)
			}
			if sb.String() != tc.wantOut {
				t.Fatalf("stderr = %q, want %q", sb.String(), tc.wantOut)
			}
		})
	}
}

func TestValidateParallel(t *testing.T) {
	for _, ok := range []int{0, 1, 8} {
		if err := ValidateParallel(ok); err != nil {
			t.Fatalf("ValidateParallel(%d) = %v", ok, err)
		}
	}
	err := ValidateParallel(-1)
	var ue *UsageError
	if !errors.As(err, &ue) {
		t.Fatalf("ValidateParallel(-1) = %v, want UsageError", err)
	}
}

func TestValidatePositiveFloat(t *testing.T) {
	if err := ValidatePositiveFloat("-rps", 0.5); err != nil {
		t.Errorf("0.5 rejected: %v", err)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := ValidatePositiveFloat("-rps", bad)
		if err == nil {
			t.Errorf("%v accepted", bad)
			continue
		}
		var ue *UsageError
		if !errors.As(err, &ue) || !strings.Contains(err.Error(), "-rps") {
			t.Errorf("%v: error %v is not a flag-naming UsageError", bad, err)
		}
	}
}

func TestRegisterTimeout(t *testing.T) {
	fs := flag.NewFlagSet("tool", flag.ContinueOnError)
	d := RegisterTimeout(fs)
	if err := fs.Parse([]string{"-timeout", "150ms"}); err != nil {
		t.Fatal(err)
	}
	if *d != 150*time.Millisecond {
		t.Fatalf("-timeout parsed to %v, want 150ms", *d)
	}
}

func TestWithTimeout(t *testing.T) {
	// Zero: a plain cancellable context with no deadline.
	ctx, cancel := WithTimeout(0)
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout set a deadline")
	}
	cancel()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("cancel did not propagate: %v", ctx.Err())
	}

	// Positive: the context expires on its own.
	ctx, cancel = WithTimeout(time.Millisecond)
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("positive timeout set no deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline context never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v, want DeadlineExceeded", ctx.Err())
	}
}
