// Package service turns the batch cluster-detection pipeline into a
// long-running scoring service: an HTTP JSON API that accepts a
// characterization table plus named score vectors and returns the
// full pipeline result (SOM positions, dendrogram, recommended cut,
// hierarchical means per k).
//
// The layer adds three things the batch CLIs do not need:
//
//   - a content-addressed result cache keyed by the SHA-256 of the
//     canonicalized request, with singleflight-style coalescing so
//     identical in-flight requests train the SOM once;
//   - a bounded worker pool with queueing and backpressure (429 +
//     Retry-After on overflow) and per-request compute deadlines via
//     core.DetectClustersCtx;
//   - the PR 2/3 conventions end to end: one obs span per request,
//     cache and queue counters on /metrics, and the typed error
//     taxonomy mapped to HTTP statuses the way the CLIs map it to
//     exit codes (invalid input → 400, timeout → 504, internal → 500).
package service

import (
	"fmt"
	"sort"

	"hmeans/internal/chars"
	"hmeans/internal/cluster"
	"hmeans/internal/core"
)

// Request is the JSON body of POST /v1/score: one characterization
// table, any number of named score vectors, and the pipeline knobs
// that change results. Worker counts are deliberately absent — every
// parallel kernel is bit-identical for any worker count, so
// parallelism is a server-side deployment choice, not part of the
// request (or of its cache key).
type Request struct {
	// Table is the raw characterization matrix.
	Table TableJSON `json:"table"`
	// Scores maps vector names (machine ids) to per-workload scores,
	// aligned with Table.Workloads. May be empty: the response then
	// carries only the geometry (SOM, dendrogram, recommended cut).
	Scores map[string][]float64 `json:"scores,omitempty"`
	// Config selects the result-changing pipeline options.
	Config ConfigJSON `json:"config"`
	// K fixes the reported cut. 0 means "cut at the recommended k".
	K int `json:"k,omitempty"`
	// KMin/KMax bound the sweep of per-k means and the recommendation
	// range. Zero values default to 2 and the workload count.
	KMin int `json:"k_min,omitempty"`
	KMax int `json:"k_max,omitempty"`
}

// TableJSON is the wire form of a characterization table.
type TableJSON struct {
	Workloads []string    `json:"workloads"`
	Features  []string    `json:"features"`
	Rows      [][]float64 `json:"rows"`
}

// ConfigJSON is the wire form of the result-changing subset of
// core.PipelineConfig.
type ConfigJSON struct {
	// Kind is the preprocessing recipe: "counters" (default) or
	// "bits".
	Kind string `json:"kind,omitempty"`
	// Seed seeds SOM training. 0 takes the som package default.
	Seed uint64 `json:"seed,omitempty"`
	// SkipSOM clusters the preprocessed vectors directly.
	SkipSOM bool `json:"skip_som,omitempty"`
	// SoftPlacement clusters interpolated SOM positions instead of
	// hard BMU cells.
	SoftPlacement bool `json:"soft_placement,omitempty"`
	// Quarantine drops non-finite workloads instead of failing.
	// (JSON cannot express NaN/Inf, so this only matters to callers
	// constructing Requests in-process.)
	Quarantine bool `json:"quarantine,omitempty"`
}

// Response is the JSON body of a successful score: the full pipeline
// result. Field order and slice ordering are fixed (vector names
// sorted, means sorted by k then vector) so that encoding a Response
// is deterministic — the property the content-addressed cache relies
// on to make hits bit-identical to cold-path responses.
type Response struct {
	// Workloads are the surviving rows, in score order.
	Workloads []string `json:"workloads"`
	// SOM describes the trained map; nil when skip_som was set.
	SOM *SOMJSON `json:"som,omitempty"`
	// Positions are the clustered points (SOM grid positions, or the
	// preprocessed vectors when skip_som).
	Positions [][]float64 `json:"positions"`
	// Dendrogram is the full merge tree.
	Dendrogram DendrogramJSON `json:"dendrogram"`
	// RecommendedK is the geometric (and, with ≥2 score vectors,
	// ratio-damped) cluster-count recommendation.
	RecommendedK int `json:"recommended_k"`
	// Cut is the reported clustering: at Request.K when fixed,
	// otherwise at RecommendedK.
	Cut CutJSON `json:"cut"`
	// Means holds the hierarchical means for every vector and every k
	// in the sweep range, sorted by (k, vector).
	Means []KMeans `json:"means,omitempty"`
	// Plain holds the flat means per vector, sorted by vector.
	Plain []PlainMeans `json:"plain,omitempty"`
	// Quarantined lists dropped workloads (quarantine mode only).
	Quarantined []QuarantineJSON `json:"quarantined,omitempty"`
}

// SOMJSON describes the trained map's geometry.
type SOMJSON struct {
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// DendrogramJSON is the wire form of the merge tree.
type DendrogramJSON struct {
	N       int         `json:"n"`
	Linkage string      `json:"linkage"`
	Merges  []MergeJSON `json:"merges"`
}

// MergeJSON is one agglomeration step.
type MergeJSON struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Distance float64 `json:"distance"`
	Size     int     `json:"size"`
}

// CutJSON is the reported clustering.
type CutJSON struct {
	K int `json:"k"`
	// Labels assigns each workload (in Workloads order) a cluster.
	Labels []int `json:"labels"`
	// Members lists workload names per cluster label.
	Members [][]string `json:"members"`
}

// KMeans bundles the three hierarchical means of one score vector at
// one cut.
type KMeans struct {
	K      int     `json:"k"`
	Vector string  `json:"vector"`
	HGM    float64 `json:"hgm"`
	HAM    float64 `json:"ham"`
	HHM    float64 `json:"hhm"`
}

// PlainMeans bundles the flat means of one score vector.
type PlainMeans struct {
	Vector string  `json:"vector"`
	GM     float64 `json:"gm"`
	AM     float64 `json:"am"`
	HM     float64 `json:"hm"`
}

// QuarantineJSON records one dropped workload.
type QuarantineJSON struct {
	Workload string `json:"workload"`
	Index    int    `json:"index"`
	Reason   string `json:"reason"`
}

// Validate checks everything about a Request that can be rejected
// before any computation: table shape, score vector alignment and
// finiteness, sweep bounds. Violations are *BadRequestError (→ 400).
func (r *Request) Validate() error {
	n := len(r.Table.Workloads)
	if n == 0 {
		return badRequestf("table has no workloads")
	}
	if len(r.Table.Features) == 0 {
		return badRequestf("table has no features")
	}
	if len(r.Table.Rows) != n {
		return badRequestf("table has %d rows for %d workloads", len(r.Table.Rows), n)
	}
	for i, row := range r.Table.Rows {
		if len(row) != len(r.Table.Features) {
			return badRequestf("row %d (%s) has %d values for %d features",
				i, r.Table.Workloads[i], len(row), len(r.Table.Features))
		}
	}
	for _, name := range r.vectorNames() {
		v := r.Scores[name]
		if len(v) != n {
			return badRequestf("score vector %q has %d scores for %d workloads", name, len(v), n)
		}
		if !r.Config.Quarantine {
			if err := core.ValidateScores(v); err != nil {
				return badRequestf("score vector %q: %v", name, err)
			}
		}
	}
	switch r.Config.Kind {
	case "", "counters", "bits":
	default:
		return badRequestf("unknown characterization kind %q (want counters or bits)", r.Config.Kind)
	}
	if r.K < 0 || r.KMin < 0 || r.KMax < 0 {
		return badRequestf("k, k_min and k_max must be >= 0")
	}
	if r.KMin > 0 && r.KMax > 0 && r.KMin > r.KMax {
		return badRequestf("empty sweep range [%d, %d]", r.KMin, r.KMax)
	}
	if r.K > n {
		return badRequestf("k=%d exceeds the %d workloads", r.K, n)
	}
	return nil
}

// vectorNames returns the score vector names in sorted order — the
// iteration order used everywhere (canonicalization, sweep, response
// assembly) so that identical requests produce identical bytes.
func (r *Request) vectorNames() []string {
	names := make([]string, 0, len(r.Scores))
	for name := range r.Scores {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// kind maps the wire kind to the core enum.
func (r *Request) kind() core.CharKind {
	if r.Config.Kind == "bits" {
		return core.Bits
	}
	return core.Counters
}

// pipelineConfig assembles the core config for this request.
// parallelism comes from the server, never the request.
func (r *Request) pipelineConfig(parallelism int) core.PipelineConfig {
	cfg := core.PipelineConfig{
		Kind:        r.kind(),
		Quarantine:  r.Config.Quarantine,
		SkipSOM:     r.Config.SkipSOM,
		Parallelism: parallelism,
	}
	cfg.SoftPlacement = r.Config.SoftPlacement
	cfg.SOM.Seed = r.Config.Seed
	return cfg
}

// sweepRange resolves the requested sweep bounds against the
// surviving workload count.
func (r *Request) sweepRange(n int) (kMin, kMax int) {
	kMin, kMax = r.KMin, r.KMax
	if kMin < 2 {
		kMin = 2
	}
	if kMax == 0 || kMax > n {
		kMax = n
	}
	return kMin, kMax
}

// BadRequestError marks a request the service refuses before (or
// without) running the pipeline — the HTTP analogue of
// cliutil.UsageError.
type BadRequestError struct{ msg string }

func badRequestf(format string, args ...any) *BadRequestError {
	return &BadRequestError{msg: fmt.Sprintf(format, args...)}
}

// Error returns the message.
func (e *BadRequestError) Error() string { return e.msg }

// table converts the wire table into a validated chars.Table.
func (r *Request) table() (*chars.Table, error) {
	t, err := chars.NewTable(r.Table.Workloads, r.Table.Features, r.Table.Rows)
	if err != nil {
		return nil, badRequestf("invalid table: %v", err)
	}
	return t, nil
}

// dendrogramJSON flattens a merge tree for the wire.
func dendrogramJSON(d *cluster.Dendrogram) DendrogramJSON {
	merges := d.Merges()
	out := DendrogramJSON{N: d.Len(), Linkage: d.Linkage().String(), Merges: make([]MergeJSON, len(merges))}
	for i, m := range merges {
		out.Merges[i] = MergeJSON{A: m.A, B: m.B, Distance: m.Distance, Size: m.Size}
	}
	return out
}
