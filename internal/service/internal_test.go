package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func key(b byte) cacheKey {
	var k cacheKey
	k[0] = b
	return k
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(2)
	c.put(key(1), []byte("one"))
	c.put(key(2), []byte("two"))
	if _, ok := c.get(key(1)); !ok {
		t.Fatal("key 1 evicted below capacity")
	}
	// key 1 was just used, so inserting key 3 must evict key 2.
	c.put(key(3), []byte("three"))
	if _, ok := c.get(key(2)); ok {
		t.Fatal("LRU kept the least recently used entry")
	}
	if v, ok := c.get(key(1)); !ok || string(v) != "one" {
		t.Fatalf("key 1 lost or corrupted: %q %v", v, ok)
	}
	if v, ok := c.get(key(3)); !ok || string(v) != "three" {
		t.Fatalf("key 3 lost or corrupted: %q %v", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestCacheRefreshExistingKey(t *testing.T) {
	c := newCache(2)
	c.put(key(1), []byte("a"))
	c.put(key(1), []byte("b"))
	if c.len() != 1 {
		t.Fatalf("duplicate put grew the cache to %d entries", c.len())
	}
	if v, _ := c.get(key(1)); string(v) != "b" {
		t.Fatalf("refresh kept the stale value %q", v)
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newCache(0)
	c.put(key(1), []byte("x"))
	if _, ok := c.get(key(1)); ok {
		t.Fatal("disabled cache returned a value")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache holds %d entries", c.len())
	}
}

func TestLimiterImmediateAndQueueReject(t *testing.T) {
	l := newLimiter(1, 1)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Slot held: one caller may queue, the next must be shed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	queued := make(chan error, 1)
	go func() { queued <- l.acquire(ctx) }()
	waitForCond(t, func() bool { return l.queued() == 1 }, "caller queued")
	if err := l.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue acquire = %v, want ErrOverloaded", err)
	}
	l.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	l.release()
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := newLimiter(1, 4)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer l.release()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- l.acquire(ctx) }()
	waitForCond(t, func() bool { return l.queued() == 1 }, "caller queued")
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if l.queued() != 0 {
		t.Fatalf("queue count leaked: %d", l.queued())
	}
}

func TestSingleflightRunsOnce(t *testing.T) {
	g := newGroup()
	var runs atomic.Int32
	release := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	vals := make([][]byte, callers)
	leaders := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, leader, err := g.do(context.Background(), key(7), func() ([]byte, error) {
				runs.Add(1)
				<-release
				return []byte("result"), nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			vals[i], leaders[i] = v, leader
		}(i)
	}
	waitForCond(t, func() bool { return runs.Load() == 1 && g.waiting() == callers-1 }, "followers joined")
	close(release)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	nLeaders := 0
	for i := range vals {
		if string(vals[i]) != "result" {
			t.Fatalf("caller %d got %q", i, vals[i])
		}
		if leaders[i] {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", nLeaders)
	}
	if g.flights() != 0 {
		t.Fatalf("flight leaked: %d", g.flights())
	}
}

func TestSingleflightFollowerDeadline(t *testing.T) {
	g := newGroup()
	release := make(chan struct{})
	started := make(chan struct{})
	go g.do(context.Background(), key(9), func() ([]byte, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, leader, err := g.do(ctx, key(9), func() ([]byte, error) { return nil, nil })
	if leader || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower got leader=%v err=%v, want deadline error", leader, err)
	}
	close(release)
}

func TestCacheKeyCanonical(t *testing.T) {
	base := testRequest(1)
	if testRequest(1).CacheKey() != base.CacheKey() {
		t.Fatal("identical requests hash differently")
	}

	// Map insertion order must not matter: rebuild Scores in the
	// opposite order.
	reordered := testRequest(1)
	scores := map[string][]float64{}
	for _, name := range []string{"B", "A"} {
		scores[name] = append([]float64(nil), reordered.Scores[name]...)
	}
	reordered.Scores = scores
	if reordered.CacheKey() != base.CacheKey() {
		t.Fatal("score map ordering changed the cache key")
	}

	mutations := map[string]func(*Request){
		"seed":           func(r *Request) { r.Config.Seed = 2 },
		"kind":           func(r *Request) { r.Config.Kind = "bits" },
		"skip_som":       func(r *Request) { r.Config.SkipSOM = true },
		"soft_placement": func(r *Request) { r.Config.SoftPlacement = true },
		"quarantine":     func(r *Request) { r.Config.Quarantine = true },
		"k":              func(r *Request) { r.K = 3 },
		"k_min":          func(r *Request) { r.KMin = 3 },
		"k_max":          func(r *Request) { r.KMax = 5 },
		"table value":    func(r *Request) { r.Table.Rows[0][0] += 1e-9 },
		"workload name":  func(r *Request) { r.Table.Workloads[0] = "other" },
		"feature name":   func(r *Request) { r.Table.Features[0] = "other" },
		"score value":    func(r *Request) { r.Scores["A"][0] += 1e-9 },
		"vector name":    func(r *Request) { r.Scores["C"] = r.Scores["A"]; delete(r.Scores, "A") },
	}
	for name, mutate := range mutations {
		r := testRequest(1)
		mutate(r)
		if r.CacheKey() == base.CacheKey() {
			t.Errorf("mutating %s did not change the cache key", name)
		}
	}

	// Boundary ambiguity: moving a character between adjacent names
	// must change the key (length prefixes prevent concatenation
	// collisions).
	a := testRequest(1)
	a.Table.Workloads[0], a.Table.Workloads[1] = "ab", "c"
	b := testRequest(1)
	b.Table.Workloads[0], b.Table.Workloads[1] = "a", "bc"
	if a.CacheKey() == b.CacheKey() {
		t.Error("length prefixes failed to separate adjacent strings")
	}
}

func waitForCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestValidateMessages(t *testing.T) {
	r := testRequest(1)
	if err := r.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	r.Table.Rows = r.Table.Rows[:3]
	err := r.Validate()
	var br *BadRequestError
	if !errors.As(err, &br) {
		t.Fatalf("got %T (%v), want *BadRequestError", err, err)
	}
	if br.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestSweepRangeDefaults(t *testing.T) {
	r := &Request{}
	for _, tc := range []struct {
		kMin, kMax, n    int
		wantMin, wantMax int
	}{
		{0, 0, 8, 2, 8},
		{3, 5, 8, 3, 5},
		{0, 99, 8, 2, 8},
		{2, 0, 4, 2, 4},
	} {
		r.KMin, r.KMax = tc.kMin, tc.kMax
		gotMin, gotMax := r.sweepRange(tc.n)
		if gotMin != tc.wantMin || gotMax != tc.wantMax {
			t.Errorf("sweepRange(%d,%d,n=%d) = [%d,%d], want [%d,%d]",
				tc.kMin, tc.kMax, tc.n, gotMin, gotMax, tc.wantMin, tc.wantMax)
		}
	}
}
