package service

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log/slog"
	"os"
	"path/filepath"
)

// SnapshotMagic identifies the durable cache snapshot format. Version
// 1: the magic line, then zero or more length-prefixed records, each
// CRC-guarded independently so one corrupted record never takes the
// rest of the snapshot with it:
//
//	"hmeansd-snap/1\n"
//	record := valueLen(uint32 BE) | key(32 bytes) | value(valueLen bytes)
//	          | crc32-IEEE(key ‖ value)(uint32 BE)
//
// Records are written least-recently-used first, so restoring them in
// file order through the LRU's own put rebuilds the recency order,
// not just the contents. The value bytes are the exact encoded
// response served to clients — which is what makes a warm-restart hit
// byte-identical to the pre-restart response: the snapshot stores the
// wire bytes themselves, never a re-encoding.
const SnapshotMagic = "hmeansd-snap/1\n"

// maxSnapshotValue bounds a single record's value allocation while
// decoding: a length prefix that lies (fuzzed, truncated or
// bit-flipped input) can make the decoder allocate at most this much
// before the read fails, never OOM. Matches the service's default
// request-body bound — no legitimate cached response outgrows the
// request limit by this factor.
const maxSnapshotValue = 64 << 20

// ErrSnapshotFormat reports a snapshot whose header is not a
// hmeansd-snap/1 header at all — wrong file or future version; the
// caller should start cold rather than skip records.
var ErrSnapshotFormat = errors.New("service: not a hmeansd-snap/1 snapshot")

// SnapshotStats summarizes one restore: how many records were loaded
// into the cache and how many were skipped as corrupt. Truncated is
// true when decoding stopped before a clean end-of-file (framing
// damage after the last good record).
type SnapshotStats struct {
	Restored int
	Skipped  int
	// Truncated reports that the record stream ended mid-record: a
	// torn write or a lying length prefix. Everything decoded before
	// the tear was still restored.
	Truncated bool
}

// WriteSnapshot encodes the current cache contents into w. It returns
// the number of records written. The caller owns durability (see
// Server.SaveSnapshot for the atomic file variant).
func (s *Server) WriteSnapshot(w io.Writer) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(SnapshotMagic); err != nil {
		return 0, err
	}
	entries := s.cache.entries()
	var hdr [4]byte
	for _, e := range entries {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(e.val)))
		crc := crc32.ChecksumIEEE(e.key[:])
		crc = crc32.Update(crc, crc32.IEEETable, e.val)
		if _, err := bw.Write(hdr[:]); err != nil {
			return 0, err
		}
		if _, err := bw.Write(e.key[:]); err != nil {
			return 0, err
		}
		if _, err := bw.Write(e.val); err != nil {
			return 0, err
		}
		binary.BigEndian.PutUint32(hdr[:], crc)
		if _, err := bw.Write(hdr[:]); err != nil {
			return 0, err
		}
	}
	return len(entries), bw.Flush()
}

// SaveSnapshot writes the cache to path atomically: encode into a
// temp file in the same directory, fsync, then rename over path. A
// crash mid-write leaves the previous snapshot (or none) intact —
// never a half-written file a later boot would have to distrust.
func (s *Server) SaveSnapshot(path string) (int, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("service: snapshot: %w", err)
	}
	tmp := f.Name()
	n, err := s.WriteSnapshot(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("service: snapshot: %w", err)
	}
	s.countN("service.snapshot.saved", int64(n))
	return n, nil
}

// RestoreSnapshot decodes records from r into the cache, skipping (and
// logging, when logger is non-nil) any record whose CRC does not
// match. A record whose framing itself is damaged — a length prefix
// pointing past end-of-file or over the allocation bound — ends the
// restore early with Truncated set: framing gives no way to resync,
// so everything after the tear is dropped. The error return is
// reserved for streams that are not snapshots at all (bad magic), so
// callers can distinguish "corrupt but mine" from "not mine".
//
// Restored values go through the same put path as computed responses;
// the LRU capacity still applies, so restoring a snapshot from a
// larger configuration simply keeps the most recently used entries.
func (s *Server) RestoreSnapshot(r io.Reader, logger *slog.Logger) (SnapshotStats, error) {
	var st SnapshotStats
	br := bufio.NewReader(r)
	magic := make([]byte, len(SnapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != SnapshotMagic {
		return st, ErrSnapshotFormat
	}
	var hdr [4]byte
	var key cacheKey
	for rec := 0; ; rec++ {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				st.Truncated = true
			}
			break
		}
		vlen := binary.BigEndian.Uint32(hdr[:])
		if vlen == 0 || vlen > maxSnapshotValue {
			// A zero or absurd length is framing damage, not a value:
			// there is no trustworthy boundary to skip to.
			st.Truncated = true
			break
		}
		if _, err := io.ReadFull(br, key[:]); err != nil {
			st.Truncated = true
			break
		}
		val := make([]byte, vlen)
		if _, err := io.ReadFull(br, val); err != nil {
			st.Truncated = true
			break
		}
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			st.Truncated = true
			break
		}
		crc := crc32.ChecksumIEEE(key[:])
		crc = crc32.Update(crc, crc32.IEEETable, val)
		if crc != binary.BigEndian.Uint32(hdr[:]) {
			// The frame was intact but the payload is damaged: skip
			// exactly this record and keep going — corruption must
			// never reach a response, and must never cost the records
			// around it.
			st.Skipped++
			if logger != nil {
				logger.Warn("snapshot record skipped",
					slog.Int("record", rec), slog.String("reason", "crc mismatch"))
			}
			continue
		}
		s.cache.put(key, val)
		st.Restored++
	}
	if st.Truncated && logger != nil {
		logger.Warn("snapshot truncated",
			slog.Int("restored", st.Restored), slog.Int("skipped", st.Skipped))
	}
	s.countN("service.snapshot.restored", int64(st.Restored))
	s.countN("service.snapshot.skipped", int64(st.Skipped))
	return st, nil
}

// LoadSnapshot restores the cache from the file at path. A missing
// file is a normal cold start: zero stats, nil error.
func (s *Server) LoadSnapshot(path string, logger *slog.Logger) (SnapshotStats, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return SnapshotStats{}, nil
		}
		return SnapshotStats{}, fmt.Errorf("service: snapshot: %w", err)
	}
	defer f.Close()
	st, err := s.RestoreSnapshot(f, logger)
	if err != nil {
		return st, fmt.Errorf("service: snapshot %s: %w", path, err)
	}
	return st, nil
}

// countN is count for increments larger than one.
func (s *Server) countN(name string, n int64) {
	if n != 0 && s.obs.Active() {
		s.obs.Metrics().Counter(name).Add(n)
	}
}
