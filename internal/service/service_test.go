package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hmeans/internal/cluster"
	"hmeans/internal/obs"
)

// testRequest builds a small but non-degenerate request: two clear
// workload blobs so clustering is stable, strictly positive scores.
// seed varies the SOM training, giving cheap distinct payloads.
func testRequest(seed uint64) *Request {
	const n, f = 8, 4
	req := &Request{
		Config: ConfigJSON{Seed: seed},
		Scores: map[string][]float64{"A": make([]float64, n), "B": make([]float64, n)},
	}
	for i := 0; i < n; i++ {
		req.Table.Workloads = append(req.Table.Workloads, fmt.Sprintf("wl%02d", i))
		row := make([]float64, f)
		for j := 0; j < f; j++ {
			base := 1.0
			if i >= n/2 {
				base = 9.0 // second blob far away
			}
			row[j] = base + 0.1*float64(i) + 0.01*float64(j*i)
		}
		req.Table.Rows = append(req.Table.Rows, row)
		req.Scores["A"][i] = 1.0 + 0.25*float64(i)
		req.Scores["B"][i] = 2.0 + 0.5*float64(i)
	}
	for j := 0; j < f; j++ {
		req.Table.Features = append(req.Table.Features, fmt.Sprintf("feat%d", j))
	}
	return req
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.New()
	}
	srv := New(cfg)
	mux := srv.Handler()
	cfg.Obs.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return srv, ts
}

func postScore(t *testing.T, url string, req *Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/score: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, buf.Bytes()
}

func TestScoreMissThenHitBitIdentical(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, Config{CacheSize: 8, Obs: o})
	req := testRequest(1)

	r1, raw1 := postScore(t, ts.URL, req)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d, body %s", r1.StatusCode, raw1)
	}
	if got := r1.Header.Get("X-Hmeans-Cache"); got != CacheMiss {
		t.Fatalf("first request cache status = %q, want %q", got, CacheMiss)
	}
	r2, raw2 := postScore(t, ts.URL, req)
	if got := r2.Header.Get("X-Hmeans-Cache"); got != CacheHit {
		t.Fatalf("second request cache status = %q, want %q", got, CacheHit)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("cache hit is not bit-identical to the cold response")
	}
	if r1.Header.Get("X-Hmeans-Key") != r2.Header.Get("X-Hmeans-Key") {
		t.Fatalf("same payload produced different keys")
	}

	// A cold recomputation on a cache-less server must also be
	// bit-identical: the canonical response encoding is what the
	// cache's correctness rests on.
	_, ts2 := newTestServer(t, Config{CacheSize: 0})
	r3, raw3 := postScore(t, ts2.URL, req)
	if got := r3.Header.Get("X-Hmeans-Cache"); got != CacheMiss {
		t.Fatalf("cache-less server status = %q, want %q", got, CacheMiss)
	}
	if !bytes.Equal(raw1, raw3) {
		t.Fatalf("recomputed response differs from the original cold response")
	}

	if hits := o.Metrics().Counter("service.cache.hit").Value(); hits != 1 {
		t.Fatalf("cache.hit counter = %d, want 1", hits)
	}
	if misses := o.Metrics().Counter("service.cache.miss").Value(); misses != 1 {
		t.Fatalf("cache.miss counter = %d, want 1", misses)
	}
}

// TestLinkageAlgorithmDeploymentChoice pins the reason the algorithm
// stays out of the cache key: on inputs with distinct merge heights a
// server forced onto the NN-chain must serve bytes identical to the
// default server's.
func TestLinkageAlgorithmDeploymentChoice(t *testing.T) {
	req := testRequest(1)
	// SkipSOM keeps the clustered points continuous, so every merge
	// height is distinct and the identity guarantee is byte-level; SOM
	// grid positions can tie, where the trees are only equivalent.
	req.Config.SkipSOM = true
	_, tsDefault := newTestServer(t, Config{})
	_, raw1 := postScore(t, tsDefault.URL, req)
	_, tsChain := newTestServer(t, Config{LinkageAlgorithm: cluster.AlgoNNChain})
	r2, raw2 := postScore(t, tsChain.URL, req)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("nnchain server: status %d, body %s", r2.StatusCode, raw2)
	}
	if !bytes.Equal(raw1, raw2) {
		t.Fatalf("nnchain response differs from the default server's:\n%s\nvs\n%s", raw2, raw1)
	}
}

func TestScoreResponseShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := testRequest(1)
	req.K = 2
	r, raw := postScore(t, ts.URL, req)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", r.StatusCode, raw)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	n := len(req.Table.Workloads)
	if len(resp.Workloads) != n || len(resp.Positions) != n {
		t.Fatalf("got %d workloads / %d positions, want %d", len(resp.Workloads), len(resp.Positions), n)
	}
	if resp.SOM == nil || resp.SOM.Rows < 2 || resp.SOM.Cols < 2 {
		t.Fatalf("missing or degenerate SOM block: %+v", resp.SOM)
	}
	if resp.Dendrogram.N != n || len(resp.Dendrogram.Merges) != n-1 {
		t.Fatalf("dendrogram has %d leaves / %d merges, want %d / %d",
			resp.Dendrogram.N, len(resp.Dendrogram.Merges), n, n-1)
	}
	if resp.Cut.K != 2 || len(resp.Cut.Labels) != n || len(resp.Cut.Members) != 2 {
		t.Fatalf("cut = %+v, want k=2 over %d workloads", resp.Cut, n)
	}
	if resp.RecommendedK < 2 || resp.RecommendedK > n {
		t.Fatalf("recommended_k = %d out of range", resp.RecommendedK)
	}
	// Sweep 2..n for both vectors, sorted by (k, vector).
	if want := (n - 1) * 2; len(resp.Means) != want {
		t.Fatalf("got %d means entries, want %d", len(resp.Means), want)
	}
	if resp.Means[0].K != 2 || resp.Means[0].Vector != "A" || resp.Means[1].Vector != "B" {
		t.Fatalf("means not sorted by (k, vector): %+v", resp.Means[:2])
	}
	for _, m := range resp.Means {
		if !(m.HGM > 0) || !(m.HAM > 0) || !(m.HHM > 0) {
			t.Fatalf("non-positive mean at k=%d vector=%s: %+v", m.K, m.Vector, m)
		}
		// AM-GM-HM inequality sanity on the hierarchical variants.
		if m.HAM < m.HGM-1e-9 || m.HGM < m.HHM-1e-9 {
			t.Fatalf("mean inequality violated at k=%d vector=%s: %+v", m.K, m.Vector, m)
		}
	}
	if len(resp.Plain) != 2 || resp.Plain[0].Vector != "A" || resp.Plain[1].Vector != "B" {
		t.Fatalf("plain means malformed: %+v", resp.Plain)
	}
}

func TestScoreBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		mutate func(*Request)
	}{
		{"no workloads", func(r *Request) { r.Table.Workloads = nil; r.Table.Rows = nil }},
		{"ragged row", func(r *Request) { r.Table.Rows[0] = r.Table.Rows[0][:2] }},
		{"score length mismatch", func(r *Request) { r.Scores["A"] = r.Scores["A"][:3] }},
		{"non-positive score", func(r *Request) { r.Scores["A"][0] = 0 }},
		{"unknown kind", func(r *Request) { r.Config.Kind = "widgets" }},
		{"k beyond n", func(r *Request) { r.K = 99 }},
		{"inverted sweep", func(r *Request) { r.KMin = 5; r.KMax = 3 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := testRequest(1)
			tc.mutate(req)
			r, body := postScore(t, ts.URL, req)
			if r.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", r.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Fatalf("error body %q is not the {\"error\": ...} shape", body)
			}
		})
	}

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("unknown field", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader(`{"tabel": {}}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("GET not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/score")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("status = %d, want 405", resp.StatusCode)
		}
	})
}

func TestScoreDeadline504(t *testing.T) {
	o := obs.New()
	_, ts := newTestServer(t, Config{Timeout: time.Nanosecond, Obs: o})
	r, body := postScore(t, ts.URL, testRequest(1))
	if r.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", r.StatusCode, body)
	}
	if n := o.Metrics().Counter("service.timeout").Value(); n != 1 {
		t.Fatalf("service.timeout counter = %d, want 1", n)
	}
}

func TestScoreQueueOverflow429(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 0, Obs: o})
	// Deterministically exhaust the pool: hold its only slot so the
	// next request finds pool and queue (depth 0) both full.
	if err := srv.lim.acquire(context.Background()); err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	defer srv.lim.release()

	r, body := postScore(t, ts.URL, testRequest(1))
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", r.StatusCode, body)
	}
	if ra := r.Header.Get("Retry-After"); ra == "" {
		t.Fatalf("429 without Retry-After")
	}
	if n := o.Metrics().Counter("service.rejected").Value(); n != 1 {
		t.Fatalf("service.rejected counter = %d, want 1", n)
	}
}

func TestScoreCoalescesDuplicates(t *testing.T) {
	o := obs.New()
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 4, CacheSize: 8, Obs: o})
	// Hold the pool's slot so the leader registers its flight and
	// then queues; the second identical request must join the flight
	// rather than queue a second computation.
	if err := srv.lim.acquire(context.Background()); err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	req := testRequest(1)
	type result struct {
		status string
		code   int
		raw    []byte
	}
	results := make(chan result, 2)
	do := func() {
		r, raw := postScore(t, ts.URL, req)
		results <- result{r.Header.Get("X-Hmeans-Cache"), r.StatusCode, raw}
	}
	go do()
	waitFor(t, func() bool { return srv.group.flights() == 1 && srv.Queued() == 1 }, "leader queued")
	go do()
	waitFor(t, func() bool { return srv.group.waiting() == 1 }, "follower joined the flight")
	srv.lim.release()

	a, b := <-results, <-results
	if a.code != http.StatusOK || b.code != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200", a.code, b.code)
	}
	got := map[string]bool{a.status: true, b.status: true}
	if !got[CacheMiss] || !got[CacheCoalesced] {
		t.Fatalf("cache statuses = %v, want one %q and one %q", got, CacheMiss, CacheCoalesced)
	}
	if !bytes.Equal(a.raw, b.raw) {
		t.Fatalf("coalesced response differs from the leader's")
	}
	if runs := o.Metrics().Counter("pipeline.runs").Value(); runs != 1 {
		t.Fatalf("pipeline ran %d times for two identical requests, want 1", runs)
	}
	if n := o.Metrics().Counter("service.cache.coalesced").Value(); n != 1 {
		t.Fatalf("service.cache.coalesced counter = %d, want 1", n)
	}
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHealthAndVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for path, want := range map[string]string{"/healthz": "ok", "/version": "hmeansd"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(buf.String(), want) {
			t.Fatalf("GET %s: status %d body %q", path, resp.StatusCode, buf.String())
		}
	}
}

func TestMetricsEndpointCarriesServiceCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})
	postScore(t, ts.URL, testRequest(1))
	postScore(t, ts.URL, testRequest(1))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding /metrics: %v", err)
	}
	for _, name := range []string{"service.requests", "service.cache.hit", "service.cache.miss"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("/metrics snapshot missing %q (have %d keys)", name, len(snap))
		}
	}
}

func TestQuarantineRoundTrip(t *testing.T) {
	// NaN cannot cross JSON, so quarantine is exercised through the
	// in-process Score path the way an embedding caller would hit it.
	srv := New(Config{Obs: obs.New()})
	req := testRequest(1)
	req.Config.Quarantine = true
	nan := 0.0
	nan = nan / nan
	req.Table.Rows[3][1] = nan
	raw, status, err := srv.Score(context.Background(), req)
	if err != nil {
		t.Fatalf("Score: %v", err)
	}
	if status != CacheMiss {
		t.Fatalf("status = %q, want miss", status)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Quarantined) != 1 || resp.Quarantined[0].Workload != "wl03" {
		t.Fatalf("quarantined = %+v, want wl03", resp.Quarantined)
	}
	if len(resp.Workloads) != 7 {
		t.Fatalf("%d surviving workloads, want 7", len(resp.Workloads))
	}
}
