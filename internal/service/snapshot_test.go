package service

import (
	"bytes"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapServer builds a server with a populated cache: entries keyed
// key(1)..key(n) in insertion order (key(n) most recently used).
func snapServer(capacity, n int) *Server {
	s := New(Config{CacheSize: capacity})
	for i := 1; i <= n; i++ {
		s.cache.put(key(byte(i)), []byte(strings.Repeat("v", i)+"-response\n"))
	}
	return s
}

func snapshotBytes(t *testing.T, s *Server) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := snapServer(8, 3)
	raw := snapshotBytes(t, src)
	if !bytes.HasPrefix(raw, []byte(SnapshotMagic)) {
		t.Fatalf("snapshot lacks the magic header: %q", raw[:20])
	}

	dst := New(Config{CacheSize: 8})
	st, err := dst.RestoreSnapshot(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 3 || st.Skipped != 0 || st.Truncated {
		t.Fatalf("stats %+v, want 3 restored, clean", st)
	}
	for i := 1; i <= 3; i++ {
		want, _ := src.cache.get(key(byte(i)))
		got, ok := dst.cache.get(key(byte(i)))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("entry %d: got %q ok=%v, want %q", i, got, ok, want)
		}
	}
}

// TestSnapshotPreservesRecency checks records restore in LRU order:
// after restoring a 3-entry snapshot into a capacity-3 cache, adding
// a fourth entry must evict the entry that was least recently used
// before the snapshot, not an arbitrary one.
func TestSnapshotPreservesRecency(t *testing.T) {
	src := snapServer(8, 3) // recency order: 1 (oldest), 2, 3 (newest)
	raw := snapshotBytes(t, src)

	dst := New(Config{CacheSize: 3})
	if _, err := dst.RestoreSnapshot(bytes.NewReader(raw), nil); err != nil {
		t.Fatal(err)
	}
	dst.cache.put(key(9), []byte("ninth\n"))
	if _, ok := dst.cache.get(key(1)); ok {
		t.Fatal("oldest pre-restart entry survived the eviction — recency order was lost")
	}
	for _, k := range []byte{2, 3, 9} {
		if _, ok := dst.cache.get(key(k)); !ok {
			t.Fatalf("entry %d missing after eviction", k)
		}
	}
}

// TestSnapshotSkipsCorruptRecord flips one byte inside the first
// record's value: that record (and only that record) must be skipped.
func TestSnapshotSkipsCorruptRecord(t *testing.T) {
	src := snapServer(8, 3)
	raw := snapshotBytes(t, src)
	// Layout: magic | len(4) key(32) value crc(4) | ... Flip the first
	// value byte of record 0 (the LRU-first entry, key(1)).
	raw[len(SnapshotMagic)+4+32] ^= 0x40

	var logbuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logbuf, nil))
	dst := New(Config{CacheSize: 8})
	st, err := dst.RestoreSnapshot(bytes.NewReader(raw), logger)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 2 || st.Skipped != 1 || st.Truncated {
		t.Fatalf("stats %+v, want 2 restored / 1 skipped", st)
	}
	if _, ok := dst.cache.get(key(1)); ok {
		t.Fatal("corrupt record reached the cache — a poisoned response could be served")
	}
	for _, k := range []byte{2, 3} {
		want, _ := src.cache.get(key(k))
		got, ok := dst.cache.get(key(k))
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("healthy record %d lost alongside the corrupt one", k)
		}
	}
	if !strings.Contains(logbuf.String(), "crc mismatch") {
		t.Fatalf("skip was not logged: %s", logbuf.String())
	}
}

func TestSnapshotTruncationStopsCleanly(t *testing.T) {
	src := snapServer(8, 3)
	raw := snapshotBytes(t, src)
	// Cut inside the last record's CRC: the first two records restore,
	// the torn third is dropped.
	cut := raw[:len(raw)-3]
	dst := New(Config{CacheSize: 8})
	st, err := dst.RestoreSnapshot(bytes.NewReader(cut), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Restored != 2 || st.Skipped != 0 {
		t.Fatalf("stats %+v, want 2 restored and truncated", st)
	}
	if _, ok := dst.cache.get(key(3)); ok {
		t.Fatal("torn record reached the cache")
	}
}

func TestSnapshotRejectsForeignFile(t *testing.T) {
	dst := New(Config{CacheSize: 8})
	for _, in := range []string{"", "not a snapshot", "hmeansd-snap/2\n\x00\x00"} {
		if _, err := dst.RestoreSnapshot(strings.NewReader(in), nil); err != ErrSnapshotFormat {
			t.Fatalf("input %q: err = %v, want ErrSnapshotFormat", in, err)
		}
	}
}

// TestSnapshotLyingLength feeds a length prefix pointing far past the
// data: the decoder must stop (truncated), not panic or over-allocate.
func TestSnapshotLyingLength(t *testing.T) {
	raw := []byte(SnapshotMagic)
	raw = append(raw, 0xFF, 0xFF, 0xFF, 0xFF) // valueLen ~4 GiB
	raw = append(raw, bytes.Repeat([]byte{0xAB}, 64)...)
	dst := New(Config{CacheSize: 8})
	st, err := dst.RestoreSnapshot(bytes.NewReader(raw), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Restored != 0 {
		t.Fatalf("stats %+v, want truncated with nothing restored", st)
	}
}

func TestSaveLoadSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cache.snap")

	src := snapServer(8, 2)
	n, err := src.SaveSnapshot(path)
	if err != nil || n != 2 {
		t.Fatalf("SaveSnapshot: n=%d err=%v", n, err)
	}
	// Atomic write leaves no temp litter behind.
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Fatalf("snapshot dir holds %d files, want only the snapshot", len(files))
	}

	dst := New(Config{CacheSize: 8})
	st, err := dst.LoadSnapshot(path, nil)
	if err != nil || st.Restored != 2 {
		t.Fatalf("LoadSnapshot: %+v err=%v", st, err)
	}

	// A missing snapshot is a cold start, not an error.
	cold := New(Config{CacheSize: 8})
	st, err = cold.LoadSnapshot(filepath.Join(dir, "absent.snap"), nil)
	if err != nil || st != (SnapshotStats{}) {
		t.Fatalf("missing file: %+v err=%v, want zero stats and nil", st, err)
	}
}

// TestSnapshotRestoreRespectsCapacity restores a 4-record snapshot
// into a capacity-2 cache: only the 2 most recently used survive.
func TestSnapshotRestoreRespectsCapacity(t *testing.T) {
	src := snapServer(8, 4)
	raw := snapshotBytes(t, src)
	dst := New(Config{CacheSize: 2})
	if _, err := dst.RestoreSnapshot(bytes.NewReader(raw), nil); err != nil {
		t.Fatal(err)
	}
	if dst.CacheLen() != 2 {
		t.Fatalf("cache holds %d entries, capacity 2", dst.CacheLen())
	}
	for _, k := range []byte{3, 4} {
		if _, ok := dst.cache.get(key(k)); !ok {
			t.Fatalf("most-recent entry %d evicted during restore", k)
		}
	}
}
