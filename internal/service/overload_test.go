package service

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"hmeans/internal/obs"
)

// slowRequest builds a request big enough (n workloads, full k-sweep)
// that its pipeline run reliably outlasts scheduling quanta — the
// occupancy anchor the overload rounds below hold the pool with.
func slowRequest(seed uint64) *Request {
	const n, f = 40, 6
	req := &Request{
		Config: ConfigJSON{Seed: seed},
		Scores: map[string][]float64{"A": make([]float64, n)},
	}
	for i := 0; i < n; i++ {
		req.Table.Workloads = append(req.Table.Workloads, fmt.Sprintf("wl%02d", i))
		row := make([]float64, f)
		for j := 0; j < f; j++ {
			base := 1.0
			if i >= n/2 {
				base = 9.0
			}
			row[j] = base + 0.1*float64(i) + 0.01*float64(j*i)
		}
		req.Table.Rows = append(req.Table.Rows, row)
		req.Scores["A"][i] = 1.0 + 0.25*float64(i)
	}
	for j := 0; j < f; j++ {
		req.Table.Features = append(req.Table.Features, fmt.Sprintf("feat%d", j))
	}
	return req
}

// TestShedSustainedOverload holds the worker pool saturated for many
// consecutive rounds — not the one-shot burst the PR 4 stress test
// used — and asserts the shedding contract end to end: every response
// is 200 or 429, every 429 carries a well-formed integer Retry-After
// matching the exported service.RetryAfter contract, every round
// actually sheds, and the queue accounting drains back to zero
// between rounds (no leaked waiter slots that would turn sustained
// load into permanent 429s). Saturation is deterministic, not a
// timing race: each round first occupies every pool slot with a slow
// computation and only bursts once srv.Inflight() confirms the pool
// is full, so the test holds on any CPU count. Runs under -race in
// CI via the race job.
func TestShedSustainedOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("sustained overload test skipped in -short mode")
	}
	const (
		maxInflight = 2
		queueDepth  = 2
		rounds      = 5
		burst       = 12 // per round; far beyond pool+queue
	)
	// A deployed daemon is never single-threaded; on a 1-CPU CI box
	// GOMAXPROCS=1 would let each handler run to completion and the
	// pool would never fill. Timeshare a few Ps so concurrency is
	// real.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(max(4, runtime.NumCPU())))
	o := obs.New()
	srv, ts := newTestServer(t, Config{
		MaxInflight: maxInflight,
		QueueDepth:  queueDepth,
		CacheSize:   0, // every request must contend for a slot
		Obs:         o,
	})

	var ok, shed int
	for round := 0; round < rounds; round++ {
		// Fill every pool slot with a slow distinct computation, and
		// do not burst until the pool is provably full.
		var anchors sync.WaitGroup
		for a := 0; a < maxInflight; a++ {
			anchors.Add(1)
			go func(a int) {
				defer anchors.Done()
				req := slowRequest(uint64(1000 + round*maxInflight + a))
				r, raw := postScore(t, ts.URL, req)
				if r.StatusCode != http.StatusOK {
					t.Errorf("round %d: anchor %d got %d (body %s)", round, a, r.StatusCode, raw)
				}
			}(a)
		}
		waitForCond(t, func() bool { return srv.Inflight() == maxInflight }, "pool saturated")

		type reply struct {
			status     int
			retryAfter string
			body       []byte
		}
		replies := make(chan reply, burst)
		var wg sync.WaitGroup
		for c := 0; c < burst; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				// Distinct payloads: neither the cache nor the
				// coalescing group may absorb the load this test is
				// about.
				req := testRequest(uint64(1 + round*burst + c))
				r, raw := postScore(t, ts.URL, req)
				replies <- reply{r.StatusCode, r.Header.Get("Retry-After"), raw}
			}(c)
		}
		wg.Wait()
		close(replies)
		anchors.Wait()

		roundShed := 0
		for rep := range replies {
			switch rep.status {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests:
				shed++
				roundShed++
				secs, err := strconv.Atoi(rep.retryAfter)
				if err != nil || secs < 1 {
					t.Fatalf("round %d: 429 with malformed Retry-After %q", round, rep.retryAfter)
				}
				if rep.retryAfter != RetryAfter {
					t.Fatalf("round %d: Retry-After %q diverges from the exported contract %q",
						round, rep.retryAfter, RetryAfter)
				}
			default:
				t.Fatalf("round %d: status %d under overload (body %s) — only 200 or 429 are acceptable",
					round, rep.status, rep.body)
			}
		}
		// With the pool full, at most queueDepth of the burst may
		// queue; the rest must have been shed at the door.
		if want := burst - queueDepth; roundShed < want {
			t.Fatalf("round %d: %d shed, want >= %d (pool was provably full)", round, roundShed, want)
		}
		// The round is fully drained; a non-zero queue here would be a
		// leaked waiter that eats capacity for every later round.
		if q := srv.Queued(); q != 0 {
			t.Fatalf("round %d: %d queued callers after the burst drained", round, q)
		}
	}
	if ok == 0 {
		t.Fatal("every burst request was shed — the queue admitted nothing across all rounds")
	}
	if got := o.Metrics().Counter("service.rejected").Value(); got != int64(shed) {
		t.Errorf("service.rejected = %d, want %d observed 429s", got, shed)
	}
}
