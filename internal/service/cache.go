package service

import (
	"container/list"
	"sync"
)

// cache is a bounded LRU over encoded response bytes, keyed by the
// request's content address. Values are the exact bytes served to the
// client, so a hit is bit-identical to the cold-path response by
// construction. The zero-or-negative capacity cache stores nothing.
type cache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element
}

type cacheKey = [32]byte

type cacheEntry struct {
	key cacheKey
	val []byte
}

func newCache(capacity int) *cache {
	return &cache{cap: capacity, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

// get returns the cached bytes and promotes the entry. Callers must
// not mutate the returned slice.
func (c *cache) get(key cacheKey) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores val under key, evicting the least recently used entry
// when over capacity. Storing an existing key refreshes its value
// and recency.
func (c *cache) put(key cacheKey, val []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, val: val})
	c.m[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the number of cached entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// entries returns the cache contents ordered least-recently-used
// first — the order a snapshot is written in, so replaying it through
// put rebuilds both the contents and the recency order. The returned
// entries alias the cached value slices; callers must not mutate
// them.
func (c *cache) entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}
