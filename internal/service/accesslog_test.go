package service

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"hmeans/internal/obs"
)

func TestValidRequestID(t *testing.T) {
	for _, ok := range []string{"a", "r-0123abcd", "load-2007-000041", "A.b:c/d_e-9"} {
		if !validRequestID(ok) {
			t.Fatalf("validRequestID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "has space", "héllo", "x\n", strings.Repeat("a", 129)} {
		if validRequestID(bad) {
			t.Fatalf("validRequestID(%q) = true", bad)
		}
	}
}

func TestNewRequestIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRequestID()
		if !strings.HasPrefix(id, "r-") || len(id) != 18 || !validRequestID(id) {
			t.Fatalf("malformed generated id %q", id)
		}
		if seen[id] {
			t.Fatalf("duplicate generated id %q", id)
		}
		seen[id] = true
	}
}

func postScoreWithID(t *testing.T, url, id string, req *Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/v1/score", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id != "" {
		hreq.Header.Set(HeaderRequestID, id)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST /v1/score: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestRequestIDHonoredGeneratedEchoed(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 4})

	// A valid client ID is honored verbatim.
	r, _ := postScoreWithID(t, ts.URL, "client-abc.1", testRequest(1))
	if got := r.Header.Get(HeaderRequestID); got != "client-abc.1" {
		t.Fatalf("echoed id = %q, want client-abc.1", got)
	}
	// No ID: the server generates one and echoes it.
	r, _ = postScoreWithID(t, ts.URL, "", testRequest(1))
	if got := r.Header.Get(HeaderRequestID); !strings.HasPrefix(got, "r-") || !validRequestID(got) {
		t.Fatalf("generated id = %q", got)
	}
	// A hostile ID is replaced, never echoed back.
	r, _ = postScoreWithID(t, ts.URL, strings.Repeat("z", 200), testRequest(1))
	if got := r.Header.Get(HeaderRequestID); strings.Contains(got, "zzz") || !validRequestID(got) {
		t.Fatalf("invalid client id leaked through: %q", got)
	}
}

// logLines decodes each JSON line the access logger wrote.
func logLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("access log line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestAccessLogSuccessFields(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{CacheSize: 4, AccessLog: logger})

	r, _ := postScoreWithID(t, ts.URL, "test-req-1", testRequest(1))
	if r.StatusCode != http.StatusOK {
		t.Fatalf("status %d", r.StatusCode)
	}
	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1: %s", len(lines), buf.String())
	}
	m := lines[0]
	if m["request_id"] != "test-req-1" || m["status"] != float64(200) || m["cache"] != CacheMiss {
		t.Fatalf("line = %v", m)
	}
	if m["key"] != strings.ToLower(r.Header.Get("X-Hmeans-Key")) {
		t.Fatalf("log key %v != header key %v", m["key"], r.Header.Get("X-Hmeans-Key"))
	}
	for _, f := range []string{"method", "path", "total_ms", "queue_wait_ms", "compute_ms"} {
		if _, ok := m[f]; !ok {
			t.Fatalf("missing %s in %v", f, m)
		}
	}
	if m["compute_ms"].(float64) <= 0 {
		t.Fatalf("compute_ms = %v, want > 0 on a miss", m["compute_ms"])
	}

	// The cache hit logs too, with cache=hit and no recompute time.
	buf.Reset()
	postScoreWithID(t, ts.URL, "test-req-2", testRequest(1))
	lines = logLines(t, &buf)
	if len(lines) != 1 || lines[0]["cache"] != CacheHit {
		t.Fatalf("hit line = %v", lines)
	}
	if lines[0]["compute_ms"].(float64) != 0 {
		t.Fatalf("cache hit recorded compute time: %v", lines[0])
	}
}

func TestAccessLogShed429(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv, ts := newTestServer(t, Config{MaxInflight: 1, QueueDepth: 0, AccessLog: logger})
	if err := srv.lim.acquire(context.Background()); err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	defer srv.lim.release()

	r, _ := postScoreWithID(t, ts.URL, "shed-me-1", testRequest(1))
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", r.StatusCode)
	}
	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	m := lines[0]
	if m["request_id"] != "shed-me-1" || m["status"] != float64(429) {
		t.Fatalf("line = %v", m)
	}
	if m["shed_reason"] != ShedReasonOverload {
		t.Fatalf("shed_reason = %v, want %q", m["shed_reason"], ShedReasonOverload)
	}
	if m["retry_after"] != RetryAfter {
		t.Fatalf("retry_after = %v, want %q", m["retry_after"], RetryAfter)
	}
	if m["level"] != "WARN" {
		t.Fatalf("shed logged at %v, want WARN", m["level"])
	}
}

func TestAccessLogTimeout504(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Timeout: time.Nanosecond, AccessLog: logger})

	r, _ := postScoreWithID(t, ts.URL, "late-1", testRequest(1))
	if r.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", r.StatusCode)
	}
	lines := logLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("got %d log lines, want 1", len(lines))
	}
	m := lines[0]
	if m["request_id"] != "late-1" || m["status"] != float64(504) || m["shed_reason"] != ShedReasonDeadline {
		t.Fatalf("line = %v", m)
	}
	if _, ok := m["error"]; !ok {
		t.Fatalf("504 line carries no error: %v", m)
	}
}

func TestAccessLogInvalidAndMethod(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{AccessLog: logger})

	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/v1/score")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lines := logLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2: %s", len(lines), buf.String())
	}
	if lines[0]["status"] != float64(400) || lines[1]["status"] != float64(405) {
		t.Fatalf("lines = %v", lines)
	}
	for _, m := range lines {
		if !validRequestID(m["request_id"].(string)) {
			t.Fatalf("error line without request id: %v", m)
		}
	}
}

// TestResponseByteIdenticalTelemetryOnVsOff pins the tentpole's
// guarantee: enabling the full telemetry stack (access log + active
// observer + request IDs) must not change a single response byte.
func TestResponseByteIdenticalTelemetryOnVsOff(t *testing.T) {
	_, dark := newTestServer(t, Config{CacheSize: 4})
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	o := obs.New(obs.NewJSONLSink(&bytes.Buffer{}))
	_, lit := newTestServer(t, Config{CacheSize: 4, AccessLog: logger, Obs: o})

	req := testRequest(3)
	_, rawDark := postScore(t, dark.URL, req)
	_, rawLit := postScoreWithID(t, lit.URL, "parity-check", req)
	if !bytes.Equal(rawDark, rawLit) {
		t.Fatal("telemetry changed the response bytes")
	}
	if buf.Len() == 0 {
		t.Fatal("telemetry server wrote no access log")
	}
}
