package service

import (
	"context"
	"encoding/hex"
	"errors"
	"log/slog"
	"net/http"
	"time"
)

// Shed reasons recorded in the access log so rejected requests leave
// a server-side record naming *why* capacity was refused.
const (
	// ShedReasonOverload marks a 429: worker pool and queue full.
	ShedReasonOverload = "pool_and_queue_full"
	// ShedReasonDeadline marks a 504: the compute deadline expired.
	ShedReasonDeadline = "compute_deadline"
	// ShedReasonDraining marks a 503 issued because the server is
	// draining for shutdown.
	ShedReasonDraining = "draining"
)

// scoreStats carries per-request timing out of the scoring path for
// the access log and the request span. A nil *scoreStats disables
// collection entirely: the dark path takes no extra time.Now calls
// and no extra allocations, preserving the PR 4/5 guarantees.
type scoreStats struct {
	queueWait time.Duration // time spent waiting for a worker slot
	compute   time.Duration // time inside the pipeline computation
}

// logAccess emits one structured line per HTTP request. It is the
// single exit point for request accounting: success, invalid, shed
// (429) and timed-out (504) requests all pass through, so overload
// is visible server-side, not just as client errors. No-op when
// Config.AccessLog is nil.
func (s *Server) logAccess(r *http.Request, reqID string, code int, cacheStatus string, key []byte, st *scoreStats, start time.Time, err error) {
	l := s.cfg.AccessLog
	if l == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 12)
	attrs = append(attrs,
		slog.String("request_id", reqID),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", code),
		slog.Float64("total_ms", float64(time.Since(start).Nanoseconds())/1e6),
	)
	if cacheStatus != "" {
		attrs = append(attrs, slog.String("cache", cacheStatus))
	}
	if key != nil {
		attrs = append(attrs, slog.String("key", hex.EncodeToString(key)))
	}
	if st != nil {
		attrs = append(attrs,
			slog.Float64("queue_wait_ms", float64(st.queueWait.Nanoseconds())/1e6),
			slog.Float64("compute_ms", float64(st.compute.Nanoseconds())/1e6),
		)
	}
	switch code {
	case http.StatusTooManyRequests:
		attrs = append(attrs,
			slog.String("shed_reason", ShedReasonOverload),
			slog.String("retry_after", RetryAfter),
		)
	case http.StatusGatewayTimeout:
		attrs = append(attrs, slog.String("shed_reason", ShedReasonDeadline))
	case http.StatusServiceUnavailable:
		if errors.Is(err, ErrDraining) {
			attrs = append(attrs,
				slog.String("shed_reason", ShedReasonDraining),
				slog.String("retry_after", RetryAfter),
			)
		}
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	level := slog.LevelInfo
	if code >= 400 {
		level = slog.LevelWarn
	}
	l.LogAttrs(context.Background(), level, "request", attrs...)
}
