package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HeaderDigest carries the integrity digest of the response body:
// "sha256:" + hex of the exact bytes written. The scoring tier's
// correctness story is byte-identity (cache hits, warm restarts,
// coalesced followers all serve the same bytes), and this header is
// how a client checks that the bytes survived the network: a proxy or
// link that corrupts or truncates the body produces a digest mismatch
// — a typed IntegrityError — never a silently wrong score.
const HeaderDigest = "X-Hmeans-Digest"

const digestPrefix = "sha256:"

// Digest returns the integrity digest for a response body, in the
// form carried by HeaderDigest.
func Digest(body []byte) string {
	sum := sha256.Sum256(body)
	return digestPrefix + hex.EncodeToString(sum[:])
}

// IntegrityError reports a response body that does not match the
// digest the server attached: the bytes were damaged in flight.
// Retryable — the server's copy is fine.
type IntegrityError struct {
	Want string // digest the server attached
	Got  string // digest of the bytes received
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("service: response body failed integrity check (want %s, got %s)", e.Want, e.Got)
}

// VerifyDigest checks body against the digest header value a server
// attached. An empty digest (header absent — an older server) passes:
// the check is opportunistic, not mandatory.
func VerifyDigest(digest string, body []byte) error {
	if digest == "" {
		return nil
	}
	if got := Digest(body); got != digest {
		return &IntegrityError{Want: digest, Got: got}
	}
	return nil
}
