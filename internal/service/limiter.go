package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrOverloaded reports that both the worker pool and its queue are
// full; the handler maps it to 429 with a Retry-After hint. Shedding
// at the door beats queueing without bound: a client that retries
// later costs less than a queue that grows until every request times
// out.
var ErrOverloaded = errors.New("service: worker pool and queue are full")

// limiter is the bounded worker pool: at most maxInflight
// computations run concurrently, and at most queueDepth callers wait
// for a slot. Callers beyond both bounds are rejected immediately
// with ErrOverloaded.
type limiter struct {
	slots      chan struct{}
	queueDepth int64
	waiting    atomic.Int64
}

func newLimiter(maxInflight, queueDepth int) *limiter {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &limiter{slots: make(chan struct{}, maxInflight), queueDepth: int64(queueDepth)}
}

// acquire takes a computation slot, waiting in the bounded queue when
// the pool is busy. It fails with ErrOverloaded when the queue is
// full too, and with ctx.Err() when the caller's context fires while
// queued. Every successful acquire must be paired with release.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.waiting.Add(1) > l.queueDepth {
		l.waiting.Add(-1)
		return ErrOverloaded
	}
	defer l.waiting.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.slots }

// queued reports the current number of queued callers (for metrics).
func (l *limiter) queued() int64 { return l.waiting.Load() }

// inflight reports the current number of held slots (for metrics).
func (l *limiter) inflight() int { return len(l.slots) }
