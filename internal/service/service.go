package service

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"hmeans/internal/cluster"
	"hmeans/internal/core"
	"hmeans/internal/obs"
)

// DefaultQueueDepth is the -queue-depth default shared by cmd/hmeansd
// and hmeansload's self-managed daemon. Sized empirically with the
// load harness (see EXPERIMENTS.md "Sizing the daemon's queue"): deep
// enough that transient bursts at sustainable rates queue instead of
// shedding, shallow enough that queueing delay cannot push p99 past
// the SLO before the limiter starts saying 429.
const DefaultQueueDepth = 64

// Config configures a scoring server. The zero value is usable:
// worker pool sized to the CPU count, no queue, no cache, no compute
// deadline.
type Config struct {
	// MaxInflight bounds concurrent pipeline computations. Values
	// <= 0 default to the CPU count.
	MaxInflight int
	// QueueDepth bounds callers waiting for a computation slot;
	// arrivals beyond pool+queue are rejected with 429. Negative
	// values mean no queue.
	QueueDepth int
	// CacheSize bounds the content-addressed result cache (entries);
	// <= 0 disables caching.
	CacheSize int
	// Timeout is the per-request compute deadline enforced through
	// core.DetectClustersCtx; 0 means none. The deadline covers the
	// computation only, not time spent queued — queued callers are
	// still bounded by their own HTTP request contexts.
	Timeout time.Duration
	// Parallelism is the worker count each pipeline run uses
	// (core.PipelineConfig.Parallelism). Results are bit-identical
	// for every value, which is why it is not part of the cache key.
	Parallelism int
	// LinkageAlgorithm selects the agglomeration algorithm for every
	// pipeline run (core.PipelineConfig.LinkageAlgorithm). Like
	// Parallelism it is a per-process deployment choice, not part of
	// the request or its cache key: the algorithms produce equivalent
	// trees on every input (identical whenever merge heights are
	// distinct). One caveat follows from that choice: on inputs with
	// exactly tied merge heights the equivalent trees need not be
	// byte-identical, so a snapshot written under one algorithm and
	// restored under another can serve the previous algorithm's bytes
	// for those inputs. The clusters any cut produces are the same.
	LinkageAlgorithm cluster.Algorithm
	// MaxBodyBytes bounds the request body; <= 0 defaults to 64 MiB.
	MaxBodyBytes int64
	// Obs receives request spans and the service counters. Nil falls
	// back to the process-default observer.
	Obs *obs.Observer
	// AccessLog receives one structured line per HTTP request (see
	// logAccess for the fields). Nil disables access logging entirely
	// — the hot path then takes no extra allocations, preserving the
	// zero-alloc and bit-identical guarantees.
	AccessLog *slog.Logger
}

// Server is the scoring service: Handler exposes it over HTTP, and
// Score is the in-process equivalent the tests and any future
// embedding use.
type Server struct {
	cfg   Config
	obs   *obs.Observer
	cache *cache
	group *group
	lim   *limiter
	// draining flips on BeginDrain: /readyz answers 503 and new
	// scoring work is refused while admitted requests finish.
	draining atomic.Bool
	// computeHook, when non-nil, runs at the top of every pipeline
	// computation. Test seam: it is how the drain and panic-recovery
	// tests make compute slow or explosive deterministically.
	computeHook func(*Request)
}

// New builds a Server from cfg (see Config for defaulting).
func New(cfg Config) *Server {
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = runtime.NumCPU()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	return &Server{
		cfg:   cfg,
		obs:   obs.Or(cfg.Obs),
		cache: newCache(cfg.CacheSize),
		group: newGroup(),
		lim:   newLimiter(cfg.MaxInflight, cfg.QueueDepth),
	}
}

// RetryAfter is the Retry-After header value (whole seconds) sent
// with every 429: a shed request should come back once the pool has
// drained a slot, and one second is a safe lower bound for a pipeline
// run at suite scale. Exported so load clients (cmd/hmeansload's
// closed loop) and the overload tests share the service's contract
// instead of re-parsing a magic number.
const RetryAfter = "1"

// Cache statuses reported in the X-Hmeans-Cache response header.
const (
	// CacheMiss marks the request that ran the pipeline.
	CacheMiss = "miss"
	// CacheHit marks a response served from the result cache.
	CacheHit = "hit"
	// CacheCoalesced marks a request that joined an identical
	// in-flight computation and shares its result.
	CacheCoalesced = "coalesced"
)

// Score answers one request in-process: through the cache, the
// coalescing group and the worker pool, exactly like the HTTP path.
// It returns the encoded response bytes (stable for identical
// requests) plus the cache status. ctx bounds queue waiting and — for
// a leader — is superseded by the server's compute deadline.
func (s *Server) Score(ctx context.Context, req *Request) ([]byte, string, error) {
	return s.score(ctx, req, nil)
}

// score is Score with optional per-request timing collection: when st
// is non-nil the leader records queue wait and compute time into it
// for the access log. A nil st (the dark path, and every coalesced
// follower or cache hit) skips all clock reads.
func (s *Server) score(ctx context.Context, req *Request, st *scoreStats) ([]byte, string, error) {
	if s.draining.Load() {
		s.count("service.draining")
		return nil, "", ErrDraining
	}
	if err := req.Validate(); err != nil {
		s.count("service.invalid")
		return nil, "", err
	}
	key := req.CacheKey()
	if raw, ok := s.cache.get(key); ok {
		s.count("service.cache.hit")
		return raw, CacheHit, nil
	}
	raw, leader, err := s.group.do(ctx, key, func() (raw []byte, err error) {
		// A panic inside the flight must be converted to an error
		// *here*, before group.do regains control: the leader's normal
		// return is what closes the flight and wakes the coalesced
		// followers, so a panic that escaped this closure would leave
		// every follower waiting forever on a flight that no longer
		// exists.
		defer func() {
			if v := recover(); v != nil {
				s.count("service.panic")
				raw, err = nil, &PanicError{Value: v, Stack: debug.Stack()}
			}
		}()
		var qStart time.Time
		if st != nil {
			qStart = time.Now()
		}
		if err := s.lim.acquire(ctx); err != nil {
			if st != nil {
				st.queueWait = time.Since(qStart)
			}
			return nil, err
		}
		if st != nil {
			st.queueWait = time.Since(qStart)
		}
		defer s.lim.release()
		// The compute context is detached from the leader's request:
		// coalesced followers share this computation, so one client's
		// disconnect must not poison the result for the rest. The
		// server's per-request deadline still applies.
		cctx := context.Background()
		if s.cfg.Timeout > 0 {
			var cancel context.CancelFunc
			cctx, cancel = context.WithTimeout(cctx, s.cfg.Timeout)
			defer cancel()
		}
		var cStart time.Time
		if st != nil {
			cStart = time.Now()
		}
		resp, err := s.compute(cctx, req)
		if st != nil {
			st.compute = time.Since(cStart)
		}
		if err != nil {
			return nil, err
		}
		raw, err = json.Marshal(resp)
		if err != nil {
			return nil, fmt.Errorf("service: encoding response: %w", err)
		}
		raw = append(raw, '\n')
		s.cache.put(key, raw)
		return raw, nil
	})
	status := CacheCoalesced
	if leader {
		status = CacheMiss
	}
	if err != nil {
		s.countErr(err)
		return nil, status, err
	}
	s.count("service.cache." + status)
	return raw, status, nil
}

// compute runs the pipeline and assembles the full Response in the
// deterministic ordering the cache depends on.
func (s *Server) compute(ctx context.Context, req *Request) (*Response, error) {
	if s.computeHook != nil {
		s.computeHook(req)
	}
	t, err := req.table()
	if err != nil {
		return nil, err
	}
	cfg := req.pipelineConfig(s.cfg.Parallelism)
	cfg.LinkageAlgorithm = s.cfg.LinkageAlgorithm
	cfg.Obs = s.obs
	p, err := core.DetectClustersCtx(ctx, t, cfg)
	if err != nil {
		return nil, err
	}
	n := len(p.Workloads)
	names := req.vectorNames()
	aligned := make(map[string][]float64, len(names))
	for _, name := range names {
		v, err := p.AlignScores(req.Scores[name])
		if err != nil {
			return nil, badRequestf("score vector %q: %v", name, err)
		}
		for i, x := range v {
			if !(x > 0) || x > maxFinite {
				return nil, badRequestf("score vector %q: workload %s has non-positive or non-finite score %v (all three mean families need positive finite scores)",
					name, p.Workloads[i], x)
			}
		}
		aligned[name] = v
	}

	resp := &Response{
		Workloads:  p.Workloads,
		Positions:  positionsJSON(p),
		Dendrogram: dendrogramJSON(p.Dendrogram),
	}
	if p.Map != nil {
		resp.SOM = &SOMJSON{Rows: p.Map.Rows(), Cols: p.Map.Cols()}
	}
	for _, q := range p.Quarantined {
		resp.Quarantined = append(resp.Quarantined, QuarantineJSON{Workload: q.Workload, Index: q.Index, Reason: q.Reason})
	}

	kMin, kMax := req.sweepRange(n)
	recommended := 1
	if kMax >= 2 && kMin <= kMax {
		if len(names) >= 2 {
			// Two or more machines: the paper's full criterion,
			// silhouette plus ratio damping of the first two vectors
			// (sorted by name, so the choice is deterministic).
			rec, err := p.RecommendK(core.Geometric, aligned[names[0]], aligned[names[1]], kMin, kMax)
			if err != nil {
				return nil, err
			}
			recommended = rec.K
		} else {
			rec, err := p.RecommendKQuality(kMin, kMax)
			if err != nil {
				return nil, err
			}
			recommended = rec.K
		}
	}
	resp.RecommendedK = recommended

	cutK := req.K
	if cutK == 0 {
		cutK = recommended
	}
	cut, err := p.ClusteringAtK(cutK)
	if err != nil {
		return nil, err
	}
	members, err := p.ClusterMembers(cutK)
	if err != nil {
		return nil, err
	}
	resp.Cut = CutJSON{K: cutK, Labels: cut.Labels, Members: members}

	// One pooled scorer serves the whole sweep: Reset re-plans it per
	// k and each Mean call is allocation-free, so the k×vectors×3
	// mean evaluations of a cache-miss request cost O(results)
	// allocations, not O(evaluations).
	sc := scorerPool.Get().(*core.Scorer)
	defer scorerPool.Put(sc)
	for k := kMin; k <= kMax; k++ {
		c, err := p.ClusteringAtK(k)
		if err != nil {
			return nil, err
		}
		if err := sc.Reset(c); err != nil {
			return nil, err
		}
		for _, name := range names {
			m := KMeans{K: k, Vector: name}
			if m.HGM, err = sc.Mean(core.Geometric, aligned[name]); err != nil {
				return nil, err
			}
			if m.HAM, err = sc.Mean(core.Arithmetic, aligned[name]); err != nil {
				return nil, err
			}
			if m.HHM, err = sc.Mean(core.Harmonic, aligned[name]); err != nil {
				return nil, err
			}
			resp.Means = append(resp.Means, m)
		}
	}
	for _, name := range names {
		pm := PlainMeans{Vector: name}
		if pm.GM, err = core.PlainMean(core.Geometric, aligned[name]); err != nil {
			return nil, err
		}
		if pm.AM, err = core.PlainMean(core.Arithmetic, aligned[name]); err != nil {
			return nil, err
		}
		if pm.HM, err = core.PlainMean(core.Harmonic, aligned[name]); err != nil {
			return nil, err
		}
		resp.Plain = append(resp.Plain, pm)
	}
	return resp, nil
}

// maxFinite rejects +Inf while keeping every finite float64: x >
// maxFinite is true only for +Inf (NaN fails the x > 0 test).
const maxFinite = 1.7976931348623157e308

// scorerPool recycles hierarchical-mean scorers across requests; a
// scorer retains only its gather plan and scratch buffers, never
// request data, so pooling is safe.
var scorerPool = sync.Pool{New: func() any { return new(core.Scorer) }}

func positionsJSON(p *core.Pipeline) [][]float64 {
	out := make([][]float64, len(p.Positions))
	for i, v := range p.Positions {
		out[i] = []float64(v)
	}
	return out
}

// Handler returns the service mux:
//
//	POST /v1/score   score a characterization + score vectors
//	GET  /healthz    liveness ("ok") — stays 200 while draining
//	GET  /readyz     readiness — 503 once BeginDrain is called
//	GET  /version    build description
//
// Observability endpoints (/metrics, /trace, /debug/*) are mounted
// separately by the daemon via obs.Observer.Register, so embedders
// can choose to keep them off the service port.
func (s *Server) Handler() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", s.handleScore)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	// Readiness is distinct from liveness: a draining process is alive
	// (it is still finishing admitted work) but must not receive new
	// traffic. Orchestrators probe /readyz; /healthz deciding restarts
	// must keep answering 200 through the drain or the drain gets cut
	// short by a kill.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			w.Header().Set("Retry-After", RetryAfter)
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("/version", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hmeansd %s\n", obs.Version())
	})
	return mux
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := EnsureRequestID(r)
	w.Header().Set(HeaderRequestID, reqID)
	sp := s.obs.StartSpan("request", obs.KV("path", r.URL.Path), obs.KV("request_id", reqID))
	defer sp.End()
	s.count("service.requests")
	// Timing collection exists for the access log only; the dark path
	// (AccessLog nil) must not pay its clock reads or allocation.
	var st *scoreStats
	if s.cfg.AccessLog != nil {
		st = new(scoreStats)
	}
	// Backstop panic recovery for everything outside the coalescing
	// group (decode, validation, response writing). Panics inside a
	// flight are converted by the leader closure itself — they must
	// not unwind past group.do — so this recover is the rare path.
	defer func() {
		if v := recover(); v != nil {
			err := &PanicError{Value: v, Stack: debug.Stack()}
			s.count("service.panic")
			s.writeError(w, sp, http.StatusInternalServerError, err)
			s.logAccess(r, reqID, http.StatusInternalServerError, "", nil, st, start, err)
		}
	}()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		err := fmt.Errorf("use POST")
		s.writeError(w, sp, http.StatusMethodNotAllowed, err)
		s.logAccess(r, reqID, http.StatusMethodNotAllowed, "", nil, st, start, err)
		return
	}
	var req Request
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.count("service.invalid")
		err = fmt.Errorf("decoding request: %w", err)
		s.writeError(w, sp, http.StatusBadRequest, err)
		s.logAccess(r, reqID, http.StatusBadRequest, "", nil, st, start, err)
		return
	}
	sp.SetAttr("workloads", len(req.Table.Workloads))
	sp.SetAttr("vectors", len(req.Scores))

	raw, status, err := s.score(r.Context(), &req, st)
	sp.SetAttr("cache", status)
	if err != nil {
		code := httpStatus(err)
		s.writeError(w, sp, code, err)
		s.logAccess(r, reqID, code, status, nil, st, start, err)
		return
	}
	key := req.CacheKey()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Hmeans-Cache", status)
	w.Header().Set("X-Hmeans-Key", hex.EncodeToString(key[:8]))
	w.Header().Set(HeaderDigest, Digest(raw))
	w.Write(raw)
	sp.SetAttr("status", http.StatusOK)
	if s.obs.Active() {
		s.obs.Metrics().Histogram("service.latency_ms", 1, 5, 10, 50, 100, 500, 1000, 5000).
			Observe(float64(time.Since(start).Milliseconds()))
	}
	s.logAccess(r, reqID, http.StatusOK, status, key[:8], st, start, nil)
}

// httpStatus maps the error taxonomy to HTTP statuses, mirroring the
// CLI exit codes (usage/invalid input → 400 like exit 2/3, timeout →
// 504 like the "timed out" exit 1 path, overload → 429, the rest →
// 500).
func httpStatus(err error) int {
	var br *BadRequestError
	if errors.As(err, &br) {
		return http.StatusBadRequest
	}
	var de interface {
		error
		DataError() bool
	}
	if errors.As(err, &de) && de.DataError() {
		return http.StatusBadRequest
	}
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func (s *Server) writeError(w http.ResponseWriter, sp *obs.Span, status int, err error) {
	sp.SetAttr("status", status)
	sp.SetAttr("error", err.Error())
	// 429 (shed) and 503 (draining) are both "come back shortly"
	// conditions; the Retry-After contract covers them identically.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", RetryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) count(name string) {
	if s.obs.Active() {
		s.obs.Metrics().Counter(name).Add(1)
	}
}

func (s *Server) countErr(err error) {
	switch httpStatus(err) {
	case http.StatusTooManyRequests:
		s.count("service.rejected")
	case http.StatusGatewayTimeout:
		s.count("service.timeout")
	case http.StatusServiceUnavailable:
		s.count("service.unavailable")
	case http.StatusBadRequest:
		s.count("service.invalid")
	default:
		s.count("service.internal")
	}
}

// CacheLen reports the number of cached responses (for tests and the
// daemon's shutdown log line).
func (s *Server) CacheLen() int { return s.cache.len() }

// Queued reports the number of requests waiting for a computation
// slot.
func (s *Server) Queued() int64 { return s.lim.queued() }

// Inflight reports the number of running computations.
func (s *Server) Inflight() int { return s.lim.inflight() }
