package service

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"math"
)

// canonicalVersion tags the canonical encoding. Bump it whenever the
// encoding or the semantics of any encoded field change, so stale
// cache entries (in a future persistent cache) can never be returned
// for a request they no longer describe.
const canonicalVersion = "hmeansd-req/1"

// CacheKey returns the content address of a request: the SHA-256 of
// its canonical encoding. Two requests share a key exactly when the
// pipeline is guaranteed to produce bit-identical results for them:
//
//   - the table (workload names, feature names, values) is encoded
//     with exact float64 bit patterns — no formatting, no rounding;
//   - score vectors are encoded in sorted name order, so JSON object
//     key order on the wire is irrelevant;
//   - every result-changing config knob (kind, seed, skip_som,
//     soft_placement, quarantine, k, k_min, k_max) is encoded;
//   - worker counts are NOT encoded: the parallel kernels are proven
//     bit-identical for every worker count (PR 1), so two deployments
//     with different -parallel settings may share cache entries.
func (r *Request) CacheKey() [sha256.Size]byte {
	h := sha256.New()
	writeString(h, canonicalVersion)
	writeString(h, r.Config.Kind)
	writeUint64(h, r.Config.Seed)
	writeBool(h, r.Config.SkipSOM)
	writeBool(h, r.Config.SoftPlacement)
	writeBool(h, r.Config.Quarantine)
	writeUint64(h, uint64(r.K))
	writeUint64(h, uint64(r.KMin))
	writeUint64(h, uint64(r.KMax))

	writeUint64(h, uint64(len(r.Table.Workloads)))
	for _, w := range r.Table.Workloads {
		writeString(h, w)
	}
	writeUint64(h, uint64(len(r.Table.Features)))
	for _, f := range r.Table.Features {
		writeString(h, f)
	}
	for _, row := range r.Table.Rows {
		writeUint64(h, uint64(len(row)))
		for _, v := range row {
			writeFloat(h, v)
		}
	}

	names := r.vectorNames()
	writeUint64(h, uint64(len(names)))
	for _, name := range names {
		writeString(h, name)
		v := r.Scores[name]
		writeUint64(h, uint64(len(v)))
		for _, s := range v {
			writeFloat(h, s)
		}
	}

	var key [sha256.Size]byte
	h.Sum(key[:0])
	return key
}

// writeString writes a length-prefixed string: the prefix prevents
// ambiguity between ["ab","c"] and ["a","bc"].
func writeString(h hash.Hash, s string) {
	writeUint64(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeUint64(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

// writeFloat writes the exact IEEE-754 bit pattern, so 0.1 hashes as
// the double the client sent, not as any decimal rendering of it.
func writeFloat(h hash.Hash, v float64) {
	writeUint64(h, math.Float64bits(v))
}

func writeBool(h hash.Hash, b bool) {
	if b {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
}
