package service

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"hmeans/internal/rng"
)

// ErrDraining reports that the server has begun draining for shutdown
// and refuses new scoring work. In-flight and already-queued requests
// keep running; only arrivals after BeginDrain see this error. Mapped
// to 503 with a Retry-After header, so a well-behaved client retries
// against the replacement process instead of failing the run.
var ErrDraining = errors.New("service: draining, not accepting new requests")

// BeginDrain flips the server into draining mode: /readyz starts
// answering 503 (so load balancers stop routing here) and new scoring
// requests are refused with ErrDraining, while everything already
// admitted runs to completion. Draining is one-way — a server never
// un-drains; it restarts.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.count("service.drain.begin")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// PanicError is a handler panic converted into an error: the request
// that tripped it gets a typed 500 (with its request ID already in the
// response headers) and the process keeps serving. Value is the
// recovered panic value; Stack the goroutine stack captured at the
// recovery point, for the access log and post-mortems.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("service: internal panic: %v", e.Value) }

// RetryAfterJitter turns the service's whole-second Retry-After
// contract into a client-side wait with seeded ±25% jitter, so a
// fleet of shed clients retrying "after 1 second" does not reconverge
// on the same instant and shed again. Deterministic for a given
// source state — same discipline as every other random draw in this
// codebase.
func RetryAfterJitter(r *rng.Source) time.Duration {
	sec, err := strconv.Atoi(RetryAfter)
	if err != nil || sec <= 0 {
		sec = 1
	}
	base := time.Duration(sec) * time.Second
	return time.Duration(float64(base) * (0.75 + 0.5*r.Float64()))
}
