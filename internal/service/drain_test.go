package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"hmeans/internal/rng"
)

func get(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp
}

// TestDrainFlipsReadinessNotLiveness pins the probe split: BeginDrain
// turns /readyz into a 503 (stop routing here) while /healthz keeps
// answering 200 (do not kill me, I am finishing admitted work), and
// new scoring requests get a 503 with the Retry-After contract and a
// "draining" shed reason in the access log.
func TestDrainFlipsReadinessNotLiveness(t *testing.T) {
	var logbuf bytes.Buffer
	srv, ts := newTestServer(t, Config{CacheSize: 8, AccessLog: slog.New(slog.NewJSONHandler(&logbuf, nil))})

	if resp := get(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d, want 200", resp.StatusCode)
	}
	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	resp := get(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while draining: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != RetryAfter {
		t.Fatalf("/readyz Retry-After = %q, want %q", got, RetryAfter)
	}
	if resp := get(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while draining: %d, want 200 (liveness must survive the drain)", resp.StatusCode)
	}

	resp, _ = postScore(t, ts.URL, testRequest(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("score while draining: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != RetryAfter {
		t.Fatalf("draining 503 Retry-After = %q, want %q", got, RetryAfter)
	}
	if got := resp.Header.Get(HeaderRequestID); got == "" {
		t.Fatal("draining 503 lost the request ID header")
	}
	if !strings.Contains(logbuf.String(), `"shed_reason":"draining"`) {
		t.Fatalf("access log lacks the draining shed reason: %s", logbuf.String())
	}
}

// TestDrainLetsInflightFinish holds a computation open across
// BeginDrain: the in-flight request must complete normally while a
// new arrival is refused. The compute hook makes the interleaving
// deterministic — no sleeps racing real work.
func TestDrainLetsInflightFinish(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: 8})
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.computeHook = func(*Request) {
		close(entered)
		<-release
	}

	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		body, _ := json.Marshal(testRequest(1))
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- result{code: -1}
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		done <- result{code: resp.StatusCode, body: buf.Bytes()}
	}()

	<-entered // the first request is now mid-compute
	srv.BeginDrain()

	srv.computeHook = nil // the draining check fires before compute anyway
	resp, _ := postScore(t, ts.URL, testRequest(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("new arrival during drain: %d, want 503", resp.StatusCode)
	}

	close(release)
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200 — drain must not cut admitted work", r.code)
	}
	if !json.Valid(r.body) {
		t.Fatal("in-flight request returned a torn body")
	}
}

// TestPanicBecomesTypedError makes the computation panic while a
// coalesced follower is waiting on it: both callers must get a clean
// 500 (never a hang or a dead process), the response must keep its
// request ID, and the server must serve the next request normally.
func TestPanicBecomesTypedError(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheSize: 8})
	entered := make(chan struct{})
	srv.computeHook = func(*Request) {
		close(entered)
		// Panic only after a follower has joined the flight, so the
		// test proves the recover happens inside the leader closure —
		// an escape would strand this follower forever.
		for srv.group.waiting() == 0 {
			time.Sleep(time.Millisecond)
		}
		panic("kaboom")
	}

	body, _ := json.Marshal(testRequest(3))
	codes := make(chan int, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			codes <- -1
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode == http.StatusInternalServerError {
			if resp.Header.Get(HeaderRequestID) == "" {
				codes <- -2
				return
			}
			if !strings.Contains(buf.String(), "internal panic") {
				codes <- -3
				return
			}
		}
		codes <- resp.StatusCode
	}
	go post()
	<-entered
	go post()

	for i := 0; i < 2; i++ {
		select {
		case code := <-codes:
			if code != http.StatusInternalServerError {
				t.Fatalf("caller %d got %d, want a typed 500 (negative = missing id/typed message)", i, code)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("a caller hung: the panic escaped the flight and stranded its followers")
		}
	}

	// The process survived; the next request must succeed.
	srv.computeHook = nil
	resp, _ := postScore(t, ts.URL, testRequest(3))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after recovered panic: %d, want 200", resp.StatusCode)
	}
}

// TestScoreDigestHeader checks every 200 carries an integrity digest
// that verifies against the body, and that a corrupted body fails
// verification with a typed IntegrityError.
func TestScoreDigestHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 8})
	for i, want := range []string{CacheMiss, CacheHit} {
		resp, body := postScore(t, ts.URL, testRequest(4))
		if got := resp.Header.Get("X-Hmeans-Cache"); got != want {
			t.Fatalf("request %d: cache %q, want %q", i, got, want)
		}
		digest := resp.Header.Get(HeaderDigest)
		if !strings.HasPrefix(digest, "sha256:") {
			t.Fatalf("digest header %q lacks the sha256 scheme", digest)
		}
		if err := VerifyDigest(digest, body); err != nil {
			t.Fatalf("genuine body failed verification: %v", err)
		}
		corrupt := append([]byte(nil), body...)
		corrupt[len(corrupt)/2] ^= 0x20
		err := VerifyDigest(digest, corrupt)
		if _, ok := err.(*IntegrityError); !ok {
			t.Fatalf("corrupted body: err = %v, want *IntegrityError", err)
		}
	}
	// Absent header (older server) passes: the check is opportunistic.
	if err := VerifyDigest("", []byte("anything")); err != nil {
		t.Fatalf("empty digest must verify trivially, got %v", err)
	}
}

// TestRetryAfterJitterGolden pins the jittered retry schedule for a
// fixed seed, and its contract: always within ±25% of the 1-second
// Retry-After, deterministic per seed, divergent across seeds.
func TestRetryAfterJitterGolden(t *testing.T) {
	golden := []time.Duration{1100288241, 889375614, 1169813730}
	r := rng.New(7)
	for i, want := range golden {
		if got := RetryAfterJitter(r); got != want {
			t.Fatalf("draw %d: %v, want %v", i, got, want)
		}
	}
	r = rng.New(99)
	for i := 0; i < 100; i++ {
		d := RetryAfterJitter(r)
		if d < 750*time.Millisecond || d >= 1250*time.Millisecond {
			t.Fatalf("draw %d: %v outside ±25%% of 1s", i, d)
		}
	}
}
