package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hmeans/internal/resilience"
)

// Backend executes one score request and returns the encoded response
// bytes plus the cache status that produced them. It is the seam
// between "where a score is asked for" and "where it is computed": the
// same request can run in-process (Local, wrapping a Server) or on a
// remote replica over HTTP (Remote), and the caller — the gateway, a
// test, an embedding — cannot tell the difference, because both paths
// serve the same canonical bytes for the same content address.
type Backend interface {
	Score(ctx context.Context, req *Request) ([]byte, string, error)
}

// Server is itself the in-process backend.
var _ Backend = (*Server)(nil)

// Local adapts a Server to the Backend seam explicitly. Functionally
// identical to using the Server directly; it exists so call sites that
// mix local and remote execution name which one they mean.
type Local struct{ Srv *Server }

// Score answers the request in-process through the wrapped server's
// cache, singleflight group and worker pool.
func (l Local) Score(ctx context.Context, req *Request) ([]byte, string, error) {
	return l.Srv.Score(ctx, req)
}

// RemoteConfig configures a Remote backend.
type RemoteConfig struct {
	// BaseURL targets the replica (e.g. http://127.0.0.1:8080).
	BaseURL string
	// Client overrides the HTTP client; nil uses a shared default.
	// Chaos tests inject one with keep-alives disabled and a short
	// timeout.
	Client *http.Client
	// Retry shapes per-dispatch retries against this one replica
	// (transient failures only: 429/502/503/504, transport damage,
	// integrity mismatches). The zero value dispatches exactly once —
	// routing-level failover across replicas is the caller's job.
	Retry resilience.Policy
	// Seed derives the retry jitter streams; per-call retryers are
	// seeded with Seed + the call ordinal so concurrent dispatches do
	// not share a (non-concurrency-safe) jitter stream.
	Seed uint64
}

// Remote dispatches score requests to one replica over HTTP, with the
// PR 8 resilience stack applied: bounded seeded retry, Retry-After
// honoring, and digest verification of every 200 body — a corrupted
// wire can produce a typed IntegrityError, never a silently wrong
// score. Safe for concurrent use.
type Remote struct {
	base   string
	client *http.Client
	retry  resilience.Policy
	seed   uint64
	calls  atomic.Uint64
}

// NewRemote builds a Remote backend for cfg.
func NewRemote(cfg RemoteConfig) *Remote {
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Remote{
		base:   strings.TrimSuffix(cfg.BaseURL, "/"),
		client: client,
		retry:  cfg.Retry,
		seed:   cfg.Seed,
	}
}

// BaseURL reports the replica this backend targets.
func (r *Remote) BaseURL() string { return r.base }

// Score marshals the request, POSTs it to the replica's /v1/score
// (forwarding any correlation ID carried by ctx via WithRequestID),
// and classifies every failure mode: network damage and integrity
// mismatches become *TransportError, non-200 statuses become
// *UpstreamError with the Retry-After hint attached. Transient
// failures are retried per the configured policy; the returned bytes
// of a success are digest-verified.
func (r *Remote) Score(ctx context.Context, req *Request) ([]byte, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, "", fmt.Errorf("service: encoding remote request: %w", err)
	}
	rt := resilience.NewRetryer(r.retry, r.seed+r.calls.Add(1))
	var raw []byte
	var status string
	err = rt.Do(ctx, func(ctx context.Context) error {
		var aerr error
		raw, status, aerr = r.scoreOnce(ctx, body)
		return aerr
	}, RetryableUpstream)
	if err != nil {
		return nil, "", err
	}
	return raw, status, nil
}

func (r *Remote) scoreOnce(ctx context.Context, body []byte) ([]byte, string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/v1/score", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if id := RequestIDFrom(ctx); id != "" {
		hreq.Header.Set(HeaderRequestID, id)
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		return nil, "", &TransportError{Err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			return nil, "", ctx.Err()
		}
		return nil, "", &TransportError{Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", upstreamError(resp, raw)
	}
	if err := VerifyDigest(resp.Header.Get(HeaderDigest), raw); err != nil {
		// Damaged in flight: the replica's copy is fine, so this is
		// transport-shaped and retryable, exactly like a torn read.
		return nil, "", &TransportError{Err: err}
	}
	return raw, resp.Header.Get("X-Hmeans-Cache"), nil
}

// UpstreamError is a non-200 answer from a replica, preserved so the
// caller can relay it faithfully: the gateway answers a client with
// the replica's own status and message for non-retryable failures
// (a 400 through the gateway reads exactly like a 400 from the
// replica).
type UpstreamError struct {
	// Status is the replica's HTTP status.
	Status int
	// Msg is the replica's error message (the "error" field of its
	// JSON error body, or the raw body).
	Msg string
	// RetryAfterSecs carries the replica's Retry-After hint (whole
	// seconds), 0 when absent.
	RetryAfterSecs int
}

func (e *UpstreamError) Error() string {
	return fmt.Sprintf("replica: %s (HTTP %d)", e.Msg, e.Status)
}

// DataError marks 400s as invalid input, so the taxonomy's exit-code
// and HTTP-status mappings treat a relayed bad request like a local
// one.
func (e *UpstreamError) DataError() bool { return e.Status == http.StatusBadRequest }

// RetryAfter feeds the replica's hint to a Retryer.
func (e *UpstreamError) RetryAfter() time.Duration {
	return time.Duration(e.RetryAfterSecs) * time.Second
}

// Temporary reports whether another attempt (against this replica or
// a different one) can plausibly succeed: sheds, drains and gateway-
// class failures, but not invalid input or deterministic server
// errors.
func (e *UpstreamError) Temporary() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// upstreamError builds the typed error for a non-200 replica answer.
func upstreamError(resp *http.Response, raw []byte) *UpstreamError {
	msg := strings.TrimSpace(string(raw))
	var werr struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &werr) == nil && werr.Error != "" {
		msg = werr.Error
	}
	e := &UpstreamError{Status: resp.StatusCode, Msg: msg}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec > 0 {
			e.RetryAfterSecs = sec
		}
	}
	return e
}

// TransportError marks a network-level dispatch failure: the request
// may never have reached the replica, or the response never cleanly
// arrived (connection errors, torn reads, integrity mismatches).
// Always retryable — the replica's state is intact.
type TransportError struct{ Err error }

func (e *TransportError) Error() string { return fmt.Sprintf("transport: %v", e.Err) }
func (e *TransportError) Unwrap() error { return e.Err }

// RetryableUpstream says whether a dispatch failure is worth another
// attempt — by this backend's retry loop and by the gateway's
// failover walk alike: transport damage, integrity mismatches and
// temporary upstream statuses, but never invalid input (which fails
// identically on every replica) or a context that already fired.
func RetryableUpstream(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var ie *IntegrityError
	if errors.As(err, &ie) {
		return true
	}
	var ue *UpstreamError
	if errors.As(err, &ue) {
		return ue.Temporary()
	}
	return false
}
