package service

import (
	"bytes"
	"net/http"
	"sync"
	"testing"

	"hmeans/internal/obs"
)

// TestStressConcurrentMixedClients is the acceptance stress test: at
// least 100 concurrent requests over a mix of duplicate and distinct
// payloads, run under -race in CI. It asserts that every request
// succeeds, that all responses for one payload are byte-identical
// (cold, coalesced and cached paths alike), and that the pipeline
// ran at most once per distinct payload — the cache and the
// coalescing group absorb every duplicate.
func TestStressConcurrentMixedClients(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const (
		distinct = 10
		clients  = 120 // 12 concurrent clients per distinct payload
	)
	o := obs.New()
	_, ts := newTestServer(t, Config{
		MaxInflight: 4,
		QueueDepth:  clients, // no shedding in this test: every request must land
		CacheSize:   distinct,
		Obs:         o,
	})

	reqs := make([]*Request, distinct)
	for i := range reqs {
		reqs[i] = testRequest(uint64(i + 1))
	}

	type result struct {
		payload int
		status  int
		cache   string
		raw     []byte
	}
	results := make(chan result, clients)
	var start, wg sync.WaitGroup
	start.Add(1)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			start.Wait() // release all clients at once
			payload := c % distinct
			r, raw := postScore(t, ts.URL, reqs[payload])
			results <- result{payload, r.StatusCode, r.Header.Get("X-Hmeans-Cache"), raw}
		}(c)
	}
	start.Done()
	wg.Wait()
	close(results)

	first := make([][]byte, distinct)
	counts := map[string]int{}
	for res := range results {
		if res.status != http.StatusOK {
			t.Fatalf("payload %d: status %d (body %s)", res.payload, res.status, res.raw)
		}
		counts[res.cache]++
		if first[res.payload] == nil {
			first[res.payload] = res.raw
			continue
		}
		if !bytes.Equal(first[res.payload], res.raw) {
			t.Fatalf("payload %d: divergent response bytes across clients", res.payload)
		}
	}
	if total := counts[CacheMiss] + counts[CacheHit] + counts[CacheCoalesced]; total != clients {
		t.Fatalf("accounted for %d responses, want %d (%v)", total, clients, counts)
	}
	if counts[CacheMiss] != distinct {
		t.Fatalf("%d cold computations for %d distinct payloads (%v)", counts[CacheMiss], distinct, counts)
	}
	if runs := o.Metrics().Counter("pipeline.runs").Value(); runs != distinct {
		t.Fatalf("pipeline ran %d times, want %d", runs, distinct)
	}
	if rejected := o.Metrics().Counter("service.rejected").Value(); rejected != 0 {
		t.Fatalf("%d requests were shed despite a %d-deep queue", rejected, clients)
	}
}
