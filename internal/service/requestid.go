package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
)

// HeaderRequestID is the correlation header: hmeansd honors a valid
// client-supplied value or generates one, stamps it on the request
// span (and so into the JSONL trace), echoes it in the response, and
// writes it to the access log — one ID follows a request across every
// process boundary. Clients (hmeansctl, internal/load) send it so
// client-side artifacts and server-side telemetry join on the same
// key.
const HeaderRequestID = "X-Request-ID"

// NewRequestID returns a fresh random request ID ("r-" + 16 hex
// chars). Random rather than sequential so IDs from independent
// clients and replicas cannot collide; no coordination needed.
func NewRequestID() string {
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return "r-" + hex.EncodeToString(b[:])
}

// validRequestID bounds what the service will honor and echo:
// 1–128 bytes of a conservative token alphabet. Anything else is
// replaced with a generated ID, so hostile header values can never
// reach the access log or the trace verbatim.
func validRequestID(s string) bool {
	if len(s) == 0 || len(s) > 128 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-', c == '_', c == '.', c == ':', c == '/':
		default:
			return false
		}
	}
	return true
}

// EnsureRequestID returns the request's correlation ID: the inbound
// header when valid, a freshly generated one otherwise. Exported so
// the gateway applies exactly the same honor-or-generate rule at its
// hop — the ID a client sent (or the gateway minted) is then the one
// the replica sees, which is what makes a single grep span both access
// logs and the trace.
func EnsureRequestID(r *http.Request) string {
	if id := r.Header.Get(HeaderRequestID); validRequestID(id) {
		return id
	}
	return NewRequestID()
}

// requestIDKey carries the correlation ID through a context, so a
// Backend dispatching over HTTP (Remote) can forward the ID of the
// request it is serving without threading an extra parameter through
// the Backend interface.
type requestIDKey struct{}

// WithRequestID returns ctx carrying the correlation ID for any Remote
// dispatch made under it.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the correlation ID WithRequestID stored, or
// "" when none was.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
