package service

import (
	"bytes"
	"testing"

	"hmeans/internal/faultinject"
)

// FuzzRestoreSnapshot asserts the hmeansd-snap/1 decoder never panics
// or over-allocates on hostile input — truncated, bit-flipped, and
// length-prefix-lying snapshots included — and that whatever it does
// accept is CRC-clean by construction: a record that decodes is a
// record that was written. The corpus mutates outward from a genuine
// snapshot, corrupted with the same faultinject primitives the chaos
// suite uses.
func FuzzRestoreSnapshot(f *testing.F) {
	src := New(Config{CacheSize: 8})
	for i := 1; i <= 3; i++ {
		var k cacheKey
		k[0] = byte(i)
		src.cache.put(k, bytes.Repeat([]byte{byte('a' + i)}, 20*i))
	}
	var buf bytes.Buffer
	if _, err := src.WriteSnapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	in := faultinject.New(2007)
	f.Add(valid)
	f.Add(in.Truncate(valid))
	f.Add(in.FlipBytes(valid, 1))
	f.Add(in.FlipBytes(valid, 8))
	f.Add([]byte(SnapshotMagic))                                             // empty snapshot
	f.Add([]byte(SnapshotMagic + "\xff\xff\xff\xff"))                        // lying length
	f.Add([]byte(SnapshotMagic + "\x00\x00\x00\x00" + "0123456789"))         // zero length
	f.Add(append([]byte(SnapshotMagic), valid...))                           // magic inside data
	f.Add(bytes.Repeat([]byte{0}, 64))                                       // not a snapshot
	f.Add(append(append([]byte{}, valid...), valid[len(SnapshotMagic):]...)) // doubled records

	f.Fuzz(func(t *testing.T, data []byte) {
		dst := New(Config{CacheSize: 8})
		st, err := dst.RestoreSnapshot(bytes.NewReader(data), nil)
		if err != nil {
			// Only the not-a-snapshot verdict may error.
			if err != ErrSnapshotFormat {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		if st.Restored < 0 || st.Skipped < 0 {
			t.Fatalf("negative stats %+v", st)
		}
		if got := dst.CacheLen(); got > 8 {
			t.Fatalf("restore overflowed the cache capacity: %d entries", got)
		}
	})
}
