package service

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hmeans/internal/resilience"
)

// TestLocalBackendMatchesServer pins that the Local adapter is the
// server: same bytes, same cache status.
func TestLocalBackendMatchesServer(t *testing.T) {
	srv := New(Config{CacheSize: 4})
	req := testRequest(1)
	direct, directStatus, err := srv.Score(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	viaLocal, localStatus, err := Local{Srv: srv}.Score(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, viaLocal) {
		t.Fatal("Local bytes differ from Server bytes")
	}
	if directStatus != CacheMiss || localStatus != CacheHit {
		t.Fatalf("statuses = %q then %q, want miss then hit", directStatus, localStatus)
	}
}

// TestRemoteScore pins the happy path: bytes round-trip the wire
// digest-verified, the cache status header is surfaced, and the
// context's request ID is forwarded on the hop.
func TestRemoteScore(t *testing.T) {
	const payload = `{"score":42}`
	var gotID atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotID.Store(r.Header.Get(HeaderRequestID))
		w.Header().Set(HeaderDigest, Digest([]byte(payload)))
		w.Header().Set("X-Hmeans-Cache", CacheMiss)
		w.Write([]byte(payload))
	}))
	defer ts.Close()

	r := NewRemote(RemoteConfig{BaseURL: ts.URL})
	ctx := WithRequestID(context.Background(), "hop-test.7")
	raw, status, err := r.Score(ctx, testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != payload {
		t.Fatalf("raw = %s", raw)
	}
	if status != CacheMiss {
		t.Fatalf("status = %q, want %q", status, CacheMiss)
	}
	if got := gotID.Load(); got != "hop-test.7" {
		t.Fatalf("replica saw request ID %q, want hop-test.7", got)
	}
}

// TestRemoteRetriesTransient pins the per-replica retry: a shed 429
// answered once is retried and the second attempt's bytes win.
func TestRemoteRetriesTransient(t *testing.T) {
	const payload = `{"ok":true}`
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set(HeaderDigest, Digest([]byte(payload)))
		w.Write([]byte(payload))
	}))
	defer ts.Close()

	r := NewRemote(RemoteConfig{
		BaseURL: ts.URL,
		Retry:   resilience.Policy{MaxRetries: 1, BaseDelay: 1},
		Seed:    7,
	})
	raw, _, err := r.Score(context.Background(), testRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != payload {
		t.Fatalf("raw = %s", raw)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d attempts, want 2", calls.Load())
	}
}

// TestRemoteRelays400 pins that invalid input is not retried and comes
// back as a typed UpstreamError with DataError set.
func TestRemoteRelays400(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad table"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	r := NewRemote(RemoteConfig{BaseURL: ts.URL, Retry: resilience.Policy{MaxRetries: 3, BaseDelay: 1}})
	_, _, err := r.Score(context.Background(), testRequest(1))
	var ue *UpstreamError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UpstreamError", err)
	}
	if ue.Status != http.StatusBadRequest || !ue.DataError() || ue.Temporary() {
		t.Fatalf("unexpected classification: %+v", ue)
	}
	if ue.Msg != "bad table" {
		t.Fatalf("msg = %q, want the replica's message", ue.Msg)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was attempted %d times, want 1 (never retried)", calls.Load())
	}
}

// TestRemoteDigestMismatch pins the integrity path: a body that does
// not match its digest is transport damage, typed and retryable —
// never silently served.
func TestRemoteDigestMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderDigest, Digest([]byte("what was computed")))
		w.Write([]byte("what arrived"))
	}))
	defer ts.Close()

	r := NewRemote(RemoteConfig{BaseURL: ts.URL})
	_, _, err := r.Score(context.Background(), testRequest(1))
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	if !RetryableUpstream(err) {
		t.Fatal("integrity damage must be retryable")
	}
}

// TestRemoteConnectionRefused pins the dead-replica path: a typed,
// retryable TransportError.
func TestRemoteConnectionRefused(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // dead before the first dial

	r := NewRemote(RemoteConfig{BaseURL: ts.URL})
	_, _, err := r.Score(context.Background(), testRequest(1))
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TransportError", err)
	}
	if !RetryableUpstream(err) {
		t.Fatal("connection refusal must be retryable")
	}
}

// TestRetryableUpstream is the classifier table.
func TestRetryableUpstream(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
		{"transport", &TransportError{Err: errors.New("refused")}, true},
		{"shed 429", &UpstreamError{Status: http.StatusTooManyRequests}, true},
		{"draining 503", &UpstreamError{Status: http.StatusServiceUnavailable}, true},
		{"bad gateway 502", &UpstreamError{Status: http.StatusBadGateway}, true},
		{"timeout 504", &UpstreamError{Status: http.StatusGatewayTimeout}, true},
		{"bad request 400", &UpstreamError{Status: http.StatusBadRequest}, false},
		{"server bug 500", &UpstreamError{Status: http.StatusInternalServerError}, false},
		{"other", errors.New("mystery"), false},
	}
	for _, c := range cases {
		if got := RetryableUpstream(c.err); got != c.want {
			t.Errorf("%s: RetryableUpstream = %v, want %v", c.name, got, c.want)
		}
	}
}
