package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchScore drives the HTTP cache-hit path — decode, content hash,
// cache lookup, response write — with access logging either dark
// (nil) or enabled. The pair is wired into the bench gate: the
// logged variant must stay inside the ns/op budget, and the dark
// variant's allocs/op must not move at all, proving telemetry is
// free when disabled.
func benchScore(b *testing.B, logger *slog.Logger) {
	srv := New(Config{CacheSize: 4, AccessLog: logger})
	body, err := json.Marshal(testRequest(1))
	if err != nil {
		b.Fatal(err)
	}
	mux := srv.Handler()
	prime := httptest.NewRequest(http.MethodPost, "/v1/score", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, prime)
	if rec.Code != http.StatusOK {
		b.Fatalf("priming request: status %d, body %s", rec.Code, rec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/score", bytes.NewReader(body))
		req.Header.Set(HeaderRequestID, "bench-000001")
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func BenchmarkServiceScoreDark(b *testing.B) { benchScore(b, nil) }

func BenchmarkServiceScoreLogged(b *testing.B) {
	benchScore(b, slog.New(slog.NewJSONHandler(io.Discard, nil)))
}
