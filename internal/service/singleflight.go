package service

import (
	"context"
	"sync"
	"sync/atomic"
)

// group coalesces duplicate in-flight computations: the first caller
// for a key becomes the leader and runs fn; every caller that arrives
// with the same key while the leader is running waits for the
// leader's result instead of recomputing it. This is what makes a
// burst of identical requests train the SOM exactly once.
//
// Unlike x/sync/singleflight, waiting is context-aware: a follower
// whose request deadline fires stops waiting (and gets its context
// error) while the leader's computation continues for the others.
type group struct {
	mu sync.Mutex
	m  map[cacheKey]*call
	// followers counts callers currently waiting on another caller's
	// flight — observability for tests and the /metrics gauge.
	followers atomic.Int64
}

type call struct {
	done chan struct{}
	val  []byte
	err  error
}

func newGroup() *group {
	return &group{m: make(map[cacheKey]*call)}
}

// do runs fn for key, coalescing concurrent duplicates. It returns
// fn's result, plus leader=false when the result came from another
// caller's computation. fn runs exactly once per flight regardless of
// how many callers join it.
func (g *group) do(ctx context.Context, key cacheKey, fn func() ([]byte, error)) (val []byte, leader bool, err error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		g.followers.Add(1)
		defer g.followers.Add(-1)
		select {
		case <-c.done:
			return c.val, false, c.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, true, c.err
}

// flights reports the number of in-flight computations.
func (g *group) flights() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.m)
}

// waiting reports the number of callers waiting on another caller's
// flight.
func (g *group) waiting() int64 { return g.followers.Load() }
