package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/cluster"
	"hmeans/internal/viz"
)

// RenderKMeansComparison contrasts the paper's hierarchical
// clustering with the flat k-means baseline the benchmark-subsetting
// literature uses: for each k in the sweep, cluster the SAR-A SOM
// positions both ways and report the Rand agreement plus whether
// k-means also finds the SciMark2 adoption set.
func (s *Suite) RenderKMeansComparison(w io.Writer) error {
	p, err := s.Pipeline(SARMachineA)
	if err != nil {
		return err
	}
	sci := make([]bool, len(s.Workloads))
	for i := range s.Workloads {
		sci[i] = s.Workloads[i].Suite == "SciMark2"
	}
	t := viz.NewTable("k", "agreement (hier vs k-means)", "k-means finds SciMark2")
	for k := s.Config.KMin; k <= s.Config.KMax && k <= len(s.Workloads); k++ {
		hier, err := p.Dendrogram.CutK(k)
		if err != nil {
			return err
		}
		km, err := cluster.KMeans(p.Positions, k, uint64(k)*31, 6)
		if err != nil {
			return err
		}
		agree, err := cluster.AgreementRate(hier, km.Assignment)
		if err != nil {
			return err
		}
		if err := t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.3f", agree),
			yesNo(sciExclusiveIn(km.Assignment, sci))); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "(both algorithms run on the same SOM positions; the paper's\nconclusion does not hinge on the hierarchical algorithm choice)")
	return err
}

// sciExclusiveIn reports whether the SciMark members form an
// exclusive cluster in the assignment.
func sciExclusiveIn(a cluster.Assignment, sci []bool) bool {
	label := -1
	for i, isSci := range sci {
		if isSci {
			label = a.Labels[i]
			break
		}
	}
	for i, isSci := range sci {
		if isSci != (a.Labels[i] == label) {
			return false
		}
	}
	return true
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
