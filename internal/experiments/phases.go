package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/cluster"
	"hmeans/internal/core"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

// PhasedResult compares the paper's flat-average characterization
// against a phase-resolved one (early/middle/late thirds averaged
// separately), asking whether the averaging step the paper uses
// loses clustering-relevant information.
type PhasedResult struct {
	// AgreementAtK maps each cut k to the Rand agreement between the
	// averaged and phase-resolved clusterings.
	AgreementAtK map[int]float64
	// SciExclusiveAveraged and SciExclusivePhased report the cuts at
	// which SciMark2 is exclusive under each characterization.
	SciExclusiveAveraged, SciExclusivePhased []int
}

// Phased runs the comparison on machine A's SAR campaign.
func (s *Suite) Phased() (PhasedResult, error) {
	res := PhasedResult{AgreementAtK: map[int]float64{}}
	avgPipe, err := s.Pipeline(SARMachineA)
	if err != nil {
		return res, err
	}
	phTab, err := simbench.SARTablePhased(s.Workloads, s.A, simbench.SARSpec{Seed: s.Config.SARSeed})
	if err != nil {
		return res, err
	}
	phPipe, err := core.DetectClusters(phTab, core.PipelineConfig{SOM: som.Config{Seed: s.Config.SOMSeed}})
	if err != nil {
		return res, err
	}
	for k := s.Config.KMin; k <= s.Config.KMax && k <= len(s.Workloads); k++ {
		aAvg, err := avgPipe.Dendrogram.CutK(k)
		if err != nil {
			return res, err
		}
		aPh, err := phPipe.Dendrogram.CutK(k)
		if err != nil {
			return res, err
		}
		agree, err := cluster.AgreementRate(aAvg, aPh)
		if err != nil {
			return res, err
		}
		res.AgreementAtK[k] = agree
	}
	if res.SciExclusiveAveraged, err = s.SciMarkExclusiveKs(SARMachineA); err != nil {
		return res, err
	}
	res.SciExclusivePhased = sciExclusiveList(phPipe.Dendrogram, s, s.Config.KMin, s.Config.KMax)
	return res, nil
}

func sciExclusiveList(d *cluster.Dendrogram, s *Suite, kMin, kMax int) []int {
	sci := make([]bool, len(s.Workloads))
	for i := range s.Workloads {
		sci[i] = s.Workloads[i].Suite == "SciMark2"
	}
	var out []int
	for k := kMin; k <= kMax && k <= d.Len(); k++ {
		a, err := d.CutK(k)
		if err != nil {
			continue
		}
		label := -1
		for i, isSci := range sci {
			if isSci {
				label = a.Labels[i]
				break
			}
		}
		ok := true
		for i, isSci := range sci {
			if isSci != (a.Labels[i] == label) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, k)
		}
	}
	return out
}

// RenderPhased writes the averaged-vs-phased comparison.
func (s *Suite) RenderPhased(w io.Writer) error {
	res, err := s.Phased()
	if err != nil {
		return err
	}
	t := viz.NewTable("k", "clustering agreement (averaged vs phased)")
	for k := s.Config.KMin; k <= s.Config.KMax; k++ {
		if agree, ok := res.AgreementAtK[k]; ok {
			if err := t.AddRowf(fmt.Sprintf("%d", k), "%.3f", agree); err != nil {
				return err
			}
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"SciMark2 exclusive at k=%v (averaged) vs k=%v (phase-resolved):\n"+
			"the flat averaging the paper uses preserves the clustering signal.\n",
		res.SciExclusiveAveraged, res.SciExclusivePhased)
	return err
}
