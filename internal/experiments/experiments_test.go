package experiments

import (
	"math"
	"strings"
	"sync"
	"testing"

	"hmeans/internal/core"
)

// The suite is expensive to assemble (three SOM trainings); share one
// across the package's tests.
var (
	suiteOnce sync.Once
	suite     *Suite
	suiteErr  error
)

func sharedSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = NewSuite(Config{})
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	return suite
}

func TestTableIIIMatchesPaper(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper's headline numbers: GM(A)=2.10, GM(B)=1.94,
	// ratio=1.08. Measurement noise allows a small tolerance.
	if math.Abs(res.GMA-2.10) > 0.03 {
		t.Errorf("GM(A) = %v, paper 2.10", res.GMA)
	}
	if math.Abs(res.GMB-1.94) > 0.03 {
		t.Errorf("GM(B) = %v, paper 1.94", res.GMB)
	}
	if math.Abs(res.GMRatio-1.08) > 0.02 {
		t.Errorf("ratio = %v, paper 1.08", res.GMRatio)
	}
	// Every individual speedup within 5% of Table III.
	want := map[string][2]float64{
		"jvm98.201.compress":  {4.75, 3.99},
		"jvm98.222.mpegaudio": {6.50, 6.11},
		"SciMark2.Sparse":     {0.71, 0.90},
		"DaCapo.hsqldb":       {1.16, 2.31},
	}
	for _, r := range res.Rows {
		if w, ok := want[r.Workload]; ok {
			if math.Abs(r.A/w[0]-1) > 0.05 || math.Abs(r.B/w[1]-1) > 0.05 {
				t.Errorf("%s = (%.2f, %.2f), paper (%.2f, %.2f)", r.Workload, r.A, r.B, w[0], w[1])
			}
		}
	}
}

func TestSciMarkExclusiveEverywhere(t *testing.T) {
	// The paper's central clustering finding: SciMark2 coagulates
	// into an exclusive cluster under every characterization.
	s := sharedSuite(t)
	for _, ch := range []Characterization{SARMachineA, SARMachineB, MethodBits} {
		ks, err := s.SciMarkExclusiveKs(ch)
		if err != nil {
			t.Fatal(err)
		}
		if len(ks) == 0 {
			t.Errorf("%s: SciMark2 never exclusive in the sweep", ch)
		}
	}
}

func TestHGMTables(t *testing.T) {
	s := sharedSuite(t)
	for _, ch := range []Characterization{SARMachineA, SARMachineB, MethodBits} {
		res, err := s.HGMTable(ch)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 7 { // k = 2..8
			t.Fatalf("%s: %d rows, want 7", ch, len(res.Rows))
		}
		deviates := false
		above := 0
		for _, r := range res.Rows {
			if r.A <= 0 || r.B <= 0 {
				t.Fatalf("%s k=%d: non-positive score", ch, r.K)
			}
			if r.A >= res.GMA && r.B >= res.GMB {
				above++
			}
			if math.Abs(r.Ratio-res.GMRatio) > 0.02 {
				deviates = true
			}
		}
		// The paper's observation: collapsing the low-scoring SciMark
		// cluster raises the score above the plain GM. This holds at
		// the cuts where SciMark is exclusive; very coarse cuts can
		// mix high and low scorers and dip below, so require the
		// majority of the sweep (not all of it) to sit above.
		if above < 4 {
			t.Errorf("%s: only %d of %d cuts scored above the plain GM", ch, above, len(res.Rows))
		}
		if !deviates {
			t.Errorf("%s: no cut's ratio deviates from the plain GM ratio — redundancy removal had no effect", ch)
		}
	}
}

func TestMethodBitsSciMarkSingleCell(t *testing.T) {
	// Figure 7: SciMark2 workloads map to the same single cell under
	// method-utilization characterization.
	s := sharedSuite(t)
	p, err := s.Pipeline(MethodBits)
	if err != nil {
		t.Fatal(err)
	}
	var first []float64
	for i := range s.Workloads {
		if s.Workloads[i].Suite != "SciMark2" {
			continue
		}
		pos := p.Positions[i]
		if first == nil {
			first = pos
			continue
		}
		if pos[0] != first[0] || pos[1] != first[1] {
			t.Fatalf("SciMark members on different cells: %v vs %v", first, pos)
		}
	}
}

func TestDegeneracyThroughPipeline(t *testing.T) {
	// At k = n the HGM must equal the plain GM (Table IV's
	// convergence property taken to its limit).
	s := sharedSuite(t)
	p, err := s.Pipeline(SARMachineA)
	if err != nil {
		t.Fatal(err)
	}
	n := len(s.Workloads)
	hgm, err := p.ScoreAtK(0, s.SpeedupsA, n)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := s.TableIII()
	if math.Abs(hgm-res.GMA) > 1e-9 {
		t.Fatalf("HGM at k=n = %v, plain GM = %v", hgm, res.GMA)
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	s := sharedSuite(t)
	for _, e := range All() {
		var sb strings.Builder
		if err := e.Run(s, &sb); err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", e.ID)
		}
	}
}

func TestRunAll(t *testing.T) {
	s := sharedSuite(t)
	var sb strings.Builder
	if err := RunAll(s, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"tableIII", "fig7", "tableVI"} {
		if !strings.Contains(out, "=== "+id) {
			t.Fatalf("RunAll output missing %s", id)
		}
	}
}

func TestMicroIndepExtension(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.HGMTable(MicroIndep)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The machine-independent view must still keep the bulk of the
	// SciMark kernels together (the paper's stated expectation for
	// these features). Sparse is allowed to separate: its irregular
	// indirection-driven access pattern genuinely distinguishes it
	// once memory strides are features. Require ≥4 of the 5 kernels
	// to share a cluster at some cut with k ≥ 3.
	p, err := s.Pipeline(MicroIndep)
	if err != nil {
		t.Fatal(err)
	}
	together := false
	for k := 3; k <= 8; k++ {
		c, err := p.ClusteringAtK(k)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[int]int{}
		for i := range s.Workloads {
			if s.Workloads[i].Suite == "SciMark2" {
				counts[c.Labels[i]]++
			}
		}
		for _, n := range counts {
			if n >= 4 {
				together = true
			}
		}
	}
	if !together {
		t.Error("SciMark2 bulk never co-clustered under micro-independent features")
	}
}

func TestStability(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Stability(SARMachineA, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds != 4 || len(res.RatioAtK6) != 4 {
		t.Fatalf("result shape %+v", res)
	}
	// The pipeline's headline conclusion must be robust to the SOM
	// seed: most seeds find SciMark2 exclusive, clusterings agree
	// strongly, and the k=6 ratio barely moves.
	if res.ExclusiveRate < 0.75 {
		t.Errorf("exclusive rate %v too low", res.ExclusiveRate)
	}
	if res.MeanAgreement < 0.9 {
		t.Errorf("mean agreement %v too low", res.MeanAgreement)
	}
	if res.RatioSpread > 0.15 {
		t.Errorf("ratio spread %v too wide", res.RatioSpread)
	}
	if _, err := s.Stability(SARMachineA, 1); err == nil {
		t.Error("single-seed stability accepted")
	}
}

func TestSubjectivity(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Subjectivity(SARMachineA, 6, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The weighted-GM envelope must bracket both the plain GM and
	// the HGM (uniform weights and derived weights are both inside
	// the feasible set).
	if res.WeightedMin > res.PlainGM || res.WeightedMax < res.PlainGM {
		t.Errorf("weighted range [%v, %v] excludes the plain GM %v",
			res.WeightedMin, res.WeightedMax, res.PlainGM)
	}
	if res.WeightedMin > res.HGM || res.WeightedMax < res.HGM {
		t.Errorf("weighted range [%v, %v] excludes the HGM %v",
			res.WeightedMin, res.WeightedMax, res.HGM)
	}
	// And it must be substantially wide — that is the subjectivity
	// the paper criticizes.
	if res.WeightedMax/res.WeightedMin < 1.5 {
		t.Errorf("weight subjectivity range only %vx", res.WeightedMax/res.WeightedMin)
	}
	if _, err := s.Subjectivity(SARMachineA, 6, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestPhasedComparison(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Phased()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AgreementAtK) != 7 {
		t.Fatalf("agreement entries = %d", len(res.AgreementAtK))
	}
	// Averaging must not destroy the clustering signal: high
	// agreement with the phase-resolved view.
	for k, agree := range res.AgreementAtK {
		if agree < 0.7 {
			t.Errorf("k=%d agreement %v too low", k, agree)
		}
	}
	if len(res.SciExclusivePhased) == 0 {
		t.Error("phase-resolved view lost SciMark exclusivity entirely")
	}
}

func TestConfidence(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.Confidence(SARMachineA, 6, 0.95, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlainRatio.Contains(res.PlainRatio.Point) {
		t.Fatalf("plain interval excludes its point: %+v", res.PlainRatio)
	}
	if !res.HGMRatio.Contains(res.HGMRatio.Point) {
		t.Fatalf("HGM interval excludes its point: %+v", res.HGMRatio)
	}
	// The plain point must be the Table III ratio (~1.08).
	if res.PlainRatio.Point < 1.0 || res.PlainRatio.Point > 1.2 {
		t.Fatalf("plain ratio point %v", res.PlainRatio.Point)
	}
	// With 13 workloads the interval must be wide enough to include
	// 1.0 — the honest finding the extension documents.
	if !res.PlainRatio.Contains(1) {
		t.Fatalf("plain interval %v..%v unexpectedly excludes 1",
			res.PlainRatio.Lo, res.PlainRatio.Hi)
	}
	// The permutation test must agree: not significant.
	if res.PValue <= 0.05 || res.PValue > 1 {
		t.Fatalf("permutation p-value %v", res.PValue)
	}
}

func TestKMeansComparison(t *testing.T) {
	s := sharedSuite(t)
	var sb strings.Builder
	if err := s.RenderKMeansComparison(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "agreement") {
		t.Fatalf("output missing agreement column:\n%s", out)
	}
	// k-means must independently confirm the SciMark cluster at some
	// cut.
	if !strings.Contains(out, "yes") {
		t.Fatalf("k-means never found SciMark2:\n%s", out)
	}
}

func TestNestedExtension(t *testing.T) {
	s := sharedSuite(t)
	var sb strings.Builder
	if err := s.RenderNested(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"plain (no clustering)", "nested k=[6]", "nested k=[2 4 8]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("nested output missing %q:\n%s", want, out)
		}
	}
	// Single-level nesting must equal the flat HGM at the same cut.
	p, err := s.Pipeline(SARMachineA)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.ScoreAtK(0, s.SpeedupsA, 6)
	if err != nil {
		t.Fatal(err)
	}
	nested, err := coreNested(s, p, []int{6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flat-nested) > 1e-9 {
		t.Fatalf("nested [6] = %v, flat HGM = %v", nested, flat)
	}
}

func TestCPU2006CaseStudy(t *testing.T) {
	s := sharedSuite(t)
	var sb strings.Builder
	if err := s.RenderCPU2006(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The planted redundancy must be flagged: the three codecs share
	// a SOM cell and appear as an exclusive cluster somewhere.
	if !strings.Contains(out, "lzA+lzB+lzC") {
		t.Errorf("codecs did not share a SOM cell:\n%s", out)
	}
	if strings.Contains(out, "exclusive at k=[]") {
		t.Errorf("codecs never exclusive:\n%s", out)
	}
	if !strings.Contains(out, "Geometric Mean") {
		t.Error("score table missing")
	}
}

func TestCompareLinkages(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.CompareLinkages()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("linkages = %d", len(res))
	}
	for _, r := range res {
		if r.AgreementAtK6 < 0 || r.AgreementAtK6 > 1 {
			t.Errorf("%v agreement %v out of range", r.Linkage, r.AgreementAtK6)
		}
		// The complete-linkage row compares with itself.
		if r.Linkage == 0 && r.AgreementAtK6 != 1 {
			t.Errorf("complete-vs-complete agreement %v != 1", r.AgreementAtK6)
		}
		// The headline conclusion should survive every linkage.
		if len(r.SciExclusiveKs) == 0 {
			t.Errorf("%v linkage loses SciMark exclusivity", r.Linkage)
		}
	}
}

func TestCompareReductions(t *testing.T) {
	s := sharedSuite(t)
	res, err := s.CompareReductions()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("reductions = %d", len(res))
	}
	for _, r := range res {
		// Under method-bit characterization the five kernels have
		// identical vectors, so every reduction must keep them
		// together (spread 0) and exclusive somewhere.
		if r.SciMaxPairwise > 1e-9 {
			t.Errorf("%s: SciMark spread %v, want 0", r.Name, r.SciMaxPairwise)
		}
		if len(r.SciExclusiveKs) == 0 {
			t.Errorf("%s: SciMark never exclusive", r.Name)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	if _, ok := ByID("tableIV"); !ok {
		t.Fatal("tableIV not found")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Fatal("bogus ID found")
	}
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatalf("IDs() has %d entries, want %d", len(ids), len(All()))
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Runs != 10 || c.KMin != 2 || c.KMax != 8 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestPipelineCaching(t *testing.T) {
	s := sharedSuite(t)
	p1, err := s.Pipeline(SARMachineA)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Pipeline(SARMachineA)
	if p1 != p2 {
		t.Fatal("pipeline not cached")
	}
	if _, err := s.Pipeline(Characterization("bogus")); err == nil {
		t.Fatal("bogus characterization accepted")
	}
}

func TestMachineDependentClusterings(t *testing.T) {
	// Section V-B.2: "clusters might appear differently on different
	// machines" — the A and B SAR clusterings must differ at some k.
	s := sharedSuite(t)
	pa, err := s.Pipeline(SARMachineA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := s.Pipeline(SARMachineB)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := s.Config.KMin; k <= s.Config.KMax; k++ {
		ca, _ := pa.ClusteringAtK(k)
		cb, _ := pb.ClusteringAtK(k)
		for i := range ca.Labels {
			if ca.Labels[i] != cb.Labels[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("machine A and B clusterings identical at every k — machine dependence not reproduced")
	}
}

// coreNested is a small test helper around core.NestedMean on machine
// A's speedups.
func coreNested(s *Suite, p *core.Pipeline, levels []int) (float64, error) {
	return core.NestedMean(core.Geometric, s.SpeedupsA, p.Dendrogram, levels)
}
