package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/core"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

// RenderCPU2006 runs the second case study: a CPU2006-like native
// suite with a planted LZ-codec adoption set, characterized with the
// paper's proposed microarchitecture-independent features, scored on
// machines A and B. It demonstrates that the methodology generalizes
// beyond Java, which the paper asserts but does not evaluate.
func (s *Suite) RenderCPU2006(w io.Writer) error {
	ws := simbench.CPU2006LikeWorkloads()
	ref := simbench.Reference()

	speedA, err := simbench.MeasuredSpeedups(ws, s.A, ref, s.Config.Runs, s.Config.MeasureSeed+100)
	if err != nil {
		return err
	}
	speedB, err := simbench.MeasuredSpeedups(ws, s.B, ref, s.Config.Runs, s.Config.MeasureSeed+101)
	if err != nil {
		return err
	}

	tab, err := simbench.MicroIndepTable(ws)
	if err != nil {
		return err
	}
	p, err := core.DetectClusters(tab, core.PipelineConfig{SOM: som.Config{Seed: s.Config.SOMSeed}})
	if err != nil {
		return err
	}

	if _, err := fmt.Fprintf(w, "%d native workloads, micro-independent characterization\n\n", len(ws)); err != nil {
		return err
	}
	if err := viz.SOMMap(w, p.Map, p.Workloads, p.Prepared.Vectors()); err != nil {
		return err
	}

	plainA, err := core.PlainMean(core.Geometric, speedA)
	if err != nil {
		return err
	}
	plainB, err := core.PlainMean(core.Geometric, speedB)
	if err != nil {
		return err
	}
	t := viz.NewTable("", "A", "B", "ratio(=A/B)")
	for k := s.Config.KMin; k <= s.Config.KMax && k <= len(ws); k++ {
		a, err := p.ScoreAtK(core.Geometric, speedA, k)
		if err != nil {
			return err
		}
		b, err := p.ScoreAtK(core.Geometric, speedB, k)
		if err != nil {
			return err
		}
		if err := t.AddRowf(fmt.Sprintf("%d Clusters", k), "%.2f", a, b, a/b); err != nil {
			return err
		}
	}
	if err := t.AddRowf("Geometric Mean", "%.2f", plainA, plainB, plainA/plainB); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := t.Render(w); err != nil {
		return err
	}

	// The planted redundancy verdict.
	lz, err := lzCoagulationKs(p, ws)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\nLZ-codec adoption set {lzA lzB lzC} exclusive at k=%v — the\nmethodology flags planted redundancy in a non-Java suite too.\n", lz)
	return err
}

// lzCoagulationKs lists cuts at which the three codecs form an
// exclusive cluster.
func lzCoagulationKs(p *core.Pipeline, ws []simbench.Workload) ([]int, error) {
	lz := make([]bool, len(ws))
	for i := range ws {
		switch ws[i].Name {
		case "int.lzA", "int.lzB", "int.lzC":
			lz[i] = true
		}
	}
	var out []int
	for k := 2; k <= 9 && k <= len(ws); k++ {
		c, err := p.ClusteringAtK(k)
		if err != nil {
			return nil, err
		}
		label := -1
		for i, isLZ := range lz {
			if isLZ {
				label = c.Labels[i]
				break
			}
		}
		ok := true
		for i, isLZ := range lz {
			if isLZ != (c.Labels[i] == label) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, k)
		}
	}
	return out, nil
}
