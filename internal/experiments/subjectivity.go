package experiments

import (
	"fmt"
	"io"
	"math"

	"hmeans/internal/core"
	"hmeans/internal/rng"
	"hmeans/internal/stat"
	"hmeans/internal/viz"
)

// SubjectivityResult quantifies the paper's central argument against
// the weighted-mean workaround: "determining the exact value of those
// weights is always subjective". It samples many plausible weight
// assignments a consortium could negotiate and reports how far the
// weighted score can be pushed, against the single value the
// clustering-derived weights produce.
type SubjectivityResult struct {
	// PlainGM is the unweighted score.
	PlainGM float64
	// HGM is the hierarchical score (k = Recommended cut).
	HGM float64
	// K is the cut used for the HGM.
	K int
	// WeightedMin and WeightedMax bound the weighted GM over the
	// sampled weight assignments.
	WeightedMin, WeightedMax float64
	// Samples is how many weight draws were evaluated.
	Samples int
}

// Subjectivity samples `samples` random weight vectors (Dirichlet-ish
// draws: independent Exp(1) weights, implicitly normalized by the
// weighted mean) for machine A's scores and contrasts the resulting
// weighted-GM range with the plain GM and the HGM at cut k under the
// given characterization.
func (s *Suite) Subjectivity(ch Characterization, k, samples int, seed uint64) (SubjectivityResult, error) {
	var res SubjectivityResult
	if samples < 1 {
		return res, fmt.Errorf("experiments: need at least one weight sample")
	}
	p, err := s.Pipeline(ch)
	if err != nil {
		return res, err
	}
	if res.PlainGM, err = core.PlainMean(core.Geometric, s.SpeedupsA); err != nil {
		return res, err
	}
	if res.HGM, err = p.ScoreAtK(core.Geometric, s.SpeedupsA, k); err != nil {
		return res, err
	}
	res.K = k
	res.Samples = samples

	r := rng.New(seed)
	weights := make([]float64, len(s.SpeedupsA))
	for i := 0; i < samples; i++ {
		for j := range weights {
			// Exp(1) draw: -ln(U). Keeps every workload in play but
			// lets emphasis vary the way committee horse-trading
			// does.
			u := r.Float64()
			for u == 0 {
				u = r.Float64()
			}
			weights[j] = -math.Log(u)
		}
		wgm, err := stat.WeightedGeometricMean(s.SpeedupsA, weights)
		if err != nil {
			return res, err
		}
		if i == 0 || wgm < res.WeightedMin {
			res.WeightedMin = wgm
		}
		if i == 0 || wgm > res.WeightedMax {
			res.WeightedMax = wgm
		}
	}
	return res, nil
}

// RenderSubjectivity writes the weight-subjectivity comparison.
func (s *Suite) RenderSubjectivity(w io.Writer) error {
	res, err := s.Subjectivity(SARMachineA, 6, 2000, 17)
	if err != nil {
		return err
	}
	t := viz.NewTable("score", "value")
	rows := []struct {
		label string
		value float64
	}{
		{"plain GM", res.PlainGM},
		{fmt.Sprintf("HGM (k=%d, derived weights)", res.K), res.HGM},
		{"negotiated-weight GM, min over draws", res.WeightedMin},
		{"negotiated-weight GM, max over draws", res.WeightedMax},
	}
	for _, row := range rows {
		if err := t.AddRowf(row.label, "%.2f", row.value); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w,
		"A committee free to pick weights can move machine A's score across a %.2fx range\n"+
			"(%d random weight drawings); the clustering-derived weights admit exactly one value.\n",
		res.WeightedMax/res.WeightedMin, res.Samples)
	return err
}
