package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/core"
	"hmeans/internal/viz"
)

// RenderSensitivity reports, per characterization and per cut, how
// much the machine-A HGM could move if one workload were assigned to
// a neighbouring cluster — the "is the score robust to plausible
// clustering mistakes" diagnostic built on
// core.ClusteringSensitivity.
func (s *Suite) RenderSensitivity(w io.Writer) error {
	t := viz.NewTable("characterization", "k", "HGM(A)", "worst single-move shift", "shift %")
	for _, ch := range []Characterization{SARMachineA, SARMachineB, MethodBits} {
		p, err := s.Pipeline(ch)
		if err != nil {
			return err
		}
		for _, k := range []int{4, 6, 8} {
			c, err := p.ClusteringAtK(k)
			if err != nil {
				return err
			}
			res, err := core.ClusteringSensitivity(core.Geometric, s.SpeedupsA, c)
			if err != nil {
				return err
			}
			if err := t.AddRow(string(ch), fmt.Sprintf("%d", k),
				fmt.Sprintf("%.2f", res.Base),
				fmt.Sprintf("%.3f", res.MaxAbsShift),
				fmt.Sprintf("%.1f%%", 100*res.MaxAbsShift/res.Base)); err != nil {
				return err
			}
		}
	}
	return t.Render(w)
}
