package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/viz"
)

// RenderFigureMap writes the SOM workload-distribution figure for the
// given characterization: Figure 3 (SARMachineA), Figure 5
// (SARMachineB) or Figure 7 (MethodBits). Shared cells — the paper's
// "darker cells" — are listed below the grid.
func (s *Suite) RenderFigureMap(w io.Writer, ch Characterization) error {
	p, err := s.Pipeline(ch)
	if err != nil {
		return err
	}
	if p.Map == nil {
		return fmt.Errorf("experiments: pipeline %s has no SOM", ch)
	}
	vectors := p.Prepared.Vectors()
	if err := viz.SOMMap(w, p.Map, p.Workloads, vectors); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nShared cells (particularly similar workloads):"); err != nil {
		return err
	}
	return viz.HitSummary(w, p.Map, p.Workloads, vectors)
}

// RenderFigureDendrogram writes the clustering dendrogram for the
// given characterization: Figure 4 (SARMachineA), Figure 6
// (SARMachineB) or Figure 8 (MethodBits), followed by the cluster
// membership at every cut in the sweep.
func (s *Suite) RenderFigureDendrogram(w io.Writer, ch Characterization) error {
	p, err := s.Pipeline(ch)
	if err != nil {
		return err
	}
	if err := viz.Dendrogram(w, p.Dendrogram, p.Workloads); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "\nCluster membership by cut:"); err != nil {
		return err
	}
	return viz.CutTable(w, p.Dendrogram, p.Workloads, s.Config.KMin, s.Config.KMax)
}

// RenderCalibration reports the execution-model fit: per workload,
// the relative error of the analytic model before residual
// calibration (see simbench.CalibrationResult).
func (s *Suite) RenderCalibration(w io.Writer) error {
	t := viz.NewTable("Workload", "model err A", "model err B")
	for i := range s.Workloads {
		name := s.Workloads[i].Name
		errs := s.Calibration.ModelRelErr[name]
		if err := t.AddRowf(name, "%.2f", errs["A"], errs["B"]); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "mean pre-residual model error: %.3f\n", s.Calibration.MeanRelErr)
	return err
}
