package experiments

import (
	"fmt"
	"io"
	"sort"

	"hmeans/internal/core"
	"hmeans/internal/viz"
)

// SpeedupRow is one line of Table III.
type SpeedupRow struct {
	Workload string
	A, B     float64
	Ratio    float64
}

// TableIIIResult holds the per-workload speedups and the plain
// geometric means (the paper's baseline score).
type TableIIIResult struct {
	Rows     []SpeedupRow
	GMA, GMB float64
	GMRatio  float64
}

// TableIII computes the measured per-workload speedups on machines A
// and B and their plain geometric means.
func (s *Suite) TableIII() (TableIIIResult, error) {
	var res TableIIIResult
	for i := range s.Workloads {
		res.Rows = append(res.Rows, SpeedupRow{
			Workload: s.Workloads[i].Name,
			A:        s.SpeedupsA[i],
			B:        s.SpeedupsB[i],
			Ratio:    s.SpeedupsA[i] / s.SpeedupsB[i],
		})
	}
	var err error
	if res.GMA, err = core.PlainMean(core.Geometric, s.SpeedupsA); err != nil {
		return res, err
	}
	if res.GMB, err = core.PlainMean(core.Geometric, s.SpeedupsB); err != nil {
		return res, err
	}
	res.GMRatio = res.GMA / res.GMB
	return res, nil
}

// RenderTableIII writes Table III in the paper's layout.
func (s *Suite) RenderTableIII(w io.Writer) error {
	res, err := s.TableIII()
	if err != nil {
		return err
	}
	t := viz.NewTable("", "A", "B", "ratio(=A/B)")
	for _, r := range res.Rows {
		if err := t.AddRowf(r.Workload, "%.2f", r.A, r.B, r.Ratio); err != nil {
			return err
		}
	}
	if err := t.AddRowf("Geometric Mean", "%.2f", res.GMA, res.GMB, res.GMRatio); err != nil {
		return err
	}
	return t.Render(w)
}

// HGMRow is one line of Tables IV-VI: the hierarchical geometric
// means on both machines at one cluster count.
type HGMRow struct {
	K     int
	A, B  float64
	Ratio float64
	// Members lists the workload names per cluster at this cut.
	Members [][]string
}

// HGMTableResult is a full cluster-count sweep plus the plain-GM
// baseline row.
type HGMTableResult struct {
	Characterization Characterization
	Rows             []HGMRow
	GMA, GMB         float64
	GMRatio          float64
}

// HGMTable computes the paper's Table IV (SARMachineA), Table V
// (SARMachineB) or Table VI (MethodBits): the hierarchical geometric
// mean of both machines' scores under the clustering from the given
// characterization, for every k in the configured sweep.
func (s *Suite) HGMTable(ch Characterization) (HGMTableResult, error) {
	res := HGMTableResult{Characterization: ch}
	p, err := s.Pipeline(ch)
	if err != nil {
		return res, err
	}
	for k := s.Config.KMin; k <= s.Config.KMax && k <= len(s.Workloads); k++ {
		a, err := p.ScoreAtK(core.Geometric, s.SpeedupsA, k)
		if err != nil {
			return res, err
		}
		b, err := p.ScoreAtK(core.Geometric, s.SpeedupsB, k)
		if err != nil {
			return res, err
		}
		members, err := p.ClusterMembers(k)
		if err != nil {
			return res, err
		}
		res.Rows = append(res.Rows, HGMRow{K: k, A: a, B: b, Ratio: a / b, Members: members})
	}
	if res.GMA, err = core.PlainMean(core.Geometric, s.SpeedupsA); err != nil {
		return res, err
	}
	if res.GMB, err = core.PlainMean(core.Geometric, s.SpeedupsB); err != nil {
		return res, err
	}
	res.GMRatio = res.GMA / res.GMB
	return res, nil
}

// RenderHGMTable writes an HGM sweep in the layout of Tables IV-VI.
func (s *Suite) RenderHGMTable(w io.Writer, ch Characterization) error {
	res, err := s.HGMTable(ch)
	if err != nil {
		return err
	}
	t := viz.NewTable("", "A", "B", "ratio(=A/B)")
	for _, r := range res.Rows {
		if err := t.AddRowf(fmt.Sprintf("%d Clusters", r.K), "%.2f", r.A, r.B, r.Ratio); err != nil {
			return err
		}
	}
	if err := t.AddRowf("Geometric Mean", "%.2f", res.GMA, res.GMB, res.GMRatio); err != nil {
		return err
	}
	return t.Render(w)
}

// SciMarkExclusiveKs returns the cluster counts (within the sweep)
// at which the five SciMark2 workloads form a cluster that is exactly
// themselves — the paper's headline clustering observation.
func (s *Suite) SciMarkExclusiveKs(ch Characterization) ([]int, error) {
	p, err := s.Pipeline(ch)
	if err != nil {
		return nil, err
	}
	sci := map[int]bool{}
	for i := range s.Workloads {
		if s.Workloads[i].Suite == "SciMark2" {
			sci[i] = true
		}
	}
	var out []int
	for k := s.Config.KMin; k <= s.Config.KMax && k <= len(s.Workloads); k++ {
		c, err := p.ClusteringAtK(k)
		if err != nil {
			return nil, err
		}
		// Find the label of the first SciMark member, then require
		// the label set to be exactly the SciMark set.
		var label = -1
		for i := range s.Workloads {
			if sci[i] {
				label = c.Labels[i]
				break
			}
		}
		exclusive := true
		for i, l := range c.Labels {
			if sci[i] != (l == label) {
				exclusive = false
				break
			}
		}
		if exclusive {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out, nil
}
