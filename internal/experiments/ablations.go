package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/cluster"
	"hmeans/internal/pca"
	"hmeans/internal/vecmath"
	"hmeans/internal/viz"
)

// LinkageComparison reports, per linkage rule, whether the SciMark2
// adoption set comes out exclusive and how much the clustering agrees
// with the paper's complete-linkage choice.
type LinkageComparison struct {
	Linkage cluster.Linkage
	// SciExclusiveKs lists the cuts where SciMark2 is exclusive.
	SciExclusiveKs []int
	// AgreementAtK6 is the Rand agreement with complete linkage at
	// k=6.
	AgreementAtK6 float64
}

// CompareLinkages re-clusters the SAR-A SOM positions under every
// linkage rule. The paper fixes complete linkage without discussion;
// this shows how sensitive its conclusions are to that choice.
func (s *Suite) CompareLinkages() ([]LinkageComparison, error) {
	p, err := s.Pipeline(SARMachineA)
	if err != nil {
		return nil, err
	}
	ref, err := p.Dendrogram.CutK(6)
	if err != nil {
		return nil, err
	}
	var out []LinkageComparison
	for _, l := range []cluster.Linkage{cluster.Complete, cluster.Single, cluster.Average, cluster.Ward} {
		d, err := cluster.NewDendrogram(p.Positions, vecmath.Euclidean, l)
		if err != nil {
			return nil, err
		}
		a, err := d.CutK(6)
		if err != nil {
			return nil, err
		}
		agree, err := cluster.AgreementRate(ref, a)
		if err != nil {
			return nil, err
		}
		out = append(out, LinkageComparison{
			Linkage:        l,
			SciExclusiveKs: sciExclusiveList(d, s, s.Config.KMin, s.Config.KMax),
			AgreementAtK6:  agree,
		})
	}
	return out, nil
}

// RenderLinkages writes the linkage-sensitivity table.
func (s *Suite) RenderLinkages(w io.Writer) error {
	res, err := s.CompareLinkages()
	if err != nil {
		return err
	}
	t := viz.NewTable("linkage", "SciMark2 exclusive at k", "agreement with complete @k=6")
	for _, r := range res {
		t2 := fmt.Sprintf("%v", r.SciExclusiveKs)
		if len(r.SciExclusiveKs) == 0 {
			t2 = "never"
		}
		if err := t.AddRow(r.Linkage.String(), t2, fmt.Sprintf("%.3f", r.AgreementAtK6)); err != nil {
			return err
		}
	}
	return t.Render(w)
}

// ReductionComparison contrasts dimension-reduction stages on the
// method-utilization bit vectors — the characterization for which the
// paper argues SOM's non-linear mapping beats PCA ("SOM shows robust
// behavior over PCA approach, for this type of discrete data shows
// high nonlinearity").
type ReductionComparison struct {
	Name string
	// SciExclusiveKs lists the cuts where SciMark2 is exclusive.
	SciExclusiveKs []int
	// SciMaxPairwise is the largest pairwise distance between
	// SciMark2 members in the reduced space, normalized by the mean
	// pairwise distance over the whole suite (0 = they coincide).
	SciMaxPairwise float64
}

// CompareReductions clusters the preprocessed method-bit vectors
// after (a) the paper's SOM, (b) PCA to 2 components, (c) no
// reduction at all.
func (s *Suite) CompareReductions() ([]ReductionComparison, error) {
	p, err := s.Pipeline(MethodBits)
	if err != nil {
		return nil, err
	}
	vectors := p.Prepared.Vectors()
	rows := make([][]float64, len(vectors))
	for i, v := range vectors {
		rows[i] = v
	}
	pcaScores, _, err := pca.FitTransform(rows, 2)
	if err != nil {
		return nil, err
	}
	pcaPoints := make([]vecmath.Vector, len(pcaScores))
	for i, sc := range pcaScores {
		pcaPoints[i] = sc
	}
	variants := []struct {
		name   string
		points []vecmath.Vector
	}{
		{"som", p.Positions},
		{"pca2", pcaPoints},
		{"raw", vectors},
	}
	var out []ReductionComparison
	for _, v := range variants {
		d, err := cluster.NewDendrogram(v.points, vecmath.Euclidean, cluster.Complete)
		if err != nil {
			return nil, err
		}
		out = append(out, ReductionComparison{
			Name:           v.name,
			SciExclusiveKs: sciExclusiveList(d, s, s.Config.KMin, s.Config.KMax),
			SciMaxPairwise: sciSpread(v.points, s),
		})
	}
	return out, nil
}

// sciSpread returns max pairwise distance among SciMark members over
// the mean pairwise distance of the whole suite.
func sciSpread(points []vecmath.Vector, s *Suite) float64 {
	var sciMax float64
	var total float64
	var pairs int
	for i := range points {
		for j := i + 1; j < len(points); j++ {
			d := vecmath.EuclideanDistance(points[i], points[j])
			total += d
			pairs++
			if s.Workloads[i].Suite == "SciMark2" && s.Workloads[j].Suite == "SciMark2" && d > sciMax {
				sciMax = d
			}
		}
	}
	if pairs == 0 || total == 0 {
		return 0
	}
	return sciMax / (total / float64(pairs))
}

// RenderReductions writes the SOM-vs-PCA comparison.
func (s *Suite) RenderReductions(w io.Writer) error {
	res, err := s.CompareReductions()
	if err != nil {
		return err
	}
	t := viz.NewTable("reduction", "SciMark2 exclusive at k", "SciMark2 spread (rel.)")
	for _, r := range res {
		ks := fmt.Sprintf("%v", r.SciExclusiveKs)
		if len(r.SciExclusiveKs) == 0 {
			ks = "never"
		}
		if err := t.AddRow(r.Name, ks, fmt.Sprintf("%.3f", r.SciMaxPairwise)); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "(method-utilization bit vectors; spread 0 = the five kernels coincide)")
	return err
}
