package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
)

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	// ID is the short name used by the CLI (e.g. "tableIV", "fig3").
	ID string
	// Title describes the artifact.
	Title string
	// Run renders the artifact.
	Run func(s *Suite, w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"tableI", "Table I: constructed benchmark suite",
			func(s *Suite, w io.Writer) error { return s.RenderTableI(w) }},
		{"tableII", "Table II: hardware settings",
			func(s *Suite, w io.Writer) error { return s.RenderTableII(w) }},
		{"tableIII", "Table III: relative workload speedup on machines A and B",
			func(s *Suite, w io.Writer) error { return s.RenderTableIII(w) }},
		{"fig3", "Figure 3: workload distribution on machine A (SAR counters)",
			func(s *Suite, w io.Writer) error { return s.RenderFigureMap(w, SARMachineA) }},
		{"fig4", "Figure 4: clustering results on machine A",
			func(s *Suite, w io.Writer) error { return s.RenderFigureDendrogram(w, SARMachineA) }},
		{"tableIV", "Table IV: HGM based on clustering results from machine A",
			func(s *Suite, w io.Writer) error { return s.RenderHGMTable(w, SARMachineA) }},
		{"fig5", "Figure 5: workload distribution on machine B (SAR counters)",
			func(s *Suite, w io.Writer) error { return s.RenderFigureMap(w, SARMachineB) }},
		{"fig6", "Figure 6: clustering results on machine B",
			func(s *Suite, w io.Writer) error { return s.RenderFigureDendrogram(w, SARMachineB) }},
		{"tableV", "Table V: HGM based on clustering results from machine B",
			func(s *Suite, w io.Writer) error { return s.RenderHGMTable(w, SARMachineB) }},
		{"fig7", "Figure 7: workload distribution (Java method utilization)",
			func(s *Suite, w io.Writer) error { return s.RenderFigureMap(w, MethodBits) }},
		{"fig8", "Figure 8: clustering results (Java method utilization)",
			func(s *Suite, w io.Writer) error { return s.RenderFigureDendrogram(w, MethodBits) }},
		{"tableVI", "Table VI: HGM based on Java method utilization",
			func(s *Suite, w io.Writer) error { return s.RenderHGMTable(w, MethodBits) }},
		{"calibration", "Execution-model calibration report (not in paper)",
			func(s *Suite, w io.Writer) error { return s.RenderCalibration(w) }},
		{"ext-confidence", "Extension: workload-sampling confidence intervals for the A/B ratio",
			func(s *Suite, w io.Writer) error { return s.RenderConfidence(w) }},
		{"ext-sensitivity", "Extension: robustness of the HGM to single-workload cluster reassignments",
			func(s *Suite, w io.Writer) error { return s.RenderSensitivity(w) }},
		{"ext-linkage", "Extension: sensitivity of the clustering conclusions to the linkage rule",
			func(s *Suite, w io.Writer) error { return s.RenderLinkages(w) }},
		{"ext-reduction", "Extension: SOM vs PCA(2) vs raw vectors on the method-bit characterization (Section VI's argument)",
			func(s *Suite, w io.Writer) error { return s.RenderReductions(w) }},
		{"ext-phases", "Extension: does the paper's flat sample-averaging lose clustering signal vs phase-resolved characterization?",
			func(s *Suite, w io.Writer) error { return s.RenderPhased(w) }},
		{"ext-subjectivity", "Extension: how far negotiated weights can move the score vs the derived weights",
			func(s *Suite, w io.Writer) error { return s.RenderSubjectivity(w) }},
		{"ext-stability", "Extension: cross-seed stability of the clustering conclusions",
			func(s *Suite, w io.Writer) error { return s.RenderStability(w, 6) }},
		{"ext-kmeans", "Extension: flat k-means baseline vs the paper's hierarchical clustering",
			func(s *Suite, w io.Writer) error { return s.RenderKMeansComparison(w) }},
		{"ext-nested", "Extension: multi-level nested hierarchical means (families of clusters)",
			func(s *Suite, w io.Writer) error { return s.RenderNested(w) }},
		{"ext-features", "Extension: which counters discriminate the clusters (eta-squared ranking)",
			func(s *Suite, w io.Writer) error { return s.RenderFeatureImportance(w) }},
		{"ext-cpu2006", "Extension: second case study — a CPU2006-like native suite with a planted codec adoption set",
			func(s *Suite, w io.Writer) error { return s.RenderCPU2006(w) }},
		{"ext-microindep", "Extension: HGM with microarchitecture-independent clustering (paper Section V-C future work)",
			func(s *Suite, w io.Writer) error {
				if err := s.RenderFigureMap(w, MicroIndep); err != nil {
					return err
				}
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
				return s.RenderHGMTable(w, MicroIndep)
			}},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// RunAll renders every experiment with headers.
func RunAll(s *Suite, w io.Writer) error {
	return RunAllCtx(context.Background(), s, w)
}

// RunAllCtx is RunAll with cooperative cancellation between
// experiments: a fired context stops the sequence at the next
// experiment boundary with a wrapped context error.
func RunAllCtx(ctx context.Context, s *Suite, w io.Writer) error {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, e := range All() {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("experiments: cancelled before %s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintf(w, "=== %s — %s ===\n", e.ID, e.Title); err != nil {
			return err
		}
		if err := e.Run(s, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
