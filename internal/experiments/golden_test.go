package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenIDs lists the artifacts whose rendered output is pinned as a
// regression snapshot. All are deterministic given the default
// Config seeds. Regenerate with:
//
//	UPDATE_GOLDEN=1 go test ./internal/experiments -run TestGolden
var goldenIDs = []string{
	"tableI", "tableII", "tableIII",
	"fig3", "fig4", "tableIV",
	"fig5", "fig6", "tableV",
	"fig7", "fig8", "tableVI",
}

func TestGoldenArtifacts(t *testing.T) {
	s := sharedSuite(t)
	update := os.Getenv("UPDATE_GOLDEN") != ""
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			var sb strings.Builder
			if err := e.Run(s, &sb); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if got := sb.String(); got != string(want) {
				t.Errorf("output drifted from golden %s.\n--- got ---\n%s--- want ---\n%s", id, got, want)
			}
		})
	}
}
