// Package experiments regenerates every table and figure of the
// paper's evaluation (Section V) from the simulated substrate:
//
//	Table I    — suite composition
//	Table II   — machine settings
//	Table III  — per-workload speedups and the plain geometric mean
//	Figure 3/5 — SOM workload distribution from SAR counters (A, B)
//	Figure 4/6 — dendrograms of the SAR clusterings (A, B)
//	Table IV/V — HGM sweeps over the SAR clusterings (A, B)
//	Figure 7/8 — SOM map and dendrogram from Java method utilization
//	Table VI   — HGM sweep over the method-utilization clustering
//
// A Suite assembles the calibrated workloads, measures the speedups
// (10 noisy runs per workload per machine, averaged, as in the
// paper), and lazily builds the three characterization pipelines.
// Everything is deterministic given the Config seeds.
package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/core"
	"hmeans/internal/simbench"
	"hmeans/internal/som"
	"hmeans/internal/viz"
)

// Config seeds and sizes an experiment campaign.
type Config struct {
	// Runs is the number of executions averaged per measurement
	// (paper: 10). Zero means 10.
	Runs int
	// MeasureSeed drives run-to-run measurement noise.
	MeasureSeed uint64
	// SARSeed drives the SAR sampling noise.
	SARSeed uint64
	// SOMSeed drives SOM training.
	SOMSeed uint64
	// KMin and KMax bound the cluster-count sweep (paper: 2..8).
	// Zeros mean the paper's bounds.
	KMin, KMax int
}

func (c Config) withDefaults() Config {
	if c.Runs <= 0 {
		c.Runs = 10
	}
	if c.MeasureSeed == 0 {
		c.MeasureSeed = 1
	}
	if c.SARSeed == 0 {
		c.SARSeed = 1
	}
	if c.SOMSeed == 0 {
		c.SOMSeed = 2007
	}
	if c.KMin == 0 {
		c.KMin = 2
	}
	if c.KMax == 0 {
		c.KMax = 8
	}
	return c
}

// Suite is an assembled experiment campaign over the hypothetical
// SPECjvm2007-like benchmark.
type Suite struct {
	Config      Config
	Workloads   []simbench.Workload
	Calibration simbench.CalibrationResult
	A, B, Ref   simbench.Machine
	// SpeedupsA and SpeedupsB are the measured (noisy, averaged)
	// speedups over the reference machine, in workload order.
	SpeedupsA, SpeedupsB []float64

	pipelines map[string]*core.Pipeline
}

// NewSuite calibrates the workloads and runs the measurement
// campaign.
func NewSuite(cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	ws, cal, err := simbench.CalibratedSuite()
	if err != nil {
		return nil, fmt.Errorf("experiments: calibration: %w", err)
	}
	s := &Suite{
		Config:      cfg,
		Workloads:   ws,
		Calibration: cal,
		A:           simbench.MachineA(),
		B:           simbench.MachineB(),
		Ref:         simbench.Reference(),
		pipelines:   make(map[string]*core.Pipeline),
	}
	if s.SpeedupsA, err = simbench.MeasuredSpeedups(ws, s.A, s.Ref, cfg.Runs, cfg.MeasureSeed); err != nil {
		return nil, err
	}
	if s.SpeedupsB, err = simbench.MeasuredSpeedups(ws, s.B, s.Ref, cfg.Runs, cfg.MeasureSeed+1); err != nil {
		return nil, err
	}
	return s, nil
}

// Characterization identifies one of the paper's three workload
// characterizations.
type Characterization string

const (
	// SARMachineA characterizes with SAR counters collected on
	// machine A (Figures 3-4, Table IV).
	SARMachineA Characterization = "sar-A"
	// SARMachineB characterizes on machine B (Figures 5-6, Table V).
	SARMachineB Characterization = "sar-B"
	// MethodBits characterizes with Java method-utilization bit
	// vectors (Figures 7-8, Table VI).
	MethodBits Characterization = "methods"
	// MicroIndep characterizes with microarchitecture-independent
	// features (instruction mix, memory strides, footprints) — the
	// extension the paper proposes in Section V-C for making
	// clusters machine-invariant. Not a paper artifact; reported as
	// an extension table.
	MicroIndep Characterization = "microindep"
)

// Pipeline returns (building and caching on first use) the
// cluster-detection pipeline for the given characterization.
func (s *Suite) Pipeline(ch Characterization) (*core.Pipeline, error) {
	if p, ok := s.pipelines[string(ch)]; ok {
		return p, nil
	}
	cfg := core.PipelineConfig{SOM: som.Config{Seed: s.Config.SOMSeed}}
	var (
		p   *core.Pipeline
		err error
	)
	switch ch {
	case SARMachineA, SARMachineB:
		m := s.A
		if ch == SARMachineB {
			m = s.B
		}
		tab, terr := simbench.SARTable(s.Workloads, m, simbench.SARSpec{Seed: s.Config.SARSeed})
		if terr != nil {
			return nil, terr
		}
		p, err = core.DetectClusters(tab, cfg)
	case MethodBits:
		tab, terr := simbench.HprofTable(s.Workloads)
		if terr != nil {
			return nil, terr
		}
		cfg.Kind = core.Bits
		p, err = core.DetectClusters(tab, cfg)
	case MicroIndep:
		tab, terr := simbench.MicroIndepTable(s.Workloads)
		if terr != nil {
			return nil, terr
		}
		p, err = core.DetectClusters(tab, cfg)
	default:
		return nil, fmt.Errorf("experiments: unknown characterization %q", ch)
	}
	if err != nil {
		return nil, err
	}
	s.pipelines[string(ch)] = p
	return p, nil
}

// Names returns the workload names in order.
func (s *Suite) Names() []string { return simbench.WorkloadNames(s.Workloads) }

// RenderTableI writes the suite-composition table (paper Table I).
func (s *Suite) RenderTableI(w io.Writer) error {
	t := viz.NewTable("Workload", "Benchmark Suite", "Version", "Input Set")
	for i := range s.Workloads {
		wl := &s.Workloads[i]
		if err := t.AddRow(wl.Name, string(wl.Suite), wl.Version, wl.InputSet); err != nil {
			return err
		}
	}
	return t.Render(w)
}

// RenderTableII writes the machine settings (paper Table II).
func (s *Suite) RenderTableII(w io.Writer) error {
	t := viz.NewTable("Machine", "CPU", "L2", "Memory", "JVM")
	for _, m := range []simbench.Machine{s.A, s.B, s.Ref} {
		if err := t.AddRow(m.Name, m.CPU,
			fmt.Sprintf("%.0f KB", m.L2KB),
			fmt.Sprintf("%.0f MB", m.MemoryMB),
			m.JVM); err != nil {
			return err
		}
	}
	return t.Render(w)
}
