package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/core"
	"hmeans/internal/viz"
)

// RenderNested applies the multi-level generalization of the
// hierarchical means to the paper suite: cut the SAR-A dendrogram at
// a coarse family level AND a fine cluster level, and average
// bottom-up. The paper's bioinformatics example motivates exactly
// this — when adoption sets themselves group into families, each
// family should count once at the top.
func (s *Suite) RenderNested(w io.Writer) error {
	p, err := s.Pipeline(SARMachineA)
	if err != nil {
		return err
	}
	plainA, err := core.PlainMean(core.Geometric, s.SpeedupsA)
	if err != nil {
		return err
	}
	plainB, err := core.PlainMean(core.Geometric, s.SpeedupsB)
	if err != nil {
		return err
	}
	t := viz.NewTable("levels", "A", "B", "ratio(=A/B)")
	if err := t.AddRowf("plain (no clustering)", "%.2f", plainA, plainB, plainA/plainB); err != nil {
		return err
	}
	configs := [][]int{{6}, {3, 6}, {2, 4, 8}}
	for _, levels := range configs {
		a, err := core.NestedMean(core.Geometric, s.SpeedupsA, p.Dendrogram, levels)
		if err != nil {
			return err
		}
		b, err := core.NestedMean(core.Geometric, s.SpeedupsB, p.Dendrogram, levels)
		if err != nil {
			return err
		}
		if err := t.AddRowf(fmt.Sprintf("nested k=%v", levels), "%.2f", a, b, a/b); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "(single-level nesting equals the paper's HGM at that cut;\ndeeper levels also equalize cluster *families*)")
	return err
}
