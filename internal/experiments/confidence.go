package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/core"
	"hmeans/internal/stat"
	"hmeans/internal/viz"
)

// ConfidenceResult attaches workload-sampling confidence intervals to
// the headline comparison: if the consortium had happened to select a
// slightly different set of workloads from the same behaviour
// population, how different could the A/B ratio look?
type ConfidenceResult struct {
	// PlainRatio is the plain-GM ratio with its paired-bootstrap
	// interval over workloads.
	PlainRatio stat.Interval
	// HGMRatio is the ratio of hierarchical geometric means at the
	// recommended cut, with an interval obtained by resampling
	// clusters (the exchangeable unit once redundancy is modelled).
	HGMRatio stat.Interval
	// PValue is the paired-permutation p-value for the plain-GM
	// difference (null: the machines are per-workload exchangeable).
	PValue float64
	// K is the cut used for the HGM.
	K int
}

// Confidence computes both intervals on the given characterization's
// clustering.
func (s *Suite) Confidence(ch Characterization, k int, level float64, resamples int, seed uint64) (ConfidenceResult, error) {
	var res ConfidenceResult
	res.K = k
	plain, err := stat.BootstrapRatioCI(s.SpeedupsA, s.SpeedupsB, level, resamples, seed)
	if err != nil {
		return res, err
	}
	res.PlainRatio = plain
	if res.PValue, _, err = stat.PairedPermutationTest(s.SpeedupsA, s.SpeedupsB, 4000, seed+2); err != nil {
		return res, err
	}

	// For the HGM the exchangeable unit is the cluster: compute each
	// cluster's inner GM per machine, then bootstrap the outer mean
	// ratio over those representatives.
	p, err := s.Pipeline(ch)
	if err != nil {
		return res, err
	}
	c, err := p.ClusteringAtK(k)
	if err != nil {
		return res, err
	}
	repA := make([]float64, 0, c.K)
	repB := make([]float64, 0, c.K)
	byLabel := make([][]int, c.K)
	for i, l := range c.Labels {
		byLabel[l] = append(byLabel[l], i)
	}
	for _, members := range byLabel {
		var xs, ys []float64
		for _, i := range members {
			xs = append(xs, s.SpeedupsA[i])
			ys = append(ys, s.SpeedupsB[i])
		}
		ga, err := core.PlainMean(core.Geometric, xs)
		if err != nil {
			return res, err
		}
		gb, err := core.PlainMean(core.Geometric, ys)
		if err != nil {
			return res, err
		}
		repA = append(repA, ga)
		repB = append(repB, gb)
	}
	hgm, err := stat.BootstrapRatioCI(repA, repB, level, resamples, seed+1)
	if err != nil {
		return res, err
	}
	res.HGMRatio = hgm
	return res, nil
}

// RenderConfidence writes the workload-sampling confidence analysis
// for the SAR-A clustering at k=6.
func (s *Suite) RenderConfidence(w io.Writer) error {
	res, err := s.Confidence(SARMachineA, 6, 0.95, 2000, 11)
	if err != nil {
		return err
	}
	t := viz.NewTable("score ratio (A/B)", "point", "95% CI")
	if err := t.AddRow("plain GM, bootstrap over workloads",
		fmt.Sprintf("%.3f", res.PlainRatio.Point),
		fmt.Sprintf("[%.3f, %.3f]", res.PlainRatio.Lo, res.PlainRatio.Hi)); err != nil {
		return err
	}
	if err := t.AddRow(fmt.Sprintf("HGM (k=%d), bootstrap over clusters", res.K),
		fmt.Sprintf("%.3f", res.HGMRatio.Point),
		fmt.Sprintf("[%.3f, %.3f]", res.HGMRatio.Lo, res.HGMRatio.Hi)); err != nil {
		return err
	}
	if err := t.Render(w); err != nil {
		return err
	}
	verdict := "the interval includes 1.0 — the suite cannot certify a winner"
	if !res.PlainRatio.Contains(1) {
		verdict = "the interval excludes 1.0 — machine A's win is robust to workload selection"
	}
	if _, err := fmt.Fprintf(w, "plain-GM verdict: %s\n", verdict); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "paired permutation test (null: machines exchangeable): p = %.3f\n", res.PValue)
	return err
}
