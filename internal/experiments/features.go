package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hmeans/internal/chars"
	"hmeans/internal/viz"
)

// RenderFeatureImportance answers the interpretability question the
// paper's figures raise but cannot answer: *which counters* make the
// clusters? For the SAR-A clustering at k=6 it ranks the preprocessed
// counters by η² (variance explained by the cluster labels) and
// prints the strongest and weakest discriminators.
func (s *Suite) RenderFeatureImportance(w io.Writer) error {
	p, err := s.Pipeline(SARMachineA)
	if err != nil {
		return err
	}
	c, err := p.ClusteringAtK(6)
	if err != nil {
		return err
	}
	scores, err := chars.FeatureImportance(p.Prepared, c.Labels)
	if err != nil {
		return err
	}
	// Synthetic SAR channels come in families (net.rxpck.00..11 share
	// one latent); aggregate to the family level so the ranking names
	// twelve behaviours, not twelve copies of one.
	type famScore struct {
		name string
		best float64
	}
	famIdx := map[string]int{}
	var fams []famScore
	for _, sc := range scores {
		fam := sc.Feature
		if i := strings.LastIndexByte(fam, '.'); i >= 0 {
			fam = fam[:i]
		}
		if idx, ok := famIdx[fam]; ok {
			if sc.EtaSquared > fams[idx].best {
				fams[idx].best = sc.EtaSquared
			}
			continue
		}
		famIdx[fam] = len(fams)
		fams = append(fams, famScore{name: fam, best: sc.EtaSquared})
	}
	sort.SliceStable(fams, func(a, b int) bool { return fams[a].best > fams[b].best })
	t := viz.NewTable("rank", "counter family", "best eta^2")
	show := 10
	if show > len(fams) {
		show = len(fams)
	}
	for i := 0; i < show; i++ {
		if err := t.AddRow(fmt.Sprintf("%d", i+1), fams[i].name,
			fmt.Sprintf("%.3f", fams[i].best)); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	weak := fams[len(fams)-1]
	_, err = fmt.Fprintf(w, "(%d counters in %d families; weakest family: %s at %.3f)\n",
		len(scores), len(fams), weak.name, weak.best)
	return err
}
