package experiments

import (
	"fmt"
	"io"

	"hmeans/internal/cluster"
	"hmeans/internal/core"
	"hmeans/internal/som"
	"hmeans/internal/stat"
	"hmeans/internal/vecmath"
	"hmeans/internal/viz"
)

// StabilityResult quantifies how sensitive the pipeline's conclusions
// are to the SOM training seed — the reproducibility concern the
// paper leaves implicit (it reports one training run per machine).
type StabilityResult struct {
	Characterization Characterization
	Seeds            int
	// ExclusiveRate is the fraction of seeds whose clustering makes
	// SciMark2 exclusive at some k in the sweep.
	ExclusiveRate float64
	// MeanAgreement is the mean pairwise Rand agreement between the
	// k=6 clusterings across seeds.
	MeanAgreement float64
	// RatioAtK6 collects the HGM A/B ratio at k=6 per seed.
	RatioAtK6 []float64
	// RatioSpread is max − min of RatioAtK6.
	RatioSpread float64
}

// Stability re-runs the cluster-detection stage of the given
// characterization with `seeds` different SOM seeds and measures how
// stable the paper's conclusions are across them. The measurement
// campaign (speedups) is shared; only SOM training varies.
func (s *Suite) Stability(ch Characterization, seeds int) (StabilityResult, error) {
	res := StabilityResult{Characterization: ch, Seeds: seeds}
	if seeds < 2 {
		return res, fmt.Errorf("experiments: stability needs at least 2 seeds")
	}
	base, err := s.Pipeline(ch)
	if err != nil {
		return res, err
	}
	// Rebuild the pipeline from the already-prepared table so all
	// seeds share identical preprocessing. DetectClusters would
	// re-standardize the standardized table, so train directly.
	vectors := base.Prepared.Vectors()
	sci := make([]bool, len(s.Workloads))
	for i := range s.Workloads {
		sci[i] = s.Workloads[i].Suite == "SciMark2"
	}
	var (
		assignments []cluster.Assignment
		exclusive   int
	)
	for seed := 0; seed < seeds; seed++ {
		rows, cols := som.GridFor(len(vectors))
		m, err := som.Train(som.Config{Rows: rows, Cols: cols, Seed: uint64(seed) + 1}, vectors)
		if err != nil {
			return res, err
		}
		d, err := cluster.NewDendrogram(m.Placements(vectors), vecmath.Euclidean, base.Dendrogram.Linkage())
		if err != nil {
			return res, err
		}
		if sciExclusiveSomewhere(d, sci, s.Config.KMin, s.Config.KMax) {
			exclusive++
		}
		a, err := d.CutK(6)
		if err != nil {
			return res, err
		}
		assignments = append(assignments, a)
		c := core.Clustering{Labels: a.Labels, K: a.K}
		hA, err := core.HierarchicalMean(core.Geometric, s.SpeedupsA, c)
		if err != nil {
			return res, err
		}
		hB, err := core.HierarchicalMean(core.Geometric, s.SpeedupsB, c)
		if err != nil {
			return res, err
		}
		res.RatioAtK6 = append(res.RatioAtK6, hA/hB)
	}
	res.ExclusiveRate = float64(exclusive) / float64(seeds)
	var agreeSum float64
	var pairs int
	for i := range assignments {
		for j := i + 1; j < len(assignments); j++ {
			r, err := cluster.AgreementRate(assignments[i], assignments[j])
			if err != nil {
				return res, err
			}
			agreeSum += r
			pairs++
		}
	}
	if pairs > 0 {
		res.MeanAgreement = agreeSum / float64(pairs)
	}
	lo, err := stat.Min(res.RatioAtK6)
	if err != nil {
		return res, err
	}
	hi, _ := stat.Max(res.RatioAtK6)
	res.RatioSpread = hi - lo
	return res, nil
}

func sciExclusiveSomewhere(d *cluster.Dendrogram, sci []bool, kMin, kMax int) bool {
	for k := kMin; k <= kMax && k <= d.Len(); k++ {
		a, err := d.CutK(k)
		if err != nil {
			continue
		}
		label := -1
		for i, isSci := range sci {
			if isSci {
				label = a.Labels[i]
				break
			}
		}
		ok := true
		for i, isSci := range sci {
			if isSci != (a.Labels[i] == label) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// RenderStability writes the cross-seed stability report for all
// three paper characterizations.
func (s *Suite) RenderStability(w io.Writer, seeds int) error {
	t := viz.NewTable("characterization", "exclusive rate", "k=6 agreement", "ratio spread")
	for _, ch := range []Characterization{SARMachineA, SARMachineB, MethodBits} {
		res, err := s.Stability(ch, seeds)
		if err != nil {
			return err
		}
		if err := t.AddRow(string(ch),
			fmt.Sprintf("%.0f%%", 100*res.ExclusiveRate),
			fmt.Sprintf("%.3f", res.MeanAgreement),
			fmt.Sprintf("%.3f", res.RatioSpread)); err != nil {
			return err
		}
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "(%d SOM seeds per characterization; sweep k=%d..%d)\n",
		seeds, s.Config.KMin, s.Config.KMax)
	return err
}
