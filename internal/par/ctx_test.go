package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestForContainsWorkerPanic is the regression test for the historical
// crash: a panic on a spawned worker goroutine was unrecoverable and
// killed the process. It must now surface as a recoverable
// *PanicError panic on the calling goroutine, carrying the shard.
func TestForContainsWorkerPanic(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: expected a panic", workers)
				}
				pe, ok := v.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: panic value %T, want *PanicError", workers, v)
				}
				if pe.Value != "boom" {
					t.Errorf("workers=%d: panic value %v, want boom", workers, pe.Value)
				}
				if pe.Start > 40 || pe.End <= 40 {
					t.Errorf("workers=%d: shard range [%d,%d) does not contain the panicking index", workers, pe.Start, pe.End)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("workers=%d: missing worker stack", workers)
				}
			}()
			For(workers, 64, func(start, end int) {
				for i := start; i < end; i++ {
					if i == 40 {
						panic("boom")
					}
				}
			})
		}()
	}
}

// TestFixedShardsContainsWorkerPanic mirrors the For regression test
// for the fixed-shard pool, checking the reported shard index.
func TestFixedShardsContainsWorkerPanic(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		func() {
			defer func() {
				v := recover()
				pe, ok := v.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: panic value %T (%v), want *PanicError", workers, v, v)
				}
				if pe.Shard != 2 {
					t.Errorf("workers=%d: reported shard %d, want 2", workers, pe.Shard)
				}
			}()
			FixedShards(workers, 100, 10, func(shard, start, end int) {
				if shard == 2 {
					panic("shard down")
				}
			})
		}()
	}
}

func TestForCtxReturnsPanicError(t *testing.T) {
	boom := errors.New("worker exploded")
	for _, workers := range []int{1, 4} {
		err := ForCtx(context.Background(), workers, 32, func(start, end int) {
			panic(boom)
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v, want *PanicError", workers, err)
		}
		// An error panic value must unwrap so callers can errors.Is it.
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: PanicError does not unwrap to the panic value", workers)
		}
	}
}

func TestForCtxPanicPicksLowestShard(t *testing.T) {
	err := ForCtx(context.Background(), 4, 64, func(start, end int) {
		panic("every chunk")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v, want *PanicError", err)
	}
	if pe.Shard != 0 {
		t.Errorf("reported shard %d, want the lowest recorded (0)", pe.Shard)
	}
}

func TestForCtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	if err := ForCtx(ctx, 4, 100, func(start, end int) { ran = true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if ran {
		t.Error("body ran after cancellation")
	}
}

func TestFixedShardsCtxStopsDispatchingAfterCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	_, err := FixedShardsCtx(ctx, 2, 1000, 10, func(shard, start, end int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	// 100 shards exist; after the third body cancels, only the
	// (bounded) in-flight shards may still run.
	if got := ran.Load(); got > 10 {
		t.Errorf("%d shards ran after cancellation, want early stop", got)
	}
}

func TestFixedShardsCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := FixedShardsCtx(ctx, 4, 400, 1, func(shard, s, e int) {
		time.Sleep(2 * time.Millisecond)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("took %v after a 5ms deadline: shards kept dispatching", elapsed)
	}
}

// TestCtxVariantsBitIdenticalWithBackground proves the ctx variants
// are drop-in twins when the context never fires: same chunk
// boundaries, same shard assignment, same coverage.
func TestCtxVariantsBitIdenticalWithBackground(t *testing.T) {
	const n = 103
	for _, workers := range []int{1, 2, 8} {
		plain := make([]int32, n)
		For(workers, n, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&plain[i], 1)
			}
		})
		viaCtx := make([]int32, n)
		if err := ForCtx(context.Background(), workers, n, func(start, end int) {
			for i := start; i < end; i++ {
				atomic.AddInt32(&viaCtx[i], 1)
			}
		}); err != nil {
			t.Fatalf("ForCtx: %v", err)
		}
		for i := range plain {
			if plain[i] != 1 || viaCtx[i] != 1 {
				t.Fatalf("workers=%d: index %d visited plain=%d ctx=%d", workers, i, plain[i], viaCtx[i])
			}
		}

		bounds := map[int][2]int{}
		var mu sync2 // tiny mutex via channel to keep imports minimal
		mu.init()
		shards, err := FixedShardsCtx(context.Background(), workers, n, 16, func(shard, start, end int) {
			mu.lock()
			bounds[shard] = [2]int{start, end}
			mu.unlock()
		})
		if err != nil {
			t.Fatalf("FixedShardsCtx: %v", err)
		}
		want := FixedShards(workers, n, 16, func(shard, start, end int) {})
		if shards != want {
			t.Fatalf("workers=%d: %d shards via ctx, %d plain", workers, shards, want)
		}
		for s := 0; s < shards; s++ {
			start := s * 16
			end := start + 16
			if end > n {
				end = n
			}
			if bounds[s] != [2]int{start, end} {
				t.Fatalf("workers=%d: shard %d bounds %v, want [%d %d]", workers, s, bounds[s], start, end)
			}
		}
	}
}

type sync2 struct{ ch chan struct{} }

func (m *sync2) init()   { m.ch = make(chan struct{}, 1); m.ch <- struct{}{} }
func (m *sync2) lock()   { <-m.ch }
func (m *sync2) unlock() { m.ch <- struct{}{} }
