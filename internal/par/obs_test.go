package par

import (
	"runtime"
	"sync/atomic"
	"testing"

	"hmeans/internal/obs"
)

// withDefaultObserver installs a collector-backed default observer for
// the test and restores the previous default afterwards.
func withDefaultObserver(t *testing.T) *obs.Observer {
	t.Helper()
	o := obs.New(obs.NewCollector())
	prev := obs.SetDefault(o)
	t.Cleanup(func() { obs.SetDefault(prev) })
	return o
}

// coverage runs body-style bookkeeping for For/FixedShards edge cases:
// every index in [0, n) must be visited exactly once.
func checkCoverage(t *testing.T, n int, seen []atomic.Int32) {
	t.Helper()
	for i := 0; i < n; i++ {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
	}
}

// TestForEdgeCases sweeps the shard-boundary corners — empty input,
// single element, fewer elements than workers, more workers than
// GOMAXPROCS — and asserts exact coverage under an active observer.
func TestForEdgeCases(t *testing.T) {
	o := withDefaultObserver(t)
	cases := []struct {
		name       string
		n, workers int
	}{
		{"empty", 0, 4},
		{"single", 1, 4},
		{"fewer-than-workers", 3, 8},
		{"more-workers-than-procs", 64, runtime.GOMAXPROCS(0) * 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seen := make([]atomic.Int32, tc.n)
			For(tc.workers, tc.n, func(start, end int) {
				for i := start; i < end; i++ {
					seen[i].Add(1)
				}
			})
			checkCoverage(t, tc.n, seen)
		})
	}
	// Timed fan-outs (n > 1, several chunks) must have fed the
	// imbalance metrics; the inline paths must not count as calls.
	calls := o.Metrics().Counter("par.for.calls").Value()
	if calls != 2 {
		t.Fatalf("par.for.calls = %d, want 2 (the two multi-chunk cases)", calls)
	}
	ratio := o.Metrics().Gauge("par.for.imbalance").Value()
	if ratio < 1 {
		t.Fatalf("imbalance ratio = %v, want >= 1", ratio)
	}
}

// TestFixedShardsEdgeCases is the FixedShards twin: the same corner
// sweep, asserting shard counts, coverage, and metric emission.
func TestFixedShardsEdgeCases(t *testing.T) {
	o := withDefaultObserver(t)
	cases := []struct {
		name                  string
		n, shardSize, workers int
		wantShards            int
		timed                 bool
	}{
		{"empty", 0, 4, 4, 0, false},
		{"single", 1, 4, 4, 1, false}, // one shard -> serial path
		{"fewer-than-workers", 3, 1, 8, 3, true},
		{"more-workers-than-procs", 64, 4, runtime.GOMAXPROCS(0) * 4, 16, true},
	}
	var wantCalls int64
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seen := make([]atomic.Int32, tc.n)
			shards := FixedShards(tc.workers, tc.n, tc.shardSize, func(shard, start, end int) {
				for i := start; i < end; i++ {
					seen[i].Add(1)
				}
			})
			if shards != tc.wantShards {
				t.Fatalf("shards = %d, want %d", shards, tc.wantShards)
			}
			checkCoverage(t, tc.n, seen)
		})
		if tc.timed {
			wantCalls++
		}
	}
	if calls := o.Metrics().Counter("par.shards.calls").Value(); calls != wantCalls {
		t.Fatalf("par.shards.calls = %d, want %d", calls, wantCalls)
	}
	// 3 + 16 shards were timed in total.
	if chunks := o.Metrics().Counter("par.shards.chunks").Value(); chunks != 19 {
		t.Fatalf("par.shards.chunks = %d, want 19", chunks)
	}
}

// TestForWithoutObserverEmitsNothing pins the disabled path: no
// default observer means no metrics and the historical behaviour.
func TestForWithoutObserverEmitsNothing(t *testing.T) {
	prev := obs.SetDefault(nil)
	t.Cleanup(func() { obs.SetDefault(prev) })
	var visits atomic.Int32
	For(8, 100, func(start, end int) { visits.Add(int32(end - start)) })
	if visits.Load() != 100 {
		t.Fatalf("visits = %d", visits.Load())
	}
	// Nothing to assert against a registry — there is none; the test
	// passes by not panicking on the nil-observer path.
}
