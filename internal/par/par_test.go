package par

import (
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {64, 64},
	} {
		if got := Resolve(tc.in); got != tc.want {
			t.Errorf("Resolve(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if Auto() < 1 {
		t.Errorf("Auto() = %d, want >= 1", Auto())
	}
}

func TestSplitCoversExactly(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for parts := 1; parts <= 10; parts++ {
			ranges := Split(n, parts)
			next := 0
			for _, r := range ranges {
				if r.Start != next {
					t.Fatalf("Split(%d,%d): range starts at %d, want %d", n, parts, r.Start, next)
				}
				if r.End <= r.Start {
					t.Fatalf("Split(%d,%d): empty range %+v", n, parts, r)
				}
				next = r.End
			}
			if next != n {
				t.Fatalf("Split(%d,%d): covers [0,%d), want [0,%d)", n, parts, next, n)
			}
			if n > 0 && len(ranges) > parts {
				t.Fatalf("Split(%d,%d): %d ranges", n, parts, len(ranges))
			}
		}
	}
}

func TestSplitBalance(t *testing.T) {
	for _, r := range Split(10, 3) {
		if size := r.End - r.Start; size < 3 || size > 4 {
			t.Errorf("Split(10,3): unbalanced range %+v", r)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64} {
			visits := make([]int32, n)
			For(workers, n, func(start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("For(%d,%d): index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

func TestFixedShardsBoundariesIndependentOfWorkers(t *testing.T) {
	const n, shardSize = 103, 16
	record := func(workers int) map[int][2]int {
		got := map[int][2]int{}
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		shards := FixedShards(workers, n, shardSize, func(shard, start, end int) {
			<-mu
			got[shard] = [2]int{start, end}
			mu <- struct{}{}
		})
		if want := (n + shardSize - 1) / shardSize; shards != want {
			t.Fatalf("FixedShards returned %d shards, want %d", shards, want)
		}
		return got
	}
	serial := record(1)
	for _, workers := range []int{2, 3, 8} {
		parallel := record(workers)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d shards, want %d", workers, len(parallel), len(serial))
		}
		for shard, bounds := range serial {
			if parallel[shard] != bounds {
				t.Fatalf("workers=%d: shard %d bounds %v, want %v", workers, shard, parallel[shard], bounds)
			}
		}
	}
}

func TestFixedShardsCoverage(t *testing.T) {
	const n, shardSize = 50, 7
	visits := make([]int32, n)
	FixedShards(4, n, shardSize, func(_, start, end int) {
		for i := start; i < end; i++ {
			atomic.AddInt32(&visits[i], 1)
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}
